# Shared prologue for the *_smoke.sh scripts — source it, don't run it:
#
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Provides strict mode, the bench/CLI binary locations (overridable via
# $BENCH / $SSO, which the @ci rules point at the freshly built
# executables), and a temporary scratch directory in $dir that is
# removed on any exit.
set -eu

BENCH="${BENCH:-_build/default/bench/main.exe}"
SSO="${SSO:-_build/default/bin/sso.exe}"

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

# expect_exit CODE DESC CMD ARGS...
#
# Run CMD and assert its exit status is exactly CODE (both output
# streams discarded).  The one place the exit-code contract of README
# "Exit codes" is asserted: 0 success, 10 unreadable, 11 corrupt,
# 12 SLO/overload burn, 124 usage, 137 injected crash.
expect_exit() {
  _want=$1
  _desc=$2
  shift 2
  _rc=0
  "$@" > /dev/null 2>&1 || _rc=$?
  test "$_rc" -eq "$_want" || {
    echo "${0##*/}: $_desc: expected exit $_want, got $_rc" >&2
    exit 1
  }
}
