# Shared prologue for the *_smoke.sh scripts — source it, don't run it:
#
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Provides strict mode, the bench/CLI binary locations (overridable via
# $BENCH / $SSO, which the @ci rules point at the freshly built
# executables), and a temporary scratch directory in $dir that is
# removed on any exit.
set -eu

BENCH="${BENCH:-_build/default/bench/main.exe}"
SSO="${SSO:-_build/default/bin/sso.exe}"

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
