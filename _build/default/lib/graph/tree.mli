(** Spanning trees: construction and tree routing.

    Routing every pair along a single spanning tree is the simplest
    oblivious routing on a general graph (and, through better trees,
    the backbone of Räcke's construction).  We provide BFS trees, uniform
    random spanning trees via Wilson's loop-erased-random-walk algorithm,
    and the unique tree path between two vertices — used by the
    tree-routing baselines and the base-quality ablation experiment. *)

type t = private { root : int; parent_edge : int array }
(** Rooted spanning tree: [parent_edge.(v)] is the edge towards the root
    ([-1] at the root itself). *)

val bfs_tree : Graph.t -> int -> t
(** Shortest-path (hop) tree rooted at the given vertex.
    @raise Invalid_argument if the graph is disconnected. *)

val wilson : Sso_prng.Rng.t -> Graph.t -> t
(** A uniformly random spanning tree (Wilson 1996: loop-erased random
    walks from each vertex to the growing tree), rooted at a random
    vertex.  @raise Invalid_argument if the graph is disconnected. *)

val edges : t -> int list
(** The n-1 tree edge ids. *)

val path : Graph.t -> t -> int -> int -> Path.t
(** The unique tree path between two vertices (simple by construction). *)

val depth : Graph.t -> t -> int -> int
(** Hop distance to the root along the tree. *)
