(** Bridge (cut-edge) detection.

    A bridge is an edge whose removal disconnects its endpoints.  The
    robustness experiments use bridges to separate "the network cannot
    survive this failure" from "the candidate set failed to cover it", and
    the lower-bound family graph [G(n)] is glued from gadgets precisely by
    bridges.  Tarjan low-link DFS, O(n + m); parallel edges are never
    bridges. *)

val find : Graph.t -> int list
(** Edge ids of all bridges, ascending. *)

val is_bridge : Graph.t -> int -> bool
(** O(n + m) per query; use {!find} for many queries. *)

val count : Graph.t -> int
