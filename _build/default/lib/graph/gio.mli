(** Plain-text graph serialization.

    Format: first line [n <vertices>], then one [<u> <v> [cap]] line per
    edge (capacity defaults to 1).  Lines starting with [#] are comments.
    Round-trips through {!to_string} / {!of_string}. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input. *)

val to_dot : ?labels:string array -> Graph.t -> string
(** Graphviz rendering (undirected), mostly for debugging/docs. *)
