lib/graph/bridges.ml: Array Graph List
