lib/graph/tree.mli: Graph Path Sso_prng
