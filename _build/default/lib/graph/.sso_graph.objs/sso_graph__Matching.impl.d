lib/graph/matching.ml: Array List Queue
