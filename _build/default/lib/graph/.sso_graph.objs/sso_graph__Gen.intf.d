lib/graph/gen.mli: Graph Sso_prng
