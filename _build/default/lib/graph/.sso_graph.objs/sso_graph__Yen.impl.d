lib/graph/yen.ml: Array Graph Hashtbl List Path Set Shortest
