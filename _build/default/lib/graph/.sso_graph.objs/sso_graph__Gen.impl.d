lib/graph/gen.ml: Array Float Graph Hashtbl List Sso_prng
