lib/graph/shortest.ml: Array Graph Heap Path Queue
