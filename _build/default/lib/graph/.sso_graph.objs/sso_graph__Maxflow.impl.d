lib/graph/maxflow.ml: Array Float Graph Queue
