lib/graph/matching.mli:
