lib/graph/yen.mli: Graph Path
