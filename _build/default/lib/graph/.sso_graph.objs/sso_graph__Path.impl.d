lib/graph/path.ml: Array Format Graph Hashtbl List String
