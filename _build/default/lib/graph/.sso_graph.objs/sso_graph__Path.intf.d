lib/graph/path.mli: Format Graph
