lib/graph/graph.mli:
