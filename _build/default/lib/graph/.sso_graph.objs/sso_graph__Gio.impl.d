lib/graph/gio.ml: Array Buffer Graph List Printf String
