lib/graph/heap.mli:
