lib/graph/tree.ml: Array Graph List Path Queue Seq Sso_prng
