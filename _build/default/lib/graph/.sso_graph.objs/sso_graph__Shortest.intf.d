lib/graph/shortest.mli: Graph Path
