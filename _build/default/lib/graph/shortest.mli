(** Shortest-path computations: BFS, Dijkstra, and hop-limited variants.

    Dijkstra takes an arbitrary non-negative per-edge weight function, which
    is how the MWU flow solvers and the Räcke construction re-weight the
    graph between iterations without rebuilding it. *)

val bfs_dist : Graph.t -> int -> int array
(** Hop distances from a source; [max_int] for unreachable vertices. *)

val bfs_path : Graph.t -> int -> int -> Path.t option
(** A minimum-hop path, if the destination is reachable. *)

val dijkstra : Graph.t -> weight:(int -> float) -> int -> float array * int array
(** [dijkstra g ~weight src] returns [(dist, pred_edge)] where
    [pred_edge.(v)] is the edge id entering [v] on a shortest path tree
    ([-1] at the source and unreachable vertices), and [dist.(v)] is
    [infinity] when unreachable.  [weight e] must be non-negative. *)

val dijkstra_path : Graph.t -> weight:(int -> float) -> int -> int -> Path.t option
(** A minimum-weight path between two vertices. *)

val hop_limited_path :
  Graph.t -> weight:(int -> float) -> max_hops:int -> int -> int -> Path.t option
(** Minimum-weight walk using at most [max_hops] edges, simplified into a
    simple path (whose weight is then at most the walk's).  Bellman–Ford
    style dynamic program over hop counts, O(max_hops · m).  Returns [None]
    when no walk within the hop budget exists. *)

val eccentricity : Graph.t -> int -> int
(** Maximum hop distance from a vertex to any reachable vertex. *)

val diameter : Graph.t -> int
(** Maximum eccentricity over all vertices (hop metric).  O(n·m). *)

val all_pairs_hops : Graph.t -> int array array
(** [all_pairs_hops g] runs BFS from every vertex; row [s] is
    [bfs_dist g s].  O(n·m) and O(n²) memory — intended for the moderate
    graph sizes used in experiments. *)
