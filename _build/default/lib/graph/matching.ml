let maximum ~left ~right adjf =
  let adj = Array.init left adjf in
  let match_l = Array.make left (-1) in
  let match_r = Array.make right (-1) in
  let dist = Array.make left max_int in
  let bfs () =
    let queue = Queue.create () in
    let found = ref false in
    for l = 0 to left - 1 do
      if match_l.(l) < 0 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- max_int
    done;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      List.iter
        (fun r ->
          match match_r.(r) with
          | -1 -> found := true
          | l' ->
              if dist.(l') = max_int then begin
                dist.(l') <- dist.(l) + 1;
                Queue.add l' queue
              end)
        adj.(l)
    done;
    !found
  in
  let rec dfs l =
    let ok =
      List.exists
        (fun r ->
          let usable =
            match match_r.(r) with
            | -1 -> true
            | l' -> dist.(l') = dist.(l) + 1 && dfs l'
          in
          if usable then begin
            match_l.(l) <- r;
            match_r.(r) <- l
          end;
          usable)
        adj.(l)
    in
    if not ok then dist.(l) <- max_int;
    ok
  in
  let continue = ref true in
  while !continue do
    if bfs () then begin
      let advanced = ref false in
      for l = 0 to left - 1 do
        if match_l.(l) < 0 && dfs l then advanced := true
      done;
      if not !advanced then continue := false
    end
    else continue := false
  done;
  let pairs = ref [] in
  for l = left - 1 downto 0 do
    if match_l.(l) >= 0 then pairs := (l, match_l.(l)) :: !pairs
  done;
  Array.of_list !pairs
