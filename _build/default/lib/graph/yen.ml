module PathSet = Set.Make (Path)

let k_shortest g ~weight ~k s t =
  if k <= 0 then []
  else if s = t then [ Path.trivial s ]
  else begin
    (* Dijkstra that ignores banned edges and banned vertices.  Banning is
       expressed through the weight function (infinity = unusable). *)
    let masked_path banned_edges banned_vertices src =
      let wf e =
        if Hashtbl.mem banned_edges e then infinity
        else
          let u, v = Graph.endpoints g e in
          if
            (Hashtbl.mem banned_vertices u && u <> src)
            || (Hashtbl.mem banned_vertices v && v <> src)
          then infinity
          else weight e
      in
      match Shortest.dijkstra_path g ~weight:wf src t with
      | Some p when Path.weight wf p < infinity -> Some p
      | _ -> None
    in
    let no_ban = Hashtbl.create 1 in
    match masked_path no_ban no_ban s with
    | None -> []
    | Some first ->
        let accepted = ref [ first ] in
        let accepted_set = ref (PathSet.singleton first) in
        let candidates = ref PathSet.empty in
        let continue = ref true in
        while List.length !accepted < k && !continue do
          let prev = List.hd !accepted in
          let prev_vertices = Path.vertices g prev in
          (* Spur from every prefix of the most recently accepted path. *)
          for i = 0 to Path.hops prev - 1 do
            let spur = prev_vertices.(i) in
            let root_edges = Array.sub prev.Path.edges 0 i in
            let banned_edges = Hashtbl.create 8 in
            let banned_vertices = Hashtbl.create 8 in
            (* Ban the next edge of every accepted path sharing this root. *)
            List.iter
              (fun (p : Path.t) ->
                if
                  Path.hops p > i
                  && Array.sub p.Path.edges 0 i = root_edges
                then Hashtbl.replace banned_edges p.Path.edges.(i) ())
              !accepted;
            (* Ban root vertices (except the spur) to keep paths simple. *)
            for j = 0 to i - 1 do
              Hashtbl.replace banned_vertices prev_vertices.(j) ()
            done;
            match masked_path banned_edges banned_vertices spur with
            | None -> ()
            | Some spur_path ->
                let candidate =
                  Path.of_edges g ~src:s ~dst:t
                    (Array.append root_edges spur_path.Path.edges)
                in
                if
                  Path.is_simple g candidate
                  && (not (PathSet.mem candidate !accepted_set))
                then candidates := PathSet.add candidate !candidates
          done;
          (* Accept the lightest remaining candidate. *)
          let best = ref None in
          PathSet.iter
            (fun p ->
              let w = Path.weight weight p in
              match !best with
              | Some (bw, _) when bw <= w -> ()
              | _ -> best := Some (w, p))
            !candidates;
          match !best with
          | None -> continue := false
          | Some (_, p) ->
              candidates := PathSet.remove p !candidates;
              accepted := p :: !accepted;
              accepted_set := PathSet.add p !accepted_set
        done;
        List.rev !accepted
  end
