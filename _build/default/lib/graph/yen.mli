(** Yen's algorithm for the k shortest loopless paths.

    Used by the KSP-spread oblivious baseline (traditional traffic
    engineering spreads load over the k shortest paths) and by the
    hop-constrained routing's path diversification. *)

val k_shortest :
  Graph.t -> weight:(int -> float) -> k:int -> int -> int -> Path.t list
(** [k_shortest g ~weight ~k s t] returns up to [k] distinct simple paths
    from [s] to [t] in non-decreasing weight order (fewer if the graph does
    not contain [k] simple paths).  [weight e] must be non-negative; edges
    can be soft-deleted by giving them weight [infinity].  For [s = t] the
    single trivial path is returned. *)
