(** Minimal binary min-heap with float keys and polymorphic payloads.

    Used by Dijkstra and Yen's algorithm.  Decrease-key is handled by lazy
    deletion: callers insert duplicates and skip stale pops. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)
