type 'a t = { mutable keys : float array; mutable data : 'a option array; mutable size : int }

let create () = { keys = Array.make 16 0.0; data = Array.make 16 None; size = 0 }

let is_empty h = h.size = 0

let size h = h.size

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0.0 in
  let data = Array.make (2 * cap) None in
  Array.blit h.keys 0 keys 0 cap;
  Array.blit h.data 0 data 0 cap;
  h.keys <- keys;
  h.data <- data

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let push h key value =
  if h.size = Array.length h.keys then grow h;
  h.keys.(h.size) <- key;
  h.data.(h.size) <- Some value;
  let i = ref h.size in
  h.size <- h.size + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) in
    let value = match h.data.(0) with Some v -> v | None -> assert false in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    Some (key, value)
  end
