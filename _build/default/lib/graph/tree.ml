module Rng = Sso_prng.Rng

type t = { root : int; parent_edge : int array }

let bfs_tree g root =
  let n = Graph.n g in
  let parent_edge = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(root) <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  let visited = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (e, w) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          parent_edge.(w) <- e;
          incr visited;
          Queue.add w queue
        end)
      (Graph.adj g v)
  done;
  if !visited <> n then invalid_arg "Tree.bfs_tree: graph is disconnected";
  { root; parent_edge }

let wilson rng g =
  let n = Graph.n g in
  if not (Graph.is_connected g) then invalid_arg "Tree.wilson: graph is disconnected";
  let root = Rng.int rng n in
  let in_tree = Array.make n false in
  in_tree.(root) <- true;
  let parent_edge = Array.make n (-1) in
  (* Per-vertex next step of the current walk (loop erasure happens by
     overwriting: only the last exit of each vertex survives). *)
  let next_edge = Array.make n (-1) in
  for start = 0 to n - 1 do
    if not in_tree.(start) then begin
      (* Random walk from [start] until the tree is hit. *)
      let v = ref start in
      while not in_tree.(!v) do
        let e, w = Rng.choose rng (Graph.adj g !v) in
        next_edge.(!v) <- e;
        v := w
      done;
      (* Retrace the loop-erased walk and attach it. *)
      let v = ref start in
      while not in_tree.(!v) do
        let e = next_edge.(!v) in
        parent_edge.(!v) <- e;
        in_tree.(!v) <- true;
        v := Graph.other_end g e !v
      done
    end
  done;
  { root; parent_edge }

let edges t =
  Array.to_list (Array.of_seq (Seq.filter (fun e -> e >= 0) (Array.to_seq t.parent_edge)))

let depth g t v =
  let rec go v acc =
    if t.parent_edge.(v) < 0 then acc
    else go (Graph.other_end g t.parent_edge.(v) v) (acc + 1)
  in
  go v 0

let path g t s dst =
  if s = dst then Path.trivial s
  else begin
    (* Collect edges up to the root from both ends, then let simplify
       excise the shared root segment. *)
    let to_root v =
      let rec go v acc =
        if t.parent_edge.(v) < 0 then List.rev acc
        else
          let e = t.parent_edge.(v) in
          go (Graph.other_end g e v) (e :: acc)
      in
      go v []
    in
    let up = to_root s in
    let down = List.rev (to_root dst) in
    let walk =
      Path.of_edges g ~src:s ~dst (Array.of_list (up @ down))
    in
    Path.simplify g walk
  end
