type edge = { id : int; u : int; v : int; cap : float }

type t = { n : int; edges : edge array; adj : (int * int) array array }

module Builder = struct
  type t = { bn : int; mutable rev_edges : edge list; mutable count : int }

  let create n =
    if n <= 0 then invalid_arg "Graph.Builder.create: need at least one vertex";
    { bn = n; rev_edges = []; count = 0 }

  let add_edge ?(cap = 1.0) b u v =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if not (cap > 0.0) then invalid_arg "Graph.Builder.add_edge: capacity must be positive";
    let id = b.count in
    let u, v = if u <= v then (u, v) else (v, u) in
    b.rev_edges <- { id; u; v; cap } :: b.rev_edges;
    b.count <- id + 1;
    id

  let build b =
    let edges = Array.of_list (List.rev b.rev_edges) in
    let deg = Array.make b.bn 0 in
    Array.iter
      (fun e ->
        deg.(e.u) <- deg.(e.u) + 1;
        deg.(e.v) <- deg.(e.v) + 1)
      edges;
    let adj = Array.init b.bn (fun v -> Array.make deg.(v) (-1, -1)) in
    let fill = Array.make b.bn 0 in
    Array.iter
      (fun e ->
        adj.(e.u).(fill.(e.u)) <- (e.id, e.v);
        fill.(e.u) <- fill.(e.u) + 1;
        adj.(e.v).(fill.(e.v)) <- (e.id, e.u);
        fill.(e.v) <- fill.(e.v) + 1)
      edges;
    { n = b.bn; edges; adj }
end

let n g = g.n

let m g = Array.length g.edges

let edge g id =
  if id < 0 || id >= Array.length g.edges then invalid_arg "Graph.edge: id out of range";
  g.edges.(id)

let edges g = g.edges

let cap g id = (edge g id).cap

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let other_end g id v =
  let e = edge g id in
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg "Graph.other_end: vertex is not an endpoint"

let adj g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.adj: vertex out of range";
  g.adj.(v)

let degree g v = Array.length (adj g v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let is_connected g =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (_, w) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          incr count;
          Queue.add w queue
        end)
      g.adj.(v)
  done;
  !count = g.n

let fold_edges f g init =
  Array.fold_left (fun acc e -> f e.id e.u e.v e.cap acc) init g.edges

let total_capacity g = Array.fold_left (fun acc e -> acc +. e.cap) 0.0 g.edges
