(** Maximum flow / minimum cut via Dinic's algorithm.

    The paper's [(α + cut_G)]-samples need [cut_G(s,t)], the value of the
    minimum (s,t)-cut where every parallel edge counts once (equivalently,
    max-flow with unit capacities).  We implement Dinic on the residual
    digraph obtained by replacing each undirected edge of capacity [c] with
    a pair of opposite arcs of capacity [c] each — a standard reduction
    whose max-flow value equals the undirected one. *)

val max_flow : Graph.t -> int -> int -> float
(** Value of a maximum (s,t)-flow (capacities from the graph).
    [max_flow g v v = 0.].  O(n²·m) worst case; much faster in practice. *)

val cut : Graph.t -> int -> int -> int
(** [cut g s t] is [cut_G(s,t)] from the paper: minimum number of edges
    (each counted once, ignoring real capacities) whose removal separates
    [s] from [t]; [0] when [s = t].  Computed as unit-capacity max-flow,
    rounded to the nearest integer. *)

val min_cut_edges : Graph.t -> int -> int -> int list
(** Edge ids of a minimum (unit-capacity) (s,t)-cut: edges from the
    source-side set reached in the final residual graph to the rest. *)
