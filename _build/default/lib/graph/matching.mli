(** Maximum bipartite matching (Hopcroft–Karp).

    The lower-bound adversary of Section 8 needs, after the double
    pigeonhole, a perfect matching between [k] left-star leaves and [k]
    right-star leaves whose candidate sets all hit the same α-subset [S'];
    Hall's criterion guarantees it exists and this module finds it. *)

val maximum :
  left:int -> right:int -> (int -> int list) -> (int * int) array
(** [maximum ~left ~right adj] computes a maximum matching in the bipartite
    graph with left vertices [0..left-1], right vertices [0..right-1], and
    [adj l] listing the right neighbours of left vertex [l].  Returns the
    matched pairs [(l, r)].  O(E·√V). *)
