let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.fold_edges
    (fun _ u v cap () ->
      if cap = 1.0 then Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)
      else Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v cap))
    g ();
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let lines =
    List.filter
      (fun line ->
        let line = String.trim line in
        line <> "" && not (String.length line > 0 && line.[0] = '#'))
      (List.map String.trim lines)
  in
  match lines with
  | [] -> failwith "Gio.of_string: empty input"
  | header :: rest ->
      let n =
        match String.split_on_char ' ' header with
        | [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some n when n > 0 -> n
            | _ -> failwith "Gio.of_string: bad vertex count")
        | _ -> failwith "Gio.of_string: expected 'n <count>' header"
      in
      let b = Graph.Builder.create n in
      List.iter
        (fun line ->
          let fields =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          in
          match fields with
          | [ u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v -> ignore (Graph.Builder.add_edge b u v)
              | _ -> failwith "Gio.of_string: bad edge line")
          | [ u; v; cap ] -> (
              match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt cap) with
              | Some u, Some v, Some cap -> ignore (Graph.Builder.add_edge ~cap b u v)
              | _ -> failwith "Gio.of_string: bad edge line")
          | _ -> failwith "Gio.of_string: bad edge line")
        rest;
      Graph.Builder.build b

let to_dot ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph G {\n";
  (match labels with
  | Some names ->
      Array.iteri
        (fun i name -> Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" i name))
        names
  | None -> ());
  Graph.fold_edges
    (fun _ u v _ () -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf
