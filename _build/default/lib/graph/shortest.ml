let bfs_dist g src =
  let dist = Array.make (Graph.n g) max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (_, w) ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.adj g v)
  done;
  dist

let bfs_path g src dst =
  if src = dst then Some (Path.trivial src)
  else begin
    let pred = Array.make (Graph.n g) (-1) in
    let seen = Array.make (Graph.n g) false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun (e, w) ->
          if not seen.(w) then begin
            seen.(w) <- true;
            pred.(w) <- e;
            if w = dst then found := true;
            Queue.add w queue
          end)
        (Graph.adj g v)
    done;
    if not !found then None
    else begin
      let rec collect v acc =
        if v = src then acc
        else
          let e = pred.(v) in
          collect (Graph.other_end g e v) (e :: acc)
      in
      let edge_ids = Array.of_list (collect dst []) in
      Some (Path.of_edges g ~src ~dst edge_ids)
    end
  end

let dijkstra g ~weight src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          Array.iter
            (fun (e, w) ->
              if not settled.(w) then begin
                let we = weight e in
                if we < 0.0 then invalid_arg "Shortest.dijkstra: negative edge weight";
                let nd = d +. we in
                if nd < dist.(w) then begin
                  dist.(w) <- nd;
                  pred.(w) <- e;
                  Heap.push heap nd w
                end
              end)
            (Graph.adj g v)
        end;
        loop ()
  in
  loop ();
  (dist, pred)

let path_of_pred g ~src ~dst pred =
  if src = dst then Some (Path.trivial src)
  else if pred.(dst) < 0 then None
  else begin
    let rec collect v acc =
      if v = src then acc
      else
        let e = pred.(v) in
        collect (Graph.other_end g e v) (e :: acc)
    in
    let edge_ids = Array.of_list (collect dst []) in
    Some (Path.of_edges g ~src ~dst edge_ids)
  end

let dijkstra_path g ~weight src dst =
  let _, pred = dijkstra g ~weight src in
  path_of_pred g ~src ~dst pred

let hop_limited_path g ~weight ~max_hops src dst =
  if src = dst then Some (Path.trivial src)
  else if max_hops <= 0 then None
  else begin
    let n = Graph.n g in
    (* dist.(k).(v) = min weight of a walk src→v with at most k hops.  The
       per-level predecessor edge makes reconstruction hop-bounded even in
       the presence of zero-weight edges (a flat pred array could cycle). *)
    let dist = Array.make_matrix (max_hops + 1) n infinity in
    let pred = Array.make_matrix (max_hops + 1) n (-1) in
    dist.(0).(src) <- 0.0;
    for k = 1 to max_hops do
      Array.blit dist.(k - 1) 0 dist.(k) 0 n;
      Array.iter
        (fun (e : Graph.edge) ->
          let we = weight e.id in
          if we < 0.0 then invalid_arg "Shortest.hop_limited_path: negative edge weight";
          if dist.(k - 1).(e.u) +. we < dist.(k).(e.v) then begin
            dist.(k).(e.v) <- dist.(k - 1).(e.u) +. we;
            pred.(k).(e.v) <- e.id
          end;
          if dist.(k - 1).(e.v) +. we < dist.(k).(e.u) then begin
            dist.(k).(e.u) <- dist.(k - 1).(e.v) +. we;
            pred.(k).(e.u) <- e.id
          end)
        (Graph.edges g)
    done;
    if dist.(max_hops).(dst) = infinity then None
    else begin
      (* Walk levels downward: a [-1] predecessor means the value was
         carried over from the previous level. *)
      let rec collect v k acc =
        if v = src && dist.(k).(v) = 0.0 && pred.(k).(v) = -1 then acc
        else if pred.(k).(v) = -1 then collect v (k - 1) acc
        else
          let e = pred.(k).(v) in
          collect (Graph.other_end g e v) (k - 1) (e :: acc)
      in
      let edge_ids = Array.of_list (collect dst max_hops []) in
      let walk = Path.of_edges g ~src ~dst edge_ids in
      Some (Path.simplify g walk)
    end
  end

let eccentricity g v =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0 (bfs_dist g v)

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !best then best := e
  done;
  !best

let all_pairs_hops g = Array.init (Graph.n g) (fun s -> bfs_dist g s)
