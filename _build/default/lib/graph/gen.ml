module Rng = Sso_prng.Rng

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: dimension must be >= 1";
  let n = 1 lsl d in
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then ignore (Graph.Builder.add_edge b v w)
    done
  done;
  Graph.Builder.build b

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid: sides must be >= 1";
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.Builder.add_edge b (id r c) (id r (c + 1)));
      if r + 1 < rows then ignore (Graph.Builder.add_edge b (id r c) (id (r + 1) c))
    done
  done;
  Graph.Builder.build b

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: sides must be >= 3";
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore (Graph.Builder.add_edge b (id r c) (id r ((c + 1) mod cols)));
      ignore (Graph.Builder.add_edge b (id r c) (id ((r + 1) mod rows) c))
    done
  done;
  Graph.Builder.build b

let complete n =
  if n < 2 then invalid_arg "Gen.complete: need >= 2 vertices";
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.Builder.add_edge b u v)
    done
  done;
  Graph.Builder.build b

let star n =
  if n < 1 then invalid_arg "Gen.star: need >= 1 leaf";
  let b = Graph.Builder.create (n + 1) in
  for leaf = 1 to n do
    ignore (Graph.Builder.add_edge b 0 leaf)
  done;
  Graph.Builder.build b

let path_graph n =
  if n < 2 then invalid_arg "Gen.path_graph: need >= 2 vertices";
  let b = Graph.Builder.create n in
  for v = 0 to n - 2 do
    ignore (Graph.Builder.add_edge b v (v + 1))
  done;
  Graph.Builder.build b

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need >= 3 vertices";
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    ignore (Graph.Builder.add_edge b v ((v + 1) mod n))
  done;
  Graph.Builder.build b

let erdos_renyi rng n p =
  if n < 2 then invalid_arg "Gen.erdos_renyi: need >= 2 vertices";
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Gen.erdos_renyi: p out of range";
  let rec attempt tries =
    if tries > 1000 then
      invalid_arg "Gen.erdos_renyi: could not draw a connected graph (p too small?)";
    let b = Graph.Builder.create n in
    let any = ref false in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.float rng < p then begin
          ignore (Graph.Builder.add_edge b u v);
          any := true
        end
      done
    done;
    if not !any then attempt (tries + 1)
    else
      let g = Graph.Builder.build b in
      if Graph.is_connected g then g else attempt (tries + 1)
  in
  attempt 0

let random_regular rng n d =
  if d < 3 || d >= n then invalid_arg "Gen.random_regular: need 3 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n * d must be even";
  (* Configuration model: pair up d stubs per vertex, reject self-loops and
     multi-edges, retry.  For d >= 3 the success probability is constant. *)
  let rec attempt tries =
    if tries > 2000 then
      invalid_arg "Gen.random_regular: rejection sampling failed (d too large?)";
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    Rng.shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let ok = ref true in
    let pairs = ref [] in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        pairs := (u, v) :: !pairs;
        i := !i + 2
      end
    done;
    if not !ok then attempt (tries + 1)
    else begin
      let b = Graph.Builder.create n in
      List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge b u v)) !pairs;
      let g = Graph.Builder.build b in
      if Graph.is_connected g then g else attempt (tries + 1)
    end
  in
  attempt 0

let two_cliques n =
  if n < 2 then invalid_arg "Gen.two_cliques: need >= 2 vertices per clique";
  let b = Graph.Builder.create (2 * n) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.Builder.add_edge b u v);
      ignore (Graph.Builder.add_edge b (n + u) (n + v))
    done
  done;
  for i = 0 to n - 1 do
    ignore (Graph.Builder.add_edge b i (n + i))
  done;
  Graph.Builder.build b

type c_graph = {
  c_graph : Graph.t;
  c_center1 : int;
  c_leaves1 : int array;
  c_center2 : int;
  c_leaves2 : int array;
  c_middles : int array;
}

(* Vertex layout for C(n,k): center1 = 0, leaves1 = 1..n,
   center2 = n+1, leaves2 = n+2..2n+1, middles = 2n+2..2n+1+k. *)
let c_graph_into b ~offset n k =
  let center1 = offset in
  let leaves1 = Array.init n (fun i -> offset + 1 + i) in
  let center2 = offset + n + 1 in
  let leaves2 = Array.init n (fun i -> offset + n + 2 + i) in
  let middles = Array.init k (fun i -> offset + (2 * n) + 2 + i) in
  Array.iter (fun leaf -> ignore (Graph.Builder.add_edge b center1 leaf)) leaves1;
  Array.iter (fun leaf -> ignore (Graph.Builder.add_edge b center2 leaf)) leaves2;
  Array.iter
    (fun mid ->
      ignore (Graph.Builder.add_edge b center1 mid);
      ignore (Graph.Builder.add_edge b mid center2))
    middles;
  (center1, leaves1, center2, leaves2, middles)

let c_graph n k =
  if n < 1 || k < 1 then invalid_arg "Gen.c_graph: need n >= 1 and k >= 1";
  let b = Graph.Builder.create ((2 * n) + 2 + k) in
  let c_center1, c_leaves1, c_center2, c_leaves2, c_middles =
    c_graph_into b ~offset:0 n k
  in
  { c_graph = Graph.Builder.build b; c_center1; c_leaves1; c_center2; c_leaves2; c_middles }

type c_graph_view = {
  v_center1 : int;
  v_leaves1 : int array;
  v_center2 : int;
  v_leaves2 : int array;
  v_middles : int array;
}

type g_graph = { g_graph : Graph.t; g_copies : (int * c_graph_view) list }

let log2_floor n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let g_graph n =
  if n < 2 then invalid_arg "Gen.g_graph: need n >= 2";
  let amax = max 1 (log2_floor n) in
  let k_of alpha =
    let k = int_of_float (Float.pow (float_of_int n) (1.0 /. (2.0 *. float_of_int alpha))) in
    max 1 k
  in
  let sizes = List.init amax (fun i -> (2 * n) + 2 + k_of (i + 1)) in
  let total = List.fold_left ( + ) 0 sizes in
  let b = Graph.Builder.create total in
  let offset = ref 0 in
  let copies =
    List.init amax (fun i ->
        let alpha = i + 1 in
        let v_center1, v_leaves1, v_center2, v_leaves2, v_middles =
          c_graph_into b ~offset:!offset n (k_of alpha)
        in
        offset := !offset + (2 * n) + 2 + k_of alpha;
        (alpha, { v_center1; v_leaves1; v_center2; v_leaves2; v_middles }))
  in
  (* Chain consecutive copies with a bridge between leaf vertices. *)
  let rec bridge = function
    | (_, a) :: ((_, b') :: _ as rest) ->
        ignore (Graph.Builder.add_edge b a.v_leaves2.(0) b'.v_leaves1.(0));
        bridge rest
    | _ -> ()
  in
  bridge copies;
  { g_graph = Graph.Builder.build b; g_copies = copies }

let multi_path lens =
  if lens = [] then invalid_arg "Gen.multi_path: need at least one path";
  List.iter (fun l -> if l < 1 then invalid_arg "Gen.multi_path: lengths must be >= 1") lens;
  let internal = List.fold_left (fun acc l -> acc + (l - 1)) 0 lens in
  let b = Graph.Builder.create (2 + internal) in
  let next = ref 2 in
  List.iter
    (fun l ->
      if l = 1 then ignore (Graph.Builder.add_edge b 0 1)
      else begin
        let prev = ref 0 in
        for _ = 1 to l - 1 do
          ignore (Graph.Builder.add_edge b !prev !next);
          prev := !next;
          incr next
        done;
        ignore (Graph.Builder.add_edge b !prev 1)
      end)
    lens;
  Graph.Builder.build b

let abilene () =
  let cities =
    [|
      "Seattle"; "Sunnyvale"; "LosAngeles"; "Denver"; "KansasCity"; "Houston";
      "Chicago"; "Indianapolis"; "Atlanta"; "WashingtonDC"; "NewYork";
    |]
  in
  let links =
    [
      (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 6); (5, 8);
      (6, 7); (6, 10); (7, 8); (8, 9); (9, 10);
    ]
  in
  let b = Graph.Builder.create (Array.length cities) in
  List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge ~cap:10.0 b u v)) links;
  (Graph.Builder.build b, cities)

let fat_tree k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Gen.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  (* Layout: cores [0, cores), then pod p's aggregation switches
     [cores + p*k, cores + p*k + half) and edge switches
     [cores + p*k + half, cores + (p+1)*k). *)
  let n = cores + (k * k) in
  let b = Graph.Builder.create n in
  for p = 0 to k - 1 do
    let agg i = cores + (p * k) + i in
    let edge i = cores + (p * k) + half + i in
    (* Full bipartite pod fabric. *)
    for a = 0 to half - 1 do
      for e = 0 to half - 1 do
        ignore (Graph.Builder.add_edge b (agg a) (edge e))
      done
    done;
    (* Aggregation switch a connects to core group a. *)
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        ignore (Graph.Builder.add_edge b (agg a) ((a * half) + c))
      done
    done
  done;
  Graph.Builder.build b

let butterfly d =
  if d < 1 then invalid_arg "Gen.butterfly: dimension must be >= 1";
  let rows = 1 lsl d in
  let id level row = (level * rows) + row in
  let b = Graph.Builder.create ((d + 1) * rows) in
  for level = 0 to d - 1 do
    for row = 0 to rows - 1 do
      ignore (Graph.Builder.add_edge b (id level row) (id (level + 1) row));
      ignore (Graph.Builder.add_edge b (id level row) (id (level + 1) (row lxor (1 lsl level))))
    done
  done;
  Graph.Builder.build b

let de_bruijn d =
  if d < 2 then invalid_arg "Gen.de_bruijn: dimension must be >= 2";
  let n = 1 lsl d in
  let b = Graph.Builder.create n in
  let seen = Hashtbl.create (2 * n) in
  for v = 0 to n - 1 do
    List.iter
      (fun w ->
        if v <> w then begin
          let key = (min v w, max v w) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            ignore (Graph.Builder.add_edge b v w)
          end
        end)
      [ 2 * v mod n; ((2 * v) + 1) mod n ]
  done;
  Graph.Builder.build b

let b4 () =
  let sites =
    [|
      "US-West1"; "US-West2"; "US-Central"; "US-East1"; "US-East2"; "Europe1";
      "Europe2"; "Europe3"; "Asia1"; "Asia2"; "Asia3"; "SouthAmerica";
    |]
  in
  let links =
    [
      (0, 1); (0, 2); (0, 8); (1, 2); (1, 9); (2, 3); (2, 4); (3, 4); (3, 5);
      (4, 5); (4, 11); (5, 6); (5, 7); (6, 7); (6, 8); (7, 10); (8, 9);
      (9, 10); (10, 11);
    ]
  in
  let b = Graph.Builder.create (Array.length sites) in
  List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge ~cap:10.0 b u v)) links;
  (Graph.Builder.build b, sites)

let with_unit_caps g =
  let b = Graph.Builder.create (Graph.n g) in
  Graph.fold_edges (fun _ u v _ () -> ignore (Graph.Builder.add_edge ~cap:1.0 b u v)) g ();
  Graph.Builder.build b
