(** Graph generators for the experiments.

    Includes the classical topologies the oblivious-routing literature
    studies (hypercubes, grids, tori, expanders), the gadgets the paper's
    arguments use (two cliques joined by a sparse bundle from Section 2.1,
    the lower-bound graphs [C(n,k)] and [G(n)] of Section 8), and a small
    WAN topology for the traffic-engineering experiment. *)

val hypercube : int -> Graph.t
(** [hypercube d] is the [2^d]-vertex boolean hypercube; vertex ids are the
    bit patterns. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: vertex [(r, c)] has id [r * cols + c]. *)

val torus : int -> int -> Graph.t
(** Like {!grid} with wrap-around edges.  Requires both sides ≥ 3 so no
    duplicate wrap edges collapse. *)

val complete : int -> Graph.t

val star : int -> Graph.t
(** [star n]: center [0] joined to leaves [1..n]. *)

val path_graph : int -> Graph.t
(** Path on [n] vertices [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t

val erdos_renyi : Sso_prng.Rng.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p]: G(n, p) conditioned on connectivity (resampled
    until connected; [p] should be comfortably above the connectivity
    threshold). *)

val random_regular : Sso_prng.Rng.t -> int -> int -> Graph.t
(** [random_regular rng n d]: a random (near-)d-regular simple connected
    graph via the configuration model with rejection; used as an expander.
    Requires [n * d] even, [d ≥ 3], [d < n]. *)

val two_cliques : int -> Graph.t
(** Section 2.1's gadget: two [n]-cliques [{0..n-1}] and [{n..2n-1}]
    connected by the [n] edges [(i, n+i)].  The min cut between opposite
    clique vertices is [n], so [α]-sparsity without the [cut_G] term cannot
    be competitive on heavy single-pair demands. *)

type c_graph = {
  c_graph : Graph.t;
  c_center1 : int;
  c_leaves1 : int array;
  c_center2 : int;
  c_leaves2 : int array;
  c_middles : int array;
}
(** The lower-bound gadget [C(n,k)] (Fig. 1): two [n+1]-vertex stars whose
    centers are joined through [k] middle vertices. *)

val c_graph : int -> int -> c_graph
(** [c_graph n k] builds [C(n,k)]: [2n + 2 + k] vertices, [2n + 2k]
    edges. *)

type g_graph = { g_graph : Graph.t; g_copies : (int * c_graph_view) list }

and c_graph_view = {
  v_center1 : int;
  v_leaves1 : int array;
  v_center2 : int;
  v_leaves2 : int array;
  v_middles : int array;
}
(** [G(n)] from Lemma 8.2: one copy of [C(n, ⌊n^(1/2α)⌋)] per
    [α ∈ [⌊log n⌋]], chained with bridges.  [g_copies] maps each [α] to the
    vertex ids of its copy. *)

val g_graph : int -> g_graph

val multi_path : int list -> Graph.t
(** [multi_path lens] joins terminals [0] and [1] by internally-disjoint
    paths, one of each length in [lens] (each length ≥ 1; length 1 adds a
    parallel edge).  This is the gadget where congestion-only optimization
    ruins completion time (Section 7 / [GHZ21]): short paths are scarce,
    long paths are plentiful. *)

val abilene : unit -> Graph.t * string array
(** An Abilene-like 11-node US research WAN with 14 links (uniform
    capacity), plus city labels, for the SMORE-style traffic-engineering
    experiment. *)

val fat_tree : int -> Graph.t
(** [fat_tree k] for even [k ≥ 2]: the k-ary data-center fat-tree
    (k²/4 core switches, k pods of k aggregation+edge switches; hosts are
    omitted — routing is between edge switches).  Vertex layout: cores
    first, then per pod [k/2] aggregation then [k/2] edge switches. *)

val butterfly : int -> Graph.t
(** [butterfly d]: the d-dimensional wrapped butterfly on [(d+1)·2^d]
    vertices — vertex [(level, row)] has id [level·2^d + row]; level [l]
    connects to level [l+1] straight and crossing bit [l]. *)

val de_bruijn : int -> Graph.t
(** [de_bruijn d]: the undirected de Bruijn graph on [2^d] vertices;
    [v] is adjacent to [2v mod 2^d] and [2v+1 mod 2^d] (parallel edges
    collapsed, self-loops dropped). *)

val b4 : unit -> Graph.t * string array
(** A B4-like 12-site inter-datacenter WAN (19 links, uniform capacity)
    with site labels — a second realistic topology for the
    traffic-engineering experiments. *)

val with_unit_caps : Graph.t -> Graph.t
(** Copy of the graph with every capacity reset to 1. *)
