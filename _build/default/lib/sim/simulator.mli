(** Store-and-forward packet simulation.

    The paper's completion-time objective (Section 7) rests on the classic
    scheduling fact [LMR94]: packets routed on fixed paths with congestion
    [c] and dilation [d] can all be delivered in [O(c + d)] synchronous
    steps.  This module makes that operational: it simulates the
    packet-by-packet delivery of an integral path assignment and reports
    the actual makespan, so experiments can check that minimizing
    congestion + dilation really minimizes delivery time — the reason the
    objective matters to traffic engineering [KYY+18].

    Model: time proceeds in synchronous steps.  Each packet occupies a
    vertex and follows its preassigned path.  In one step an edge transmits
    at most [⌊cap⌋] packets (at least 1) {e per direction}.  Contending
    packets are ordered by the queue discipline. *)

type discipline =
  | Fifo  (** Earlier-injected packet first (ties by packet id). *)
  | Random_rank of Sso_prng.Rng.t
      (** Each packet draws one random rank at injection; highest rank
          first at every edge — the random-delay scheme behind the
          O(c + d) bound of [LMR94]. *)
  | Longest_remaining
      (** Most hops still to travel first — a practical heuristic. *)

type stats = {
  makespan : int;  (** Steps until the last packet arrived. *)
  delivered : int;  (** Packets delivered (all of them on success). *)
  max_queue : int;
      (** Largest number of packets simultaneously waiting to cross one
          (edge, direction). *)
  total_waits : int;
      (** Total packet-steps spent waiting (0 for uncontended traffic). *)
}

val run :
  ?discipline:discipline ->
  ?max_steps:int ->
  Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> stats
(** Simulate the assignment to completion.  Packets with empty paths
    ([s = t]) are delivered at time 0.  [max_steps] (default
    [64 · (c·d + c + d + 1)], far above any schedule this model admits)
    guards against bugs — exceeding it raises [Failure].
    [discipline] defaults to {!Fifo}. *)

val lower_bound : Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> int
(** [max(dilation, ⌈max-edge congestion⌉)] — no schedule can beat it. *)

val upper_bound_cd : Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> int
(** The trivial schedule bound [c·d + d]: every packet waits at most [c-1]
    steps per hop. *)

(** {1 Timed injection}

    The one-shot model above measures makespan; traffic engineering also
    cares about per-packet {e latency} under sustained load.  A timed run
    injects each packet at its release step and reports latency
    statistics (arrival − release − hops = queueing delay). *)

type timed_packet = {
  pair : int * int;
  route : Sso_graph.Path.t;
  release : int;  (** First step at which the packet may move (≥ 0). *)
}

type load_stats = {
  finish_time : int;  (** Step at which the last packet arrived. *)
  packets : int;
  mean_latency : float;  (** Mean (arrival − release). *)
  p99_latency : float;
  mean_queueing : float;  (** Mean (latency − hops): pure waiting. *)
  peak_queue : int;
}

val run_timed :
  ?discipline:discipline ->
  ?max_steps:int ->
  Sso_graph.Graph.t -> timed_packet list -> load_stats
(** Simulate to completion.  [max_steps] defaults to a generous bound
    derived from total load and path lengths; exceeding it raises
    [Failure]. *)
