lib/sim/simulator.mli: Sso_flow Sso_graph Sso_prng
