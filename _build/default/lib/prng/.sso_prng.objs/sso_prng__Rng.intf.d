lib/prng/rng.mli:
