(** Hop-constrained oblivious routing — the [GHZ21] substitute.

    [GHZ21] builds, for every hop budget [h], an oblivious routing whose
    paths have [O(polylog)] hop-stretch over [h] while staying competitive
    with the best dilation-[h] routing.  Constructing their hop-constrained
    expander hierarchies is out of scope; per the substitution rule we
    build the closest synthetic equivalent that exercises the same code
    path downstream (sampling few paths from a hop-bounded distribution and
    adapting rates under the congestion + dilation objective):

    for each pair we extract up to [paths_per_pair] simple paths of at most
    [stretch · h] hops by repeated hop-limited shortest-path queries under
    multiplicatively growing penalties on already-used edges (so the paths
    are capacity-diverse), and spread uniformly over them. *)

val routing :
  ?stretch:int ->
  ?paths_per_pair:int ->
  max_hops:int ->
  Sso_graph.Graph.t ->
  Oblivious.t
(** [routing ~max_hops g]: every path has at most [stretch · max_hops] hops
    ([stretch] defaults to 2, [paths_per_pair] to 8).
    {!Oblivious.distribution} raises [Invalid_argument] for pairs that are
    unreachable within the budget — callers pick [max_hops] at least the
    pair's hop distance (Lemma 2.8's ladder does). *)
