(** Räcke-style oblivious routing via multiplicative weights over FRT
    trees.

    [Räc08] proves every graph admits an O(log n)-competitive oblivious
    routing and reduces its construction to distance-preserving tree
    embeddings.  We implement the practical form of that reduction (the one
    SMORE [KYY+18] ships): iteratively sample FRT trees, where each round's
    edge lengths exponentially penalize edges the earlier trees overloaded
    (load measured by routing every edge's capacity through the tree), and
    take the uniform mixture of the sampled trees as the routing.

    This is the substitution documented in DESIGN.md §3: the object has the
    same shape as Räcke's (a distribution over decomposition trees) and is
    empirically polylog-competitive on our testbed, which suffices because
    Theorem 5.3 is stated relative to the base routing [R]. *)

val routing : Sso_prng.Rng.t -> ?trees:int -> Sso_graph.Graph.t -> Oblivious.t
(** Build the routing from [trees] sampled decompositions (default
    [2·⌈log₂ n⌉ + 4]).  Construction cost: [trees] FRT builds plus one
    capacity-routing pass per tree. *)

val tree_loads : Sso_graph.Graph.t -> Frt.t -> float array
(** Relative load per edge when each graph edge routes its capacity along
    the tree path between its endpoints — the penalty signal of the MWU
    loop, exposed for tests and diagnostics. *)
