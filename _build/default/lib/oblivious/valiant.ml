module Graph = Sso_graph.Graph
module Path = Sso_graph.Path

let dimension_of g =
  let n = Graph.n g in
  let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v / 2) in
  let d = log2 0 n in
  if 1 lsl d <> n then invalid_arg "Valiant: vertex count is not a power of two";
  d

let bitfix_vertices d s t =
  let rec go v acc bit =
    if bit >= d then List.rev acc
    else
      let diff = (v lxor t) land (1 lsl bit) in
      if diff = 0 then go v acc (bit + 1)
      else
        let v' = v lxor (1 lsl bit) in
        go v' (v' :: acc) (bit + 1)
  in
  go s [ s ] 0

let bitfix_path g s t =
  let d = dimension_of g in
  Path.of_vertices g (bitfix_vertices d s t)

let routing g =
  (* Validate that g is a hypercube before first use. *)
  let (_ : int) = dimension_of g in
  let n = Graph.n g in
  let generate s t =
    List.init n (fun r ->
        let through =
          Path.concat g (bitfix_path g s r) (bitfix_path g r t)
        in
        (1.0 /. float_of_int n, through))
  in
  Oblivious.make ~name:"valiant" g generate

let generalized ~base =
  let g = Oblivious.graph base in
  let n = Graph.n g in
  let leg a b =
    if a = b then Path.trivial a else snd (List.hd (Oblivious.distribution base a b))
  in
  let generate s t =
    List.init n (fun r ->
        (1.0 /. float_of_int n, Path.concat g (leg s r) (leg r t)))
  in
  Oblivious.make ~name:("valiant+" ^ Oblivious.name base) g generate
