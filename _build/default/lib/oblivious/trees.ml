module Tree = Sso_graph.Tree

let single g tree =
  Oblivious.make ~name:"tree" g (fun s t -> [ (1.0, Tree.path g tree s t) ])

let uniform rng ?(count = 8) g =
  if count <= 0 then invalid_arg "Trees.uniform: count must be positive";
  let forest = List.init count (fun _ -> Tree.wilson rng g) in
  let weight = 1.0 /. float_of_int count in
  Oblivious.make
    ~name:(Printf.sprintf "wilson-%d" count)
    g
    (fun s t -> List.map (fun tree -> (weight, Tree.path g tree s t)) forest)
