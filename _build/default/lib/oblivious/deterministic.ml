module Graph = Sso_graph.Graph
module Shortest = Sso_graph.Shortest

let ecube g =
  let generate s t = [ (1.0, Valiant.bitfix_path g s t) ] in
  Oblivious.make ~name:"ecube" g generate

let shortest_path g =
  let generate s t =
    match Shortest.bfs_path g s t with
    | Some p -> [ (1.0, p) ]
    | None -> invalid_arg "Deterministic.shortest_path: disconnected pair"
  in
  Oblivious.make ~name:"shortest-path" g generate

let xy_grid ~cols g =
  if cols <= 0 || Graph.n g mod cols <> 0 then
    invalid_arg "Deterministic.xy_grid: vertex count must be a multiple of cols";
  let generate s t =
    let sr = s / cols and sc = s mod cols in
    let tr = t / cols and tc = t mod cols in
    let row_walk =
      List.init (abs (tc - sc) + 1) (fun i ->
          (sr * cols) + sc + if tc >= sc then i else -i)
    in
    let col_walk =
      List.init (abs (tr - sr)) (fun i ->
          let step = i + 1 in
          (((if tr >= sr then sr + step else sr - step) * cols) + tc))
    in
    [ (1.0, Sso_graph.Path.of_vertices g (row_walk @ col_walk)) ]
  in
  Oblivious.make ~name:"xy-grid" g generate
