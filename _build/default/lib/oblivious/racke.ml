module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Rng = Sso_prng.Rng

let tree_loads g tree =
  let loads = Array.make (Graph.m g) 0.0 in
  Array.iter
    (fun (e : Graph.edge) ->
      let p = Frt.route tree e.u e.v in
      Array.iter (fun e' -> loads.(e') <- loads.(e') +. e.cap) p.Path.edges)
    (Graph.edges g);
  Array.mapi (fun e load -> load /. Graph.cap g e) loads

let default_trees g =
  let n = Graph.n g in
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) ((v + 1) / 2) in
  (2 * log2 0 n) + 4

let routing rng ?trees g =
  let count = match trees with Some c -> c | None -> default_trees g in
  if count <= 0 then invalid_arg "Racke.routing: need at least one tree";
  let m = Graph.m g in
  let cum = Array.make m 0.0 in
  (* Exponential penalties, normalized for stability; eta balances greed
     against diversity across the fixed number of rounds. *)
  let eta = 1.0 in
  let forest =
    List.init count (fun _ ->
        let max_cum = Array.fold_left Float.max 0.0 cum in
        let length e = Float.exp (eta *. (cum.(e) -. max_cum)) /. Graph.cap g e in
        let tree = Frt.build rng g ~length in
        let loads = tree_loads g tree in
        let peak = Array.fold_left Float.max 1e-12 loads in
        Array.iteri (fun e load -> cum.(e) <- cum.(e) +. (load /. peak)) loads;
        tree)
  in
  let weight = 1.0 /. float_of_int count in
  let generate s t = List.map (fun tree -> (weight, Frt.route tree s t)) forest in
  Oblivious.make ~name:"racke" g generate
