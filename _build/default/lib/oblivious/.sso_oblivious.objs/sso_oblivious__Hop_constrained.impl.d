lib/oblivious/hop_constrained.ml: Array List Oblivious Printf Sso_graph
