lib/oblivious/ksp.mli: Oblivious Sso_graph
