lib/oblivious/hop_constrained.mli: Oblivious Sso_graph
