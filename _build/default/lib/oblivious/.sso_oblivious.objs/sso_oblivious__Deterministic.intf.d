lib/oblivious/deterministic.mli: Oblivious Sso_graph
