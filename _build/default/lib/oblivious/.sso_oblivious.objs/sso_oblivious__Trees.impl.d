lib/oblivious/trees.ml: List Oblivious Printf Sso_graph
