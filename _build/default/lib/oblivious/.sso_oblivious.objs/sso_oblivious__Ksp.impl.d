lib/oblivious/ksp.ml: List Oblivious Printf Sso_graph
