lib/oblivious/racke.ml: Array Float Frt List Oblivious Sso_graph Sso_prng
