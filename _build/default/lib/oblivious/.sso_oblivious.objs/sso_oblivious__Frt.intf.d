lib/oblivious/frt.mli: Sso_graph Sso_prng
