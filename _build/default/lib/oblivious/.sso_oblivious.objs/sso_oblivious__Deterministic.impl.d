lib/oblivious/deterministic.ml: List Oblivious Sso_graph Valiant
