lib/oblivious/oblivious.ml: Array Hashtbl List Printf Sso_demand Sso_flow Sso_graph Sso_prng
