lib/oblivious/frt.ml: Array Float Hashtbl List Sso_graph Sso_prng
