lib/oblivious/racke.mli: Frt Oblivious Sso_graph Sso_prng
