lib/oblivious/valiant.mli: Oblivious Sso_graph
