lib/oblivious/oblivious.mli: Sso_demand Sso_flow Sso_graph Sso_prng
