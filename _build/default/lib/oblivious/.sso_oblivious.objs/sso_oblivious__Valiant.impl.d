lib/oblivious/valiant.ml: List Oblivious Sso_graph
