lib/oblivious/trees.mli: Oblivious Sso_graph Sso_prng
