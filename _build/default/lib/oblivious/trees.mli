(** Spanning-tree oblivious routings.

    Routing along a single spanning tree is the canonical {e bad}
    competitive oblivious routing on rich graphs — every pair's traffic is
    forced onto n−1 edges.  A uniform mixture over several random spanning
    trees is better but still far from Räcke quality.  These serve as the
    ablation bases for experiment E11: Theorem 5.3's guarantee is relative
    to the base routing R, so α-samples of a poor R stay poor — "sample
    from any {e competitive} oblivious routing" is load-bearing. *)

val single : Sso_graph.Graph.t -> Sso_graph.Tree.t -> Oblivious.t
(** Deterministic routing along one spanning tree. *)

val uniform : Sso_prng.Rng.t -> ?count:int -> Sso_graph.Graph.t -> Oblivious.t
(** Uniform mixture over [count] (default 8) independent uniformly random
    spanning trees (Wilson). *)
