(** k-shortest-path spread — the "traditional traffic engineering"
    baseline from the SMORE comparison [KYY+18].

    Each pair spreads uniformly over its [k] shortest paths (hop metric by
    default).  Unlike Räcke-style routings this ignores global capacity
    structure, which is exactly the weakness the SMORE experiment (E5)
    demonstrates. *)

val routing : ?weight:(int -> float) -> k:int -> Sso_graph.Graph.t -> Oblivious.t
(** [routing ~k g] spreads uniformly over the [k] shortest paths per pair
    (fewer when the graph has fewer simple paths).  [weight] defaults to
    hop count ([fun _ -> 1.0]). *)
