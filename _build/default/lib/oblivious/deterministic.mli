(** Deterministic (1-sparse) oblivious routings — the baselines the paper's
    lower-bound discussion contrasts against.

    A deterministic oblivious routing assigns a single fixed path per pair.
    [KKT91]: on the hypercube any such routing suffers congestion
    [Ω(√n / Δ)] on some permutation; {!ecube} realizes the classical
    dimension-order routing that exhibits this on bit-reversal and
    transpose demands (experiment E4). *)

val ecube : Sso_graph.Graph.t -> Oblivious.t
(** Dimension-order (bit-fixing) routing on a hypercube: the unique greedy
    path correcting address bits from lowest to highest. *)

val shortest_path : Sso_graph.Graph.t -> Oblivious.t
(** BFS shortest-path routing on any graph (ties broken by vertex order) —
    the generic deterministic baseline. *)

val xy_grid : cols:int -> Sso_graph.Graph.t -> Oblivious.t
(** Dimension-order ("XY") routing on a grid built by
    {!Sso_graph.Gen.grid}: first walk along the row to the target column,
    then along the column — the mesh analogue of e-cube, and the routing
    against which [HKL07] proved the grid semi-oblivious lower bound. *)
