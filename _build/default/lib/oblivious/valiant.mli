(** Valiant's trick on the hypercube [VB81].

    To route [s → t], pick a uniformly random intermediate vertex [r] and
    greedily bit-fix [s → r], then [r → t].  On any permutation demand the
    expected congestion of every edge is O(1), which makes this the
    textbook competitive oblivious routing for hypercubes and the base
    distribution for the paper's hypercube/permutation warm-up
    (Section 5.1).

    The distribution enumerates all [2^d] intermediates, so only use
    {!Oblivious.distribution} on moderate dimensions; {!Oblivious.sample}
    is what the α-sampler uses and is cheap. *)

val routing : Sso_graph.Graph.t -> Oblivious.t
(** [routing g] for [g] a hypercube built by {!Sso_graph.Gen.hypercube}
    (vertex ids are bit patterns).  @raise Invalid_argument if the vertex
    count is not a power of two. *)

val bitfix_path : Sso_graph.Graph.t -> int -> int -> Sso_graph.Path.t
(** Greedy bit-fixing path from [s] to [t] (correct lowest-index differing
    bit first) — the deterministic "e-cube" route. *)

val generalized : base:Oblivious.t -> Oblivious.t
(** Valiant's trick over an arbitrary deterministic base routing on any
    graph: route [s → r → t] through a uniformly random intermediate [r],
    with both legs taken from [base]'s (first) path.  Reduces to the
    classic hypercube trick when [base] is e-cube.  The per-pair support
    is Θ(n), so use on moderate graphs. *)
