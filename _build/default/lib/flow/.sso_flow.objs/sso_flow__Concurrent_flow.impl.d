lib/flow/concurrent_flow.ml: Array Float Hashtbl List Map Routing Sso_demand Sso_graph
