lib/flow/routing.mli: Map Sso_demand Sso_graph Sso_prng
