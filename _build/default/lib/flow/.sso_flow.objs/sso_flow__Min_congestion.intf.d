lib/flow/min_congestion.mli: Routing Sso_demand Sso_graph
