lib/flow/concurrent_flow.mli: Min_congestion Routing Sso_demand Sso_graph
