lib/flow/rounding.ml: Array Float Fun List Routing Sso_demand Sso_graph Sso_prng
