lib/flow/routing.ml: Array Float List Map Sso_demand Sso_graph Sso_prng
