lib/flow/rounding.mli: Routing Sso_demand Sso_graph Sso_prng
