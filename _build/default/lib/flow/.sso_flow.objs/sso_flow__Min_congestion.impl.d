lib/flow/min_congestion.ml: Array Float Fun Hashtbl List Map Routing Sso_demand Sso_graph Sso_lp
