module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Rng = Sso_prng.Rng

type assignment = ((int * int) * Path.t array) array

let round rng routing demand =
  if not (Demand.is_integral demand) then
    invalid_arg "Rounding.round: demand must be integral";
  let entries =
    Demand.fold
      (fun s t amount acc ->
        let count = int_of_float (Float.round amount) in
        let paths = Array.init count (fun _ -> Routing.sample_path rng routing s t) in
        ((s, t), paths) :: acc)
      demand []
  in
  Array.of_list entries

let demand_of assignment =
  Demand.of_list
    (Array.to_list
       (Array.map
          (fun ((s, t), paths) -> (s, t, float_of_int (Array.length paths)))
          assignment))

let to_routing assignment =
  Routing.make
    (List.filter_map
       (fun ((pair, paths) : (int * int) * Path.t array) ->
         if Array.length paths = 0 then None
         else Some (pair, Array.to_list (Array.map (fun p -> (1.0, p)) paths)))
       (Array.to_list assignment))

let edge_loads g assignment =
  let loads = Array.make (Graph.m g) 0.0 in
  Array.iter
    (fun (_, paths) ->
      Array.iter
        (fun (p : Path.t) ->
          Array.iter (fun e -> loads.(e) <- loads.(e) +. 1.0) p.Path.edges)
        paths)
    assignment;
  loads

let congestion g assignment =
  let loads = edge_loads g assignment in
  let best = ref 0.0 in
  Array.iteri
    (fun e load ->
      let c = load /. Graph.cap g e in
      if c > !best then best := c)
    loads;
  !best

let best_round ?(tries = 10) rng g routing demand =
  if tries <= 0 then invalid_arg "Rounding.best_round: tries must be positive";
  let rec go i best best_cong =
    if i >= tries then best
    else begin
      let a = round rng routing demand in
      let c = congestion g a in
      if c < best_cong then go (i + 1) a c else go (i + 1) best best_cong
    end
  in
  let first = round rng routing demand in
  go 1 first (congestion g first)

let local_search ?max_moves g ~candidates assignment =
  let assignment = Array.map (fun (pair, paths) -> (pair, Array.copy paths)) assignment in
  let total_packets =
    Array.fold_left (fun acc (_, paths) -> acc + Array.length paths) 0 assignment
  in
  let budget = match max_moves with Some b -> b | None -> 10 * max 1 total_packets in
  let loads = edge_loads g assignment in
  let cong_of e = loads.(e) /. Graph.cap g e in
  let max_cong () =
    let best = ref 0.0 in
    Array.iteri (fun e _ -> if cong_of e > !best then best := cong_of e) loads;
    !best
  in
  let apply_delta (p : Path.t) delta =
    Array.iter (fun e -> loads.(e) <- loads.(e) +. delta) p.Path.edges
  in
  (* Evaluate the max congestion over a set of edges after a hypothetical
     move; we only need to compare edges touched by the two paths plus the
     current maximum. *)
  let moved = ref 0 in
  let progress = ref true in
  while !progress && !moved < budget do
    progress := false;
    let current = max_cong () in
    (* Find one maximally congested edge. *)
    let hot = ref (-1) in
    Array.iteri
      (fun e _ -> if !hot < 0 && cong_of e >= current -. 1e-12 then hot := e)
      loads;
    if !hot >= 0 && current > 0.0 then begin
      let hot = !hot in
      (* Try to reroute some packet crossing the hot edge. *)
      let try_move () =
        Array.exists
          (fun ((s, t), paths) ->
            Array.exists
              (fun i ->
                let p = paths.(i) in
                if not (Path.mem_edge p hot) then false
                else begin
                  let alternatives = candidates s t in
                  let eval q =
                    (* Max congestion over edges of p and q after swap. *)
                    apply_delta p (-1.0);
                    apply_delta q 1.0;
                    let local = ref 0.0 in
                    Array.iter (fun e -> local := Float.max !local (cong_of e)) p.Path.edges;
                    Array.iter (fun e -> local := Float.max !local (cong_of e)) q.Path.edges;
                    apply_delta q (-1.0);
                    apply_delta p 1.0;
                    !local
                  in
                  let best =
                    List.fold_left
                      (fun acc q ->
                        if Path.equal q p then acc
                        else
                          let v = eval q in
                          match acc with
                          | Some (bv, _) when bv <= v -> acc
                          | _ -> Some (v, q))
                      None alternatives
                  in
                  match best with
                  | Some (v, q) when v < cong_of hot -. 1e-12 ->
                      apply_delta p (-1.0);
                      apply_delta q 1.0;
                      paths.(i) <- q;
                      incr moved;
                      true
                  | _ -> false
                end)
              (Array.init (Array.length paths) Fun.id))
          assignment
      in
      if try_move () then progress := true
    end
  done;
  assignment
