(** Integral routings: randomized rounding (Lemma 6.3) plus local search.

    The paper's rounding lemma: for any routing [R] and integral demand
    [d], there is a routing on [supp(R)] that is integral on [d] with
    congestion at most [2·cong(R,d) + 3·ln m].  The constructive proof
    samples [d(s,t)] paths per pair from [R(s,t)]; we implement exactly
    that, expose a best-of-[tries] variant (the lemma is existential, so we
    are allowed to retry), and a greedy local search that moves single
    packets off the most congested edge, which tightens constants in
    practice. *)

type assignment = ((int * int) * Sso_graph.Path.t array) array
(** One entry per demanded pair; the array holds one path per packet
    (so its length is [d(s,t)], which must be a whole number). *)

val round :
  Sso_prng.Rng.t -> Routing.t -> Sso_demand.Demand.t -> assignment
(** Sample [d(s,t)] paths i.i.d. from [R(s,t)] for each pair (the rounding
    of Lemma 6.3).  @raise Invalid_argument if the demand is not integral
    or a demanded pair is missing from the routing. *)

val to_routing : assignment -> Routing.t
(** The induced routing (weight of a path = its packet count / d(s,t)).
    It is integral on the assignment's demand by construction. *)

val demand_of : assignment -> Sso_demand.Demand.t

val congestion : Sso_graph.Graph.t -> assignment -> float
(** Max edge congestion of the assignment (load / capacity). *)

val best_round :
  ?tries:int ->
  Sso_prng.Rng.t -> Sso_graph.Graph.t -> Routing.t -> Sso_demand.Demand.t -> assignment
(** Repeat {!round} [tries] times (default 10) and keep the least congested
    draw. *)

val local_search :
  ?max_moves:int ->
  Sso_graph.Graph.t ->
  candidates:(int -> int -> Sso_graph.Path.t list) ->
  assignment -> assignment
(** Greedy improvement: repeatedly take a packet crossing a maximally
    congested edge and move it to the candidate path minimizing the
    resulting maximum congestion over that edge's alternatives; stop at a
    local optimum or after [max_moves] (default 10·packets) moves.  Only
    candidate paths for the packet's own pair are considered, so the result
    stays within the path system. *)
