(** Concentration bounds (Appendix B) and summary statistics.

    The Chernoff forms below are exactly the two the paper invokes for
    negatively-associated 0/1 sums (Lemmas B.5 and B.6); the test suite
    checks empirical tails of the α-sampling process against them, which
    is the finite-n analogue of the negative-association argument in
    Lemma 5.14. *)

val chernoff_upper_mult : mu:float -> delta:float -> float
(** Lemma B.5: [P(X ≥ δμ) ≤ exp(-δμ·ln(δ)/4)] for [δ ≥ 2]. *)

val chernoff_upper_add : mu:float -> delta:float -> float
(** Lemma B.6: [P(X ≥ (1+δ)μ) ≤ exp(-δ²μ/(2+δ))] for [δ > 0]. *)

val mean : float array -> float

val variance : float array -> float
(** Population variance; 0 for arrays with < 2 elements. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p ∈ [0,100]]; nearest-rank on a sorted copy.
    @raise Invalid_argument on empty input or out-of-range [p]. *)

val median : float array -> float

val max_value : float array -> float

val min_value : float array -> float

val empirical_tail : float array -> float -> float
(** Fraction of samples ≥ the threshold. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples.  @raise Invalid_argument if any
    sample is ≤ 0 or the array is empty. *)
