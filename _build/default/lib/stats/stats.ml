let chernoff_upper_mult ~mu ~delta =
  if delta < 2.0 then invalid_arg "Stats.chernoff_upper_mult: requires delta >= 2";
  if mu < 0.0 then invalid_arg "Stats.chernoff_upper_mult: mean must be non-negative";
  Float.exp (-0.25 *. delta *. mu *. Float.log delta)

let chernoff_upper_add ~mu ~delta =
  if delta <= 0.0 then invalid_arg "Stats.chernoff_upper_add: requires delta > 0";
  if mu < 0.0 then invalid_arg "Stats.chernoff_upper_add: mean must be non-negative";
  Float.exp (-.(delta *. delta *. mu) /. (2.0 +. delta))

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  if Array.length xs < 2 then 0.0
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (Array.length xs)
  end

let stddev xs = Float.sqrt (variance xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile xs 50.0

let max_value xs =
  if Array.length xs = 0 then invalid_arg "Stats.max_value: empty array";
  Array.fold_left Float.max neg_infinity xs

let min_value xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_value: empty array";
  Array.fold_left Float.min infinity xs

let empirical_tail xs threshold =
  if Array.length xs = 0 then invalid_arg "Stats.empirical_tail: empty array";
  let hits = Array.fold_left (fun acc x -> if x >= threshold then acc + 1 else acc) 0 xs in
  float_of_int hits /. float_of_int (Array.length xs)

let geometric_mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: samples must be positive";
        acc +. Float.log x)
      0.0 xs
  in
  Float.exp (log_sum /. float_of_int (Array.length xs))
