lib/stats/stats.mli:
