lib/lp/simplex.mli:
