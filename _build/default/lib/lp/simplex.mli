(** Dense two-phase primal simplex.

    This is the exact solver behind the min-congestion routing LPs
    (Stage 4 of the semi-oblivious pipeline and the offline optimum on
    small instances).  Problems are given in the standard form

    {v minimize c·x  subject to  A_i · x (≤|=|≥) b_i,  x ≥ 0 v}

    The implementation is a textbook tableau method with Bland's
    anti-cycling rule and a small numerical tolerance; it targets the
    modest problem sizes arising in experiments (hundreds of variables),
    not industrial scale.  The approximate MWU solver in [lib/flow] covers
    large instances and is cross-validated against this one in tests. *)

type relation = Le | Eq | Ge

type constr = { coeffs : (int * float) list; relation : relation; rhs : float }
(** Sparse row: [coeffs] lists [(variable index, coefficient)]. *)

type problem = { num_vars : int; objective : (int * float) list; constraints : constr list }
(** Minimize [objective · x] over [x ≥ 0] subject to [constraints].
    Variable indices must lie in [0 .. num_vars-1]. *)

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : ?max_pivots:int -> problem -> outcome
(** Solve the problem.  [max_pivots] (default [200_000]) bounds total pivot
    steps across both phases; exceeding it raises [Failure], which on these
    problem sizes indicates a bug rather than a hard instance. *)

val maximize : ?max_pivots:int -> problem -> outcome
(** Convenience wrapper: maximize instead of minimize (the reported
    objective is the maximized value). *)
