type relation = Le | Eq | Ge

type constr = { coeffs : (int * float) list; relation : relation; rhs : float }

type problem = { num_vars : int; objective : (int * float) list; constraints : constr list }

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Tableau layout: [rows] is an m × (ncols + 1) matrix whose last column is
   the right-hand side; [basis.(i)] is the column basic in row i.  Column
   order: original variables, then slack/surplus columns, then artificial
   columns.  Both phases run the same pivot loop with different cost rows. *)

type tableau = {
  rows : float array array;
  basis : int array;
  ncols : int; (* columns excluding the rhs *)
  rhs : int; (* index of the rhs column = ncols *)
}

let pivot t ~row ~col =
  let prow = t.rows.(row) in
  let p = prow.(col) in
  for j = 0 to t.rhs do
    prow.(j) <- prow.(j) /. p
  done;
  Array.iteri
    (fun i r ->
      if i <> row then begin
        let factor = r.(col) in
        if Float.abs factor > 0.0 then
          for j = 0 to t.rhs do
            r.(j) <- r.(j) -. (factor *. prow.(j))
          done
      end)
    t.rows;
  t.basis.(row) <- col

(* One simplex phase: minimize cost·x starting from the current basis.
   [cost] has length ncols.  Returns [`Optimal] or [`Unbounded].  Bland's
   rule (smallest eligible index) guarantees termination. *)
let run_phase t ~cost ~allowed ~budget =
  let m = Array.length t.rows in
  (* Reduced costs: z.(j) = cost.(j) - cost_B · B^{-1} A_j, maintained by
     recomputation each iteration — simple and robust at our sizes. *)
  let reduced = Array.make t.ncols 0.0 in
  let objective_row () =
    Array.blit cost 0 reduced 0 t.ncols;
    for i = 0 to m - 1 do
      let cb = cost.(t.basis.(i)) in
      if Float.abs cb > 0.0 then
        for j = 0 to t.ncols - 1 do
          reduced.(j) <- reduced.(j) -. (cb *. t.rows.(i).(j))
        done
    done
  in
  let rec iterate steps =
    if steps > budget then failwith "Simplex: pivot budget exceeded";
    objective_row ();
    (* Bland: entering column = smallest index with reduced cost < -eps. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && reduced.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; Bland tie-break on smallest basis index. *)
      let leave = ref (-1) in
      let best = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(t.rhs) /. a in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
          then begin
            best := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        iterate (steps + 1)
      end
    end
  in
  iterate 0

let solve ?(max_pivots = 200_000) { num_vars; objective; constraints } =
  let check_index (j, _) =
    if j < 0 || j >= num_vars then invalid_arg "Simplex.solve: variable index out of range"
  in
  List.iter check_index objective;
  List.iter (fun { coeffs; _ } -> List.iter check_index coeffs) constraints;
  let m = List.length constraints in
  (* Normalize rows to have non-negative rhs. *)
  let normalized =
    List.map
      (fun { coeffs; relation; rhs } ->
        if rhs < 0.0 then
          let coeffs = List.map (fun (j, a) -> (j, -.a)) coeffs in
          let relation = match relation with Le -> Ge | Ge -> Le | Eq -> Eq in
          (coeffs, relation, -.rhs)
        else (coeffs, relation, rhs))
      constraints
  in
  (* Count extra columns. *)
  let num_slack =
    List.fold_left
      (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 normalized
  in
  (* Every row gets an artificial except Le rows, whose slack can start
     basic. *)
  let num_art =
    List.fold_left
      (fun acc (_, rel, _) -> match rel with Le -> acc | Ge | Eq -> acc + 1)
      0 normalized
  in
  let ncols = num_vars + num_slack + num_art in
  let rows = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m (-1) in
  let slack_next = ref num_vars in
  let art_next = ref (num_vars + num_slack) in
  List.iteri
    (fun i (coeffs, rel, rhs) ->
      let row = rows.(i) in
      List.iter (fun (j, a) -> row.(j) <- row.(j) +. a) coeffs;
      row.(ncols) <- rhs;
      (match rel with
      | Le ->
          row.(!slack_next) <- 1.0;
          basis.(i) <- !slack_next;
          incr slack_next
      | Ge ->
          row.(!slack_next) <- -1.0;
          incr slack_next;
          row.(!art_next) <- 1.0;
          basis.(i) <- !art_next;
          incr art_next
      | Eq ->
          row.(!art_next) <- 1.0;
          basis.(i) <- !art_next;
          incr art_next))
    normalized;
  let t = { rows; basis; ncols; rhs = ncols } in
  let art_start = num_vars + num_slack in
  (* Phase 1: minimize sum of artificials. *)
  let outcome =
    if num_art = 0 then `Optimal
    else begin
      let cost1 = Array.make ncols 0.0 in
      for j = art_start to ncols - 1 do
        cost1.(j) <- 1.0
      done;
      match run_phase t ~cost:cost1 ~allowed:(fun _ -> true) ~budget:max_pivots with
      | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
      | `Optimal ->
          let value =
            Array.to_list t.basis
            |> List.mapi (fun i b -> if b >= art_start then t.rows.(i).(t.rhs) else 0.0)
            |> List.fold_left ( +. ) 0.0
          in
          if value > 1e-6 then `Infeasible else `Optimal
    end
  in
  match outcome with
  | `Infeasible -> Infeasible
  | `Optimal -> (
      (* Phase 2: original objective; artificial columns barred from
         re-entering.  Degenerate artificials may linger in the basis at
         value 0, which is harmless. *)
      let cost2 = Array.make ncols 0.0 in
      List.iter (fun (j, c) -> cost2.(j) <- cost2.(j) +. c) objective;
      let allowed j = j < art_start in
      match run_phase t ~cost:cost2 ~allowed ~budget:max_pivots with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let solution = Array.make num_vars 0.0 in
          Array.iteri
            (fun i b -> if b < num_vars then solution.(b) <- t.rows.(i).(t.rhs))
            t.basis;
          let objective =
            List.fold_left (fun acc (j, c) -> acc +. (c *. solution.(j))) 0.0 objective
          in
          Optimal { objective; solution })

let maximize ?max_pivots { num_vars; objective; constraints } =
  let neg = List.map (fun (j, c) -> (j, -.c)) objective in
  match solve ?max_pivots { num_vars; objective = neg; constraints } with
  | Optimal { objective; solution } -> Optimal { objective = -.objective; solution }
  | (Infeasible | Unbounded) as o -> o
