(** The constructive pipeline of Theorem 5.3, end to end.

    The paper's proof is algorithmic, and this module runs it as an actual
    router for arbitrary demands — no LP/MWU solver involved, just the
    combinatorics of Section 5:

    + bucket the demand by the dyadic scale of [d(s,t)/(α+cut_G(s,t))]
      (Lemma 5.9's special-to-general reduction);
    + replace each bucket by the α-special demand on its support
      (Definition 5.5) — the bucket is within a factor 2 of a scaled copy;
    + route each special demand by repeatedly running the Lemma 5.6
      dynamic process and keeping the pairs that retained a quarter of
      their demand (Lemma 5.8's weak-to-strong reduction);
    + merge the per-bucket routings demand-proportionally (Lemma 5.15).

    The result is a valid fractional routing of the full demand on the
    path system whose congestion, in the regime the theorem promises
    (candidates sampled from a competitive oblivious routing, [γ] at the
    theorem's allowance), is [O(γ · log²m)]-ish.  The solver-based
    {!Semi_oblivious.route} is what production would use; this pipeline is
    the theorem made executable, and the experiments compare the two. *)

val route :
  gamma:float ->
  alpha:int ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float
(** Run the pipeline with per-round congestion allowance [gamma] (measured
    in units of the special demands, i.e. absolute congestion per bucket
    round).  Returns the routing of the original demand and its measured
    congestion.  @raise Invalid_argument if a demanded pair has no
    candidates. *)

val bucket_count : alpha:int -> Sso_graph.Graph.t -> Sso_demand.Demand.t -> int
(** Number of dyadic buckets the demand splits into — the [O(log m)]
    factor Lemma 5.9 pays. *)
