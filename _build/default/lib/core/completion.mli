(** Completion-time semi-oblivious routing (Section 7, Lemma 2.8).

    The completion-time objective is congestion + dilation: by classical
    scheduling results [LMR94] a path assignment with congestion [c] and
    dilation [h] can deliver all packets in [O(c + h)] steps.  Optimizing
    congestion alone can be disastrous for this objective, so Lemma 2.8
    unions, over a geometric ladder of hop budgets [h_i], an α-sample of a
    hop-constrained oblivious routing per scale; Stage 4 then jointly picks
    the scale and the rates. *)

val ladder_hops : Sso_graph.Graph.t -> int list
(** The geometric hop ladder [h_1 = 1, h_{i+1} = ⌈h_i·2⌉, …] capped at the
    graph's diameter (the paper uses factor [log n]; a factor-2 ladder has
    [O(log)] rungs too and gives finer resolution at our scales). *)

val ladder_system :
  ?stretch:int ->
  ?paths_per_pair:int ->
  Sso_prng.Rng.t -> Sso_graph.Graph.t -> alpha:int -> Path_system.t
(** Lemma 2.8's construction: the union over the hop ladder of α-samples
    of hop-constrained oblivious routings (one per rung; rungs that cannot
    reach a pair contribute nothing for that pair). *)

val route :
  ?solver:Semi_oblivious.solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float * int
(** Minimize congestion + dilation over the path system: for each hop
    threshold [h] realized by some candidate path, solve min-congestion on
    the ≤[h]-hop restriction and keep the best [cong + dil].  Returns
    (routing, congestion, dilation).  @raise Invalid_argument if a demanded
    pair has no candidates at all. *)

val completion_time : Sso_graph.Graph.t -> Sso_flow.Routing.t -> Sso_demand.Demand.t -> float
(** [cong(R,d) + dil(R,d)] — the objective value of a given routing. *)
