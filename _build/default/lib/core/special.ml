module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Rng = Sso_prng.Rng

let special_of_support g ~alpha pairs =
  Demand.of_list
    (List.map (fun (s, t) -> (s, t, float_of_int (Sampler.cnt g ~alpha s t))) pairs)

let buckets g ~alpha d =
  let scale s t amount = amount /. float_of_int (Sampler.cnt g ~alpha s t) in
  let bucket_of ratio = int_of_float (Float.floor (Float.log ratio /. Float.log 2.0)) in
  let table = Hashtbl.create 16 in
  Demand.fold
    (fun s t amount () ->
      let b = bucket_of (scale s t amount) in
      let cur = try Hashtbl.find table b with Not_found -> [] in
      Hashtbl.replace table b ((s, t, amount) :: cur))
    d ();
  Hashtbl.fold (fun b entries acc -> (b, Demand.of_list entries) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let random_special rng g ~alpha ~pairs =
  let n = Graph.n g in
  if pairs > n * (n - 1) then invalid_arg "Special.random_special: too many pairs";
  let chosen = Hashtbl.create pairs in
  while Hashtbl.length chosen < pairs do
    let s = Rng.int rng n and t = Rng.int rng n in
    if s <> t && not (Hashtbl.mem chosen (s, t)) then Hashtbl.add chosen (s, t) ()
  done;
  let support = Hashtbl.fold (fun p () acc -> p :: acc) chosen [] in
  special_of_support g ~alpha support
