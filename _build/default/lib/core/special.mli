(** Special demands and the bucketing reduction (Definition 5.5,
    Lemma 5.9).

    A demand is α-special when every entry is 0 or [α + cut_G(s,t)]
    — exactly the shape that makes the concentration argument of
    Lemma 5.6 go through.  Lemma 5.9 reduces arbitrary demands to special
    ones: bucket pairs by the dyadic scale of [d(s,t) / (α + cut_G(s,t))],
    round each bucket up to the special demand on its support, and pay one
    factor 2 per bucket and O(log) buckets overall. *)

val special_of_support :
  Sso_graph.Graph.t -> alpha:int -> (int * int) list -> Sso_demand.Demand.t
(** The α-special demand with the given support:
    [d(s,t) = α + cut_G(s,t)] on it. *)

val buckets :
  Sso_graph.Graph.t -> alpha:int -> Sso_demand.Demand.t ->
  (int * Sso_demand.Demand.t) list
(** Split [d] into dyadic-ratio buckets: bucket [i] holds the pairs with
    [d(s,t)/(α + cut_G(s,t)) ∈ [2^i, 2^{i+1})].  The buckets sum to [d]
    and there are at most O(log(max ratio / min ratio)) of them. *)

val random_special :
  Sso_prng.Rng.t -> Sso_graph.Graph.t -> alpha:int -> pairs:int -> Sso_demand.Demand.t
(** A random α-special demand with [pairs] support pairs — workload
    generator for tests of the special-demand machinery. *)
