module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Rounding = Sso_flow.Rounding
module Min_congestion = Sso_flow.Min_congestion

let congestion_upper ?solver ?(tries = 10) rng g ps demand =
  if not (Demand.is_integral demand) then
    invalid_arg "Integral.congestion_upper: demand must be integral";
  let fractional, _ = Semi_oblivious.route ?solver g ps demand in
  let rounded = Rounding.best_round ~tries rng g fractional demand in
  let improved = Rounding.local_search g ~candidates:(Path_system.paths ps) rounded in
  (improved, Rounding.congestion g improved)

let brute_force ?(limit = 2_000_000) g ps demand =
  if not (Demand.is_zero_one demand) then
    invalid_arg "Integral.brute_force: demand must be a {0,1}-demand";
  let pairs = Demand.support demand in
  let choices = List.map (fun (s, t) -> Array.of_list (Path_system.paths ps s t)) pairs in
  List.iter
    (fun c -> if Array.length c = 0 then invalid_arg "Integral.brute_force: pair without candidates")
    choices;
  let total =
    List.fold_left
      (fun acc c ->
        let acc = acc * Array.length c in
        if acc > limit || acc <= 0 then invalid_arg "Integral.brute_force: search space too large"
        else acc)
      1 choices
  in
  ignore total;
  let choices = Array.of_list choices in
  let k = Array.length choices in
  let loads = Array.make (Graph.m g) 0.0 in
  let add (p : Path.t) delta =
    Array.iter (fun e -> loads.(e) <- loads.(e) +. delta) p.Path.edges
  in
  let best = ref infinity in
  let current_max () =
    let mx = ref 0.0 in
    Array.iteri (fun e load -> mx := Float.max !mx (load /. Graph.cap g e)) loads;
    !mx
  in
  let rec explore i =
    if i = k then best := Float.min !best (current_max ())
    else
      Array.iter
        (fun p ->
          add p 1.0;
          (* Prune: congestion only grows as packets are added. *)
          if current_max () < !best then explore (i + 1);
          add p (-1.0))
        choices.(i)
  in
  explore 0;
  !best

let opt_integral_upper ?(tries = 10) rng g demand =
  if not (Demand.is_integral demand) then
    invalid_arg "Integral.opt_integral_upper: demand must be integral";
  let fractional, _ = Min_congestion.mwu_unrestricted g demand in
  let rounded = Rounding.best_round ~tries rng g fractional demand in
  Rounding.congestion g rounded
