lib/core/path_system.mli: Sso_flow Sso_graph Sso_oblivious
