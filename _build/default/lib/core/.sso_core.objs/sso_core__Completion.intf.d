lib/core/completion.mli: Path_system Semi_oblivious Sso_demand Sso_flow Sso_graph Sso_prng
