lib/core/auxiliary.mli: Path_system Sso_demand Sso_graph Sso_oblivious Sso_prng
