lib/core/theory.mli:
