lib/core/sampler.mli: Path_system Sso_graph Sso_oblivious Sso_prng
