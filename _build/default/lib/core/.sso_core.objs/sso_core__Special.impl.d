lib/core/special.ml: Float Hashtbl List Sampler Sso_demand Sso_graph Sso_prng
