lib/core/completion.ml: List Path_system Sampler Semi_oblivious Sso_demand Sso_flow Sso_graph Sso_oblivious Sso_prng
