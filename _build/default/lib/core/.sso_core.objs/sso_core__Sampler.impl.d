lib/core/sampler.ml: Path_system Set Sso_graph Sso_oblivious Sso_prng
