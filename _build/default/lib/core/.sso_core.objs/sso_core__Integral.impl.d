lib/core/integral.ml: Array Float List Path_system Semi_oblivious Sso_demand Sso_flow Sso_graph
