lib/core/robustness.mli: Path_system Semi_oblivious Sso_demand Sso_graph
