lib/core/certified.mli: Path_system Sso_demand Sso_flow Sso_graph
