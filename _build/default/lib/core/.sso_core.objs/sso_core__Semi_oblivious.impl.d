lib/core/semi_oblivious.ml: Float List Path_system Sso_demand Sso_flow Sso_graph Sso_oblivious
