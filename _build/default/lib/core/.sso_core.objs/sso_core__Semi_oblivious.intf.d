lib/core/semi_oblivious.mli: Path_system Sso_demand Sso_flow Sso_graph Sso_oblivious
