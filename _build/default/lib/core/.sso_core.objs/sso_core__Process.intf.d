lib/core/process.mli: Path_system Sso_demand Sso_flow Sso_graph
