lib/core/path_system.ml: Hashtbl List Set Sso_flow Sso_graph Sso_oblivious
