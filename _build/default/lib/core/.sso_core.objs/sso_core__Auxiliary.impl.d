lib/core/auxiliary.ml: Array Hashtbl List Path_system Sampler Sso_demand Sso_graph Sso_oblivious Sso_prng
