lib/core/oracle.mli: Path_system Semi_oblivious Sso_demand Sso_flow Sso_graph
