lib/core/certified.ml: List Process Special Sso_demand Sso_flow Sso_graph
