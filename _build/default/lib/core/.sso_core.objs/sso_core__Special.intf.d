lib/core/special.mli: Sso_demand Sso_graph Sso_prng
