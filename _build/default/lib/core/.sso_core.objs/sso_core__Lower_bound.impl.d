lib/core/lower_bound.ml: Array Fun Hashtbl List Path_system Semi_oblivious Sso_demand Sso_graph
