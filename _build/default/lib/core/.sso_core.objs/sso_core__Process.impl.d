lib/core/process.ml: Array Float List Path_system Sso_demand Sso_flow Sso_graph
