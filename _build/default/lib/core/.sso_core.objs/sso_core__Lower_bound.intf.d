lib/core/lower_bound.mli: Path_system Semi_oblivious Sso_demand Sso_graph
