(** Integral semi-oblivious routing (Section 6, Definition 6.1).

    Each packet must travel on exactly one candidate path;
    [cong_ℤ(P,d)] is the minimum congestion over such choices.  Exact
    minimization is NP-hard in general, so we expose:

    - {!congestion_upper}: the paper's own constructive route — solve the
      fractional problem, round (Lemma 6.3), and locally improve — whose
      value is guaranteed [≤ 2·cong_ℝ(P,d) + 3 ln m] in expectation over
      retries;
    - {!brute_force}: exact [cong_ℤ(P,d)] by exhaustive search, for the
      small instances used in tests and the lower-bound experiments. *)

val congestion_upper :
  ?solver:Semi_oblivious.solver ->
  ?tries:int ->
  Sso_prng.Rng.t ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Rounding.assignment * float
(** Fractional solve + best-of-[tries] rounding (default 10) + local
    search.  The demand must be integral. *)

val brute_force :
  ?limit:int ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t -> float
(** Exact [cong_ℤ(P,d)] for {0,1}-demands by enumerating all candidate
    combinations (at most [limit], default [2_000_000]; raises
    [Invalid_argument] beyond that or on non-{0,1} demands). *)

val opt_integral_upper :
  ?tries:int ->
  Sso_prng.Rng.t -> Sso_graph.Graph.t -> Sso_demand.Demand.t -> float
(** An upper estimate of [opt_{G,ℤ}(d)]: round the (approximately) optimal
    fractional routing.  Together with the fractional lower bound
    [opt_{G,ℝ}(d) ≤ opt_{G,ℤ}(d)] this brackets the integral optimum. *)
