(** Closed-form evaluators for the paper's bounds.

    Every quantitative statement of the paper as an executable formula, so
    experiments and tests can print "theory vs measured" side by side and
    sanity-check parameter regimes.  Formulas follow the paper's notation:
    [n] vertices, [m] edges, sparsity [α], confidence parameter [h],
    demand size [D = siz(d)] with support size [|supp(d)|]. *)

val sample_competitiveness : m:int -> alpha:int -> h:int -> float
(** Lemma 5.6 / Corollary 5.7's explicit competitiveness of an
    [(α+cut)]-sample: [α + m^(16(h+7)/α)].  Grows astronomically for small
    [α] — the point of printing it is to see where the asymptotic regime
    starts, not to compare against measurements directly. *)

val weak_route_failure_probability : m:int -> supp:int -> h:int -> float
(** Lemma 5.6: the probability that the dynamic process fails to keep half
    of a fixed special demand, [m^(-(h+3)·|supp(d)|)]. *)

val union_bound_failure : m:int -> h:int -> float
(** Corollary 5.7: failure probability over all special demands,
    [m^(-h)]. *)

val bad_pattern_count_bound : m:int -> d_size:float -> alpha:int -> float
(** Lemma 5.13: at most [m^(4D/α)] bad patterns (returned as a log₁₀ when
    it overflows — see {!log10_bad_pattern_count}). *)

val log10_bad_pattern_count : m:int -> d_size:float -> alpha:int -> float
(** log₁₀ of the Lemma 5.13 bound, safe for any parameters. *)

val rounding_bound : m:int -> frac_congestion:float -> float
(** Lemma 6.3 / Corollary 6.4: [2·cong_ℝ + 3·ln m]. *)

val theorem_2_3_sparsity : n:int -> int
(** Θ(log n / log log n), the sparsity Theorem 2.3 uses (concretely
    [⌈log₂ n / log₂ log₂ n⌉] for n ≥ 4, else 1). *)

val theorem_2_3_competitiveness : n:int -> float
(** O(log³n / log log n) with unit constant — an asymptotic shape to plot
    alongside measurements, not a certified constant. *)

val theorem_2_5_competitiveness : n:int -> alpha:int -> float
(** [n^(1/α)] with unit constant — the low-sparsity trade-off shape. *)

val lower_bound_cor_8_3 : n:int -> alpha:int -> float
(** Corollary 8.3: no α-sparse integral system beats
    [n^(1/2α) / (2 log₂ n)]-competitiveness on permutations of [G(n)]. *)

val lower_bound_gadget_k : n:int -> alpha:int -> int
(** [k = ⌊n^(1/2α)⌋], the middle count the Section 8 construction uses. *)

val kkt91_bound : n:int -> max_degree:int -> float
(** [KKT91]: deterministic oblivious routing suffers [≥ √n / Δ] congestion
    on some permutation (constant dropped). *)

val completion_time_upper : congestion:float -> dilation:int -> float
(** [LMR94] shape: delivery in O(c + d) steps (unit constant). *)
