module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing

let bucket_count ~alpha g d = List.length (Special.buckets g ~alpha d)

let route ~gamma ~alpha g ps demand =
  if Demand.support_size demand = 0 then (Routing.make [], 0.0)
  else begin
    (* Lemma 5.9: dyadic buckets of the ratio d(s,t)/cnt(s,t). *)
    let buckets = Special.buckets g ~alpha demand in
    let parts =
      List.map
        (fun (_, bucket) ->
          (* Route the special demand with the bucket's support; its
             routing (a per-pair distribution) routes the bucket itself
             with congestion inflated by at most the ratio bound. *)
          let special = Special.special_of_support g ~alpha (Demand.support bucket) in
          let routing, _ = Process.route_by_halving ~gamma g ps special in
          (bucket, routing))
        buckets
    in
    (* Lemma 5.15: demand-proportional merge of the bucket routings. *)
    let combined =
      match parts with
      | [] -> Routing.make []
      | (d0, r0) :: rest ->
          let _, routing =
            List.fold_left
              (fun (dacc, racc) (d, r) ->
                (Demand.add dacc d, Routing.merge_convex (dacc, racc) (d, r)))
              (d0, r0) rest
          in
          routing
    in
    (combined, Routing.congestion g combined demand)
  end
