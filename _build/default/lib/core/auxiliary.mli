(** The auxiliary-graph construction of Corollary 6.2.

    To derive α-sample results from the (α+cut)-sample theorem, the paper
    builds [G₂]: for each vertex pair [(s,t)] of interest, two fresh
    terminals [v₁, v₂] attached by single edges [v₁–s] and [t–v₂].  Then
    [cut_{G₂}(v₁, v₂) = 1], so an [(α−1+cut)]-sample between the terminals
    draws exactly [α] paths, and those paths project back to (s,t)-paths
    of [G] with the same distribution as a direct α-sample.  This module
    makes the reduction executable so tests can check its two load-bearing
    facts: the unit terminal cuts, and the congestion correspondence
    [cong_{G₂}(R₂, d₂) = max(cong_G(R, d), max_{s,t} d(s,t))]. *)

type t
(** An expansion of a base graph for a fixed list of pairs. *)

val expand : Sso_graph.Graph.t -> pairs:(int * int) list -> t
(** Build [G₂] with one terminal pair per listed (distinct) vertex pair.
    Terminal edges get capacity 1 ([G]'s own edges keep theirs). *)

val graph : t -> Sso_graph.Graph.t
(** The expanded graph [G₂] (base vertices keep their ids). *)

val terminals : t -> int -> int -> int * int
(** [(v₁, v₂)] for a listed pair.  @raise Not_found otherwise. *)

val lift_oblivious : t -> Sso_oblivious.Oblivious.t -> Sso_oblivious.Oblivious.t
(** [R₂]: between terminals of a listed pair, route [v₁ → s → ⋯ → t → v₂]
    with the inner part drawn from [R]; between other pairs the
    distribution is inherited when both endpoints are base vertices.
    Terminal pairs not listed are rejected. *)

val lift_demand : t -> Sso_demand.Demand.t -> Sso_demand.Demand.t
(** [d₂]: move each [d(s,t)] onto the corresponding terminal pair. *)

val project_system : t -> Path_system.t -> Path_system.t
(** Map a path system on [G₂] (between terminals) back to one on [G]
    (between the original pairs) by stripping the two terminal edges. *)

val alpha_sample_via_expansion :
  Sso_prng.Rng.t -> t -> Sso_oblivious.Oblivious.t -> alpha:int -> Path_system.t
(** The Corollary 6.2 pipeline: an [(α−1+cut)]-sample of the lifted
    routing between terminals, projected back to [G].  Distributionally
    identical to [Sampler.alpha_sample ~alpha] (tested).  Requires
    [α ≥ 2]. *)
