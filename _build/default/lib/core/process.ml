module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing

type outcome = {
  kept_demand : Demand.t;
  kept_routing : Routing.t option;
  survived_fraction : float;
  deletions : (int * float) list;
}

let weak_route ~gamma g ps demand =
  if gamma <= 0.0 then invalid_arg "Process.weak_route: gamma must be positive";
  (* Materialize every candidate path with its initial weight
     d(s,t)/|P(s,t)| (the uniform spread; the paper's sample-multiplicity
     weighting coincides with this in distribution after deduplication). *)
  let items =
    Demand.fold
      (fun s t amount acc ->
        match Path_system.paths ps s t with
        | [] -> invalid_arg "Process.weak_route: demanded pair has no candidates"
        | paths ->
            let w0 = amount /. float_of_int (List.length paths) in
            List.fold_left (fun acc p -> ((s, t), p, ref w0) :: acc) acc paths)
      demand []
  in
  let total = Demand.siz demand in
  (* Edge → members index for the scan. *)
  let m = Graph.m g in
  let members = Array.make m [] in
  List.iter
    (fun ((_, p, _) as item) ->
      Array.iter (fun e -> members.(e) <- item :: members.(e)) p.Path.edges)
    items;
  let deletions = ref [] in
  for e = 0 to m - 1 do
    let cong =
      List.fold_left (fun acc (_, _, w) -> acc +. !w) 0.0 members.(e) /. Graph.cap g e
    in
    if cong > gamma then begin
      let removed =
        List.fold_left
          (fun acc (_, _, w) ->
            let v = !w in
            w := 0.0;
            acc +. v)
          0.0 members.(e)
      in
      if removed > 0.0 then deletions := (e, removed) :: !deletions
    end
  done;
  let kept_demand =
    Demand.of_list
      (List.filter_map
         (fun ((s, t), _, w) -> if !w > 0.0 then Some (s, t, !w) else None)
         items)
  in
  let kept_routing =
    if Demand.support_size kept_demand = 0 then None
    else
      Some
        (Routing.make
           (List.map
              (fun (s, t) ->
                let dist =
                  List.filter_map
                    (fun ((s', t'), p, w) ->
                      if s' = s && t' = t && !w > 0.0 then Some (!w, p) else None)
                    items
                in
                ((s, t), dist))
              (Demand.support kept_demand)))
  in
  {
    kept_demand;
    kept_routing;
    survived_fraction = (if total > 0.0 then Demand.siz kept_demand /. total else 1.0);
    deletions = List.rev !deletions;
  }

let greedy_first_candidates ps demand =
  Routing.make
    (List.map
       (fun (s, t) ->
         match Path_system.paths ps s t with
         | [] -> invalid_arg "Process: demanded pair has no candidates"
         | p :: _ -> ((s, t), [ (1.0, p) ]))
       (Demand.support demand))

let route_by_halving ~gamma ?max_rounds g ps demand =
  if Demand.support_size demand = 0 then (Routing.make [], 0.0)
  else begin
    let m = Graph.m g in
    let default_rounds =
      int_of_float (Float.ceil (Float.log (float_of_int (max 2 m)) /. Float.log 1.5)) + 8
    in
    let rounds = match max_rounds with Some r -> r | None -> default_rounds in
    let threshold = Demand.siz demand /. float_of_int m in
    (* Accumulate (sub-demand, routing) parts; combine at the end. *)
    let rec go round remaining parts =
      if Demand.support_size remaining = 0 then parts
      else if round >= rounds || Demand.siz remaining <= threshold then
        (remaining, greedy_first_candidates ps remaining) :: parts
      else begin
        let { kept_demand; kept_routing; _ } = weak_route ~gamma g ps remaining in
        (* Keep pairs that retained ≥ 1/4 of their demand; route their full
           demand by rescaling the kept routing (factor ≤ 4 congestion). *)
        let served =
          Demand.filter
            (fun s t amount -> Demand.get kept_demand s t >= amount /. 4.0)
            remaining
        in
        match (kept_routing, Demand.support_size served) with
        | Some routing, k when k > 0 ->
            let residual = Demand.filter (fun s t _ -> Demand.get served s t = 0.0) remaining in
            go (round + 1) residual ((served, routing) :: parts)
        | _ ->
            (* Weak routing stalled: fall back to greedy on what is left. *)
            (remaining, greedy_first_candidates ps remaining) :: parts
      end
    in
    let parts = go 0 demand [] in
    let combined =
      match parts with
      | [] -> Routing.make []
      | (d0, r0) :: rest ->
          let _, routing =
            List.fold_left
              (fun (dacc, racc) (d, r) ->
                (Demand.add dacc d, Routing.merge_convex (dacc, racc) (d, r)))
              (d0, r0) rest
          in
          routing
    in
    (combined, Routing.congestion g combined demand)
  end
