(** The proof machinery of Section 5, executable.

    {!weak_route} runs the dynamic process from the proof of Lemma 5.6:
    spread each pair's demand uniformly over its candidate paths, scan the
    edges in a fixed order, and whenever an edge's congestion exceeds the
    allowance [γ] delete every remaining path crossing it.  What survives
    is a sub-demand [d'] routed with congestion ≤ γ; the paper proves that
    with exponentially good probability at least half of [siz(d)] survives
    when the candidates are an [(α+cut)]-sample.  Running it empirically is
    experiment-grade evidence for the concentration argument and doubles as
    a fast (solver-free) feasibility router.

    {!route_by_halving} is the weak-to-strong reduction of Lemma 5.8:
    repeatedly weak-route the not-yet-served demand, keep the pairs that
    retained at least a quarter of their demand (rescaling their rates by
    ≤ 4), and recurse on the rest; after [O(log m)] rounds the leftovers
    are small enough to route arbitrarily. *)

type outcome = {
  kept_demand : Sso_demand.Demand.t;  (** [d' ≤ d], what survived. *)
  kept_routing : Sso_flow.Routing.t option;
      (** [R'] with [cong(R', d') ≤ γ]; [None] when nothing survived. *)
  survived_fraction : float;  (** [siz(d') / siz(d)]; 1 for empty [d]. *)
  deletions : (int * float) list;
      (** Overcongested edges in scan order with the weight deleted at each
          (the [Δ_k > 0] entries of the proof). *)
}

val weak_route :
  gamma:float ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t -> outcome
(** Run the process with allowance [γ] (an absolute congestion bound).
    @raise Invalid_argument if a demanded pair has no candidates. *)

val route_by_halving :
  gamma:float ->
  ?max_rounds:int ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float
(** Lemma 5.8's reduction: returns a routing of the full demand and its
    congestion.  Each round contributes ≤ 4γ congestion and the rounds
    stop once the residual demand is ≤ siz(d)/m (routed greedily on first
    candidates) or [max_rounds] (default ⌈log_{3/2} m⌉ + 8) is hit — if the
    weak router keeps stalling (survived fraction ~0) the remaining demand
    is also routed greedily, so the returned congestion can then exceed
    [O(γ log m)]; the paper's high-probability regime avoids this. *)
