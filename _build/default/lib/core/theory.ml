let check_positive name v = if v <= 0 then invalid_arg ("Theory: " ^ name ^ " must be positive")

let sample_competitiveness ~m ~alpha ~h =
  check_positive "m" m;
  check_positive "alpha" alpha;
  check_positive "h" h;
  let mf = float_of_int m in
  float_of_int alpha
  +. Float.pow mf (16.0 *. float_of_int (h + 7) /. float_of_int alpha)

let weak_route_failure_probability ~m ~supp ~h =
  check_positive "m" m;
  check_positive "supp" supp;
  check_positive "h" h;
  Float.pow (float_of_int m) (-.float_of_int ((h + 3) * supp))

let union_bound_failure ~m ~h =
  check_positive "m" m;
  check_positive "h" h;
  Float.pow (float_of_int m) (-.float_of_int h)

let log10_bad_pattern_count ~m ~d_size ~alpha =
  check_positive "m" m;
  check_positive "alpha" alpha;
  if d_size < 0.0 then invalid_arg "Theory: d_size must be non-negative";
  4.0 *. d_size /. float_of_int alpha *. Float.log10 (float_of_int m)

let bad_pattern_count_bound ~m ~d_size ~alpha =
  Float.pow 10.0 (log10_bad_pattern_count ~m ~d_size ~alpha)

let rounding_bound ~m ~frac_congestion =
  check_positive "m" m;
  if frac_congestion < 0.0 then invalid_arg "Theory: congestion must be non-negative";
  (2.0 *. frac_congestion) +. (3.0 *. Float.log (float_of_int m))

let log2 x = Float.log x /. Float.log 2.0

let theorem_2_3_sparsity ~n =
  check_positive "n" n;
  if n < 4 then 1
  else begin
    let nf = float_of_int n in
    let value = log2 nf /. log2 (log2 nf) in
    max 1 (int_of_float (Float.ceil value))
  end

let theorem_2_3_competitiveness ~n =
  check_positive "n" n;
  if n < 4 then 1.0
  else begin
    let nf = float_of_int n in
    Float.pow (log2 nf) 3.0 /. log2 (log2 nf)
  end

let theorem_2_5_competitiveness ~n ~alpha =
  check_positive "n" n;
  check_positive "alpha" alpha;
  Float.pow (float_of_int n) (1.0 /. float_of_int alpha)

let lower_bound_gadget_k ~n ~alpha =
  check_positive "n" n;
  check_positive "alpha" alpha;
  max 1
    (int_of_float
       (Float.pow (float_of_int n) (1.0 /. (2.0 *. float_of_int alpha))))

let lower_bound_cor_8_3 ~n ~alpha =
  check_positive "n" n;
  check_positive "alpha" alpha;
  if n < 2 then 1.0
  else begin
    let nf = float_of_int n in
    Float.pow nf (1.0 /. (2.0 *. float_of_int alpha)) /. (2.0 *. log2 nf)
  end

let kkt91_bound ~n ~max_degree =
  check_positive "n" n;
  check_positive "max_degree" max_degree;
  Float.sqrt (float_of_int n) /. float_of_int max_degree

let completion_time_upper ~congestion ~dilation =
  if congestion < 0.0 then invalid_arg "Theory: congestion must be non-negative";
  if dilation < 0 then invalid_arg "Theory: dilation must be non-negative";
  congestion +. float_of_int dilation
