module Path = Sso_graph.Path
module Maxflow = Sso_graph.Maxflow
module Oblivious = Sso_oblivious.Oblivious
module Rng = Sso_prng.Rng

module PS = Set.Make (Path)

let draw rng obl count s t =
  let rec go k acc =
    if k = 0 then PS.elements acc
    else go (k - 1) (PS.add (Oblivious.sample rng obl s t) acc)
  in
  go count PS.empty

let alpha_sample rng obl ~alpha =
  if alpha <= 0 then invalid_arg "Sampler.alpha_sample: alpha must be positive";
  Path_system.of_generator (fun s t -> draw rng obl alpha s t)

let cnt g ~alpha s t = alpha + Maxflow.cut g s t

let alpha_cut_sample rng obl ~alpha =
  if alpha <= 0 then invalid_arg "Sampler.alpha_cut_sample: alpha must be positive";
  let g = Oblivious.graph obl in
  Path_system.of_generator (fun s t -> draw rng obl (cnt g ~alpha s t) s t)
