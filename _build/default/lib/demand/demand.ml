module Rng = Sso_prng.Rng

module Pair = struct
  type t = int * int

  let compare = compare
end

module Pmap = Map.Make (Pair)

type t = float Pmap.t

let of_list triples =
  List.fold_left
    (fun acc (s, t, v) ->
      if s = t then invalid_arg "Demand.of_list: diagonal entry";
      if v < 0.0 then invalid_arg "Demand.of_list: negative demand";
      if v = 0.0 then acc
      else
        Pmap.update (s, t)
          (function None -> Some v | Some w -> Some (w +. v))
          acc)
    Pmap.empty triples

let empty = Pmap.empty

let get d s t = match Pmap.find_opt (s, t) d with Some v -> v | None -> 0.0

let support d = List.map fst (Pmap.bindings d)

let support_size d = Pmap.cardinal d

let siz d = Pmap.fold (fun _ v acc -> acc +. v) d 0.0

let max_entry d = Pmap.fold (fun _ v acc -> Float.max v acc) d 0.0

let fold f d init = Pmap.fold (fun (s, t) v acc -> f s t v acc) d init

let map f d =
  Pmap.filter_map
    (fun (s, t) v ->
      let v' = f s t v in
      if v' > 0.0 then Some v' else None)
    d

let filter f d = Pmap.filter (fun (s, t) v -> f s t v) d

let add d1 d2 = Pmap.union (fun _ a b -> Some (a +. b)) d1 d2

let scale c d =
  if c < 0.0 then invalid_arg "Demand.scale: negative factor";
  if c = 0.0 then empty else Pmap.map (fun v -> c *. v) d

let equal d1 d2 = Pmap.equal (fun a b -> Float.abs (a -. b) < 1e-12) d1 d2

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  Pmap.iter (fun (s, t) v -> Format.fprintf fmt "%d -> %d : %g@," s t v) d;
  Format.fprintf fmt "@]"

let eps = 1e-9

let is_integral d =
  Pmap.for_all (fun _ v -> Float.abs (v -. Float.round v) < eps) d

let is_zero_one d = Pmap.for_all (fun _ v -> Float.abs (v -. 1.0) < eps) d

let is_permutation d =
  is_zero_one d
  &&
  let out = Hashtbl.create 16 and in_ = Hashtbl.create 16 in
  Pmap.for_all
    (fun (s, t) _ ->
      if Hashtbl.mem out s || Hashtbl.mem in_ t then false
      else begin
        Hashtbl.add out s ();
        Hashtbl.add in_ t ();
        true
      end)
    d

let is_special g ~alpha d =
  Pmap.for_all
    (fun (s, t) v ->
      let target = float_of_int (alpha + Sso_graph.Maxflow.cut g s t) in
      Float.abs (v -. target) < eps)
    d

let random_permutation rng n =
  let p = Rng.permutation rng n in
  of_list
    (List.filter_map
       (fun s -> if p.(s) = s then None else Some (s, p.(s), 1.0))
       (List.init n Fun.id))

let random_pairs rng ~n ~pairs =
  if pairs > n * (n - 1) then invalid_arg "Demand.random_pairs: too many pairs";
  let chosen = Hashtbl.create pairs in
  let out = ref [] in
  while Hashtbl.length chosen < pairs do
    let s = Rng.int rng n and t = Rng.int rng n in
    if s <> t && not (Hashtbl.mem chosen (s, t)) then begin
      Hashtbl.add chosen (s, t) ();
      out := (s, t, 1.0) :: !out
    end
  done;
  of_list !out

let reverse_bits d v =
  let r = ref 0 in
  for bit = 0 to d - 1 do
    if v land (1 lsl bit) <> 0 then r := !r lor (1 lsl (d - 1 - bit))
  done;
  !r

let bit_reversal d =
  if d < 1 then invalid_arg "Demand.bit_reversal: dimension must be >= 1";
  let n = 1 lsl d in
  of_list
    (List.filter_map
       (fun s ->
         let t = reverse_bits d s in
         if s = t then None else Some (s, t, 1.0))
       (List.init n Fun.id))

let transpose d =
  if d < 2 || d mod 2 <> 0 then
    invalid_arg "Demand.transpose: dimension must be even and >= 2";
  let half = d / 2 in
  let mask = (1 lsl half) - 1 in
  let n = 1 lsl d in
  of_list
    (List.filter_map
       (fun s ->
         let low = s land mask and high = s lsr half in
         let t = (low lsl half) lor high in
         if s = t then None else Some (s, t, 1.0))
       (List.init n Fun.id))

let all_to_all n =
  of_list
    (List.concat_map
       (fun s ->
         List.filter_map (fun t -> if s = t then None else Some (s, t, 1.0)) (List.init n Fun.id))
       (List.init n Fun.id))

let single_pair s t v = of_list [ (s, t, v) ]

let gravity rng ~n ~total =
  if total <= 0.0 then invalid_arg "Demand.gravity: total must be positive";
  let activity = Array.init n (fun _ -> 1.0 -. Rng.float rng) in
  let raw =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun t -> if s = t then None else Some (s, t, activity.(s) *. activity.(t)))
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let mass = List.fold_left (fun acc (_, _, v) -> acc +. v) 0.0 raw in
  of_list (List.map (fun (s, t, v) -> (s, t, v *. total /. mass)) raw)

let uniform_value v pairs = of_list (List.map (fun (s, t) -> (s, t, v)) pairs)

let to_string d =
  let buf = Buffer.create 256 in
  fold
    (fun s t v () -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" s t v))
    d ();
  Buffer.contents buf

let of_string text =
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match List.filter (fun s -> s <> "") (String.split_on_char ' ' line) with
          | [ s; t; v ] -> (
              match (int_of_string_opt s, int_of_string_opt t, float_of_string_opt v) with
              | Some s, Some t, Some v -> Some (s, t, v)
              | _ -> failwith "Demand.of_string: bad line")
          | _ -> failwith "Demand.of_string: bad line")
      (String.split_on_char '\n' text)
  in
  try of_list entries
  with Invalid_argument msg -> failwith ("Demand.of_string: " ^ msg)

let hotspot ~n ~target =
  if target < 0 || target >= n then invalid_arg "Demand.hotspot: target out of range";
  of_list
    (List.filter_map
       (fun s -> if s = target then None else Some (s, target, 1.0))
       (List.init n Fun.id))

let ring_shift ~n ~shift =
  if shift mod n = 0 then invalid_arg "Demand.ring_shift: shift must be non-zero mod n";
  of_list (List.init n (fun s -> (s, (s + shift) mod n, 1.0)))

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let stride ~n ~stride:k =
  if gcd n (((k mod n) + n) mod n) <> 1 then
    invalid_arg "Demand.stride: stride must be coprime with n";
  of_list
    (List.filter_map
       (fun s ->
         let t = s * k mod n in
         if t = s then None else Some (s, t, 1.0))
       (List.init n Fun.id))
