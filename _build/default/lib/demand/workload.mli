(** Time-varying demand sequences.

    Semi-oblivious traffic engineering installs paths once and re-optimizes
    rates every few minutes against fresh traffic snapshots [KYY+18].  A
    workload is the sequence of such snapshots; the over-time experiments
    check that one fixed sampled path system serves every epoch of a
    realistic day. *)

type t = Demand.t list
(** Epochs in order. *)

val diurnal :
  Sso_prng.Rng.t -> n:int -> epochs:int -> peak_total:float -> t
(** Gravity matrices whose total volume follows a sinusoidal day profile
    (trough = 25% of [peak_total]) with fresh per-epoch activity noise —
    the standard WAN diurnal model. *)

val random_walk :
  Sso_prng.Rng.t -> n:int -> epochs:int -> pairs:int -> churn:float -> t
(** Unit-demand pair sets evolving by churn: each epoch, every active pair
    is resampled with probability [churn ∈ [0,1]].  Models flow arrivals
    and departures. *)

val hotspot_sweep : n:int -> t
(** One epoch per vertex, each an all-to-one incast on that vertex — the
    adversarial sweep where every vertex takes a turn being popular. *)

val peak : t -> Demand.t
(** The epoch with the largest [siz] (empty demand for an empty list). *)

val total_epochs : t -> int
