lib/demand/demand.mli: Format Sso_graph Sso_prng
