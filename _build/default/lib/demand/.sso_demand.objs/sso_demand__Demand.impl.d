lib/demand/demand.ml: Array Buffer Float Format Fun Hashtbl List Map Printf Sso_graph Sso_prng String
