lib/demand/workload.ml: Demand Float Hashtbl List Sso_prng
