lib/demand/workload.mli: Demand Sso_prng
