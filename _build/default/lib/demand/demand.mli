(** Demand matrices (Definition 2.2).

    A demand maps ordered vertex pairs [(s, t)], [s <> t], to non-negative
    reals.  We store only the support, as all workloads in the paper and
    the experiments are sparse.  Construction normalizes: zero entries are
    dropped, repeated pairs are summed, and diagonal entries are rejected. *)

type t
(** Immutable demand. *)

val of_list : (int * int * float) list -> t
(** Build from [(s, t, amount)] triples.  Negative amounts and diagonal
    pairs raise [Invalid_argument]; zeros are dropped; duplicates add up. *)

val empty : t

val get : t -> int -> int -> float
(** [get d s t] is [d(s,t)] (0 outside the support). *)

val support : t -> (int * int) list
(** [supp(d)]: pairs with positive demand, in lexicographic order. *)

val support_size : t -> int

val siz : t -> float
(** [siz(d) = Σ_{s≠t} d(s,t)] (Definition 2.2). *)

val max_entry : t -> float
(** [max_{s,t} d(s,t)]; 0 for the empty demand. *)

val fold : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the support in lexicographic order. *)

val map : (int -> int -> float -> float) -> t -> t
(** Pointwise transform over the support (results ≤ 0 are dropped). *)

val filter : (int -> int -> float -> bool) -> t -> t

val add : t -> t -> t
(** Pointwise sum. *)

val scale : float -> t -> t
(** [scale c d] multiplies every entry by [c ≥ 0]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Classifiers} *)

val is_integral : t -> bool
(** Every entry is a whole number (up to 1e-9). *)

val is_zero_one : t -> bool
(** Every entry equals 1 ({0,1}-demand). *)

val is_permutation : t -> bool
(** {0,1}-demand where every vertex sends ≤ 1 and receives ≤ 1. *)

val is_special : Sso_graph.Graph.t -> alpha:int -> t -> bool
(** α-special (Definition 5.5): every entry is [0] or
    [α + cut_G(s,t)]. *)

(** {1 Generators} *)

val random_permutation : Sso_prng.Rng.t -> int -> t
(** A uniformly random full permutation demand on [n] vertices (fixed
    points dropped, so the size is typically [n - Θ(1)]). *)

val random_pairs : Sso_prng.Rng.t -> n:int -> pairs:int -> t
(** [pairs] uniformly random distinct ordered pairs, each with demand 1. *)

val bit_reversal : int -> t
(** On a [2^d]-vertex hypercube: [s → reverse of s's bit pattern].  The
    classical adversarial permutation for deterministic oblivious routing
    ([KKT91]-style instances). *)

val transpose : int -> t
(** On a [2^d]-vertex hypercube with even [d]: swap the low and high halves
    of the address bits — the matrix-transpose permutation, the other
    classical hard instance. *)

val all_to_all : int -> t
(** Demand 1 between every ordered pair ([n(n-1)] packets). *)

val single_pair : int -> int -> float -> t

val gravity : Sso_prng.Rng.t -> n:int -> total:float -> t
(** Gravity-model traffic matrix (standard in traffic engineering, used by
    SMORE's evaluation): each vertex draws an activity level [a_v] uniform
    in [(0, 1]]; [d(s,t) ∝ a_s · a_t] scaled so that [siz d = total]. *)

val uniform_value : float -> (int * int) list -> t
(** The demand that is [v] on the given pairs and [0] elsewhere. *)

val hotspot : n:int -> target:int -> t
(** All-to-one: every other vertex sends one packet to [target] — the
    incast workload where any single-path system collapses onto the
    target's incident edges. *)

val ring_shift : n:int -> shift:int -> t
(** [s → (s + shift) mod n] for every [s] — the canonical permutation on
    rings/tori.  [shift mod n] must be non-zero. *)

val stride : n:int -> stride:int -> t
(** [s → (s · stride) mod n] with [gcd(stride, n) = 1] — the strided-access
    permutations of the parallel-computing literature.
    @raise Invalid_argument if [stride] is not coprime with [n]. *)

(** {1 Serialization}

    One [<s> <t> <amount>] line per support pair; [#]-comments and blank
    lines ignored.  Round-trips through {!to_string}/{!of_string}. *)

val to_string : t -> string

val of_string : string -> t
(** @raise Failure on malformed input. *)
