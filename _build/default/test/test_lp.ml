(* Tests for the dense two-phase simplex. *)

module Simplex = Sso_lp.Simplex

let solve = Simplex.solve

let check_optimal name expected outcome =
  match outcome with
  | Simplex.Optimal { objective; _ } ->
      Alcotest.(check (float 1e-6)) name expected objective
  | Simplex.Infeasible -> Alcotest.fail (name ^ ": unexpected infeasible")
  | Simplex.Unbounded -> Alcotest.fail (name ^ ": unexpected unbounded")

let test_trivial_minimum () =
  (* min x0 s.t. x0 >= 3 *)
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (0, 1.0) ];
      constraints = [ { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Ge; rhs = 3.0 } ];
    }
  in
  check_optimal "min at bound" 3.0 (solve p)

let test_two_var () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6.  Optimum at intersection
     (8/5, 6/5) with value 14/5. *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 2.0) ]; relation = Simplex.Ge; rhs = 4.0 };
          { Simplex.coeffs = [ (0, 3.0); (1, 1.0) ]; relation = Simplex.Ge; rhs = 6.0 };
        ];
    }
  in
  check_optimal "interior vertex" 2.8 (solve p)

let test_maximize () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: the classic example,
     optimum 36 at (2,6). *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, 3.0); (1, 5.0) ];
      constraints =
        [
          { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 4.0 };
          { Simplex.coeffs = [ (1, 2.0) ]; relation = Simplex.Le; rhs = 12.0 };
          { Simplex.coeffs = [ (0, 3.0); (1, 2.0) ]; relation = Simplex.Le; rhs = 18.0 };
        ];
    }
  in
  (match Simplex.maximize p with
  | Simplex.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" 36.0 objective;
      Alcotest.(check (float 1e-6)) "x" 2.0 solution.(0);
      Alcotest.(check (float 1e-6)) "y" 6.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal")

let test_equality_constraint () =
  (* min x + 2y s.t. x + y = 5, x <= 3 → x=3, y=2, value 7. *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, 1.0); (1, 2.0) ];
      constraints =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Eq; rhs = 5.0 };
          { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 3.0 };
        ];
    }
  in
  (match solve p with
  | Simplex.Optimal { objective; solution } ->
      Alcotest.(check (float 1e-6)) "objective" 7.0 objective;
      Alcotest.(check (float 1e-6)) "x" 3.0 solution.(0);
      Alcotest.(check (float 1e-6)) "y" 2.0 solution.(1)
  | _ -> Alcotest.fail "expected optimal")

let test_infeasible () =
  (* x <= 1 and x >= 2. *)
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (0, 1.0) ];
      constraints =
        [
          { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Ge; rhs = 2.0 };
        ];
    }
  in
  (match solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  (* max x with x >= 0 only. *)
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (0, -1.0) ];
      constraints = [ { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Ge; rhs = 0.0 } ];
    }
  in
  (match solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_negative_rhs_normalization () =
  (* -x <= -2  ⇔  x >= 2. *)
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (0, 1.0) ];
      constraints = [ { Simplex.coeffs = [ (0, -1.0) ]; relation = Simplex.Le; rhs = -2.0 } ];
    }
  in
  check_optimal "normalized" 2.0 (solve p)

let test_degenerate () =
  (* Multiple constraints active at the optimum. *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, -1.0); (1, -1.0) ];
      constraints =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (0, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (1, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (0, 1.0); (1, 2.0) ]; relation = Simplex.Le; rhs = 2.0 };
        ];
    }
  in
  check_optimal "degenerate optimum" (-1.0) (solve p)

let test_beale_cycling_example () =
  (* Beale's classic instance makes naive pivot rules cycle forever;
     Bland's rule must terminate at the optimum z = -1/20. *)
  let p =
    {
      Simplex.num_vars = 4;
      objective = [ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ];
      constraints =
        [
          {
            Simplex.coeffs = [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ];
            relation = Simplex.Le;
            rhs = 0.0;
          };
          {
            Simplex.coeffs = [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ];
            relation = Simplex.Le;
            rhs = 0.0;
          };
          { Simplex.coeffs = [ (2, 1.0) ]; relation = Simplex.Le; rhs = 1.0 };
        ];
    }
  in
  check_optimal "Beale optimum" (-0.05) (solve p)

let test_zero_objective () =
  (* Feasibility problem: any feasible point has objective 0. *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [];
      constraints =
        [ { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; relation = Simplex.Eq; rhs = 3.0 } ];
    }
  in
  check_optimal "feasibility" 0.0 (solve p)

let test_index_validation () =
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (1, 1.0) ];
      constraints = [];
    }
  in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Simplex.solve: variable index out of range") (fun () ->
      ignore (solve p))

(* Random LPs: cross-check weak duality style invariants. *)

let random_lp rng nvars nrows =
  let module Rng = Sso_prng.Rng in
  let constraints =
    List.init nrows (fun _ ->
        let coeffs =
          List.init nvars (fun j -> (j, Rng.float rng *. 2.0))
        in
        { Simplex.coeffs; relation = Simplex.Le; rhs = 1.0 +. Rng.float rng })
  in
  let objective = List.init nvars (fun j -> (j, -.(0.1 +. Rng.float rng))) in
  { Simplex.num_vars = nvars; objective; constraints }

let prop_random_le_lps_bounded_feasible =
  (* With all-Le positive rhs, origin is feasible; with negative objective
     coefficients and bounded rows, an optimum exists and is ≤ 0. *)
  QCheck.Test.make ~name:"random packing LPs solve to a non-positive optimum" ~count:60
    QCheck.(triple small_int (int_range 1 6) (int_range 1 8))
    (fun (seed, nvars, nrows) ->
      let rng = Sso_prng.Rng.create seed in
      match solve (random_lp rng nvars nrows) with
      | Simplex.Optimal { objective; solution } ->
          objective <= 1e-9
          && Array.for_all (fun x -> x >= -1e-9) solution
      | Simplex.Infeasible | Simplex.Unbounded -> false)

let prop_solution_feasible =
  QCheck.Test.make ~name:"returned solutions satisfy all constraints" ~count:60
    QCheck.(triple small_int (int_range 1 6) (int_range 1 8))
    (fun (seed, nvars, nrows) ->
      let rng = Sso_prng.Rng.create (seed + 999) in
      let p = random_lp rng nvars nrows in
      match solve p with
      | Simplex.Optimal { solution; _ } ->
          List.for_all
            (fun { Simplex.coeffs; relation; rhs } ->
              let lhs =
                List.fold_left (fun acc (j, a) -> acc +. (a *. solution.(j))) 0.0 coeffs
              in
              match relation with
              | Simplex.Le -> lhs <= rhs +. 1e-6
              | Simplex.Ge -> lhs >= rhs -. 1e-6
              | Simplex.Eq -> Float.abs (lhs -. rhs) <= 1e-6)
            p.Simplex.constraints
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "trivial minimum" `Quick test_trivial_minimum;
          Alcotest.test_case "two variables" `Quick test_two_var;
          Alcotest.test_case "maximize" `Quick test_maximize;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "Beale cycling example" `Quick test_beale_cycling_example;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "index validation" `Quick test_index_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_le_lps_bounded_feasible; prop_solution_feasible ] );
    ]
