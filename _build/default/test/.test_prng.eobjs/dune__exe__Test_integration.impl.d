test/test_integration.ml: Alcotest Array Float List Printf Sso_core Sso_demand Sso_flow Sso_graph Sso_oblivious Sso_prng Sso_sim
