test/test_stats.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sso_prng Sso_stats
