test/test_core.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck QCheck_alcotest Sso_core Sso_demand Sso_flow Sso_graph Sso_oblivious Sso_prng
