test/test_prng.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Sso_prng
