test/test_demand.ml: Alcotest Float List QCheck QCheck_alcotest Sso_demand Sso_graph Sso_prng
