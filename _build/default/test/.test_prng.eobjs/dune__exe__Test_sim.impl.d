test/test_sim.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Sso_core Sso_demand Sso_flow Sso_graph Sso_oblivious Sso_prng Sso_sim
