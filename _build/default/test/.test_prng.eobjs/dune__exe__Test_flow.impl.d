test/test_flow.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sso_demand Sso_flow Sso_graph Sso_prng
