test/test_oblivious.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Sso_demand Sso_flow Sso_graph Sso_oblivious Sso_prng
