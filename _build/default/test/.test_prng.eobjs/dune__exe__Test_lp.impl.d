test/test_lp.ml: Alcotest Array Float List QCheck QCheck_alcotest Sso_lp Sso_prng
