test/test_graph.ml: Alcotest Array Float Fun List QCheck QCheck_alcotest Set Sso_graph Sso_prng
