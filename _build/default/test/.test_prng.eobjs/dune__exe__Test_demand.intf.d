test/test_demand.mli:
