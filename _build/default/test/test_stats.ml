(* Tests for concentration-bound calculators and summary statistics. *)

module Stats = Sso_stats.Stats
module Rng = Sso_prng.Rng

let test_chernoff_mult_decays () =
  let p2 = Stats.chernoff_upper_mult ~mu:10.0 ~delta:2.0 in
  let p4 = Stats.chernoff_upper_mult ~mu:10.0 ~delta:4.0 in
  Alcotest.(check bool) "monotone in delta" true (p4 < p2);
  Alcotest.(check bool) "valid probability" true (p2 <= 1.0 && p2 >= 0.0);
  Alcotest.check_raises "delta below 2"
    (Invalid_argument "Stats.chernoff_upper_mult: requires delta >= 2") (fun () ->
      ignore (Stats.chernoff_upper_mult ~mu:1.0 ~delta:1.5))

let test_chernoff_add_decays () =
  let small = Stats.chernoff_upper_add ~mu:10.0 ~delta:0.5 in
  let large = Stats.chernoff_upper_add ~mu:10.0 ~delta:2.0 in
  Alcotest.(check bool) "monotone" true (large < small);
  (* Known value: delta=1, mu=3 → exp(-1) = e^{-1}. *)
  Alcotest.(check (float 1e-9)) "closed form" (Float.exp (-1.0))
    (Stats.chernoff_upper_add ~mu:3.0 ~delta:1.0)

let test_chernoff_empirically_valid () =
  (* Empirical tails of a Binomial(200, 0.05) (mu = 10) never exceed the
     additive Chernoff bound. *)
  let rng = Rng.create 99 in
  let trials = 20_000 in
  let samples =
    Array.init trials (fun _ ->
        let hits = ref 0 in
        for _ = 1 to 200 do
          if Rng.float rng < 0.05 then incr hits
        done;
        float_of_int !hits)
  in
  let mu = 10.0 in
  List.iter
    (fun delta ->
      let threshold = (1.0 +. delta) *. mu in
      let empirical = Stats.empirical_tail samples threshold in
      let bound = Stats.chernoff_upper_add ~mu ~delta in
      Alcotest.(check bool)
        (Printf.sprintf "tail at delta=%.1f (%.5f <= %.5f)" delta empirical bound)
        true (empirical <= bound +. 0.01))
    [ 0.5; 1.0; 1.5; 2.0 ]

let test_chernoff_mult_empirically_valid () =
  (* Multiplicative form at delta >= 2: Binomial(100, 0.02), mu = 2. *)
  let rng = Rng.create 123 in
  let trials = 20_000 in
  let samples =
    Array.init trials (fun _ ->
        let hits = ref 0 in
        for _ = 1 to 100 do
          if Rng.float rng < 0.02 then incr hits
        done;
        float_of_int !hits)
  in
  let mu = 2.0 in
  List.iter
    (fun delta ->
      let empirical = Stats.empirical_tail samples (delta *. mu) in
      let bound = Stats.chernoff_upper_mult ~mu ~delta in
      Alcotest.(check bool)
        (Printf.sprintf "tail at delta=%.1f (%.5f <= %.5f)" delta empirical bound)
        true (empirical <= bound +. 0.01))
    [ 2.0; 3.0; 4.0 ]

let test_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "stddev" (Float.sqrt 1.25) (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "singleton variance" 0.0 (Stats.variance [| 5.0 |])

let test_percentiles () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p20" 1.0 (Stats.percentile xs 20.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value xs)

let test_geometric_mean () =
  Alcotest.(check (float 1e-9)) "powers of two" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: samples must be positive") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_empirical_tail () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Stats.empirical_tail xs 3.0);
  Alcotest.(check (float 1e-9)) "all" 1.0 (Stats.empirical_tail xs 0.0);
  Alcotest.(check (float 1e-9)) "none" 0.0 (Stats.empirical_tail xs 10.0)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let xs = Array.of_list l in
      let m = Stats.mean xs in
      m >= Stats.min_value xs -. 1e-9 && m <= Stats.max_value xs +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair
              (list_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
              (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (l, (p1, p2)) ->
      let xs = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "chernoff",
        [
          Alcotest.test_case "multiplicative decays" `Quick test_chernoff_mult_decays;
          Alcotest.test_case "additive decays" `Quick test_chernoff_add_decays;
          Alcotest.test_case "empirically valid" `Slow test_chernoff_empirically_valid;
          Alcotest.test_case "multiplicative empirically valid" `Slow
            test_chernoff_mult_empirically_valid;
        ] );
      ( "summary",
        [
          Alcotest.test_case "mean and variance" `Quick test_mean_variance;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "empirical tail" `Quick test_empirical_tail;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mean_bounds; prop_percentile_monotone ] );
    ]
