(* The Section 8 lower bound, live.

   Build the gadget C(n,k) (Figure 1), hand the adversary an actual
   α-sparse sampled path system, and watch it construct — by the double
   pigeonhole + Hall matching from Lemma 8.1 — a permutation demand that
   the system must route with congestion ≥ matched/|S'| even though the
   offline optimum is 1.

   Run with: dune exec examples/lower_bound_adversary.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Ksp = Sso_oblivious.Ksp
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Lower_bound = Sso_core.Lower_bound

let () =
  (* n is deliberately small relative to k^(2α): with huge n the pigeonhole
     finds singleton bottlenecks at every α and the bound stops decaying. *)
  let n = 12 and k = 6 in
  let c = Gen.c_graph n k in
  let g = c.Gen.c_graph in
  Printf.printf "gadget C(%d,%d): two %d-leaf stars, centers joined by %d middles\n"
    n k n k;
  Printf.printf "(n = %d vertices, m = %d edges)\n\n" (Graph.n g) (Graph.m g);

  List.iter
    (fun alpha ->
      let rng = Rng.create (100 + alpha) in
      let base = Ksp.routing ~k:(2 * k) g in
      let system = Sampler.alpha_sample rng base ~alpha in
      let attack = Lower_bound.attack c system in
      let measured = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g system attack.Lower_bound.demand in
      Printf.printf
        "alpha = %d: adversary matched %d pairs through S' = {%s}\n"
        alpha attack.Lower_bound.pairs_matched
        (String.concat ","
           (List.map string_of_int attack.Lower_bound.bottleneck));
      Printf.printf
        "  certified bound %.2f | measured congestion %.2f | optimum 1.00\n"
        attack.Lower_bound.predicted_congestion measured)
    [ 1; 2; 3 ];

  Printf.printf "\nsparser systems are provably more attackable: the certified\n";
  Printf.printf "bound scales like k/alpha (Lemma 8.1), matching the paper's\n";
  Printf.printf "n^(1/2alpha)/alpha lower bound with k = n^(1/2alpha).\n"
