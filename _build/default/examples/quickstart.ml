(* Quickstart: the whole pipeline on a small grid.

   1. Build a graph.
   2. Build a competitive oblivious routing R (Räcke-style).
   3. Stage 2: sample an α-sparse path system P from R (the paper's
      construction, Definition 5.2).
   4. Stage 3: a demand arrives.
   5. Stage 4: adapt the sending rates on P to the demand.
   6. Stage 5: compare against the offline optimum.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Racke = Sso_oblivious.Racke
module Oblivious = Sso_oblivious.Oblivious
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious

let () =
  let rng = Rng.create 1 in
  (* 1. A 5x5 grid network. *)
  let g = Gen.grid 5 5 in
  Printf.printf "graph: 5x5 grid (n=%d, m=%d)\n" (Graph.n g) (Graph.m g);

  (* 2. The base oblivious routing. *)
  let base = Racke.routing (Rng.split rng) g in
  Printf.printf "base oblivious routing: %s\n" (Oblivious.name base);

  (* 3. Sample α = 4 candidate paths per pair — before seeing any demand. *)
  let alpha = 4 in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
  Printf.printf "sampled an alpha=%d path system\n" alpha;

  (* 4. Demand is revealed: a random permutation. *)
  let demand = Demand.random_permutation (Rng.split rng) (Graph.n g) in
  Printf.printf "demand: random permutation, %d packets\n"
    (Demand.support_size demand);

  (* 5. Stage 4: optimal rates on the candidate paths. *)
  let _, congestion = Semi_oblivious.route g system demand in
  Printf.printf "semi-oblivious congestion cong_R(P,d) = %.3f\n" congestion;

  (* 6. Compare against the offline optimum and the base routing. *)
  let opt = Semi_oblivious.opt g demand in
  let oblivious_cong = Oblivious.congestion base demand in
  Printf.printf "offline optimum ~ %.3f  |  full oblivious routing %.3f\n" opt
    oblivious_cong;
  Printf.printf "competitive ratio of the sparse system: %.2f\n"
    (congestion /. opt);
  Printf.printf
    "(only %d paths per pair were installed, vs %d in the full routing)\n"
    (Path_system.sparsity_on system (Demand.support demand))
    (Oblivious.support_sparsity base (Demand.support demand))
