(* Deterministic routing on the hypercube: bypassing the KKT91 barrier.

   [KKT91]: any deterministic oblivious routing on the hypercube suffers
   Ω(√n/Δ) congestion on some permutation — dimension-order (e-cube)
   routing hits it on the bit-reversal permutation.  Valiant's randomized
   trick avoids it but needs a distribution over Θ(n) paths per pair.

   The paper's contribution: deterministically select a FEW paths (a
   once-and-for-all α-sample of Valiant's routing) and adapt rates after
   the demand arrives.  The selection is a fixed object — no coins at
   routing time — yet the bit-reversal congestion collapses from √n-scale
   to polylog-scale.

   Run with: dune exec examples/hypercube_deterministic.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious

let () =
  let dim = 8 in
  let g = Gen.hypercube dim in
  Printf.printf "hypercube dimension %d (n = %d, sqrt n = %.1f)\n\n" dim
    (Graph.n g)
    (Float.sqrt (float_of_int (Graph.n g)));

  let demand = Demand.bit_reversal dim in
  Printf.printf "adversarial demand: bit-reversal permutation (%d packets)\n\n"
    (Demand.support_size demand);

  (* The deterministic 1-path baseline: e-cube routing. *)
  let ecube = Deterministic.ecube g in
  Printf.printf "e-cube (deterministic, 1 path/pair):    congestion %6.1f\n"
    (Oblivious.congestion ecube demand);

  (* The randomized classic: Valiant's trick. *)
  let valiant = Valiant.routing g in
  Printf.printf "Valiant (randomized, %d paths/pair):   congestion %6.2f\n"
    (Graph.n g)
    (Oblivious.congestion valiant demand);

  (* The paper: a deterministic selection of a few sampled paths. *)
  Printf.printf "\nsemi-oblivious alpha-samples of Valiant (deterministic once sampled):\n";
  List.iter
    (fun alpha ->
      let rng = Rng.create 2024 in
      let system = Sampler.alpha_sample rng valiant ~alpha in
      let cong = Semi_oblivious.congestion g system demand in
      Printf.printf "  alpha = %2d paths/pair:                congestion %6.2f\n"
        alpha cong)
    [ 1; 2; 4; 8 ];

  Printf.printf "\n(offline optimum is 1.0: the bit-reversal pairs admit disjoint routes)\n";
  Printf.printf
    "each extra sampled path improves congestion polynomially -- the power\n";
  Printf.printf "of a few random choices (Theorem 2.5).\n"
