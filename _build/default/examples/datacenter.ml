(* Semi-oblivious routing inside a data center fat-tree.

   Fat-trees have enormous path diversity (every cross-pod pair has many
   equal-cost routes through the core); classic ECMP spreads over all of
   them, but installing/maintaining the full set per pair is exactly the
   state-explosion problem that motivates sparse candidate sets.  This
   example shows a handful of sampled paths matching the optimum on
   shuffle-style workloads, and the hotspot sweep where the adaptive rates
   shine against static spreading.

   Run with: dune exec examples/datacenter.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Workload = Sso_demand.Workload
module Oblivious = Sso_oblivious.Oblivious
module Ksp = Sso_oblivious.Ksp
module Racke = Sso_oblivious.Racke
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Stats = Sso_stats.Stats

let () =
  let k = 4 in
  let g = Gen.fat_tree k in
  Printf.printf "network: %d-ary fat-tree (%d switches, %d links)\n\n" k
    (Graph.n g) (Graph.m g);
  let rng = Rng.create 21 in
  let racke = Racke.routing (Rng.split rng) g in
  let ksp = Ksp.routing ~k:4 g in
  let smore = Sampler.alpha_sample (Rng.split rng) racke ~alpha:4 in

  (* Shuffle phase: random permutation between edge switches. *)
  let shuffles =
    List.init 4 (fun _ -> Demand.random_permutation (Rng.split rng) (Graph.n g))
  in
  Printf.printf "shuffle workloads (4 random permutations):\n";
  Printf.printf "%-26s %12s %12s\n" "scheme" "mean ratio" "max ratio";
  let opts = List.map (fun d -> Semi_oblivious.opt g d) shuffles in
  let report name ratios =
    let arr = Array.of_list ratios in
    Printf.printf "%-26s %12.3f %12.3f\n" name (Stats.mean arr) (Stats.max_value arr)
  in
  report "ECMP-style KSP-4"
    (List.map2 (fun d opt -> Oblivious.congestion ksp d /. opt) shuffles opts);
  report "semi-oblivious a=4"
    (List.map2 (fun d opt -> Semi_oblivious.congestion g smore d /. opt) shuffles opts);

  (* Hotspot sweep: every switch takes a turn as the incast target. *)
  let sweep = Workload.hotspot_sweep ~n:(Graph.n g) in
  let sample = List.filteri (fun i _ -> i mod 5 = 0) sweep in
  Printf.printf "\nhotspot sweep (incast on every 5th switch):\n";
  let worst name f =
    let w =
      List.fold_left
        (fun acc d ->
          let opt = Semi_oblivious.opt g d in
          Float.max acc (f d /. opt))
        0.0 sample
    in
    Printf.printf "%-26s worst ratio %.3f\n" name w
  in
  worst "ECMP-style KSP-4" (fun d -> Oblivious.congestion ksp d);
  worst "semi-oblivious a=4" (fun d -> Semi_oblivious.congestion g smore d);
  Printf.printf
    "\nadaptive rates on 4 installed paths absorb both shuffles and\n";
  Printf.printf "incasts; static spreading cannot rebalance around the hotspot.\n"
