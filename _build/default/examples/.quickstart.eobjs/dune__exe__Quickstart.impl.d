examples/quickstart.ml: Printf Sso_core Sso_demand Sso_graph Sso_oblivious Sso_prng
