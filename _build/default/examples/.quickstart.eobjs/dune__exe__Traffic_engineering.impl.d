examples/traffic_engineering.ml: Array List Printf Sso_core Sso_demand Sso_graph Sso_oblivious Sso_prng Sso_stats String
