examples/lower_bound_adversary.mli:
