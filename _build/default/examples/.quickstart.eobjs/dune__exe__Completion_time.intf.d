examples/completion_time.mli:
