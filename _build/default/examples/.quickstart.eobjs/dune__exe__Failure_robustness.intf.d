examples/failure_robustness.mli:
