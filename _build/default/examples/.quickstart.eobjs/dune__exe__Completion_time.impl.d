examples/completion_time.ml: List Printf Sso_core Sso_demand Sso_flow Sso_graph Sso_prng
