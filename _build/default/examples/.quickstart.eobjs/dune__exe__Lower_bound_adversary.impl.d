examples/lower_bound_adversary.ml: List Printf Sso_core Sso_demand Sso_graph Sso_oblivious Sso_prng String
