examples/hypercube_deterministic.mli:
