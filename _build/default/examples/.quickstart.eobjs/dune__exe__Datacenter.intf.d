examples/datacenter.mli:
