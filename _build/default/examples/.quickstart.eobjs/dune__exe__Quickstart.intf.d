examples/quickstart.mli:
