examples/hypercube_deterministic.ml: Float List Printf Sso_core Sso_demand Sso_graph Sso_oblivious Sso_prng
