examples/datacenter.ml: Array Float List Printf Sso_core Sso_demand Sso_graph Sso_oblivious Sso_prng Sso_stats
