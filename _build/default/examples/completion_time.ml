(* Completion time vs congestion (Section 7).

   On a network with one short link and many long detours, minimizing
   congestion alone spreads traffic across the detours and ruins the
   completion time (congestion + dilation).  Lemma 2.8's construction —
   union of α-samples from hop-constrained oblivious routings over a
   geometric hop ladder — lets Stage 4 pick the right tradeoff per demand.

   Run with: dune exec examples/completion_time.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Semi_oblivious = Sso_core.Semi_oblivious
module Completion = Sso_core.Completion

let () =
  let detours = 6 and detour_len = 10 in
  let g = Gen.multi_path (1 :: List.init detours (fun _ -> detour_len)) in
  Printf.printf
    "network: terminals joined by 1 direct link and %d disjoint %d-hop detours\n\n"
    detours detour_len;

  let rng = Rng.create 11 in
  let system = Completion.ladder_system rng g ~alpha:3 in

  Printf.printf "%-10s | %-28s | %-28s\n" "packets" "congestion-only routing"
    "completion-aware routing";
  Printf.printf "%-10s | %8s %8s %9s | %8s %8s %9s\n" "" "cong" "dil" "c+d"
    "cong" "dil" "c+d";
  List.iter
    (fun packets ->
      let d = Demand.single_pair 0 1 (float_of_int packets) in
      (* Congestion-only Stage 4 on the same candidates. *)
      let cong_routing, cong_only = Semi_oblivious.route g system d in
      let cong_dil = Routing.dilation cong_routing d in
      (* Completion-aware Stage 4. *)
      let _, cong, dil = Completion.route g system d in
      Printf.printf "%-10d | %8.2f %8d %9.2f | %8.2f %8d %9.2f\n" packets
        cong_only cong_dil
        (cong_only +. float_of_int cong_dil)
        cong dil
        (cong +. float_of_int dil))
    [ 1; 2; 4; 8; 24 ];

  Printf.printf
    "\nfor small demands the completion-aware router sticks to the short link\n";
  Printf.printf
    "(paying congestion, saving dilation); as demand grows it gradually\n";
  Printf.printf "recruits detours -- the crossover the objective predicts.\n"
