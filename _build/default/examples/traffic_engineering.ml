(* SMORE-style traffic engineering on an Abilene-like WAN.

   [KYY+18] sample a handful of paths per pair from an oblivious (Räcke)
   routing and adapt sending rates to measured traffic — exactly the
   paper's semi-oblivious construction with small α.  This example
   reproduces the comparison the paper's Section 1.1 cites: traditional
   KSP spreading vs full oblivious routing vs sparse semi-oblivious
   (α = 4, SMORE's choice) vs the offline optimum, on gravity-model
   traffic matrices.

   Run with: dune exec examples/traffic_engineering.exe *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Oblivious = Sso_oblivious.Oblivious
module Racke = Sso_oblivious.Racke
module Ksp = Sso_oblivious.Ksp
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Stats = Sso_stats.Stats

let () =
  let rng = Rng.create 7 in
  let g, cities = Gen.abilene () in
  Printf.printf "network: Abilene-like WAN, %d cities, %d links\n" (Graph.n g)
    (Graph.m g);
  Printf.printf "cities: %s\n\n" (String.concat ", " (Array.to_list cities));

  let racke = Racke.routing (Rng.split rng) g in
  let ksp4 = Ksp.routing ~k:4 g in
  let smore = Sampler.alpha_sample (Rng.split rng) racke ~alpha:4 in

  let matrices =
    List.init 5 (fun _ -> Demand.gravity (Rng.split rng) ~n:(Graph.n g) ~total:60.0)
  in

  Printf.printf "%-28s %12s %12s\n" "scheme" "mean ratio" "max ratio";
  let report name ratios =
    let arr = Array.of_list ratios in
    Printf.printf "%-28s %12.3f %12.3f\n" name (Stats.mean arr) (Stats.max_value arr)
  in

  let opts = List.map (fun d -> Semi_oblivious.opt g d) matrices in

  (* Traditional TE: spread on 4 shortest paths, oblivious to capacity. *)
  report "KSP-4 (traditional TE)"
    (List.map2 (fun d opt -> Oblivious.congestion ksp4 d /. opt) matrices opts);

  (* Full oblivious: competitive but needs every support path installed. *)
  report "oblivious (Racke, full)"
    (List.map2 (fun d opt -> Oblivious.congestion racke d /. opt) matrices opts);

  (* SMORE: α = 4 sampled paths, rates adapted per matrix (Stage 4). *)
  report "semi-oblivious (SMORE, a=4)"
    (List.map2
       (fun d opt -> Semi_oblivious.congestion g smore d /. opt)
       matrices opts);

  print_newline ();
  Printf.printf
    "SMORE installs 4 paths per pair yet tracks the optimum closely;\n";
  Printf.printf
    "KSP-4 has the same sparsity but no capacity awareness, and the full\n";
  Printf.printf "oblivious routing cannot adapt its rates to the matrix.\n"
