#!/bin/sh
# Arena-scale smoke test: build a 50,000-switch fat-tree (k = 200), run
# alpha-sampling through the arena path cold into a temporary cache, then
# warm at --jobs 1 and --jobs 4, and assert the outputs are byte-identical
# once the wall-clock line is normalized away.  The printed system digest
# covers every stored slice in canonical pair order, so it must agree
# across all runs, the warm runs must record cache hits, and every run
# must clear the 4x bytes/pair reduction gate (the bench exits 1 below
# it).  Also checks that `sso cache stat` reports the alpha-sample
# payloads the cold run deposited.  A one-tree Räcke forest rides along
# (--scale-racke-trees 1): its printed digest must agree between the cold
# run and both warm runs, which read the forest back from the cache.
. "$(dirname "$0")/smoke_lib.sh"
cache="$dir/cache"

run() {
  jobs="$1"
  out="$2"
  shift 2
  "$BENCH" --scale --scale-k 200 --scale-pairs 256 --scale-racke-trees 1 \
    --jobs "$jobs" --cache-dir "$cache" "$@" > "$dir/$out.raw"
  # The materialize and racke build lines are wall-clock; everything else
  # is deterministic.
  sed -e 's/^materialize: .*/materialize: X/' \
    -e 's/^racke build: .*/racke build: X/' "$dir/$out.raw" > "$dir/$out"
}

run 1 cold.txt --json "$dir/cold.json"
run 1 warm1.txt --json "$dir/warm1.json"
run 4 warm4.txt --json "$dir/warm4.json"
cmp "$dir/cold.txt" "$dir/warm1.txt"
cmp "$dir/cold.txt" "$dir/warm4.txt"

grep -q '^system digest: [0-9a-f]\{16\}$' "$dir/cold.txt"
grep -q '^scale: ok' "$dir/cold.txt"
grep -q '^racke forest digest: [0-9a-f]\{16\}$' "$dir/cold.txt"
grep -q '^racke: ok' "$dir/cold.txt"

# The cold run must deposit the alpha-sample payload; both warm runs must
# read it back.
grep -q '"miss": [1-9]' "$dir/cold.json"
grep -q '"hit": [1-9]' "$dir/warm1.json"
grep -q '"hit": [1-9]' "$dir/warm4.json"

"$SSO" cache stat --cache-dir "$cache" > "$dir/stat.txt"
grep -q 'alpha-sample' "$dir/stat.txt"

digest=$(sed -n 's/^system digest: //p' "$dir/cold.txt")
echo "scale smoke: OK (digest=$digest)"
