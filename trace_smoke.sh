#!/bin/sh
# Tracing smoke test: record a --kernels trace at --jobs 1 and --jobs 4,
# assert the event sequences are identical (the deterministic-merge
# contract of DESIGN.md §8), validate the versioned header and that the
# per-round MWU telemetry is present for both the unrestricted and the
# hop-limited solver, and run the `sso trace` analyzers over the file —
# including their exit-code contract (10 unreadable, 11 corrupt, like
# `sso cache`).
. "$(dirname "$0")/smoke_lib.sh"

"$BENCH" --kernels --trace "$dir/j1.jsonl" --jobs 1 > /dev/null
"$BENCH" --kernels --trace "$dir/j4.jsonl" --jobs 4 > /dev/null

# Header: versioned schema tag.
head -1 "$dir/j1.jsonl" | grep -q '"schema":"sso-trace","version":1' || {
  echo "trace_smoke: bad or missing trace header" >&2
  exit 1
}

# Convergence telemetry: per-round events from both instrumented solvers.
for solver in unrestricted hop_limited; do
  grep '"name":"mwu.round"' "$dir/j1.jsonl" | grep -q "\"solver\":\"$solver\"" || {
    echo "trace_smoke: no mwu.round events for the $solver solver" >&2
    exit 1
  }
done

# Determinism: strip wall-clock fields (ts_ns, dur_ns), the jobs meta
# field, and the timing-dependent histogram trailer lines; everything
# left — every event, in order, with its attributes — must be identical.
normalize() {
  grep -v '"kind":"histogram"' "$1" \
    | sed -e 's/"ts_ns":[0-9-]*/"ts_ns":0/g' \
          -e 's/"dur_ns":[0-9-]*/"dur_ns":0/g' \
          -e 's/"jobs":[0-9]*/"jobs":0/g'
}
normalize "$dir/j1.jsonl" > "$dir/j1.norm"
normalize "$dir/j4.jsonl" > "$dir/j4.norm"
cmp "$dir/j1.norm" "$dir/j4.norm" || {
  echo "trace_smoke: traces differ between --jobs 1 and --jobs 4" >&2
  exit 1
}

# Analyzer: summary must mention the span totals and the convergence table.
"$SSO" trace summary "$dir/j1.jsonl" > "$dir/summary.txt"
grep -q 'kernels.mwu_unrestricted_shared' "$dir/summary.txt"
grep -q 'solver=unrestricted' "$dir/summary.txt"
"$SSO" trace convergence "$dir/j1.jsonl" > /dev/null
"$SSO" trace spans "$dir/j1.jsonl" > /dev/null
"$SSO" trace diff "$dir/j1.jsonl" "$dir/j4.jsonl" > /dev/null

# Exit codes: 10 for an unreadable path, 11 for a corrupt file.
expect_exit 10 "missing trace" "$SSO" trace summary "$dir/missing.jsonl"
echo 'not a trace' > "$dir/corrupt.jsonl"
expect_exit 11 "corrupt trace" "$SSO" trace summary "$dir/corrupt.jsonl"

echo "trace_smoke: ok"
