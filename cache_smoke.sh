#!/bin/sh
# Artifact-cache smoke test: run E5 cold into a temporary cache directory,
# re-run warm at --jobs 1 and --jobs 4, and assert the three outputs are
# byte-identical with at least one recorded cache hit on the warm runs.
# Also checks the `sso cache` exit-code contract: 0 on a healthy store,
# 11 when corrupt entries are present, 10 when the directory is unusable.
. "$(dirname "$0")/smoke_lib.sh"
cache="$dir/cache"

run() {
  jobs="$1"
  shift
  "$BENCH" --experiment E5 --no-timing --jobs "$jobs" --cache-dir "$cache" "$@"
}

run 1 > "$dir/cold.txt"
run 1 > "$dir/warm1.txt"
run 4 > "$dir/warm4.txt"
cmp "$dir/cold.txt" "$dir/warm1.txt"
cmp "$dir/cold.txt" "$dir/warm4.txt"

run 1 --metrics > "$dir/metrics.txt"
hits=$(awk '$1 == "artifact.hit" { print $2 }' "$dir/metrics.txt")
test -n "$hits"
test "$hits" -gt 0

"$SSO" cache stat --cache-dir "$cache" > /dev/null

# Corrupt store: a planted undecodable entry must flip the exit code to 11.
printf 'garbage' > "$cache/deadbeefdeadbeef.art"
expect_exit 11 "planted corrupt entry" "$SSO" cache ls --cache-dir "$cache"
"$SSO" cache gc --cache-dir "$cache" > /dev/null
"$SSO" cache stat --cache-dir "$cache" > /dev/null

# Unusable store directory (a regular file): exit code 10.
expect_exit 10 "store path is a file" "$SSO" cache stat --cache-dir "$dir/cold.txt"

echo "cache smoke: OK (warm hits=$hits)"
