exception Unreadable of string
exception Corrupt of string

let schema_version = 1

type value = Int of int | Float of float | Bool of bool | String of string
type kind = Span | Event

type event = {
  slot : int;
  seq : int;
  ts_ns : int;
  kind : kind;
  name : string;
  dur_ns : int;
  depth : int;
  attrs : (string * value) list;
}

type histogram = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

type t = {
  meta : (string * value) list;
  dropped : int;
  events : event list;
  histograms : histogram list;
}

(* ---------- encoding ---------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no literals for nan/inf; null and the overflowing 1e999 (which
   float_of_string reads back as infinity) keep every float representable. *)
let add_float buf f =
  if Float.is_nan f then Buffer.add_string buf "null"
  else if f = Float.infinity then Buffer.add_string buf "1e999"
  else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
  else begin
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string buf ".0"
  end

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | String s -> add_escaped buf s

let add_fields buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    fields;
  Buffer.add_char buf '}'

let encode_event buf e =
  Buffer.add_string buf "{\"slot\":";
  Buffer.add_string buf (string_of_int e.slot);
  Buffer.add_string buf ",\"seq\":";
  Buffer.add_string buf (string_of_int e.seq);
  Buffer.add_string buf ",\"ts_ns\":";
  Buffer.add_string buf (string_of_int e.ts_ns);
  Buffer.add_string buf ",\"kind\":";
  Buffer.add_string buf (match e.kind with Span -> "\"span\"" | Event -> "\"event\"");
  Buffer.add_string buf ",\"name\":";
  add_escaped buf e.name;
  Buffer.add_string buf ",\"dur_ns\":";
  Buffer.add_string buf (string_of_int e.dur_ns);
  Buffer.add_string buf ",\"depth\":";
  Buffer.add_string buf (string_of_int e.depth);
  Buffer.add_string buf ",\"attrs\":";
  add_fields buf e.attrs;
  Buffer.add_char buf '}'

let encode_header buf t =
  Buffer.add_string buf "{\"schema\":\"sso-trace\",\"version\":";
  Buffer.add_string buf (string_of_int schema_version);
  Buffer.add_string buf ",\"meta\":";
  add_fields buf t.meta;
  Buffer.add_string buf ",\"dropped\":";
  Buffer.add_string buf (string_of_int t.dropped);
  Buffer.add_string buf ",\"events\":";
  Buffer.add_string buf (string_of_int (List.length t.events));
  Buffer.add_char buf '}'

let encode_histogram buf h =
  Buffer.add_string buf "{\"kind\":\"histogram\",\"name\":";
  add_escaped buf h.h_name;
  Buffer.add_string buf ",\"count\":";
  Buffer.add_string buf (string_of_int h.h_count);
  Buffer.add_string buf ",\"sum\":";
  Buffer.add_string buf (string_of_int h.h_sum);
  Buffer.add_string buf ",\"buckets\":{";
  List.iteri
    (fun i (b, c) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf (string_of_int b);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int c))
    h.h_buckets;
  Buffer.add_string buf "}}"

let save path t =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let buf = Buffer.create 65536 in
        encode_header buf t;
        Buffer.add_char buf '\n';
        List.iter
          (fun e ->
            encode_event buf e;
            Buffer.add_char buf '\n';
            if Buffer.length buf > 1_000_000 then begin
              Buffer.output_buffer oc buf;
              Buffer.clear buf
            end)
          t.events;
        List.iter
          (fun h ->
            encode_histogram buf h;
            Buffer.add_char buf '\n')
          t.histograms;
        Buffer.output_buffer oc buf);
    Sys.rename tmp path
  with Sys_error msg -> raise (Unreadable msg)

(* ---------- generic JSON parsing ---------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of string
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let fail msg = raise (Corrupt msg)

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c at offset %d" c !pos)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "bad literal at offset %d" !pos)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              if !pos >= n then fail "unterminated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'; advance ()
              | '\\' -> Buffer.add_char buf '\\'; advance ()
              | '/' -> Buffer.add_char buf '/'; advance ()
              | 'n' -> Buffer.add_char buf '\n'; advance ()
              | 'r' -> Buffer.add_char buf '\r'; advance ()
              | 't' -> Buffer.add_char buf '\t'; advance ()
              | 'b' -> Buffer.add_char buf '\b'; advance ()
              | 'f' -> Buffer.add_char buf '\012'; advance ()
              | 'u' ->
                  advance ();
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* Encode the code point as UTF-8; traces only ever
                     escape control chars so surrogates are not handled. *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              go ()
          | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail (Printf.sprintf "bad number at offset %d" start);
      String.sub s start (!pos - start)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let members = ref [] in
            let rec members_loop () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              members := (k, v) :: !members;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members_loop ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or } in object"
            in
            members_loop ();
            Obj (List.rev !members)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); Arr [] end
          else begin
            let items = ref [] in
            let rec items_loop () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); items_loop ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ] in array"
            in
            items_loop ();
            Arr (List.rev !items)
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail (Printf.sprintf "trailing garbage at offset %d" !pos);
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let number = function
    | Num raw -> ( try Some (float_of_string raw) with _ -> None)
    | _ -> None
end

(* ---------- decoding ---------- *)

let value_of_json = function
  | Json.Null -> Some (Float Float.nan)
  | Json.Bool b -> Some (Bool b)
  | Json.Str s -> Some (String s)
  | Json.Num raw -> (
      match int_of_string_opt raw with
      | Some i -> Some (Int i)
      | None -> (
          match float_of_string_opt raw with
          | Some f -> Some (Float f)
          | None -> None))
  | Json.Arr _ | Json.Obj _ -> None

let get_int name j k =
  match Json.member k j with
  | Some (Json.Num raw) -> (
      match int_of_string_opt raw with
      | Some i -> i
      | None -> raise (Corrupt (Printf.sprintf "%s: field %S not an int" name k)))
  | _ -> raise (Corrupt (Printf.sprintf "%s: missing int field %S" name k))

let get_string name j k =
  match Json.member k j with
  | Some (Json.Str s) -> s
  | _ -> raise (Corrupt (Printf.sprintf "%s: missing string field %S" name k))

let get_obj name j k =
  match Json.member k j with
  | Some (Json.Obj fields) -> fields
  | _ -> raise (Corrupt (Printf.sprintf "%s: missing object field %S" name k))

let attrs_of_fields name fields =
  List.map
    (fun (k, v) ->
      match value_of_json v with
      | Some v -> (k, v)
      | None -> raise (Corrupt (Printf.sprintf "%s: bad attr %S" name k)))
    fields

let decode_event j =
  let kind =
    match get_string "event" j "kind" with
    | "span" -> Span
    | "event" -> Event
    | k -> raise (Corrupt (Printf.sprintf "unknown event kind %S" k))
  in
  {
    slot = get_int "event" j "slot";
    seq = get_int "event" j "seq";
    ts_ns = get_int "event" j "ts_ns";
    kind;
    name = get_string "event" j "name";
    dur_ns = get_int "event" j "dur_ns";
    depth = get_int "event" j "depth";
    attrs = attrs_of_fields "event" (get_obj "event" j "attrs");
  }

let decode_histogram j =
  let buckets =
    List.map
      (fun (k, v) ->
        match (int_of_string_opt k, v) with
        | Some b, Json.Num raw -> (
            match int_of_string_opt raw with
            | Some c -> (b, c)
            | None -> raise (Corrupt "histogram: bad bucket count"))
        | _ -> raise (Corrupt "histogram: bad bucket"))
      (get_obj "histogram" j "buckets")
  in
  {
    h_name = get_string "histogram" j "name";
    h_count = get_int "histogram" j "count";
    h_sum = get_int "histogram" j "sum";
    h_buckets = buckets;
  }

let read_lines path =
  let ic = try open_in_bin path with Sys_error msg -> raise (Unreadable msg) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then lines := line :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let load path =
  match read_lines path with
  | [] -> raise (Corrupt "empty trace file")
  | header_line :: rest ->
      let header = Json.parse header_line in
      (match Json.member "schema" header with
      | Some (Json.Str "sso-trace") -> ()
      | _ -> raise (Corrupt "missing sso-trace schema tag"));
      let version = get_int "header" header "version" in
      if version <> schema_version then
        raise (Corrupt (Printf.sprintf "unsupported trace version %d" version));
      let meta = attrs_of_fields "header" (get_obj "header" header "meta") in
      let dropped = get_int "header" header "dropped" in
      let declared = get_int "header" header "events" in
      let events = ref [] and histograms = ref [] in
      List.iter
        (fun line ->
          let j = Json.parse line in
          match Json.member "kind" j with
          | Some (Json.Str "histogram") ->
              histograms := decode_histogram j :: !histograms
          | _ -> events := decode_event j :: !events)
        rest;
      let events = List.rev !events in
      let found = List.length events in
      if found <> declared then
        raise
          (Corrupt
             (Printf.sprintf "truncated trace: header declares %d events, found %d"
                declared found));
      { meta; dropped; events; histograms = List.rev !histograms }

let value_equal a b =
  match (a, b) with
  | Float x, Float y -> (Float.is_nan x && Float.is_nan y) || x = y
  | a, b -> a = b

(* ---------- aggregation ---------- *)

let span_totals events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if e.kind = Span then begin
        let calls, total = try Hashtbl.find tbl e.name with Not_found -> (0, 0) in
        Hashtbl.replace tbl e.name (calls + 1, total + e.dur_ns)
      end)
    events;
  Hashtbl.fold (fun name (calls, total) acc -> (name, calls, total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let event_counts events =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      if e.kind = Event then
        Hashtbl.replace tbl e.name
          (1 + try Hashtbl.find tbl e.name with Not_found -> 0))
    events;
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) tbl []
  |> List.sort compare

(* ---------- span-tree profiling ---------- *)

type span_node = {
  n_name : string;
  n_dur : int;
  n_children : span_node list; (* in emission order *)
}

(* Spans are recorded at exit (post-order): within one slot every child's
   span event precedes its parent's and carries a strictly greater depth
   ([in_task] resets depth to 0 per slot).  Scanning a slot in seq order
   with a pending stack therefore rebuilds the call tree: a span at depth
   [d] claims every pending node of depth > [d] as its children. *)
let span_forest events =
  let acc = ref [] in (* completed roots, most recent first *)
  let pending = ref [] in (* (depth, node), most recent first *)
  let slot = ref min_int in
  let flush () =
    List.iter (fun (_, n) -> acc := n :: !acc) (List.rev !pending);
    pending := []
  in
  List.iter
    (fun e ->
      if e.kind = Span then begin
        if e.slot <> !slot then begin
          flush ();
          slot := e.slot
        end;
        let rec claim children = function
          | (d, n) :: rest when d > e.depth -> claim ((d, n) :: children) rest
          | rest -> (children, rest)
        in
        let taken, rest = claim [] !pending in
        (* [claim] reverses the newest-first stack, so [taken] is already
           in emission order. *)
        let node =
          { n_name = e.name; n_dur = e.dur_ns; n_children = List.map snd taken }
        in
        pending := (e.depth, node) :: rest
      end)
    events;
  flush ();
  List.rev !acc

(* Depth-first walk accumulating [f acc path node self_ns]; [path] is the
   ;-joined span names from the root, self time is the node's duration
   minus its direct children's (clamped at 0 — clock jitter can make
   children sum past the parent). *)
let fold_span_tree f init forest =
  let rec go prefix acc n =
    let path = if prefix = "" then n.n_name else prefix ^ ";" ^ n.n_name in
    let child_dur = List.fold_left (fun s c -> s + c.n_dur) 0 n.n_children in
    let self = max 0 (n.n_dur - child_dur) in
    let acc = f acc path n self in
    List.fold_left (go path) acc n.n_children
  in
  List.fold_left (go "") init forest

let folded_stacks events =
  let tbl = Hashtbl.create 64 in
  ignore
    (fold_span_tree
       (fun () path _ self ->
         let calls, self_ns =
           try Hashtbl.find tbl path with Not_found -> (0, 0)
         in
         Hashtbl.replace tbl path (calls + 1, self_ns + self))
       () (span_forest events));
  Hashtbl.fold (fun path (calls, self_ns) acc -> (path, calls, self_ns) :: acc)
    tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let self_totals events =
  let tbl = Hashtbl.create 64 in
  ignore
    (fold_span_tree
       (fun () _ n self ->
         let calls, total, self_ns =
           try Hashtbl.find tbl n.n_name with Not_found -> (0, 0, 0)
         in
         Hashtbl.replace tbl n.n_name (calls + 1, total + n.n_dur, self_ns + self))
       () (span_forest events));
  Hashtbl.fold
    (fun name (calls, total, self_ns) acc -> (name, calls, total, self_ns) :: acc)
    tbl []
  |> List.sort (fun (a1, _, _, s1) (a2, _, _, s2) ->
         if s1 <> s2 then compare s2 s1 else compare a1 a2)

let attr e k = List.assoc_opt k e.attrs

type round = {
  r_round : int;
  r_cong : float;
  r_avg : float;
  r_potential : float;
  r_paths : int;
}

type solve = {
  s_solver : string;
  s_pairs : int;
  s_iters : int;
  s_rounds : round list;
}

let num_attr e k =
  match attr e k with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let int_attr e k = match attr e k with Some (Int i) -> Some i | _ -> None
let str_attr e k = match attr e k with Some (String s) -> Some s | _ -> None

(* Solves never interleave in (slot, seq) order: a solve's rounds are emitted
   by the stream that emitted its "mwu.solve" marker, on slots strictly after
   every earlier solve's (task blocks are slot-contiguous; the main stream's
   slots only grow).  So a single sequential scan attaches each "mwu.round"
   to the most recent marker. *)
let mwu_solves events =
  let solves = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (solver, pairs, iters, rounds) ->
        solves :=
          { s_solver = solver; s_pairs = pairs; s_iters = iters;
            s_rounds = List.rev rounds }
          :: !solves;
        current := None
  in
  List.iter
    (fun e ->
      if e.kind = Event then
        match e.name with
        | "mwu.solve" ->
            flush ();
            let solver = Option.value ~default:"?" (str_attr e "solver") in
            let pairs = Option.value ~default:0 (int_attr e "pairs") in
            let iters = Option.value ~default:0 (int_attr e "iters") in
            current := Some (solver, pairs, iters, [])
        | "mwu.round" -> (
            match !current with
            | None -> ()
            | Some (solver, pairs, iters, rounds) ->
                let r =
                  {
                    r_round = Option.value ~default:0 (int_attr e "round");
                    r_cong =
                      Option.value ~default:Float.nan
                        (num_attr e "round_congestion");
                    r_avg =
                      Option.value ~default:Float.nan
                        (num_attr e "avg_congestion");
                    r_potential =
                      Option.value ~default:Float.nan (num_attr e "potential");
                    r_paths =
                      Option.value ~default:0 (int_attr e "support_paths");
                  }
                in
                current := Some (solver, pairs, iters, r :: rounds))
        | _ -> ())
    events;
  flush ();
  List.rev !solves
