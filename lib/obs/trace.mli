(** JSONL trace files: the on-disk form of the {!Obs} event streams.

    A trace is one JSON object per line — a versioned header, then every
    event sorted by its deterministic [(slot, seq)] key, then one trailer
    line per non-empty histogram.  The codec is hand-rolled (the project
    deliberately carries no JSON dependency) and restricted to the subset
    these lines use; [save] writes atomically (temp file + rename) so a
    crashed run never leaves a half-written trace behind. *)

exception Unreadable of string
(** The file (or its temp sibling during [save]) cannot be read/written —
    an I/O problem, not a format problem.  [sso trace] maps this to exit
    code 10, matching [sso cache]. *)

exception Corrupt of string
(** The file is readable but not a valid trace: bad JSON, a missing schema
    tag, an unsupported version, or a truncation (fewer events than the
    header declares).  [sso trace] maps this to exit code 11. *)

val schema_version : int
(** Version written into (and required of) the header line. *)

type value = Int of int | Float of float | Bool of bool | String of string
(** Attribute values.  Finite floats round-trip exactly ([%.17g]);
    infinities are written as [±1e999] and NaN as [null]. *)

type kind = Span | Event

type event = {
  slot : int;  (** deterministic stream id (task slot), see DESIGN.md §8 *)
  seq : int;  (** position within the stream *)
  ts_ns : int;  (** wall clock; the only nondeterministic field with [dur_ns] *)
  kind : kind;
  name : string;
  dur_ns : int;  (** span duration; 0 for point events *)
  depth : int;  (** span nesting depth at emission *)
  attrs : (string * value) list;
}

type histogram = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;  (** (log2 bucket, count), ascending, non-zero *)
}

type t = {
  meta : (string * value) list;  (** header metadata: seed, jobs, git, ... *)
  dropped : int;  (** events lost to ring-buffer saturation *)
  events : event list;  (** sorted by (slot, seq) *)
  histograms : histogram list;
}

val save : string -> t -> unit
(** Write atomically (temp + rename).  @raise Unreadable on I/O errors. *)

val load : string -> t
(** @raise Unreadable when the file cannot be read, [Corrupt] when it
    parses wrong or is truncated. *)

val value_equal : value -> value -> bool
(** Structural equality with [NaN = NaN] (for round-trip tests). *)

(** {1 Aggregation} *)

val span_totals : event list -> (string * int * int) list
(** Per span name: (name, calls, total ns), sorted by name. *)

val event_counts : event list -> (string * int) list
(** Per point-event name: (name, count), sorted by name. *)

val attr : event -> string -> value option

(** {1 Span-tree profiling}

    Spans are recorded at exit (post-order) with their nesting depth, so
    the call tree is reconstructible per slot: scanning a slot in [seq]
    order, a span at depth [d] is the parent of every not-yet-claimed
    span of greater depth.  Paths and call counts depend only on the
    deterministic [(slot, seq)] order — jobs-invariant; the ns weights
    are wall clock. *)

val folded_stacks : event list -> (string * int * int) list
(** Folded flamegraph lines: ([;]-joined span path from the root, calls,
    self ns = duration minus direct children), sorted by path.  Events
    must be in their sorted [(slot, seq)] order, as [load] returns
    them. *)

val self_totals : event list -> (string * int * int * int) list
(** Per span name: (name, calls, total ns, self ns), sorted by self ns
    descending then name. *)

type round = {
  r_round : int;
  r_cong : float;  (** max edge congestion of this round's best responses *)
  r_avg : float;  (** congestion of the routing averaged up to this round *)
  r_potential : float;  (** adversary potential: max cumulative normalized load *)
  r_paths : int;  (** distinct paths in the averaged routing's support *)
}

type solve = {
  s_solver : string;
  s_pairs : int;
  s_iters : int;
  s_rounds : round list;  (** in round order *)
}

val mwu_solves : event list -> solve list
(** Group ["mwu.solve"]/["mwu.round"] events (in trace order — events must
    be in their sorted [(slot, seq)] order, as [load] returns them) into
    per-solve convergence trajectories. *)

(** {1 Generic JSON access}

    The parser behind [load], exposed so other tools (the bench overhead
    guard reading BENCH_kernels.json) can read small JSON files without a
    dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of string  (** raw spelling; convert per use site *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> t
  (** @raise Corrupt on malformed input. *)

  val member : string -> t -> t option
  val number : t -> float option
end
