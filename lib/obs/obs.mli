(** Deterministic tracing + metrics.

    Two layers share one module:

    - {b Always-on aggregates} — counters, spans (wall time + calls), and
      log-scale histograms in a thread-safe registry.  These subsume the
      old [Engine.Metrics] registry; [metrics_table]/[metrics_json]
      reproduce its output byte-for-byte.
    - {b Trace events} — gated by [set_tracing].  When tracing is off,
      [event] is a flag test and [traced] runs its thunk directly; call
      sites guard attribute construction with [tracing ()] so the
      disabled path allocates nothing.

    Every trace event carries a deterministic [(slot, seq)] key: [slot]
    identifies the emitting stream (the main thread between parallel
    regions, or one task of a parallel region), [seq] its position within
    that stream.  The engine pool pre-assigns one slot per task
    ({!reserve_slots} / {!in_task}), so sorting by [(slot, seq)] recovers
    the serial execution order no matter how many domains actually ran the
    tasks — traces are identical at any [--jobs].  See DESIGN.md §8. *)

val now_ns : unit -> int
(** Wall clock in integer nanoseconds. *)

(** {1 Tracing switch} *)

val set_tracing : bool -> unit
val tracing : unit -> bool

(** {1 Deterministic streams} — used by [Engine.Pool]; most code never
    calls these. *)

val reserve_slots : int -> int
(** Atomically reserve [n] consecutive stream slots; returns the first. *)

val in_task : int -> (unit -> 'a) -> 'a
(** Run the thunk with a fresh stream on the given slot (and span depth
    reset to 0), restoring the caller's stream and depth afterwards. *)

val fresh_stream : unit -> unit
(** Drop the current domain's stream; the next event lazily reserves a
    new, strictly higher slot.  Called after a parallel region so the
    caller's subsequent events sort after the region's tasks. *)

(** {1 Trace events} *)

val event : ?attrs:(string * Trace.value) list -> string -> unit
(** Emit a point event (no-op when tracing is off). *)

val traced : ?attrs:(string * Trace.value) list -> string -> (unit -> 'a) -> 'a
(** Trace-only span: emits a span event on exit (duration, nesting depth)
    without touching the metrics registry.  When tracing is off this is
    exactly [f ()]. *)

(** {1 Metrics registry} *)

type counter
type span
type histogram

val counter : string -> counter
(** Find or create; same name returns the same (physically equal) counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val histogram : string -> histogram
(** Log2-bucketed histogram of non-negative integer samples. *)

val observe : histogram -> int -> unit

val span : string -> span
(** Find or create.  Also registers a ["span." ^ name] duration histogram
    fed by every [with_span] call. *)

val with_span : ?attrs:(string * Trace.value) list -> span -> (unit -> 'a) -> 'a
(** Run the closure, accumulating wall time and one call (also on
    exceptions).  When tracing is on, additionally emits a span trace
    event carrying [attrs]. *)

val time : string -> (unit -> 'a) -> 'a
val span_total_ns : span -> int
val span_calls : span -> int

(** {1 Gauges and rolling quantiles}

    Live telemetry primitives for the serve loop.  Both carry wall-clock
    (or otherwise nondeterministic) values, so they are {e excluded from
    every deterministic output path} — digests, replay JSON, trace event
    payloads.  They surface only through {!snapshot}/{!expose}.  See
    DESIGN.md §13. *)

type gauge
type quantile

val gauge : string -> gauge
(** Find or create; same name returns the same (physically equal) gauge. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val default_quantile_window : int
(** Window size used by {!quantile} when [?window] is omitted (1024). *)

val quantile : ?window:int -> string -> quantile
(** Find or create a rolling-window quantile sketch.  Observations land
    in log2 buckets (the {!histogram} scheme); only the most recent
    [window] observations count toward estimates.  Deterministic given
    the same observation sequence.
    @raise Invalid_argument if [window < 1]. *)

val observe_quantile : quantile -> int -> unit
(** Record a non-negative integer sample (negatives clamp to bucket 0),
    evicting the oldest sample once the window is full. *)

val quantile_estimate : quantile -> float -> float
(** [quantile_estimate q p] estimates the [p]-quantile over the current
    window as the upper boundary of the log2 bucket containing the rank
    [ceil (p * len)] sample ([2^(b+1)-1]; bucket 0 quotes [1.0]) — exact
    bucket arithmetic, so jobs- and platform-invariant for a fixed
    observation sequence.  Returns [nan] on an empty window.
    @raise Invalid_argument unless [0 < p <= 1]. *)

val quantile_count : quantile -> int
(** All-time number of observations (not capped by the window). *)

val reset_metrics : unit -> unit
(** Zero every counter, span, histogram, gauge, and quantile
    (registrations persist). *)

(** {1 Prometheus exposition} *)

type exposition = {
  x_counters : (string * int) list;
  x_gauges : (string * float) list;
  x_spans : (string * int * int) list;  (** name, total_ns, calls *)
  x_histograms : (string * int * int * (int * int) list) list;
      (** name, count, sum, (log2 bucket, occupancy) ascending *)
  x_quantiles : (string * int * int * (float * float) list) list;
      (** name, all-time count, all-time sum, (p, estimate) for
          p in 0.5/0.9/0.99 *)
}

val snapshot : unit -> exposition
(** Freeze the full registry (counters, gauges, spans, histograms,
    quantiles), each section sorted by name. *)

val expose : exposition -> string
(** Render a frame as Prometheus text exposition format v0.0.4: dotted
    registry names become [sso_]-prefixed metric names, counters gain
    [_total], spans surface as [_ns_total]/[_calls_total] counter pairs,
    histograms as cumulative [le]-bucket series over the log2 boundaries,
    quantiles as summaries with [quantile] labels.  Every line is
    [# HELP], [# TYPE], or [name{...} value]. *)

val sample_gc_gauges : unit -> unit
(** Refresh the [gc.heap_words] / [gc.minor_collections] /
    [gc.major_collections] / [gc.compactions] gauges from
    [Gc.quick_stat].  Sampling is explicit — never called from traced or
    digest-producing code — so deterministic outputs stay GC-invariant. *)

val metrics_snapshot : unit -> (string * int) list * (string * int * int) list
(** Non-zero counters [(name, value)] and spans [(name, total_ns, calls)],
    sorted by name — the format [Engine.Metrics.snapshot] used. *)

val metrics_table : unit -> string
(** Byte-identical to the old [Engine.Metrics.table]. *)

val metrics_json : unit -> string
(** Byte-identical to the old [Engine.Metrics.json]. *)

(** {1 Trace collection} *)

val set_ring_capacity : int -> unit
(** Per-domain event ring capacity (default [2^20]).  When a ring
    saturates, the oldest events in that ring are overwritten and counted
    in [dropped_events].
    @raise Invalid_argument if the capacity is [< 1]. *)

val events : unit -> Trace.event list
(** Merge all per-domain rings, sorted by [(slot, seq)].  Call only when
    no parallel region is in flight. *)

val dropped_events : unit -> int

val histogram_records : unit -> Trace.histogram list
(** Non-empty registry histograms as trace trailer records, sorted by
    name.  Span-duration histograms are timing-dependent; tools comparing
    traces for determinism must ignore histogram lines. *)

val clear_trace : unit -> unit
(** Empty every ring, reset the slot cursor and current stream.  Call
    only between runs (no parallel region in flight). *)

val write_trace : path:string -> meta:(string * Trace.value) list -> unit
(** Snapshot events + histograms into a {!Trace.t} and [Trace.save] it.
    The current {!dropped_events} count is recorded both in the trace
    header and — unless the caller already supplied one — as a
    [dropped_events] meta entry.
    @raise Trace.Unreadable on I/O failure. *)
