(** Deterministic tracing + metrics.

    Two layers share one module:

    - {b Always-on aggregates} — counters, spans (wall time + calls), and
      log-scale histograms in a thread-safe registry.  These subsume the
      old [Engine.Metrics] registry; [metrics_table]/[metrics_json]
      reproduce its output byte-for-byte.
    - {b Trace events} — gated by [set_tracing].  When tracing is off,
      [event] is a flag test and [traced] runs its thunk directly; call
      sites guard attribute construction with [tracing ()] so the
      disabled path allocates nothing.

    Every trace event carries a deterministic [(slot, seq)] key: [slot]
    identifies the emitting stream (the main thread between parallel
    regions, or one task of a parallel region), [seq] its position within
    that stream.  The engine pool pre-assigns one slot per task
    ({!reserve_slots} / {!in_task}), so sorting by [(slot, seq)] recovers
    the serial execution order no matter how many domains actually ran the
    tasks — traces are identical at any [--jobs].  See DESIGN.md §8. *)

val now_ns : unit -> int
(** Wall clock in integer nanoseconds. *)

(** {1 Tracing switch} *)

val set_tracing : bool -> unit
val tracing : unit -> bool

(** {1 Deterministic streams} — used by [Engine.Pool]; most code never
    calls these. *)

val reserve_slots : int -> int
(** Atomically reserve [n] consecutive stream slots; returns the first. *)

val in_task : int -> (unit -> 'a) -> 'a
(** Run the thunk with a fresh stream on the given slot (and span depth
    reset to 0), restoring the caller's stream and depth afterwards. *)

val fresh_stream : unit -> unit
(** Drop the current domain's stream; the next event lazily reserves a
    new, strictly higher slot.  Called after a parallel region so the
    caller's subsequent events sort after the region's tasks. *)

(** {1 Trace events} *)

val event : ?attrs:(string * Trace.value) list -> string -> unit
(** Emit a point event (no-op when tracing is off). *)

val traced : ?attrs:(string * Trace.value) list -> string -> (unit -> 'a) -> 'a
(** Trace-only span: emits a span event on exit (duration, nesting depth)
    without touching the metrics registry.  When tracing is off this is
    exactly [f ()]. *)

(** {1 Metrics registry} *)

type counter
type span
type histogram

val counter : string -> counter
(** Find or create; same name returns the same (physically equal) counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val histogram : string -> histogram
(** Log2-bucketed histogram of non-negative integer samples. *)

val observe : histogram -> int -> unit

val span : string -> span
(** Find or create.  Also registers a ["span." ^ name] duration histogram
    fed by every [with_span] call. *)

val with_span : ?attrs:(string * Trace.value) list -> span -> (unit -> 'a) -> 'a
(** Run the closure, accumulating wall time and one call (also on
    exceptions).  When tracing is on, additionally emits a span trace
    event carrying [attrs]. *)

val time : string -> (unit -> 'a) -> 'a
val span_total_ns : span -> int
val span_calls : span -> int

val reset_metrics : unit -> unit
(** Zero every counter, span, and histogram (registrations persist). *)

val metrics_snapshot : unit -> (string * int) list * (string * int * int) list
(** Non-zero counters [(name, value)] and spans [(name, total_ns, calls)],
    sorted by name — the format [Engine.Metrics.snapshot] used. *)

val metrics_table : unit -> string
(** Byte-identical to the old [Engine.Metrics.table]. *)

val metrics_json : unit -> string
(** Byte-identical to the old [Engine.Metrics.json]. *)

(** {1 Trace collection} *)

val set_ring_capacity : int -> unit
(** Per-domain event ring capacity (default [2^20]).  When a ring
    saturates, the oldest events in that ring are overwritten and counted
    in [dropped_events]. *)

val events : unit -> Trace.event list
(** Merge all per-domain rings, sorted by [(slot, seq)].  Call only when
    no parallel region is in flight. *)

val dropped_events : unit -> int

val histogram_records : unit -> Trace.histogram list
(** Non-empty registry histograms as trace trailer records, sorted by
    name.  Span-duration histograms are timing-dependent; tools comparing
    traces for determinism must ignore histogram lines. *)

val clear_trace : unit -> unit
(** Empty every ring, reset the slot cursor and current stream.  Call
    only between runs (no parallel region in flight). *)

val write_trace : path:string -> meta:(string * Trace.value) list -> unit
(** Snapshot events + histograms into a {!Trace.t} and [Trace.save] it.
    @raise Trace.Unreadable on I/O failure. *)
