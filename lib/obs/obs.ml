let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ---- tracing switch ---- *)

let tracing_flag = Atomic.make false
let set_tracing b = Atomic.set tracing_flag b
let tracing () = Atomic.get tracing_flag

(* ---- deterministic streams ----

   A stream is one logical emitter: the main thread between parallel
   regions, or a single task of a parallel region.  Slots come from a
   global cursor, so a task's slot (pre-assigned by the pool, in submission
   order) is independent of which domain runs it or when. *)

type stream = { slot : int; mutable next_seq : int }

let cursor = Atomic.make 0
let reserve_slots n = Atomic.fetch_and_add cursor n
let stream_key : stream option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_stream () =
  let r = Domain.DLS.get stream_key in
  match !r with
  | Some st -> st
  | None ->
      let st = { slot = reserve_slots 1; next_seq = 0 } in
      r := Some st;
      st

let fresh_stream () = Domain.DLS.get stream_key := None

(* Span nesting depth, per domain.  [in_task] resets it so a task's spans
   report the same depths whether it ran inline (jobs=1) or on a worker. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let in_task slot f =
  let r = Domain.DLS.get stream_key in
  let d = Domain.DLS.get depth_key in
  let old_stream = !r and old_depth = !d in
  r := Some { slot; next_seq = 0 };
  d := 0;
  Fun.protect
    ~finally:(fun () ->
      r := old_stream;
      d := old_depth)
    f

(* ---- per-domain ring buffers ---- *)

type buffer = {
  mutable store : Trace.event array;
  mutable len : int; (* occupied prefix of [store] *)
  mutable head : int; (* next overwrite position once saturated *)
  mutable dropped : int;
}

let buffers_lock = Mutex.create ()
let all_buffers : buffer list ref = ref []
let ring_capacity = Atomic.make (1 lsl 20)

let set_ring_capacity n =
  if n < 1 then invalid_arg "Obs.set_ring_capacity: capacity must be >= 1";
  Atomic.set ring_capacity n

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { store = [||]; len = 0; head = 0; dropped = 0 } in
      Mutex.lock buffers_lock;
      all_buffers := b :: !all_buffers;
      Mutex.unlock buffers_lock;
      b)

let push b e =
  let cap = Atomic.get ring_capacity in
  if b.len < cap then begin
    if b.len = Array.length b.store then begin
      let grown = min cap (max 64 (2 * Array.length b.store)) in
      let ns = Array.make grown e in
      Array.blit b.store 0 ns 0 b.len;
      b.store <- ns
    end;
    b.store.(b.len) <- e;
    b.len <- b.len + 1
  end
  else begin
    (* Saturated: overwrite the oldest.  Wrap on [len], not the physical
       store size — the store may be larger than a lowered capacity. *)
    b.store.(b.head) <- e;
    b.head <- (b.head + 1) mod b.len;
    b.dropped <- b.dropped + 1
  end

let record kind name dur_ns attrs =
  let st = current_stream () in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  let e =
    {
      Trace.slot = st.slot;
      seq;
      ts_ns = now_ns ();
      kind;
      name;
      dur_ns;
      depth = !(Domain.DLS.get depth_key);
      attrs;
    }
  in
  push (Domain.DLS.get buffer_key) e

let event ?(attrs = []) name =
  if Atomic.get tracing_flag then record Trace.Event name 0 attrs

let traced ?(attrs = []) name f =
  if not (Atomic.get tracing_flag) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let depth0 = !d in
    let t0 = now_ns () in
    d := depth0 + 1;
    Fun.protect
      ~finally:(fun () ->
        let dur = max 0 (now_ns () - t0) in
        d := depth0;
        record Trace.Span name dur attrs)
      f
  end

(* ---- metrics registry ----

   Counters and accumulators are atomics so hot paths never take the
   registry lock; the lock only guards find-or-create and enumeration.
   This is the old Engine.Metrics registry extended with histograms. *)

type counter = { cname : string; value : int Atomic.t }

type histogram = {
  hname : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_buckets : int Atomic.t array; (* index = floor(log2 sample), 0 for <= 1 *)
}

type span = {
  sname : string;
  total_ns : int Atomic.t;
  calls : int Atomic.t;
  shist : histogram;
}

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let spans : (string, span) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let registered tbl make name =
  Mutex.lock lock;
  let entry =
    match Hashtbl.find_opt tbl name with
    | Some e -> e
    | None ->
        let e = make name in
        Hashtbl.replace tbl name e;
        e
  in
  Mutex.unlock lock;
  entry

let counter name =
  registered counters (fun cname -> { cname; value = Atomic.make 0 }) name

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let histogram name =
  registered histograms
    (fun hname ->
      {
        hname;
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0;
        h_buckets = Array.init 63 (fun _ -> Atomic.make 0);
      })
    name

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      b := !b + 1
    done;
    !b
  end

let observe h v =
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v);
  Atomic.incr h.h_buckets.(bucket_of v)

let span name =
  (* Register the histogram first: [registered]'s lock is not reentrant,
     so it must not be created inside the make closure. *)
  let shist = histogram ("span." ^ name) in
  registered spans
    (fun sname ->
      { sname; total_ns = Atomic.make 0; calls = Atomic.make 0; shist })
    name

let with_span ?(attrs = []) sp f =
  let trace = Atomic.get tracing_flag in
  let d = Domain.DLS.get depth_key in
  let depth0 = !d in
  if trace then d := depth0 + 1;
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dur = max 0 (now_ns () - t0) in
      ignore (Atomic.fetch_and_add sp.total_ns dur);
      ignore (Atomic.fetch_and_add sp.calls 1);
      observe sp.shist dur;
      if trace then begin
        d := depth0;
        record Trace.Span sp.sname dur attrs
      end)
    f

let time name f = with_span (span name) f
let span_total_ns sp = Atomic.get sp.total_ns
let span_calls sp = Atomic.get sp.calls

let reset_metrics () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.total_ns 0;
      Atomic.set s.calls 0)
    spans;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms;
  Mutex.unlock lock

let metrics_snapshot () =
  Mutex.lock lock;
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) counters []
  in
  let ss =
    Hashtbl.fold
      (fun name s acc -> (name, Atomic.get s.total_ns, Atomic.get s.calls) :: acc)
      spans []
  in
  Mutex.unlock lock;
  ( List.sort compare (List.filter (fun (_, v) -> v <> 0) cs),
    List.sort compare (List.filter (fun (_, _, c) -> c <> 0) ss) )

let metrics_table () =
  let cs, ss = metrics_snapshot () in
  if cs = [] && ss = [] then ""
  else begin
    let buf = Buffer.create 256 in
    if cs <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%-32s %14s\n" "counter" "value");
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "%-32s %14d\n" name v))
        cs
    end;
    if ss <> [] then begin
      if cs <> [] then Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%-32s %10s %12s %12s\n" "span" "calls" "total ms"
           "ms/call");
      List.iter
        (fun (name, ns, calls) ->
          let ms = float_of_int ns /. 1e6 in
          Buffer.add_string buf
            (Printf.sprintf "%-32s %10d %12.2f %12.3f\n" name calls ms
               (ms /. float_of_int (max 1 calls))))
        ss
    end;
    Buffer.contents buf
  end

let metrics_json () =
  let cs, ss = metrics_snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%S: %d" name v))
    cs;
  Buffer.add_string buf "}, \"spans\": {";
  List.iteri
    (fun i (name, ns, calls) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "%S: {\"ns\": %d, \"calls\": %d}" name ns calls))
    ss;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ---- trace collection ---- *)

let snapshot_buffers () =
  Mutex.lock buffers_lock;
  let bufs = !all_buffers in
  Mutex.unlock buffers_lock;
  bufs

let events () =
  let collected =
    List.concat_map
      (fun b ->
        let out = ref [] in
        for i = b.len - 1 downto 0 do
          out := b.store.(i) :: !out
        done;
        !out)
      (snapshot_buffers ())
  in
  List.sort
    (fun (a : Trace.event) (b : Trace.event) ->
      compare (a.slot, a.seq) (b.slot, b.seq))
    collected

let dropped_events () =
  List.fold_left (fun acc b -> acc + b.dropped) 0 (snapshot_buffers ())

let histogram_records () =
  Mutex.lock lock;
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let count = Atomic.get h.h_count in
        if count = 0 then acc
        else begin
          let buckets = ref [] in
          for b = Array.length h.h_buckets - 1 downto 0 do
            let c = Atomic.get h.h_buckets.(b) in
            if c > 0 then buckets := (b, c) :: !buckets
          done;
          {
            Trace.h_name = name;
            h_count = count;
            h_sum = Atomic.get h.h_sum;
            h_buckets = !buckets;
          }
          :: acc
        end)
      histograms []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.Trace.h_name b.Trace.h_name) hs

let clear_trace () =
  Mutex.lock buffers_lock;
  List.iter
    (fun b ->
      b.store <- [||];
      b.len <- 0;
      b.head <- 0;
      b.dropped <- 0)
    !all_buffers;
  Mutex.unlock buffers_lock;
  Atomic.set cursor 0;
  fresh_stream ()

let write_trace ~path ~meta =
  Trace.save path
    {
      Trace.meta;
      dropped = dropped_events ();
      events = events ();
      histograms = histogram_records ();
    }
