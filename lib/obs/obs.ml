let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ---- tracing switch ---- *)

let tracing_flag = Atomic.make false
let set_tracing b = Atomic.set tracing_flag b
let tracing () = Atomic.get tracing_flag

(* ---- deterministic streams ----

   A stream is one logical emitter: the main thread between parallel
   regions, or a single task of a parallel region.  Slots come from a
   global cursor, so a task's slot (pre-assigned by the pool, in submission
   order) is independent of which domain runs it or when. *)

type stream = { slot : int; mutable next_seq : int }

let cursor = Atomic.make 0
let reserve_slots n = Atomic.fetch_and_add cursor n
let stream_key : stream option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_stream () =
  let r = Domain.DLS.get stream_key in
  match !r with
  | Some st -> st
  | None ->
      let st = { slot = reserve_slots 1; next_seq = 0 } in
      r := Some st;
      st

let fresh_stream () = Domain.DLS.get stream_key := None

(* Span nesting depth, per domain.  [in_task] resets it so a task's spans
   report the same depths whether it ran inline (jobs=1) or on a worker. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let in_task slot f =
  let r = Domain.DLS.get stream_key in
  let d = Domain.DLS.get depth_key in
  let old_stream = !r and old_depth = !d in
  r := Some { slot; next_seq = 0 };
  d := 0;
  Fun.protect
    ~finally:(fun () ->
      r := old_stream;
      d := old_depth)
    f

(* ---- per-domain ring buffers ---- *)

type buffer = {
  mutable store : Trace.event array;
  mutable len : int; (* occupied prefix of [store] *)
  mutable head : int; (* next overwrite position once saturated *)
  mutable dropped : int;
}

let buffers_lock = Mutex.create ()
let all_buffers : buffer list ref = ref []
let ring_capacity = Atomic.make (1 lsl 20)

let set_ring_capacity n =
  if n < 1 then
    invalid_arg
      (Printf.sprintf "Obs.set_ring_capacity: capacity must be >= 1, got %d" n);
  Atomic.set ring_capacity n

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { store = [||]; len = 0; head = 0; dropped = 0 } in
      Mutex.lock buffers_lock;
      all_buffers := b :: !all_buffers;
      Mutex.unlock buffers_lock;
      b)

let push b e =
  let cap = Atomic.get ring_capacity in
  if b.len < cap then begin
    if b.len = Array.length b.store then begin
      let grown = min cap (max 64 (2 * Array.length b.store)) in
      let ns = Array.make grown e in
      Array.blit b.store 0 ns 0 b.len;
      b.store <- ns
    end;
    b.store.(b.len) <- e;
    b.len <- b.len + 1
  end
  else begin
    (* Saturated: overwrite the oldest.  Wrap on [len], not the physical
       store size — the store may be larger than a lowered capacity. *)
    b.store.(b.head) <- e;
    b.head <- (b.head + 1) mod b.len;
    b.dropped <- b.dropped + 1
  end

let record kind name dur_ns attrs =
  let st = current_stream () in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  let e =
    {
      Trace.slot = st.slot;
      seq;
      ts_ns = now_ns ();
      kind;
      name;
      dur_ns;
      depth = !(Domain.DLS.get depth_key);
      attrs;
    }
  in
  push (Domain.DLS.get buffer_key) e

let event ?(attrs = []) name =
  if Atomic.get tracing_flag then record Trace.Event name 0 attrs

let traced ?(attrs = []) name f =
  if not (Atomic.get tracing_flag) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let depth0 = !d in
    let t0 = now_ns () in
    d := depth0 + 1;
    Fun.protect
      ~finally:(fun () ->
        let dur = max 0 (now_ns () - t0) in
        d := depth0;
        record Trace.Span name dur attrs)
      f
  end

(* ---- metrics registry ----

   Counters and accumulators are atomics so hot paths never take the
   registry lock; the lock only guards find-or-create and enumeration.
   This is the old Engine.Metrics registry extended with histograms. *)

type counter = { cname : string; value : int Atomic.t }

type histogram = {
  hname : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_buckets : int Atomic.t array; (* index = floor(log2 sample), 0 for <= 1 *)
}

type span = {
  sname : string;
  total_ns : int Atomic.t;
  calls : int Atomic.t;
  shist : histogram;
}

type gauge = { gname : string; gvalue : float Atomic.t }

(* A rolling-window quantile sketch: the log2 bucket of each of the last
   [window] observations, plus per-bucket occupancy over that window.
   Quantile estimates are bucket upper boundaries, so for the same
   observation sequence the estimate is exact-deterministic — there is no
   sampling and no merge order.  All-time count/sum ride along for the
   Prometheus summary lines. *)
type quantile = {
  qname : string;
  q_lock : Mutex.t;
  q_window : int array; (* circular: bucket index per retained sample *)
  mutable q_len : int;
  mutable q_pos : int; (* next write position *)
  q_buckets : int array; (* occupancy per bucket over the window *)
  mutable q_count : int; (* all-time observations *)
  mutable q_sum : int; (* all-time sum *)
}

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let spans : (string, span) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let quantiles : (string, quantile) Hashtbl.t = Hashtbl.create 32

let registered tbl make name =
  Mutex.lock lock;
  let entry =
    match Hashtbl.find_opt tbl name with
    | Some e -> e
    | None ->
        let e = make name in
        Hashtbl.replace tbl name e;
        e
  in
  Mutex.unlock lock;
  entry

let counter name =
  registered counters (fun cname -> { cname; value = Atomic.make 0 }) name

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let histogram name =
  registered histograms
    (fun hname ->
      {
        hname;
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0;
        h_buckets = Array.init 63 (fun _ -> Atomic.make 0);
      })
    name

let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      b := !b + 1
    done;
    !b
  end

let observe h v =
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v);
  Atomic.incr h.h_buckets.(bucket_of v)

let gauge name =
  registered gauges (fun gname -> { gname; gvalue = Atomic.make 0.0 }) name

let set_gauge g v = Atomic.set g.gvalue v
let gauge_value g = Atomic.get g.gvalue

let default_quantile_window = 1024

let quantile ?(window = default_quantile_window) name =
  if window < 1 then
    invalid_arg
      (Printf.sprintf "Obs.quantile: window must be >= 1, got %d" window);
  registered quantiles
    (fun qname ->
      {
        qname;
        q_lock = Mutex.create ();
        q_window = Array.make window 0;
        q_len = 0;
        q_pos = 0;
        q_buckets = Array.make 63 0;
        q_count = 0;
        q_sum = 0;
      })
    name

let observe_quantile q v =
  let b = bucket_of v in
  Mutex.lock q.q_lock;
  let cap = Array.length q.q_window in
  if q.q_len = cap then
    (* Saturated: the slot being overwritten holds the oldest sample. *)
    q.q_buckets.(q.q_window.(q.q_pos)) <- q.q_buckets.(q.q_window.(q.q_pos)) - 1
  else q.q_len <- q.q_len + 1;
  q.q_window.(q.q_pos) <- b;
  q.q_pos <- (q.q_pos + 1) mod cap;
  q.q_buckets.(b) <- q.q_buckets.(b) + 1;
  q.q_count <- q.q_count + 1;
  q.q_sum <- q.q_sum + v;
  Mutex.unlock q.q_lock

(* Upper boundary of log2 bucket [b]: bucket 0 holds samples <= 1, bucket
   b >= 1 holds [2^b, 2^(b+1)-1].  Estimates quote these boundaries, never
   interpolated sample values, so they are a pure function of the bucket
   occupancy — identical for the same observations at any [--jobs]. *)
let bucket_upper b = if b = 0 then 1.0 else Float.of_int ((1 lsl (b + 1)) - 1)

let quantile_estimate_locked q p =
  if q.q_len = 0 then Float.nan
  else begin
    let rank =
      Int.max 1
        (Int.min q.q_len
           (int_of_float (Float.ceil (p *. float_of_int q.q_len))))
    in
    let b = ref 0 and cum = ref 0 in
    while
      !cum + q.q_buckets.(!b) < rank && !b < Array.length q.q_buckets - 1
    do
      cum := !cum + q.q_buckets.(!b);
      b := !b + 1
    done;
    bucket_upper !b
  end

let quantile_estimate q p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg
      (Printf.sprintf "Obs.quantile_estimate: p must be in (0, 1], got %g" p);
  Mutex.lock q.q_lock;
  let v = quantile_estimate_locked q p in
  Mutex.unlock q.q_lock;
  v

let quantile_count q =
  Mutex.lock q.q_lock;
  let c = q.q_count in
  Mutex.unlock q.q_lock;
  c

let span name =
  (* Register the histogram first: [registered]'s lock is not reentrant,
     so it must not be created inside the make closure. *)
  let shist = histogram ("span." ^ name) in
  registered spans
    (fun sname ->
      { sname; total_ns = Atomic.make 0; calls = Atomic.make 0; shist })
    name

let with_span ?(attrs = []) sp f =
  let trace = Atomic.get tracing_flag in
  let d = Domain.DLS.get depth_key in
  let depth0 = !d in
  if trace then d := depth0 + 1;
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dur = max 0 (now_ns () - t0) in
      ignore (Atomic.fetch_and_add sp.total_ns dur);
      ignore (Atomic.fetch_and_add sp.calls 1);
      observe sp.shist dur;
      if trace then begin
        d := depth0;
        record Trace.Span sp.sname dur attrs
      end)
    f

let time name f = with_span (span name) f
let span_total_ns sp = Atomic.get sp.total_ns
let span_calls sp = Atomic.get sp.calls

let reset_metrics () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.total_ns 0;
      Atomic.set s.calls 0)
    spans;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms;
  Hashtbl.iter (fun _ g -> Atomic.set g.gvalue 0.0) gauges;
  Hashtbl.iter
    (fun _ q ->
      Mutex.lock q.q_lock;
      q.q_len <- 0;
      q.q_pos <- 0;
      Array.fill q.q_buckets 0 (Array.length q.q_buckets) 0;
      q.q_count <- 0;
      q.q_sum <- 0;
      Mutex.unlock q.q_lock)
    quantiles;
  Mutex.unlock lock

let metrics_snapshot () =
  Mutex.lock lock;
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) counters []
  in
  let ss =
    Hashtbl.fold
      (fun name s acc -> (name, Atomic.get s.total_ns, Atomic.get s.calls) :: acc)
      spans []
  in
  Mutex.unlock lock;
  ( List.sort compare (List.filter (fun (_, v) -> v <> 0) cs),
    List.sort compare (List.filter (fun (_, _, c) -> c <> 0) ss) )

let metrics_table () =
  let cs, ss = metrics_snapshot () in
  if cs = [] && ss = [] then ""
  else begin
    let buf = Buffer.create 256 in
    if cs <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%-32s %14s\n" "counter" "value");
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "%-32s %14d\n" name v))
        cs
    end;
    if ss <> [] then begin
      if cs <> [] then Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%-32s %10s %12s %12s\n" "span" "calls" "total ms"
           "ms/call");
      List.iter
        (fun (name, ns, calls) ->
          let ms = float_of_int ns /. 1e6 in
          Buffer.add_string buf
            (Printf.sprintf "%-32s %10d %12.2f %12.3f\n" name calls ms
               (ms /. float_of_int (max 1 calls))))
        ss
    end;
    Buffer.contents buf
  end

let metrics_json () =
  let cs, ss = metrics_snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%S: %d" name v))
    cs;
  Buffer.add_string buf "}, \"spans\": {";
  List.iteri
    (fun i (name, ns, calls) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "%S: {\"ns\": %d, \"calls\": %d}" name ns calls))
    ss;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ---- trace collection ---- *)

let snapshot_buffers () =
  Mutex.lock buffers_lock;
  let bufs = !all_buffers in
  Mutex.unlock buffers_lock;
  bufs

let events () =
  let collected =
    List.concat_map
      (fun b ->
        let out = ref [] in
        for i = b.len - 1 downto 0 do
          out := b.store.(i) :: !out
        done;
        !out)
      (snapshot_buffers ())
  in
  List.sort
    (fun (a : Trace.event) (b : Trace.event) ->
      compare (a.slot, a.seq) (b.slot, b.seq))
    collected

let dropped_events () =
  List.fold_left (fun acc b -> acc + b.dropped) 0 (snapshot_buffers ())

let histogram_records () =
  Mutex.lock lock;
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let count = Atomic.get h.h_count in
        if count = 0 then acc
        else begin
          let buckets = ref [] in
          for b = Array.length h.h_buckets - 1 downto 0 do
            let c = Atomic.get h.h_buckets.(b) in
            if c > 0 then buckets := (b, c) :: !buckets
          done;
          {
            Trace.h_name = name;
            h_count = count;
            h_sum = Atomic.get h.h_sum;
            h_buckets = !buckets;
          }
          :: acc
        end)
      histograms []
  in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.Trace.h_name b.Trace.h_name) hs

(* ---- Prometheus exposition ----

   [snapshot] freezes the whole registry under the lock; [expose] renders
   the frozen frame as Prometheus text exposition format v0.0.4.  Both
   live outside every deterministic output path: exposition values carry
   wall-clock latencies and GC state, so they must never feed digests or
   byte-compared stdout — the same boundary [solve_ns] already draws. *)

type exposition = {
  x_counters : (string * int) list;
  x_gauges : (string * float) list;
  x_spans : (string * int * int) list; (* name, total_ns, calls *)
  x_histograms : (string * int * int * (int * int) list) list;
      (* name, count, sum, (bucket, occupancy) ascending *)
  x_quantiles : (string * int * int * (float * float) list) list;
      (* name, all-time count, all-time sum, (p, estimate) *)
}

let exposed_quantile_levels = [ 0.5; 0.9; 0.99 ]

let snapshot () =
  Mutex.lock lock;
  let sorted_by_name key xs = List.sort (fun a b -> compare (key a) (key b)) xs in
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) counters []
  in
  let gs =
    Hashtbl.fold (fun name g acc -> (name, Atomic.get g.gvalue) :: acc) gauges []
  in
  let ss =
    Hashtbl.fold
      (fun name s acc -> (name, Atomic.get s.total_ns, Atomic.get s.calls) :: acc)
      spans []
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let buckets = ref [] in
        for b = Array.length h.h_buckets - 1 downto 0 do
          let c = Atomic.get h.h_buckets.(b) in
          if c > 0 then buckets := (b, c) :: !buckets
        done;
        (name, Atomic.get h.h_count, Atomic.get h.h_sum, !buckets) :: acc)
      histograms []
  in
  let qs =
    Hashtbl.fold
      (fun name q acc ->
        Mutex.lock q.q_lock;
        let levels =
          List.map (fun p -> (p, quantile_estimate_locked q p))
            exposed_quantile_levels
        in
        let entry = (name, q.q_count, q.q_sum, levels) in
        Mutex.unlock q.q_lock;
        entry :: acc)
      quantiles []
  in
  Mutex.unlock lock;
  {
    x_counters = sorted_by_name (fun (n, _) -> n) cs;
    x_gauges = sorted_by_name (fun (n, _) -> n) gs;
    x_spans = sorted_by_name (fun (n, _, _) -> n) ss;
    x_histograms = sorted_by_name (fun (n, _, _, _) -> n) hs;
    x_quantiles = sorted_by_name (fun (n, _, _, _) -> n) qs;
  }

(* GC gauges are sampled only when this is called (the serve metrics
   writer does, right before each snapshot) — never from inside traced or
   digest-producing code, where a [Gc.quick_stat] allocation would leak
   timing state into deterministic output. *)
let sample_gc_gauges () =
  let st = Gc.quick_stat () in
  set_gauge (gauge "gc.heap_words") (float_of_int st.Gc.heap_words);
  set_gauge (gauge "gc.minor_collections") (float_of_int st.Gc.minor_collections);
  set_gauge (gauge "gc.major_collections") (float_of_int st.Gc.major_collections);
  set_gauge (gauge "gc.compactions") (float_of_int st.Gc.compactions)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*, so the registry's dotted names
   are mapped to an sso_ prefix with every other character squashed to
   '_'.  ("serve.solve_ns" -> "sso_serve_solve_ns".) *)
let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "sso_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let expose x =
  let buf = Buffer.create 4096 in
  let head name kind help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (name, v) ->
      let n = prom_name name ^ "_total" in
      head n "counter" (Printf.sprintf "sso counter %s" name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    x.x_counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      head n "gauge" (Printf.sprintf "sso gauge %s" name);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float v)))
    x.x_gauges;
  List.iter
    (fun (name, total_ns, calls) ->
      let n = prom_name name ^ "_ns_total" in
      head n "counter" (Printf.sprintf "sso span %s wall time" name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n total_ns);
      let n = prom_name name ^ "_calls_total" in
      head n "counter" (Printf.sprintf "sso span %s calls" name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n calls))
    x.x_spans;
  List.iter
    (fun (name, count, sum, buckets) ->
      let n = prom_name name in
      head n "histogram" (Printf.sprintf "sso log2 histogram %s" name);
      let cum = ref 0 and next = ref 0 in
      List.iter
        (fun (b, c) ->
          (* Emit every registered boundary up to [b] so the cumulative
             series is monotone and gap-free. *)
          while !next <= b do
            if !next < b then
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                   (prom_float (bucket_upper !next))
                   !cum);
            next := !next + 1
          done;
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
               (prom_float (bucket_upper b))
               !cum))
        buckets;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n count);
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    x.x_histograms;
  List.iter
    (fun (name, count, sum, levels) ->
      let n = prom_name name in
      head n "summary" (Printf.sprintf "sso rolling quantile %s" name);
      List.iter
        (fun (p, v) ->
          (* %g, not %.17g: the label is a level tag (0.5/0.9/0.99), not a
             measurement — it must read back exactly as written. *)
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%g\"} %s\n" n p (prom_float v)))
        levels;
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    x.x_quantiles;
  Buffer.contents buf

let clear_trace () =
  Mutex.lock buffers_lock;
  List.iter
    (fun b ->
      b.store <- [||];
      b.len <- 0;
      b.head <- 0;
      b.dropped <- 0)
    !all_buffers;
  Mutex.unlock buffers_lock;
  Atomic.set cursor 0;
  fresh_stream ()

let write_trace ~path ~meta =
  let dropped = dropped_events () in
  (* Mirror the drop count into meta (unless the caller already set it):
     the header [dropped] field is load-bearing for [sso trace summary]'s
     truncation warning, and meta keeps it visible to generic readers. *)
  let meta =
    if List.mem_assoc "dropped_events" meta then meta
    else meta @ [ ("dropped_events", Trace.Int dropped) ]
  in
  Trace.save path
    {
      Trace.meta;
      dropped;
      events = events ();
      histograms = histogram_records ();
    }
