(** Demand-aware path selection — the non-oblivious upper baseline.

    The whole point of Stage 2 is that the candidate paths are chosen
    {e before} the demand (obliviously).  To quantify what that costs, this
    module builds the cheating comparator: it solves the (approximately)
    optimal fractional routing of the revealed demand and keeps each
    pair's α heaviest flow paths.  An α-sparse system chosen this way is
    the best a clairvoyant operator could install; the gap between it and
    the paper's α-sample is the price of obliviousness (experiment E15). *)

val demand_aware_system :
  ?solver:Semi_oblivious.solver ->
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> alpha:int -> Path_system.t
(** Top-α paths by optimal-flow weight per demanded pair (pairs outside
    the demand's support get no candidates). *)

val top_paths : Sso_graph.Graph.t -> Sso_flow.Routing.t -> alpha:int -> Path_system.t
(** Keep each pair's α heaviest paths of an arbitrary routing. *)
