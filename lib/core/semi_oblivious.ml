module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Oblivious = Sso_oblivious.Oblivious

type solver = Lp | Mwu of int | Gk of float

let default_solver = Mwu 300

let route ?(solver = default_solver) g ps demand =
  match solver with
  | Lp ->
      (* The simplex tableau wants explicit per-pair path lists. *)
      let cands = Path_system.to_candidates ps (Demand.support demand) in
      Min_congestion.lp_on_paths g cands demand
  | Mwu iters ->
      let sc = Path_system.to_slice_candidates ps (Demand.support demand) in
      Min_congestion.mwu_on_slices ~iters g sc demand
  | Gk epsilon ->
      let sc = Path_system.to_slice_candidates ps (Demand.support demand) in
      Sso_flow.Concurrent_flow.on_slices ~epsilon g sc demand

let congestion ?solver g ps demand = snd (route ?solver g ps demand)

let resolve ?(solver = default_solver) ?warm_start g ps demand =
  let cands = Path_system.to_candidates ps (Demand.support demand) in
  let warm =
    match warm_start with
    | None -> None
    | Some (warm, warm_weight) ->
        (* Keep only warm mass on paths the (possibly pruned) candidate
           sets still offer; pairs whose entire distribution died are
           dropped and re-learned by the fresh MWU rounds. *)
        let filtered =
          List.filter_map
            (fun ((s, t), alive_paths) ->
              let dist =
                List.filter
                  (fun (_, p) ->
                    List.exists (Sso_graph.Path.equal p) alive_paths)
                  (Routing.distribution warm s t)
              in
              if dist = [] || List.for_all (fun (w, _) -> w <= 0.0) dist then None
              else Some (((s, t), dist), warm_weight))
            cands
        in
        if filtered = [] then None
        else begin
          let dists, weights = List.split filtered in
          Some (Routing.make dists, List.hd weights)
        end
  in
  match (solver, warm) with
  | Mwu iters, Some (warm, warm_weight) ->
      Min_congestion.mwu_on_paths_warm ~iters ~warm ~warm_weight g cands demand
  | (Lp | Gk _ | Mwu _), _ ->
      (* LP and GK have no incremental form; a cold solve is the warm
         start. *)
      route ~solver g ps demand

let reoptimize ?(solver = default_solver) ?warm_start g ps demand =
  match (solver, warm_start) with
  | Mwu iters, Some (warm, warm_weight) ->
      (* Demand churn, unlike failure recovery, leaves the candidate sets
         intact: surviving pairs keep their warm distributions verbatim
         (no per-path survival filtering needed), departed pairs are
         dropped, and newly arrived pairs — which the warm routing does
         not cover — are learned by the fresh rounds alone. *)
      let support = Demand.support demand in
      let warm = Routing.restrict warm support in
      if Routing.pairs warm = [] then route ~solver g ps demand
      else begin
        let sc = Path_system.to_slice_candidates ps support in
        Min_congestion.mwu_on_slices_warm ~iters ~warm ~warm_weight g sc demand
      end
  | (Lp | Gk _ | Mwu _), _ ->
      (* As in [resolve]: LP and GK have no incremental form. *)
      route ~solver g ps demand

let opt ?(solver = default_solver) g demand =
  match solver with
  | Lp -> Min_congestion.lp_unrestricted g demand
  | Mwu iters ->
      let _, value = Min_congestion.mwu_unrestricted ~iters g demand in
      (* MWU overestimates the optimum; clamp from below with the certified
         bound so ratios do not inflate. *)
      Float.max value (Min_congestion.lower_bound_sparse_cut g demand)
  | Gk epsilon ->
      let _, value = Sso_flow.Concurrent_flow.unrestricted ~epsilon g demand in
      Float.max value (Min_congestion.lower_bound_sparse_cut g demand)

let competitive_ratio ?solver g ps demand =
  if Demand.support_size demand = 0 then 1.0
  else begin
    let achieved = congestion ?solver g ps demand in
    let baseline = opt ?solver g demand in
    if baseline <= 0.0 then infinity else achieved /. baseline
  end

let competitive_with ?solver obl ps demand =
  if Demand.support_size demand = 0 then 1.0
  else begin
    let g = Oblivious.graph obl in
    let achieved = congestion ?solver g ps demand in
    let base = Oblivious.congestion obl demand in
    if base <= 0.0 then infinity else achieved /. base
  end

let worst_ratio ?solver g ps demands =
  List.fold_left (fun acc d -> Float.max acc (competitive_ratio ?solver g ps d)) 0.0 demands
