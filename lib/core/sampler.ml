module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Maxflow = Sso_graph.Maxflow
module Oblivious = Sso_oblivious.Oblivious
module Rng = Sso_prng.Rng

module PS = Set.Make (Path)

let draw rng obl count s t =
  let rec go k acc =
    if k = 0 then PS.elements acc
    else go (k - 1) (PS.add (Oblivious.sample rng obl s t) acc)
  in
  go count PS.empty

(* Each pair samples from its own [Rng.split_at] child keyed by (s,t), so
   the drawn paths do not depend on which pair is queried first — the lazy
   memoized system is the same object no matter how (or from how many
   domains) it is explored.  Per-pair draws stay independent, which is the
   property the Stage-2 analysis needs. *)
let pair_rng base n s t = Rng.split_at base ((s * n) + t)

let alpha_sample rng obl ~alpha =
  if alpha <= 0 then invalid_arg "Sampler.alpha_sample: alpha must be positive";
  let base = Rng.split rng in
  let g = Oblivious.graph obl in
  let n = Graph.n g in
  Path_system.of_generator g (fun s t -> draw (pair_rng base n s t) obl alpha s t)

let cnt g ~alpha s t = alpha + Maxflow.cut g s t

let alpha_cut_sample rng obl ~alpha =
  if alpha <= 0 then invalid_arg "Sampler.alpha_cut_sample: alpha must be positive";
  let base = Rng.split rng in
  let g = Oblivious.graph obl in
  let n = Graph.n g in
  Path_system.of_generator g (fun s t ->
      draw (pair_rng base n s t) obl (cnt g ~alpha s t) s t)
