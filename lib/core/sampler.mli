(** Samples of an oblivious routing (Definition 5.2) — the paper's
    construction.

    An [α]-sample draws, for every vertex pair, [α] paths with replacement
    from the oblivious distribution [R(s,t)] and keeps the set of drawn
    paths.  An [(α + cut_G)]-sample draws [α + cut_G(s,t)] paths instead
    (the extra [cut_G(s,t)] paths are what makes fractional competitiveness
    on arbitrary demands possible — Section 2.1's two-clique example shows
    [α] alone cannot suffice).

    Sampling is lazy per pair and memoized, which has the same joint
    distribution as sampling all pairs upfront because per-pair draws are
    independent; the returned systems are therefore faithful Stage-2
    objects.  Each pair draws from its own [Rng.split_at] child keyed by
    [(s,t)], so the sampled sets are independent of query order — a system
    explored concurrently from a work pool materializes exactly the same
    paths as one walked serially. *)

val alpha_sample :
  Sso_prng.Rng.t -> Sso_oblivious.Oblivious.t -> alpha:int -> Path_system.t
(** [alpha_sample rng r ~alpha]: [|P(s,t)| ≤ α] for every pair, with paths
    from [supp(R(s,t))]. *)

val alpha_cut_sample :
  Sso_prng.Rng.t -> Sso_oblivious.Oblivious.t -> alpha:int -> Path_system.t
(** [(α + cut_G)]-sample; computes [cut_G(s,t)] by max-flow per pair
    (memoized with the sample). *)

val cnt : Sso_graph.Graph.t -> alpha:int -> int -> int -> int
(** [cnt g ~alpha s t = α + cut_G(s,t)] — the paper's [cnt_G] sample-count
    function. *)
