module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion

let top_paths g routing ~alpha =
  if alpha <= 0 then invalid_arg "Oracle.top_paths: alpha must be positive";
  Path_system.of_pairs g
    (List.map
       (fun (s, t) ->
         let dist = Routing.distribution routing s t in
         let sorted = List.sort (fun (a, _) (b, _) -> Float.compare b a) dist in
         let rec take k = function
           | (_, p) :: rest when k > 0 -> p :: take (k - 1) rest
           | _ -> []
         in
         ((s, t), take alpha sorted))
       (Routing.pairs routing))

let demand_aware_system ?(solver = Semi_oblivious.default_solver) g demand ~alpha =
  let routing =
    match solver with
    | Semi_oblivious.Lp ->
        (* The edge LP has no path decomposition; use a high-iteration MWU
           instead, which is path-based by construction. *)
        fst (Min_congestion.mwu_unrestricted ~iters:800 g demand)
    | Semi_oblivious.Mwu iters -> fst (Min_congestion.mwu_unrestricted ~iters g demand)
    | Semi_oblivious.Gk epsilon ->
        fst (Sso_flow.Concurrent_flow.unrestricted ~epsilon g demand)
  in
  top_paths g routing ~alpha
