(** The Section-8 lower-bound adversary, constructive.

    On the gadget [C(n,k)] (Fig. 1) every path between a left-star leaf and
    a right-star leaf crosses one of the [k] middle vertices.  Given any
    concrete [α]-ish-sparse path system, the proof of Lemma 8.1 finds — by
    a double pigeonhole and a Hall matching — a permutation demand between
    [k] leaf pairs all of whose candidate paths are funneled through the
    same [α] middle vertices, forcing semi-oblivious congestion [≥ k/α]
    while the offline optimum routes each pair through its own middle with
    congestion 1.  This module runs that construction against actual path
    systems, turning the impossibility proof into an experiment (E3). *)

type attack = {
  demand : Sso_demand.Demand.t;  (** The adversarial permutation demand. *)
  bottleneck : int list;  (** The middle-vertex set [S'] all candidates cross. *)
  pairs_matched : int;  (** [siz] of the demand (≤ k). *)
  predicted_congestion : float;
      (** The certified lower bound [pairs_matched / |S'|] on
          [cong_ℝ(P, demand)]; the offline optimum is 1. *)
}

val attack : ?pool:Sso_engine.Pool.t -> Sso_graph.Gen.c_graph -> Path_system.t -> attack
(** Construct the adversarial demand for the given path system on
    [C(n,k)].  Works for any path system; the bound is strongest when the
    system is sparse (the hit-sets are then small).  The [demand] is a
    permutation demand with [opt_{G,ℤ} = 1] whenever [pairs_matched ≤ k]
    (each matched pair can use a private middle vertex).  Candidate
    bottleneck sets are scored concurrently on [pool]; the winner is
    selected by the same deterministic fold regardless of job count. *)

val middles_hit : Sso_graph.Gen.c_graph -> Sso_graph.Path.t -> int list
(** The middle vertices a path crosses (sorted). *)

val attack_in_family :
  ?pool:Sso_engine.Pool.t ->
  Sso_graph.Gen.g_graph -> alpha:int -> Path_system.t -> attack
(** The Lemma 8.2 argument on the composite graph [G(n)]: locate the
    [C(n, ⌊n^(1/2α)⌋)] copy matching [alpha] and run {!attack} inside it
    (bridges cannot be re-crossed by simple paths, so candidates between a
    copy's leaves stay inside the copy and the Lemma 8.1 analysis applies
    verbatim).  @raise Not_found if [G(n)] has no copy for this [alpha]. *)

val verify :
  ?solver:Semi_oblivious.solver ->
  Sso_graph.Gen.c_graph -> Path_system.t -> attack -> float
(** Measured [cong_ℝ(P, demand)] — tests check it is at least
    [predicted_congestion] (up to solver tolerance). *)
