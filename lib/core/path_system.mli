(** Path systems (Definition 2.1) — the semi-oblivious routing object.

    A path system associates to each ordered vertex pair [(s,t)] a set
    [P(s,t)] of simple (s,t)-paths, fixed before any demand is revealed
    (Stage 2 of the pipeline in Section 2.1).  It is [α]-sparse when every
    [|P(s,t)| ≤ α].

    Pair sets can be quadratically large while experiments only ever query
    the pairs in some demand's support, so a system may be backed by a lazy
    generator (memoized, so repeated queries see the same sample — this
    is what makes lazy α-sampling equivalent to sampling everything
    upfront: per-pair samples are independent). *)

type t

val of_pairs : ((int * int) * Sso_graph.Path.t list) list -> t
(** Eager construction.  Paths must match their pair's endpoints and be
    deduplicated ([Invalid_argument] otherwise); pairs must be distinct. *)

val of_generator : (int -> int -> Sso_graph.Path.t list) -> t
(** Lazy construction; the generator is consulted once per pair and must
    return valid deduplicated paths.  Validation happens at query time. *)

val paths : t -> int -> int -> Sso_graph.Path.t list
(** [P(s,t)]; [[]] when the system offers no paths for the pair.  Safe to
    call from pool workers: the memo cache is mutex-guarded and generation
    is serialized, so every caller sees the same per-pair sets. *)

val materialize : t -> (int * int) list -> unit
(** Force generation for the given pairs (in list order) on the calling
    domain.  Parallel call sites materialize the pairs a sweep will query
    before fanning out, keeping generation order — and thus any
    generator-internal RNG draws — independent of the job count. *)

val known_pairs : t -> (int * int) list
(** Pairs materialized so far (all pairs for an eager system). *)

val sparsity_on : t -> (int * int) list -> int
(** [max |P(s,t)|] over the given pairs. *)

val is_alpha_sparse : t -> alpha:int -> (int * int) list -> bool

val union : t -> t -> t
(** Pointwise union of candidate sets (used by the completion-time ladder
    of Lemma 2.8, which unions one sample per hop scale). *)

val restrict_hops : max_hops:int -> t -> t
(** Drop candidate paths longer than [max_hops] (used when optimizing
    congestion + dilation). *)

val filter_paths : (Sso_graph.Path.t -> bool) -> t -> t
(** Keep only candidates satisfying the predicate. *)

val without_edge : int -> t -> t
(** Drop every candidate crossing the given edge — the failure model of
    the robustness experiments: when a link dies, the installed paths
    through it die with it and Stage 4 re-optimizes over the survivors. *)

val of_routing_support : Sso_flow.Routing.t -> t
(** [supp(R)] as a path system. *)

val of_oblivious_support : Sso_oblivious.Oblivious.t -> t
(** The (lazily queried) full support of an oblivious routing — the
    "dense" system the paper's sparse samples are measured against. *)

val to_candidates : t -> (int * int) list -> Sso_flow.Min_congestion.candidates
(** Materialize candidate lists for the given pairs (input to the Stage-4
    solvers). *)
