(** Path systems (Definition 2.1) — the semi-oblivious routing object.

    A path system associates to each ordered vertex pair [(s,t)] a set
    [P(s,t)] of simple (s,t)-paths, fixed before any demand is revealed
    (Stage 2 of the pipeline in Section 2.1).  It is [α]-sparse when every
    [|P(s,t)| ≤ α].

    Pair sets can be quadratically large while experiments only ever query
    the pairs in some demand's support, so a system may be backed by a lazy
    generator (memoized, so repeated queries see the same sample — this
    is what makes lazy α-sampling equivalent to sampling everything
    upfront: per-pair samples are independent).

    Storage is a shared {!Sso_graph.Arena}: each pair maps to a range of
    consecutive slice handles, so sparsity queries are O(1) per pair, the
    Stage-4 solvers index candidates without materializing path lists
    ({!to_slice_candidates}), and failover policies walk candidate slices
    in place.  {!paths} remains as a compatibility view that reconstructs
    boxed {!Sso_graph.Path.t} values on demand. *)

type t

val of_pairs : Sso_graph.Graph.t -> ((int * int) * Sso_graph.Path.t list) list -> t
(** Eager construction over a graph.  Paths must match their pair's
    endpoints, be deduplicated, and be walks of the graph
    ([Invalid_argument] otherwise); pairs must be distinct. *)

val of_generator : Sso_graph.Graph.t -> (int -> int -> Sso_graph.Path.t list) -> t
(** Lazy construction; the generator is consulted once per pair and must
    return valid deduplicated paths on the given graph.  Validation happens
    at query time. *)

val graph : t -> Sso_graph.Graph.t
(** The graph the system's paths live on. *)

val arena : t -> Sso_graph.Arena.t
(** The shared arena holding every materialized candidate path.  Slice
    handles obtained from {!slice_range}/{!iter_slices} resolve here.
    Reads of installed slices are lock-free; the arena grows under the
    system's internal lock as new pairs are generated. *)

val paths : t -> int -> int -> Sso_graph.Path.t list
(** [P(s,t)]; [[]] when the system offers no paths for the pair.  Safe to
    call from pool workers: the memo index is mutex-guarded and generation
    is serialized, so every caller sees the same per-pair sets.  Each call
    reconstructs boxed paths from the arena (in generation order); callers
    on hot paths should prefer {!slice_range} and the arena kernels. *)

val slice_range : t -> int -> int -> int * int
(** [(first, count)]: the pair's candidates occupy arena slices
    [first .. first + count - 1], in generation order.  Generates and
    installs the pair on first query, like {!paths}. *)

val slice_count : t -> int -> int -> int
(** [|P(s,t)|] without materializing anything — O(1) once installed. *)

val iter_slices : t -> int -> int -> (int -> unit) -> unit
(** Apply a function to each candidate slice handle of a pair, in
    generation order. *)

val materialize : t -> (int * int) list -> unit
(** Force generation for the given pairs (in list order) on the calling
    domain.  Parallel call sites materialize the pairs a sweep will query
    before fanning out, keeping generation order — and thus any
    generator-internal RNG draws — independent of the job count.  O(1) per
    already-installed pair. *)

val materialize_parallel : ?pool:Sso_engine.Pool.t -> t -> (int * int) list -> unit
(** Generate missing pairs on the pool: workers fill private arena
    builders (fixed-size chunks of the pair list), and the builders are
    merged into the shared arena in chunk order, so the resulting layout —
    and every subsequent answer — is identical at any job count.  Requires
    the generator to be safe to call from pool workers and per-pair
    deterministic (independent of query order); the α-samplers and
    oblivious supports qualify — their draws are keyed per pair. *)

val known_pairs : t -> (int * int) list
(** Pairs materialized so far (all pairs for an eager system). *)

val sparsity_on : t -> (int * int) list -> int
(** [max |P(s,t)|] over the given pairs — O(1) per pair on the arena
    index. *)

val is_alpha_sparse : t -> alpha:int -> (int * int) list -> bool

val union : t -> t -> t
(** Pointwise union of candidate sets (used by the completion-time ladder
    of Lemma 2.8, which unions one sample per hop scale). *)

val restrict_hops : max_hops:int -> t -> t
(** Drop candidate paths longer than [max_hops] (used when optimizing
    congestion + dilation). *)

val filter_paths : (Sso_graph.Path.t -> bool) -> t -> t
(** Keep only candidates satisfying the predicate. *)

val without_edge : int -> t -> t
(** Drop every candidate crossing the given edge — the failure model of
    the robustness experiments: when a link dies, the installed paths
    through it die with it and Stage 4 re-optimizes over the survivors. *)

val of_routing_support : Sso_graph.Graph.t -> Sso_flow.Routing.t -> t
(** [supp(R)] as a path system. *)

val of_oblivious_support : Sso_oblivious.Oblivious.t -> t
(** The (lazily queried) full support of an oblivious routing — the
    "dense" system the paper's sparse samples are measured against. *)

val to_candidates : t -> (int * int) list -> Sso_flow.Min_congestion.candidates
(** Materialize candidate lists for the given pairs (input to the
    list-based Stage-4 entry points).  Pairs are deduplicated and sorted
    with a monomorphic pair comparator. *)

val to_slice_candidates :
  t -> (int * int) list -> Sso_flow.Min_congestion.slice_candidates
(** The slice-index equivalent of {!to_candidates}: candidate ranges of
    the shared arena, no path lists materialized.  Input to
    {!Sso_flow.Min_congestion.mwu_on_slices} and
    {!Sso_flow.Concurrent_flow.on_slices}. *)
