module Gen = Sso_graph.Gen
module Path = Sso_graph.Path
module Matching = Sso_graph.Matching
module Demand = Sso_demand.Demand
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs

let attack_span = Obs.span "lower_bound.attack"
let matchings_counter = Obs.counter "lower_bound.matchings"

type attack = {
  demand : Demand.t;
  bottleneck : int list;
  pairs_matched : int;
  predicted_congestion : float;
}

let middles_hit (c : Gen.c_graph) p =
  let middles = Array.to_list c.Gen.c_middles in
  let vs = Path.vertices c.Gen.c_graph p in
  List.sort_uniq compare
    (List.filter (fun m -> Array.exists (fun v -> v = m) vs) middles)

let attack ?pool (c : Gen.c_graph) ps =
  Obs.with_span attack_span @@ fun () ->
  let g = c.Gen.c_graph in
  ignore g;
  let leaves1 = c.Gen.c_leaves1 and leaves2 = c.Gen.c_leaves2 in
  let k = Array.length c.Gen.c_middles in
  (* Hit-set per (left leaf, right leaf): the middles its candidates can
     possibly use.  Every left-right path crosses a middle vertex. *)
  let hits = Hashtbl.create (Array.length leaves1 * Array.length leaves2) in
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun j t ->
          let candidate_paths = Path_system.paths ps s t in
          let hit =
            List.sort_uniq compare
              (List.concat_map (fun p -> middles_hit c p) candidate_paths)
          in
          if hit = [] then
            invalid_arg "Lower_bound.attack: a left-right candidate avoids all middles";
          Hashtbl.replace hits (i, j) hit)
        leaves2)
    leaves1;
  (* Candidate bottleneck sets: the distinct hit-sets.  For each, match
     left leaves to right leaves among pairs funneled inside it, and score
     by (matched pairs, capped at k so the optimum stays 1) / |set|. *)
  let keys =
    Hashtbl.fold (fun _ hit acc -> hit :: acc) hits []
    |> List.sort_uniq compare
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  let evaluate key =
    Obs.incr matchings_counter;
    let adj i =
      List.filter_map
        (fun j -> if subset (Hashtbl.find hits (i, j)) key then Some j else None)
        (List.init (Array.length leaves2) Fun.id)
    in
    let pairs = Matching.maximum ~left:(Array.length leaves1) ~right:(Array.length leaves2) adj in
    let capped = Array.sub pairs 0 (min (Array.length pairs) k) in
    let score = float_of_int (Array.length capped) /. float_of_int (List.length key) in
    (score, key, capped)
  in
  (* Score every candidate bottleneck concurrently, then pick the winner by
     the same left-to-right fold the serial code used, so ties break
     identically for any job count. *)
  let evaluated = Pool.parallel_map ?pool evaluate (Array.of_list keys) in
  let best =
    Array.fold_left
      (fun acc ((score, _, _) as result) ->
        match acc with
        | Some (bs, _, _) when bs >= score -> acc
        | _ -> Some result)
      None evaluated
  in
  match best with
  | None -> invalid_arg "Lower_bound.attack: no left-right pairs in the system"
  | Some (score, key, matched) ->
      let demand =
        Demand.of_list
          (Array.to_list
             (Array.map (fun (i, j) -> (leaves1.(i), leaves2.(j), 1.0)) matched))
      in
      {
        demand;
        bottleneck = key;
        pairs_matched = Array.length matched;
        predicted_congestion = score;
      }

let attack_in_family ?pool (g : Gen.g_graph) ~alpha ps =
  let view =
    match List.assoc_opt alpha g.Gen.g_copies with
    | Some view -> view
    | None ->
        let available =
          g.Gen.g_copies
          |> List.map (fun (a, _) -> string_of_int a)
          |> String.concat ", "
        in
        invalid_arg
          (Printf.sprintf
             "Lower_bound.attack_in_family: no copy for alpha = %d (available: %s)"
             alpha available)
  in
  let as_c_graph : Gen.c_graph =
    {
      Gen.c_graph = g.Gen.g_graph;
      c_center1 = view.Gen.v_center1;
      c_leaves1 = view.Gen.v_leaves1;
      c_center2 = view.Gen.v_center2;
      c_leaves2 = view.Gen.v_leaves2;
      c_middles = view.Gen.v_middles;
    }
  in
  attack ?pool as_c_graph ps

let verify ?solver (c : Gen.c_graph) ps attack =
  Semi_oblivious.congestion ?solver c.Gen.c_graph ps attack.demand
