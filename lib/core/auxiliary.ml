module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Oblivious = Sso_oblivious.Oblivious
module Rng = Sso_prng.Rng

type t = {
  base : Graph.t;
  expanded : Graph.t;
  pair_terminals : (int * int, int * int) Hashtbl.t;
  terminal_pair : (int * int, int * int) Hashtbl.t; (* (v1,v2) -> (s,t) *)
  entry_edge : (int * int, int * int) Hashtbl.t; (* pair -> (edge v1-s, edge t-v2) *)
}

let expand base ~pairs =
  let pairs = List.sort_uniq compare pairs in
  List.iter
    (fun (s, t) ->
      if s = t then invalid_arg "Auxiliary.expand: diagonal pair";
      if s < 0 || t < 0 || s >= Graph.n base || t >= Graph.n base then
        invalid_arg "Auxiliary.expand: vertex out of range")
    pairs;
  let n = Graph.n base in
  let total = n + (2 * List.length pairs) in
  let b = Graph.Builder.create total in
  Graph.fold_edges (fun _ u v cap () -> ignore (Graph.Builder.add_edge ~cap b u v)) base ();
  let pair_terminals = Hashtbl.create 64 in
  let terminal_pair = Hashtbl.create 64 in
  let entry_edge = Hashtbl.create 64 in
  List.iteri
    (fun i (s, t) ->
      let v1 = n + (2 * i) and v2 = n + (2 * i) + 1 in
      let e1 = Graph.Builder.add_edge b v1 s in
      let e2 = Graph.Builder.add_edge b t v2 in
      Hashtbl.replace pair_terminals (s, t) (v1, v2);
      Hashtbl.replace terminal_pair (v1, v2) (s, t);
      Hashtbl.replace entry_edge (s, t) (e1, e2))
    pairs;
  { base; expanded = Graph.Builder.build b; pair_terminals; terminal_pair; entry_edge }

let graph t = t.expanded

let terminals t s u = Hashtbl.find t.pair_terminals (s, u)

let lift_path t (s, u) (p : Path.t) =
  let e1, e2 = Hashtbl.find t.entry_edge (s, u) in
  let v1, v2 = Hashtbl.find t.pair_terminals (s, u) in
  Path.of_edges t.expanded ~src:v1 ~dst:v2
    (Array.concat [ [| e1 |]; p.Path.edges; [| e2 |] ])

let lift_oblivious t obl =
  let n = Graph.n t.base in
  Oblivious.make ~name:(Oblivious.name obl ^ "+aux") t.expanded (fun a b ->
      if a < n && b < n then Oblivious.distribution obl a b
      else
        match Hashtbl.find_opt t.terminal_pair (a, b) with
        | Some (s, u) ->
            List.map (fun (w, p) -> (w, lift_path t (s, u) p)) (Oblivious.distribution obl s u)
        | None -> invalid_arg "Auxiliary.lift_oblivious: unsupported terminal pair")

let lift_demand t d =
  Demand.of_list
    (Demand.fold
       (fun s u amount acc ->
         let v1, v2 = terminals t s u in
         (v1, v2, amount) :: acc)
       d [])

let project_path t (s, u) (p : Path.t) =
  let hops = Path.hops p in
  if hops < 2 then invalid_arg "Auxiliary.project_path: terminal path too short";
  let inner = Array.sub p.Path.edges 1 (hops - 2) in
  Path.of_edges t.base ~src:s ~dst:u inner

let project_system t ps =
  Path_system.of_generator t.base (fun s u ->
      match Hashtbl.find_opt t.pair_terminals (s, u) with
      | None -> []
      | Some (v1, v2) ->
          List.map (fun p -> project_path t (s, u) p) (Path_system.paths ps v1 v2))

let alpha_sample_via_expansion rng t obl ~alpha =
  if alpha < 2 then invalid_arg "Auxiliary.alpha_sample_via_expansion: alpha must be >= 2";
  let lifted = lift_oblivious t obl in
  let sample = Sampler.alpha_cut_sample rng lifted ~alpha:(alpha - 1) in
  project_system t sample
