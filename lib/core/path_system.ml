module Path = Sso_graph.Path
module Routing = Sso_flow.Routing
module Oblivious = Sso_oblivious.Oblivious

type t = {
  generate : int -> int -> Path.t list;
  cache : (int * int, Path.t list) Hashtbl.t;
  (* Guards [cache] and serializes [generate] so systems can be queried
     from pool workers.  Generation happens under the lock: generators may
     share an RNG or memoize internally, and per-pair results must not
     depend on which domain asks first. *)
  lock : Mutex.t;
}

let validate s t paths =
  let module PS = Set.Make (Path) in
  let set =
    List.fold_left
      (fun acc (p : Path.t) ->
        if p.Path.src <> s || p.Path.dst <> t then
          invalid_arg "Path_system: path endpoints do not match pair";
        if PS.mem p acc then invalid_arg "Path_system: duplicate path in candidate set";
        PS.add p acc)
      PS.empty paths
  in
  ignore set;
  paths

let of_pairs entries =
  let cache = Hashtbl.create (List.length entries) in
  List.iter
    (fun ((s, t), paths) ->
      if Hashtbl.mem cache (s, t) then invalid_arg "Path_system.of_pairs: duplicate pair";
      Hashtbl.replace cache (s, t) (validate s t paths))
    entries;
  { generate = (fun _ _ -> []); cache; lock = Mutex.create () }

let of_generator generate = { generate; cache = Hashtbl.create 64; lock = Mutex.create () }

let paths ps s t =
  Mutex.lock ps.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ps.lock)
    (fun () ->
      match Hashtbl.find_opt ps.cache (s, t) with
      | Some paths -> paths
      | None ->
          let result = validate s t (ps.generate s t) in
          Hashtbl.replace ps.cache (s, t) result;
          result)

let materialize ps pair_list = List.iter (fun (s, t) -> ignore (paths ps s t)) pair_list

let known_pairs ps =
  Mutex.lock ps.lock;
  let pairs = Hashtbl.fold (fun pair _ acc -> pair :: acc) ps.cache [] in
  Mutex.unlock ps.lock;
  List.sort compare pairs

let sparsity_on ps pair_list =
  List.fold_left (fun acc (s, t) -> max acc (List.length (paths ps s t))) 0 pair_list

let is_alpha_sparse ps ~alpha pair_list = sparsity_on ps pair_list <= alpha

let union a b =
  of_generator (fun s t ->
      let module PS = Set.Make (Path) in
      PS.elements (PS.union (PS.of_list (paths a s t)) (PS.of_list (paths b s t))))

let restrict_hops ~max_hops ps =
  of_generator (fun s t ->
      List.filter (fun p -> Path.hops p <= max_hops) (paths ps s t))

let filter_paths keep ps =
  of_generator (fun s t -> List.filter keep (paths ps s t))

let without_edge e ps = filter_paths (fun p -> not (Path.mem_edge p e)) ps

let of_routing_support r =
  of_pairs
    (List.map
       (fun (s, t) -> ((s, t), List.map snd (Routing.distribution r s t)))
       (Routing.pairs r))

let of_oblivious_support obl =
  of_generator (fun s t -> List.map snd (Oblivious.distribution obl s t))

let to_candidates ps pair_list =
  List.map (fun (s, t) -> ((s, t), paths ps s t)) (List.sort_uniq compare pair_list)
