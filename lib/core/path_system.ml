module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Path_arena = Sso_graph.Arena
module Routing = Sso_flow.Routing
module Oblivious = Sso_oblivious.Oblivious
module Pool = Sso_engine.Pool

(* Where the slices of one pair live in the arena: [count] consecutive
   handles starting at [first], in generation order. *)
type entry = { first : int; count : int }

type t = {
  graph : Graph.t;
  generate : int -> int -> Path.t list;
  arena : Path_arena.t;
  index : (int * int, entry) Hashtbl.t;
  (* Guards [index] and arena appends, and serializes [generate] so systems
     can be queried from pool workers.  Generation happens under the lock:
     generators may share an RNG or memoize internally, and per-pair results
     must not depend on which domain asks first.  Reads of installed slices
     are lock-free: arena regions are immutable once their entry is
     published. *)
  lock : Mutex.t;
}

let compare_pair (s1, t1) (s2, t2) =
  match Int.compare s1 s2 with 0 -> Int.compare t1 t2 | c -> c

let validate s t paths =
  let module PS = Set.Make (Path) in
  let set =
    List.fold_left
      (fun acc (p : Path.t) ->
        if p.Path.src <> s || p.Path.dst <> t then
          invalid_arg "Path_system: path endpoints do not match pair";
        if PS.mem p acc then invalid_arg "Path_system: duplicate path in candidate set";
        PS.add p acc)
      PS.empty paths
  in
  ignore set;
  paths

(* Lock held.  Validation runs before any append so a rejected candidate
   list leaves no entry behind. *)
let install_locked ps s t path_list =
  let paths = validate s t path_list in
  let first = Path_arena.length ps.arena in
  List.iter (fun p -> ignore (Path_arena.append_path ps.arena p)) paths;
  let entry = { first; count = Path_arena.length ps.arena - first } in
  Hashtbl.replace ps.index (s, t) entry;
  entry

let entry ps s t =
  Mutex.lock ps.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ps.lock)
    (fun () ->
      match Hashtbl.find_opt ps.index (s, t) with
      | Some e -> e
      | None -> install_locked ps s t (ps.generate s t))

let of_pairs graph entries =
  let ps =
    {
      graph;
      generate = (fun _ _ -> []);
      arena = Path_arena.create ~capacity:(4 * max 1 (List.length entries)) graph;
      index = Hashtbl.create (max 16 (List.length entries));
      lock = Mutex.create ();
    }
  in
  List.iter
    (fun ((s, t), paths) ->
      if Hashtbl.mem ps.index (s, t) then invalid_arg "Path_system.of_pairs: duplicate pair";
      ignore (install_locked ps s t paths))
    entries;
  ps

let of_generator graph generate =
  {
    graph;
    generate;
    arena = Path_arena.create graph;
    index = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let graph ps = ps.graph
let arena ps = ps.arena

let slice_range ps s t =
  let e = entry ps s t in
  (e.first, e.count)

let slice_count ps s t = (entry ps s t).count

let iter_slices ps s t f =
  let e = entry ps s t in
  for k = e.first to e.first + e.count - 1 do
    f k
  done

let paths ps s t =
  let e = entry ps s t in
  List.init e.count (fun k -> Path_arena.to_path ps.arena (e.first + k))

let materialize ps pair_list = List.iter (fun (s, t) -> ignore (entry ps s t)) pair_list

(* Chunk size for parallel materialization: fixed, so the chunk structure —
   and with it the merged arena layout and any per-chunk failure — depends
   only on the pair list, never on the job count. *)
let parallel_chunk = 16

let materialize_parallel ?pool ps pair_list =
  let seen = Hashtbl.create (List.length pair_list) in
  Mutex.lock ps.lock;
  let misses =
    List.filter
      (fun pair ->
        if Hashtbl.mem seen pair then false
        else begin
          Hashtbl.add seen pair ();
          not (Hashtbl.mem ps.index pair)
        end)
      pair_list
  in
  Mutex.unlock ps.lock;
  if misses <> [] then begin
    let arr = Array.of_list misses in
    let total = Array.length arr in
    let chunks = (total + parallel_chunk - 1) / parallel_chunk in
    (* Each worker fills a private builder arena; the merge below appends
       the builders in chunk order, so the shared arena's layout is
       identical at any job count. *)
    let built =
      Pool.parallel_init ?pool chunks (fun c ->
          let lo = c * parallel_chunk in
          let hi = min total (lo + parallel_chunk) in
          let builder = Path_arena.create ~capacity:(4 * (hi - lo)) ps.graph in
          let entries =
            Array.init (hi - lo) (fun k ->
                let s, t = arr.(lo + k) in
                let paths = validate s t (ps.generate s t) in
                let first = Path_arena.length builder in
                List.iter (fun p -> ignore (Path_arena.append_path builder p)) paths;
                ((s, t), first, Path_arena.length builder - first))
          in
          (builder, entries))
    in
    Mutex.lock ps.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock ps.lock)
      (fun () ->
        Array.iter
          (fun (builder, entries) ->
            let base = Path_arena.append_all ps.arena builder in
            Array.iter
              (fun (pair, first, count) ->
                if not (Hashtbl.mem ps.index pair) then
                  Hashtbl.replace ps.index pair { first = base + first; count })
              entries)
          built)
  end

let known_pairs ps =
  Mutex.lock ps.lock;
  let pairs = Hashtbl.fold (fun pair _ acc -> pair :: acc) ps.index [] in
  Mutex.unlock ps.lock;
  List.sort compare_pair pairs

let sparsity_on ps pair_list =
  List.fold_left (fun acc (s, t) -> max acc (slice_count ps s t)) 0 pair_list

let is_alpha_sparse ps ~alpha pair_list = sparsity_on ps pair_list <= alpha

let union a b =
  of_generator a.graph (fun s t ->
      let module PS = Set.Make (Path) in
      PS.elements (PS.union (PS.of_list (paths a s t)) (PS.of_list (paths b s t))))

let restrict_hops ~max_hops ps =
  of_generator ps.graph (fun s t ->
      List.filter (fun p -> Path.hops p <= max_hops) (paths ps s t))

let filter_paths keep ps =
  of_generator ps.graph (fun s t -> List.filter keep (paths ps s t))

let without_edge e ps = filter_paths (fun p -> not (Path.mem_edge p e)) ps

let of_routing_support g r =
  of_pairs g
    (List.map
       (fun (s, t) -> ((s, t), List.map snd (Routing.distribution r s t)))
       (Routing.pairs r))

let of_oblivious_support obl =
  of_generator (Oblivious.graph obl) (fun s t ->
      List.map snd (Oblivious.distribution obl s t))

let to_candidates ps pair_list =
  List.map
    (fun (s, t) -> ((s, t), paths ps s t))
    (List.sort_uniq compare_pair pair_list)

let to_slice_candidates ps pair_list =
  let pairs = List.sort_uniq compare_pair pair_list in
  let ranges = List.map (fun (s, t) -> ((s, t), slice_range ps s t)) pairs in
  Sso_flow.Min_congestion.slice_candidates_of_arena ps.arena ranges
