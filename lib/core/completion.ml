module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Hop_constrained = Sso_oblivious.Hop_constrained
module Rng = Sso_prng.Rng

let ladder_hops g =
  let diameter = max 1 (Shortest.diameter g) in
  let rec build h acc = if h >= diameter then List.rev (diameter :: acc) else build (h * 2) (h :: acc) in
  build 1 []

let ladder_system ?stretch ?paths_per_pair rng g ~alpha =
  let rungs = ladder_hops g in
  let systems =
    List.map
      (fun h ->
        let obl = Hop_constrained.routing ?stretch ?paths_per_pair ~max_hops:h g in
        (* A rung's routing may not reach every pair within its budget;
           treat unreachable pairs as contributing no candidates. *)
        let sample = Sampler.alpha_sample (Rng.split rng) obl ~alpha in
        Path_system.of_generator g (fun s t ->
            try Path_system.paths sample s t with Invalid_argument _ -> []))
      rungs
  in
  match systems with
  | [] -> assert false (* ladder_hops is never empty *)
  | first :: rest -> List.fold_left Path_system.union first rest

let completion_time g r d = Routing.congestion g r d +. float_of_int (Routing.dilation r d)

let route ?solver g ps demand =
  if Demand.support_size demand = 0 then (Routing.make [], 0.0, 0)
  else begin
    (* Hop thresholds worth trying: the distinct candidate path lengths. *)
    let thresholds =
      Demand.fold
        (fun s t _ acc ->
          List.fold_left
            (fun acc p -> List.cons (Path.hops p) acc)
            acc (Path_system.paths ps s t))
        demand []
      |> List.sort_uniq Int.compare
    in
    (* A threshold is feasible only if every demanded pair retains a
       candidate. *)
    let feasible h =
      Demand.fold
        (fun s t _ acc ->
          acc && List.exists (fun p -> Path.hops p <= h) (Path_system.paths ps s t))
        demand true
    in
    let candidates_at h = Path_system.restrict_hops ~max_hops:h ps in
    let best =
      List.fold_left
        (fun acc h ->
          if not (feasible h) then acc
          else begin
            let routing, cong = Semi_oblivious.route ?solver g (candidates_at h) demand in
            let dil = Routing.dilation routing demand in
            let value = cong +. float_of_int dil in
            match acc with
            | Some (bv, _, _, _) when bv <= value -> acc
            | _ -> Some (value, routing, cong, dil)
          end)
        None thresholds
    in
    match best with
    | None -> invalid_arg "Completion.route: no feasible hop threshold (missing candidates)"
    | Some (_, routing, cong, dil) -> (routing, cong, dil)
  end
