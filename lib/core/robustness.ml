module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Min_congestion = Sso_flow.Min_congestion
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs

let sweep_span = Obs.span "robustness.sweep"
let failures_counter = Obs.counter "robustness.failures_tested"

type report = {
  failed_edge : int;
  survivable : bool;
  achieved : float;
  post_opt : float;
  ratio : float;
}

let single_failures ?pool ?(solver = Semi_oblivious.default_solver) g ps demand =
  let iters =
    match solver with
    | Semi_oblivious.Mwu i -> i
    | Semi_oblivious.Lp | Semi_oblivious.Gk _ -> 300
  in
  (* Materialize the parent system for every demanded pair before fanning
     out: the per-failure tasks derive [without_edge] children from it, and
     generation order (hence any generator RNG draws) must not depend on
     the job count. *)
  Path_system.materialize ps (Demand.support demand);
  Obs.with_span sweep_span @@ fun () ->
  Array.to_list
  @@ Pool.parallel_init ?pool (Graph.m g) (fun e ->
      Obs.incr failures_counter;
      let survivors = Path_system.without_edge e ps in
      let candidates_remain =
        List.for_all
          (fun (s, t) -> Path_system.paths survivors s t <> [])
          (Demand.support demand)
      in
      match Min_congestion.mwu_unrestricted_avoiding ~iters ~avoid:(fun e' -> e' = e) g demand with
      | None ->
          (* The network itself cannot survive this failure: not the path
             system's fault. *)
          { failed_edge = e; survivable = false; achieved = infinity; post_opt = infinity; ratio = infinity }
      | Some (_, post_opt) ->
          let post_opt =
            Float.max post_opt
              (Min_congestion.lower_bound_sparse_cut g demand)
          in
          if not candidates_remain then
            { failed_edge = e; survivable = false; achieved = infinity; post_opt; ratio = infinity }
          else begin
            let achieved = Semi_oblivious.congestion ~solver g survivors demand in
            { failed_edge = e; survivable = true; achieved; post_opt; ratio = achieved /. post_opt }
          end)

type summary = {
  edges_tested : int;
  unsurvivable : int;
  mean_ratio : float;
  worst_ratio : float;
}

let summary reports =
  let network_survivable =
    List.filter (fun r -> Float.is_finite r.post_opt) reports
  in
  let survivable = List.filter (fun r -> r.survivable) network_survivable in
  let ratios = List.map (fun r -> r.ratio) survivable in
  let count = List.length ratios in
  {
    edges_tested = List.length reports;
    unsurvivable = List.length network_survivable - count;
    mean_ratio =
      (if count = 0 then nan
       else List.fold_left ( +. ) 0.0 ratios /. float_of_int count);
    worst_ratio = List.fold_left Float.max 0.0 ratios;
  }
