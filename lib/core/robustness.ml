module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Min_congestion = Sso_flow.Min_congestion
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs

let sweep_span = Obs.span "robustness.sweep"
let failures_counter = Obs.counter "robustness.failures_tested"
let opt_solves_counter = Obs.counter "robustness.opt_solves"

type report = {
  failed_edge : int;
  survivable : bool;
  achieved : float;
  post_opt : float;
  ratio : float;
}

let single_failures ?pool ?(solver = Semi_oblivious.default_solver) g ps demand =
  let iters =
    match solver with
    | Semi_oblivious.Mwu i -> i
    | Semi_oblivious.Lp | Semi_oblivious.Gk _ -> 300
  in
  let support = Demand.support demand in
  (* Materialize the parent system for every demanded pair before fanning
     out: the per-failure tasks derive [without_edge] children from it, and
     generation order (hence any generator RNG draws) must not depend on
     the job count. *)
  Path_system.materialize ps support;
  Obs.with_span sweep_span @@ fun () ->
  let m = Graph.m g in
  (* Parallel edges: failing either of two same-(u,v,cap) edges damages
     isomorphic networks, so the expensive post-failure optimum is solved
     once per class and shared across its members. *)
  let rep = Array.make m (-1) in
  let class_tbl = Hashtbl.create m in
  for e = 0 to m - 1 do
    let u, v = Graph.endpoints g e in
    let key = (u, v, Graph.cap g e) in
    match Hashtbl.find_opt class_tbl key with
    | Some r -> rep.(e) <- r
    | None ->
        Hashtbl.add class_tbl key e;
        rep.(e) <- e
  done;
  let reps =
    Array.of_list (List.filter (fun e -> rep.(e) = e) (List.init m Fun.id))
  in
  (* Edges no candidate path crosses keep the survivor system equal to the
     whole system, so their Stage-4 solve collapses to one shared
     baseline. *)
  let used = Array.make m false in
  let arena = Path_system.arena ps in
  List.iter
    (fun (s, t) ->
      Path_system.iter_slices ps s t (fun i ->
          Sso_graph.Arena.iter arena i (fun e -> used.(e) <- true)))
    support;
  let pre_nonempty =
    List.for_all (fun (s, t) -> Path_system.slice_count ps s t > 0) support
  in
  let baseline =
    if Array.exists not used && pre_nonempty then
      Some (Semi_oblivious.congestion ~solver g ps demand)
    else None
  in
  let post_opts =
    Pool.parallel_map ?pool
      (fun e ->
        Obs.incr opt_solves_counter;
        Min_congestion.mwu_unrestricted_avoiding ~iters
          ~avoid:(fun e' -> e' = e)
          g demand)
      reps
  in
  let post_of = Array.make m None in
  Array.iteri (fun i r -> post_of.(r) <- post_opts.(i)) reps;
  Array.to_list
  @@ Pool.parallel_init ?pool m (fun e ->
      Obs.incr failures_counter;
      match post_of.(rep.(e)) with
      | None ->
          (* The network itself cannot survive this failure: not the path
             system's fault. *)
          { failed_edge = e; survivable = false; achieved = infinity; post_opt = infinity; ratio = infinity }
      | Some (_, post_opt) ->
          let post_opt =
            Float.max post_opt
              (Min_congestion.lower_bound_sparse_cut g demand)
          in
          let unsurvivable =
            { failed_edge = e; survivable = false; achieved = infinity; post_opt; ratio = infinity }
          in
          if not used.(e) then
            match baseline with
            | Some achieved ->
                { failed_edge = e; survivable = true; achieved; post_opt; ratio = achieved /. post_opt }
            | None -> unsurvivable
          else begin
            let survivors = Path_system.without_edge e ps in
            let candidates_remain =
              List.for_all
                (fun (s, t) -> Path_system.slice_count survivors s t > 0)
                support
            in
            if not candidates_remain then unsurvivable
            else begin
              let achieved = Semi_oblivious.congestion ~solver g survivors demand in
              { failed_edge = e; survivable = true; achieved; post_opt; ratio = achieved /. post_opt }
            end
          end)

type summary = {
  edges_tested : int;
  unsurvivable : int;
  mean_ratio : float;
  worst_ratio : float;
}

let summary reports =
  let network_survivable =
    List.filter (fun r -> Float.is_finite r.post_opt) reports
  in
  let survivable = List.filter (fun r -> r.survivable) network_survivable in
  let ratios = List.map (fun r -> r.ratio) survivable in
  let count = List.length ratios in
  {
    edges_tested = List.length reports;
    unsurvivable = List.length network_survivable - count;
    mean_ratio =
      (if count = 0 then nan
       else List.fold_left ( +. ) 0.0 ratios /. float_of_int count);
    (* No survivable failure means no worst one either: report nan, not a
       vacuous fold over 0. *)
    worst_ratio =
      (if count = 0 then nan else List.fold_left Float.max 0.0 ratios);
  }
