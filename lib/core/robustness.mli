(** Failure robustness of semi-oblivious path systems.

    The paper's traffic-engineering motivation (Section 1, citing SMORE
    [KYY+18]) is that semi-oblivious routing is {e robust}: when a link
    fails, the diverse pre-installed candidate paths let Stage 4 steer
    around the failure immediately, without installing new state.  This
    module evaluates that: for each single-edge failure it drops the dead
    candidates ({!Path_system.without_edge}), re-optimizes rates on the
    survivors, and compares against the optimum of the damaged network. *)

type report = {
  failed_edge : int;
  survivable : bool;
      (** Every demanded pair kept at least one candidate and the damaged
          network can still connect it. *)
  achieved : float;  (** Stage-4 congestion on surviving candidates. *)
  post_opt : float;  (** Optimum congestion on the damaged network. *)
  ratio : float;  (** [achieved / post_opt]; [infinity] if unsurvivable. *)
}

val single_failures :
  ?pool:Sso_engine.Pool.t ->
  ?solver:Semi_oblivious.solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t -> report list
(** One report per edge of the graph.  Edges whose failure disconnects a
    demanded pair in the graph itself are reported with
    [survivable = false] and are excluded from {!summary}.  Failures are
    evaluated concurrently on [pool] (default: the process pool); the
    report list is identical for any job count.

    Identical scenarios are solved once: parallel edges with the same
    endpoints and capacity damage isomorphic networks, so the damaged
    optimum is computed per equivalence class (counter
    [robustness.opt_solves]) and shared, and edges no candidate path
    crosses share one baseline Stage-4 solve — while the report list
    still carries one entry per edge id. *)

type summary = {
  edges_tested : int;
  unsurvivable : int;
      (** Failures the candidate set could not absorb even though the
          damaged network still connects every pair. *)
  mean_ratio : float;
      (** Over survivable failures; [nan] when there are none. *)
  worst_ratio : float;  (** Likewise [nan] when there are none. *)
}

val summary : report list -> summary
