(** Semi-oblivious routing evaluation (Definition 5.1 and Stage 4/5 of the
    pipeline in Section 2.1).

    Once the demand is revealed, the router may choose rates on the
    candidate paths with full global knowledge; [cong_ℝ(P,d)] is the
    minimum congestion over routings supported on the path system.  The
    competitive ratio divides it by the offline optimum [opt_{G,ℝ}(d)]
    (Stage 5), and "competitiveness with R" divides it by [cong(R,d)]
    (the form Theorem 5.3 is stated in). *)

type solver =
  | Lp  (** Exact simplex (small instances). *)
  | Mwu of int  (** Multiplicative weights with the given iteration count. *)
  | Gk of float  (** Garg–Könemann with the given ε ∈ (0,1). *)

val default_solver : solver
(** [Mwu 300]. *)

val route :
  ?solver:solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float
(** Stage 4: the adaptive min-congestion routing of [d] on [P] and its
    congestion [cong_ℝ(P,d)] (exact for [Lp], near-optimal for [Mwu]).
    @raise Invalid_argument if some demanded pair has no candidates. *)

val congestion :
  ?solver:solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t -> float
(** [cong_ℝ(P,d)]. *)

val resolve :
  ?solver:solver ->
  ?warm_start:Sso_flow.Routing.t * int ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float
(** Stage-4 re-optimization after the path system or graph changed —
    the recovery step of the fault experiments.  With
    [~warm_start:(r, w)] and an MWU solver, the multiplicative-weights
    iteration starts from the pre-failure routing [r] (restricted to
    paths the candidate sets still offer, counted as [w] virtual rounds)
    instead of from scratch, so few fresh rounds recover a good routing
    — the operational claim behind "re-optimize rates on survivors".
    Pairs whose warm distribution died entirely are re-learned from
    scratch.  Without [warm_start], or with the [Lp]/[Gk] solvers (which
    have no incremental form), this is {!route}.
    @raise Invalid_argument if some demanded pair has no candidates. *)

val reoptimize :
  ?solver:solver ->
  ?warm_start:Sso_flow.Routing.t * int ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t ->
  Sso_flow.Routing.t * float
(** Stage-4 re-optimization after the {e demand} changed — {!resolve}'s
    warm start generalized from fault recovery to demand churn, the inner
    loop of the routing service.  The candidate sets are intact (nothing
    failed), so with [~warm_start:(r, w)] and an MWU solver the previous
    routing is restricted to the pairs the new demand still asks for
    (departed commodities retire with their distributions) and seeds the
    iteration as [w] virtual rounds; newly arrived pairs, which [r] does
    not cover, are learned by the fresh rounds alone.  Runs on the slice
    index, so admitting a commodity costs one arena append and no path
    system rebuild.  Without [warm_start], with an empty surviving
    intersection, or with the [Lp]/[Gk] solvers, this is {!route}.
    Output is bit-identical at any [--jobs].
    @raise Invalid_argument if some demanded pair has no candidates. *)

val opt :
  ?solver:solver -> Sso_graph.Graph.t -> Sso_demand.Demand.t -> float
(** Offline optimum [opt_{G,ℝ}(d)] (Dijkstra-oracle MWU by default; exact
    edge-LP when [solver = Lp]). *)

val competitive_ratio :
  ?solver:solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t -> float
(** [cong_ℝ(P,d) / opt_{G,ℝ}(d)] (Stage 5); [1] for empty demands.  When
    the MWU optimum estimate falls below the certified lower bound of
    {!Sso_flow.Min_congestion.lower_bound_sparse_cut}, the bound is used
    instead, so the reported ratio never exaggerates the system's
    quality. *)

val competitive_with :
  ?solver:solver ->
  Sso_oblivious.Oblivious.t -> Path_system.t -> Sso_demand.Demand.t -> float
(** [cong_ℝ(P,d) / cong(R,d)] — competitiveness relative to the base
    oblivious routing (Definition 5.1's "C-competitive with R"). *)

val worst_ratio :
  ?solver:solver ->
  Sso_graph.Graph.t -> Path_system.t -> Sso_demand.Demand.t list -> float
(** Max competitive ratio over a set of demands — the empirical analogue of
    "C-competitive on D". *)
