(* xoshiro256** with splitmix64 seeding.  See rng.mli for the contract. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 step: used both for seeding and for [split]. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let split_at t i =
  if i < 0 then invalid_arg "Rng.split_at: index must be non-negative";
  (* Mix the full current state with the index (FNV-style fold), then
     expand through splitmix64 exactly as [create]/[split] do.  Reads [t]
     without advancing it, so children keyed by distinct indices can be
     derived concurrently from one parent. *)
  let open Int64 in
  let h = ref (logxor t.s0 (mul (add (of_int i) 1L) 0x9E3779B97F4A7C15L)) in
  let fold x = h := mul (logxor !h x) 0x100000001B3L in
  fold t.s1;
  fold t.s2;
  fold t.s3;
  let state = ref !h in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let fingerprint t =
  (* FNV-1a fold of the four state words; reads without advancing, so the
     fingerprint identifies the stream a consumer is about to draw from. *)
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  let fold x = h := mul (logxor !h x) 0x100000001B3L in
  fold t.s0;
  fold t.s1;
  fold t.s2;
  fold t.s3;
  !h

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let bits62 t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 62 uniform bits for exact uniformity. *)
  let limit = 0x3FFFFFFFFFFFFFFF - (0x3FFFFFFFFFFFFFFF mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let bool t = Int64.compare (Int64.logand (int64 t) 1L) 0L <> 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let discrete t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then invalid_arg "Rng.discrete: weights must have positive sum";
  let target = float t *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

module Alias = struct
  type table = { prob : float array; alias : int array }

  let make w =
    let n = Array.length w in
    if n = 0 then invalid_arg "Rng.Alias.make: empty weights";
    let total = Array.fold_left ( +. ) 0.0 w in
    if not (total > 0.0) then invalid_arg "Rng.Alias.make: weights must have positive sum";
    let scaled = Array.map (fun x -> x *. float_of_int n /. total) w in
    let prob = Array.make n 1.0 in
    let alias = Array.init n (fun i -> i) in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri (fun i p -> Queue.add i (if p < 1.0 then small else large)) scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      Queue.add l (if scaled.(l) < 1.0 then small else large)
    done;
    (* Leftovers are 1.0 up to float error. *)
    { prob; alias }

  let sample t { prob; alias } =
    let i = int t (Array.length prob) in
    if float t < prob.(i) then i else alias.(i)

  let size { prob; _ } = Array.length prob
end
