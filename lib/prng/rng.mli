(** Deterministic, splittable pseudo-random number generator.

    All randomized constructions in this repository (α-samples, Valiant's
    trick, FRT embeddings, randomized rounding, workload generators) draw
    from this module so that every experiment is reproducible from a single
    integer seed.

    The generator is xoshiro256** seeded through splitmix64, a standard
    high-quality non-cryptographic combination.  States are mutable; use
    {!split} to derive an independent stream (e.g. one per trial). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Splitting then using both streams never repeats draws. *)

val split_at : t -> int -> t
(** [split_at t i] derives an independent child stream keyed by index [i]
    {e without advancing} [t]: the same [(t, i)] always yields the same
    stream, and distinct indices yield decorrelated streams.  This is the
    primitive behind deterministic parallelism — each task of a parallel
    loop takes [split_at parent task_index], so results are independent of
    execution order and job count.  @raise Invalid_argument if [i < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws as [t]). *)

val fingerprint : t -> int64
(** A digest of the current state {e without advancing} it.  Two generators
    with equal fingerprints produce identical future draws, so the
    fingerprint canonically names the randomness a construction is about to
    consume — the artifact store keys cached randomized objects by it. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive and
    fit in 62 bits.  Uses rejection sampling, hence exactly uniform. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [\[0, n)]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on [||]. *)

val discrete : t -> float array -> int
(** [discrete t w] samples index [i] with probability [w.(i) / sum w] by
    linear scan.  Weights must be non-negative with a positive sum. *)

module Alias : sig
  (** Walker alias tables: O(n) preprocessing, O(1) sampling from a fixed
      discrete distribution.  Used when sampling many paths from the same
      oblivious-routing distribution. *)

  type table

  val make : float array -> table
  (** Build a table from non-negative weights with positive sum. *)

  val sample : t -> table -> int
  (** Draw an index distributed proportionally to the weights. *)

  val size : table -> int
  (** Number of outcomes. *)
end
