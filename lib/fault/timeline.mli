(** Timed fault scenarios and mid-flight failover.

    A timeline schedules scenarios onto simulation steps: each entry fails
    its scenario's edges at step [fail_at] and optionally repairs them at
    [repair_at].  {!simulate} replays an integral path assignment through
    {!Sso_sim.Simulator.run_faulted} with the {e candidate failover}
    policy: a packet hit by a failure continues on a surviving candidate
    path of the installed path system — the semi-oblivious robustness
    story made operational.  Everything is deterministic for fixed inputs
    (the simulation itself is sequential). *)

type entry = {
  scenario : Scenario.t;
  fail_at : int;  (** Step (≥ 1) at which the scenario strikes. *)
  repair_at : int option;  (** Step (> [fail_at]) restoring full capacity. *)
}

type t = entry list

val entry : ?repair_at:int -> at:int -> Scenario.t -> entry
(** @raise Invalid_argument if [at < 1] or [repair_at ≤ at]. *)

val changes : t -> Sso_sim.Simulator.edge_change list
(** The flat capacity-change schedule (failures plus repairs) the
    simulator consumes. *)

val candidate_failover :
  Sso_graph.Graph.t ->
  Sso_core.Path_system.t ->
  pair:int * int ->
  at_vertex:int ->
  alive:(int -> bool) ->
  Sso_graph.Path.t option
(** The failover policy: among the pair's candidates whose edges are all
    alive, prefer one already passing through the packet's current vertex
    (continue on its suffix); otherwise bridge — BFS over alive edges from
    the current vertex to the nearest vertex of the first surviving
    candidate, then follow that candidate to the destination.  [None] when
    no candidate survives or the bridge does not exist, in which case the
    simulator counts the packet dropped.  Deterministic: candidates are
    scanned in path-system order and the BFS visits edges in CSR order. *)

val simulate :
  ?discipline:Sso_sim.Simulator.discipline ->
  ?max_steps:int ->
  Sso_graph.Graph.t ->
  Sso_core.Path_system.t ->
  Sso_flow.Rounding.assignment ->
  t ->
  Sso_sim.Simulator.fault_stats Sso_sim.Simulator.outcome
(** Run the assignment under the timeline with {!candidate_failover}
    drawing replacement routes from the path system.  Emits
    [fault.timeline] spans and [fault.dropped]/[fault.rerouted] counters.
    When every demanded pair retains at least one surviving candidate and
    bridges exist (e.g. a torus row SRLG), the run reports [dropped = 0]. *)
