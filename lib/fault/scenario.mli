(** Failure scenarios: deterministic descriptions of what breaks.

    A scenario is a set of per-edge capacity changes — full removals
    (factor 0) and partial degradations (factor in (0,1), scaling the
    edge's capacity, i.e. its effective multiplicity in the paper's
    parallel-edge model).  Scenarios are pure data: they can be applied to
    a graph offline (for the sweeps of [Sweep]), scheduled on a timeline
    (for the mid-flight simulations of [Timeline]), hashed into artifact
    recipes, and round-tripped through the binary codec.

    Beyond single edges and random k-subsets, constructors derive
    {e shared-risk link groups} (SRLGs) from generator structure: a torus
    row or a fat-tree pod fails as one correlated event — the failure
    model real traffic-engineering deployments plan for (fiber conduits,
    pod power domains). *)

type failure = {
  fail_edge : int;  (** Edge id. *)
  fail_factor : float;
      (** Remaining capacity fraction in [0,1): 0 removes the edge,
          anything else degrades it. *)
}

type t = {
  label : string;  (** Stable human-readable name (part of the identity). *)
  failures : failure list;  (** Sorted by edge id, no duplicates. *)
}

val make : ?label:string -> Sso_graph.Graph.t -> failure list -> t
(** Validate against the graph: edge ids in range, factors in [0,1), no
    duplicate edges ([Invalid_argument] otherwise).  Failures are sorted
    by edge id, so equal sets compare equal.  The default label lists the
    failed edges. *)

val single : Sso_graph.Graph.t -> int -> t
(** Remove one edge — the classic sweep scenario. *)

val of_edges : ?label:string -> Sso_graph.Graph.t -> int list -> t
(** Remove the given edges. *)

val degrade :
  ?label:string -> Sso_graph.Graph.t -> factor:float -> int list -> t
(** Scale the given edges' capacities by [factor] ∈ (0,1) instead of
    removing them. *)

val random_k : Sso_prng.Rng.t -> Sso_graph.Graph.t -> k:int -> t
(** [k] distinct edges drawn uniformly.  Deterministic in the RNG state:
    sweeps split a child per scenario index ({!Sso_prng.Rng.split_at}) so
    results are independent of the job count. *)

(** {1 Structural shared-risk groups} *)

val torus_rows : Sso_graph.Graph.t -> rows:int -> cols:int -> t list
(** One SRLG per torus row: the [cols] wrap-around horizontal edges whose
    endpoints both lie in the row (vertex [(r,c)] has id [r·cols + c], the
    layout of [Gen.torus]).  Vertical edges survive, so the network stays
    connected — the interesting regime for failover.
    @raise Invalid_argument if the graph does not have [rows·cols]
    vertices. *)

val fat_tree_pods : Sso_graph.Graph.t -> k:int -> t list
(** One SRLG per pod of [Gen.fat_tree k]: every edge with at least one
    endpoint among the pod's k switches (intra-pod fabric and core
    uplinks) — a pod-wide power event.  @raise Invalid_argument if the
    vertex count does not match a [k]-ary fat tree. *)

val incident : Sso_graph.Graph.t -> int -> t
(** All edges incident to one vertex — a node failure expressed as an
    SRLG. *)

(** {1 Interrogation} *)

val edges : t -> int list
(** Failed edge ids, ascending. *)

val removed : t -> (int -> bool)
(** Predicate: is this edge fully removed (factor 0)?  Suitable as the
    [avoid] argument of the flow solvers. *)

val is_degradation : t -> bool
(** Does any failure keep positive capacity? *)

val apply : Sso_graph.Graph.t -> t -> Sso_graph.Graph.t
(** The degraded graph: capacities of partially-failed edges are scaled,
    edge ids and endpoints are preserved (the graph is rebuilt in id
    order), and fully-removed edges keep their capacity — removal is
    expressed via {!removed}, because capacities must stay positive and
    path systems filter dead candidates explicitly.  When the scenario
    contains no degradation the original graph is returned unchanged. *)

(** {1 Codec}

    Versioned binary encoding over the artifact-store primitives, so
    scenario identity participates in cache keys and scenarios round-trip
    bit-exactly. *)

val encode : t -> string

val decode : Sso_graph.Graph.t -> string -> t
(** Validates against the graph.  @raise Sso_artifact.Codec.Corrupt on
    malformed input. *)

val digest : t -> int64
(** FNV-1a of {!encode} — the scenario component of artifact recipes. *)
