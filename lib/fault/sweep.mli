(** Offline fault sweeps: congestion under failure, generalized over
    {!Scenario}.

    For each scenario the sweep drops the dead candidate paths, scales the
    degraded capacities, re-optimizes Stage-4 rates on the survivors, and
    compares against the optimum of the damaged network — the
    multi-failure, capacity-aware generalization of
    [Sso_core.Robustness.single_failures].  Optionally it also measures
    {e time-to-recover}: how many warm-started MWU rounds
    ({!Sso_core.Semi_oblivious.resolve}) bring the post-failure routing
    within tolerance of the from-scratch solution.

    Scenarios are evaluated concurrently on the engine pool; the report
    list is identical for any job count.  With a store, per-scenario
    results are cached under a recipe keyed by the graph, demand, path
    system, scenario, solver, and recovery settings, so warm sweeps skip
    the solves entirely and remain byte-identical to cold ones. *)

type report = {
  scenario : Scenario.t;
  connected : bool;
      (** The damaged network can still route the demand at all. *)
  survivable : bool;
      (** Connected, and every demanded pair kept a candidate path. *)
  achieved : float;
      (** Stage-4 congestion on surviving candidates over the damaged
          graph; [infinity] when unsurvivable. *)
  post_opt : float;  (** Optimum congestion of the damaged network. *)
  ratio : float;  (** [achieved / post_opt]; [infinity] if unsurvivable. *)
  recovery_rounds : int;
      (** Smallest ladder rung of warm-started MWU rounds whose congestion
          is within tolerance of [achieved]; [-1] when recovery was not
          measured or no rung sufficed. *)
  warm_congestion : float;
      (** Congestion at the reported rung ([nan] when not measured). *)
}

type recovery = {
  ladder : int list;  (** Round counts to try, ascending. *)
  tolerance : float;  (** Accept [warm ≤ tolerance · achieved]. *)
  warm_weight : int;  (** Virtual rounds granted to the pre-failure routing. *)
}

val default_recovery : recovery
(** [{ ladder = [10; 20; 40; 80]; tolerance = 1.05; warm_weight = 60 }]. *)

val singles : Sso_graph.Graph.t -> Scenario.t list
(** One single-edge-removal scenario per edge, in id order — makes the
    classic sweep a special case of {!run}. *)

val run :
  ?pool:Sso_engine.Pool.t ->
  ?solver:Sso_core.Semi_oblivious.solver ->
  ?store:Sso_artifact.Store.t ->
  ?system_key:string ->
  ?recovery:recovery ->
  Sso_graph.Graph.t ->
  Sso_core.Path_system.t ->
  Sso_demand.Demand.t ->
  Scenario.t list ->
  report list
(** One report per scenario, in input order.  [system_key] names the path
    system (e.g. the sampling fingerprint) and is required for caching:
    without it, results are computed but never stored.  [recovery]
    additionally solves the pre-failure Stage-4 routing once and measures
    warm-started time-to-recover per survivable scenario.  Emits the
    [fault.sweep] span and the [fault.scenarios] counter. *)

type summary = {
  scenarios : int;
  disconnected : int;  (** Failures the network itself cannot absorb. *)
  unsurvivable : int;
      (** Connected failures the candidate set could not absorb. *)
  mean_ratio : float;  (** Over survivable scenarios; [nan] when none. *)
  worst_ratio : float;  (** Likewise [nan] when none. *)
  mean_recovery_rounds : float;
      (** Over scenarios with measured recovery; [nan] when none. *)
}

val summary : report list -> summary

val worst_k :
  ?pool:Sso_engine.Pool.t ->
  ?solver:Sso_core.Semi_oblivious.solver ->
  ?store:Sso_artifact.Store.t ->
  ?system_key:string ->
  ?candidates:int ->
  Sso_graph.Graph.t ->
  Sso_core.Path_system.t ->
  Sso_demand.Demand.t ->
  k:int ->
  report
(** Adversarial correlated failure: greedy search for a worst [k]-edge
    set.  Seeds with the single-failure sweep, keeps the [candidates]
    (default 8) most damaging edges as the candidate pool, then grows the
    set one edge at a time, always adding the edge maximizing the
    congestion ratio (deterministic tie-break: pool order).  Stops early
    once the set disconnects the network or exhausts the pool.  Greedy is
    a heuristic — a true worst set is NP-hard — but it reliably finds
    correlated sets far worse than any single failure.  Emits the
    [fault.worst_k] span. *)
