module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace
module Codec = Sso_artifact.Codec
module Store = Sso_artifact.Store

let sweep_span = Obs.span "fault.sweep"
let worst_k_span = Obs.span "fault.worst_k"
let scenarios_counter = Obs.counter "fault.scenarios"

type report = {
  scenario : Scenario.t;
  connected : bool;
  survivable : bool;
  achieved : float;
  post_opt : float;
  ratio : float;
  recovery_rounds : int;
  warm_congestion : float;
}

type recovery = { ladder : int list; tolerance : float; warm_weight : int }

let default_recovery = { ladder = [ 10; 20; 40; 80 ]; tolerance = 1.05; warm_weight = 60 }

let singles g = List.init (Graph.m g) (Scenario.single g)

(* ---------- Per-report cache codec ---------- *)

let report_tag = 'W'

let encode_report r =
  let w = Codec.writer () in
  Codec.write_u8 w (Char.code report_tag);
  Codec.write_u8 w Codec.format_version;
  Codec.write_u8 w (if r.connected then 1 else 0);
  Codec.write_u8 w (if r.survivable then 1 else 0);
  Codec.write_f64 w r.achieved;
  Codec.write_f64 w r.post_opt;
  Codec.write_f64 w r.ratio;
  Codec.write_varint w (r.recovery_rounds + 1);
  Codec.write_f64 w r.warm_congestion;
  Codec.contents w

let decode_report scenario data =
  let r = Codec.reader data in
  if Codec.read_u8 r <> Char.code report_tag then
    raise (Codec.Corrupt "Sweep.decode_report: bad tag");
  if Codec.read_u8 r <> Codec.format_version then
    raise (Codec.Corrupt "Sweep.decode_report: bad version");
  let flag name =
    match Codec.read_u8 r with
    | 0 -> false
    | 1 -> true
    | _ -> raise (Codec.Corrupt ("Sweep.decode_report: bad " ^ name))
  in
  let connected = flag "connected" in
  let survivable = flag "survivable" in
  let achieved = Codec.read_f64 r in
  let post_opt = Codec.read_f64 r in
  let ratio = Codec.read_f64 r in
  let recovery_rounds = Codec.read_varint r - 1 in
  let warm_congestion = Codec.read_f64 r in
  Codec.expect_end r;
  { scenario; connected; survivable; achieved; post_opt; ratio; recovery_rounds; warm_congestion }

let solver_repr = function
  | Semi_oblivious.Lp -> "lp"
  | Semi_oblivious.Mwu i -> Printf.sprintf "mwu:%d" i
  | Semi_oblivious.Gk eps -> Printf.sprintf "gk:%.17g" eps

let recovery_repr = function
  | None -> "none"
  | Some rc ->
      Printf.sprintf "ladder=%s;tol=%.17g;w=%d"
        (String.concat "," (List.map string_of_int rc.ladder))
        rc.tolerance rc.warm_weight

let report_recipe ~graph_digest ~demand_digest ~system_key ~solver ~recovery scenario =
  Store.recipe ~kind:"fault-report"
    [
      ("graph", Codec.hex_of_key graph_digest);
      ("demand", Codec.hex_of_key demand_digest);
      ("system", system_key);
      ("scenario", Codec.hex_of_key (Scenario.digest scenario));
      ("solver", solver_repr solver);
      ("recovery", recovery_repr recovery);
    ]

(* ---------- Evaluation ---------- *)

let evaluate ~solver ~iters ~recovery ~pre_routing g ps demand scenario =
  let support = Demand.support demand in
  let g' = Scenario.apply g scenario in
  let removed = Scenario.removed scenario in
  let survivors =
    Path_system.filter_paths
      (fun (p : Path.t) -> not (Array.exists removed p.Path.edges))
      ps
  in
  let candidates_remain =
    List.for_all (fun (s, t) -> Path_system.slice_count survivors s t > 0) support
  in
  match Min_congestion.mwu_unrestricted_avoiding ~iters ~avoid:removed g' demand with
  | None ->
      (* The damaged network cannot route the demand: not the path
         system's fault. *)
      {
        scenario;
        connected = false;
        survivable = false;
        achieved = infinity;
        post_opt = infinity;
        ratio = infinity;
        recovery_rounds = -1;
        warm_congestion = nan;
      }
  | Some (_, post) ->
      (* The intact network's certified bound is still a valid lower bound
         after losing capacity. *)
      let post_opt = Float.max post (Min_congestion.lower_bound_sparse_cut g demand) in
      if not candidates_remain then
        {
          scenario;
          connected = true;
          survivable = false;
          achieved = infinity;
          post_opt;
          ratio = infinity;
          recovery_rounds = -1;
          warm_congestion = nan;
        }
      else begin
        let achieved = Semi_oblivious.congestion ~solver g' survivors demand in
        let recovery_rounds, warm_congestion =
          match (recovery, pre_routing) with
          | Some rc, Some pre ->
              let rec climb = function
                | [] -> (-1, nan)
                | rounds :: rest ->
                    let _, warm =
                      Semi_oblivious.resolve ~solver:(Semi_oblivious.Mwu rounds)
                        ~warm_start:(pre, rc.warm_weight) g' survivors demand
                    in
                    if warm <= rc.tolerance *. achieved then (rounds, warm)
                    else if rest = [] then (-1, warm)
                    else climb rest
              in
              climb rc.ladder
          | _ -> (-1, nan)
        in
        {
          scenario;
          connected = true;
          survivable = true;
          achieved;
          post_opt;
          ratio = achieved /. post_opt;
          recovery_rounds;
          warm_congestion;
        }
      end

let run ?pool ?(solver = Semi_oblivious.default_solver) ?store ?system_key
    ?recovery g ps demand scenarios =
  let iters =
    match solver with
    | Semi_oblivious.Mwu i -> i
    | Semi_oblivious.Lp | Semi_oblivious.Gk _ -> 300
  in
  let support = Demand.support demand in
  (* Materialize the parent system before fanning out: derived survivor
     systems must not trigger generation inside pool tasks, so generation
     order (hence any generator RNG draws) is independent of the job
     count. *)
  Path_system.materialize ps support;
  Obs.with_span sweep_span @@ fun () ->
  (* The pre-failure Stage-4 routing seeds every warm restart; solve it
     once, serially, so the fan-out only runs per-scenario work. *)
  let pre_routing =
    match recovery with
    | None -> None
    | Some _ -> Some (fst (Semi_oblivious.route ~solver g ps demand))
  in
  let cache =
    match (store, system_key) with
    | Some store, Some key ->
        let graph_digest = Codec.graph_digest g in
        let demand_digest = Codec.fnv1a64 (Codec.encode_demand demand) in
        Some
          ( store,
            fun scenario ->
              report_recipe ~graph_digest ~demand_digest ~system_key:key ~solver
                ~recovery scenario )
    | _ -> None
  in
  Pool.parallel_list_map ?pool
    (fun scenario ->
      Obs.incr scenarios_counter;
      let cached =
        match cache with
        | None -> None
        | Some (store, recipe_of) -> (
            match Store.find store (recipe_of scenario) with
            | None -> None
            | Some payload -> (
                try Some (decode_report scenario payload)
                with Codec.Corrupt _ -> None))
      in
      let report =
        match cached with
        | Some r -> r
        | None ->
            let r =
              evaluate ~solver ~iters ~recovery ~pre_routing g ps demand scenario
            in
            (match cache with
            | Some (store, recipe_of) ->
                Store.put store (recipe_of scenario) (encode_report r)
            | None -> ());
            r
      in
      if Obs.tracing () then
        Obs.event "fault.report"
          ~attrs:
            [
              ("scenario", Trace.String report.scenario.Scenario.label);
              ("connected", Trace.Bool report.connected);
              ("survivable", Trace.Bool report.survivable);
              ("ratio", Trace.Float report.ratio);
              ("recovery_rounds", Trace.Int report.recovery_rounds);
            ];
      report)
    scenarios

type summary = {
  scenarios : int;
  disconnected : int;
  unsurvivable : int;
  mean_ratio : float;
  worst_ratio : float;
  mean_recovery_rounds : float;
}

let summary reports =
  let connected = List.filter (fun r -> r.connected) reports in
  let survivable = List.filter (fun r -> r.survivable) connected in
  let ratios = List.map (fun r -> r.ratio) survivable in
  let count = List.length ratios in
  let measured =
    List.filter_map
      (fun r -> if r.recovery_rounds >= 0 then Some (float_of_int r.recovery_rounds) else None)
      survivable
  in
  let mean = function
    | [] -> nan
    | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  {
    scenarios = List.length reports;
    disconnected = List.length reports - List.length connected;
    unsurvivable = List.length connected - count;
    mean_ratio = mean ratios;
    worst_ratio = (if count = 0 then nan else List.fold_left Float.max 0.0 ratios);
    mean_recovery_rounds = mean measured;
  }

let worst_k ?pool ?(solver = Semi_oblivious.default_solver) ?store ?system_key
    ?(candidates = 8) g ps demand ~k =
  if k < 1 then invalid_arg "Sweep.worst_k: k must be >= 1";
  Obs.with_span worst_k_span @@ fun () ->
  let score r = if not r.connected then neg_infinity else r.ratio in
  let single_reports = run ?pool ~solver ?store ?system_key g ps demand (singles g) in
  (* Candidate pool: the most damaging single edges, severity descending,
     ties by edge id — a deterministic ordering. *)
  let pool_edges =
    List.mapi (fun e r -> (e, score r)) single_reports
    |> List.stable_sort (fun (e1, s1) (e2, s2) -> compare (s2, e1) (s1, e2))
    |> List.map fst
    |> List.filteri (fun i _ -> i < candidates)
  in
  let combined chosen e =
    let es = List.sort compare (e :: chosen) in
    Scenario.of_edges
      ~label:
        (Printf.sprintf "worst-%d[%s]" (List.length es)
           (String.concat "," (List.map string_of_int es)))
      g es
  in
  let best_of reports =
    match reports with
    | [] -> invalid_arg "Sweep.worst_k: empty candidate pool"
    | first :: rest ->
        List.fold_left (fun acc r -> if score r > score acc then r else acc) first rest
  in
  let rec grow chosen best step =
    if step >= k then best
    else begin
      let options = List.filter (fun e -> not (List.mem e chosen)) pool_edges in
      if options = [] then best
      else begin
        let scens = List.map (combined chosen) options in
        let reports = run ?pool ~solver ?store ?system_key g ps demand scens in
        let round_best = best_of reports in
        let added =
          (* Recover which edge the winner added: its scenario's edges
             minus the chosen set. *)
          match
            List.filter
              (fun e -> not (List.mem e chosen))
              (Scenario.edges round_best.scenario)
          with
          | [ e ] -> e
          | _ -> invalid_arg "Sweep.worst_k: malformed greedy scenario"
        in
        (* Disconnecting or already-unsurvivable sets cannot get worse;
           stop growing. *)
        if (not round_best.connected) || round_best.ratio = infinity then round_best
        else grow (added :: chosen) round_best (step + 1)
      end
    end
  in
  let best_single =
    match single_reports with
    | [] -> invalid_arg "Sweep.worst_k: graph has no edges"
    | first :: rest ->
        List.fold_left (fun acc r -> if score r > score acc then r else acc) first rest
  in
  if (not best_single.connected) || best_single.ratio = infinity then best_single
  else begin
    (* Seed with the worst single edge, then grow the set k-1 more times. *)
    let seed_edge =
      match Scenario.edges best_single.scenario with
      | [ e ] -> e
      | _ -> invalid_arg "Sweep.worst_k: malformed single scenario"
    in
    grow [ seed_edge ] best_single 1
  end
