module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Path_system = Sso_core.Path_system
module Simulator = Sso_sim.Simulator
module Obs = Sso_obs.Obs

let timeline_span = Obs.span "fault.timeline"
let dropped_counter = Obs.counter "fault.dropped"
let rerouted_counter = Obs.counter "fault.rerouted"

type entry = {
  scenario : Scenario.t;
  fail_at : int;
  repair_at : int option;
}

type t = entry list

let entry ?repair_at ~at scenario =
  if at < 1 then invalid_arg "Timeline.entry: fail step must be >= 1";
  (match repair_at with
  | Some r when r <= at -> invalid_arg "Timeline.entry: repair must come after failure"
  | _ -> ());
  { scenario; fail_at = at; repair_at }

let changes timeline =
  List.concat_map
    (fun en ->
      let fails =
        List.map
          (fun (f : Scenario.failure) ->
            {
              Simulator.edge = f.Scenario.fail_edge;
              at_step = en.fail_at;
              factor = f.Scenario.fail_factor;
            })
          en.scenario.Scenario.failures
      in
      let repairs =
        match en.repair_at with
        | None -> []
        | Some r ->
            List.map
              (fun (f : Scenario.failure) ->
                { Simulator.edge = f.Scenario.fail_edge; at_step = r; factor = 1.0 })
              en.scenario.Scenario.failures
      in
      fails @ repairs)
    timeline

(* BFS over alive edges from [src] to the nearest vertex satisfying
   [target].  Edges are visited in CSR order and the queue is FIFO, so the
   returned path is deterministic. *)
let bfs_bridge g ~alive ~src ~target =
  if target src then Some (Path.trivial src)
  else begin
    let n = Graph.n g in
    let parent_edge = Array.make n (-1) in
    let parent_vert = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty q) do
      let u = Queue.pop q in
      if target u then found := u
      else
        Graph.iter_adj g u (fun e w ->
            if alive e && not visited.(w) then begin
              visited.(w) <- true;
              parent_edge.(w) <- e;
              parent_vert.(w) <- u;
              Queue.add w q
            end)
    done;
    if !found < 0 then None
    else begin
      let rec collect u acc =
        if u = src then acc else collect parent_vert.(u) (parent_edge.(u) :: acc)
      in
      Some (Path.of_edges g ~src ~dst:!found (Array.of_list (collect !found [])))
    end
  end

let candidate_failover g ps ~pair:(s, t) ~at_vertex:v ~alive =
  (* Walk the pair's candidate slices in the shared arena directly: the
     liveness scan, the vertex-membership probe, and the suffix extraction
     all run on the packed representation; a boxed path is built only for
     the route actually returned. *)
  let arena = Path_system.arena ps in
  let first, count = Path_system.slice_range ps s t in
  let survivors = ref [] in
  for k = count - 1 downto 0 do
    let i = first + k in
    if Sso_graph.Arena.for_all arena i alive then survivors := i :: !survivors
  done;
  (* Hop index at which slice [i] first visits [u]; -1 when it does not. *)
  let hop_at i u =
    if Sso_graph.Arena.src arena i = u then 0
    else begin
      let found = ref (-1) in
      let j = ref 0 in
      Sso_graph.Arena.iter_edges_vertices arena i (fun _ v' ->
          incr j;
          if !found < 0 && v' = u then found := !j);
      !found
    end
  in
  let suffix i ~from ~from_hop =
    Path.of_edges g ~src:from
      ~dst:(Sso_graph.Arena.dst arena i)
      (Sso_graph.Arena.suffix_edges arena i ~from_hop)
  in
  match !survivors with
  | [] -> None
  | sfirst :: _ as cs -> (
      let through_v =
        List.find_map
          (fun i ->
            let h = hop_at i v in
            if h >= 0 then Some (i, h) else None)
          cs
      in
      match through_v with
      | Some (i, h) -> Some (suffix i ~from:v ~from_hop:h)
      | None -> (
          let fverts = Sso_graph.Arena.vertices arena sfirst in
          let on_first u = Array.exists (fun x -> x = u) fverts in
          match bfs_bridge g ~alive ~src:v ~target:on_first with
          | None -> None
          | Some bridge ->
              let joined =
                suffix sfirst ~from:bridge.Path.dst
                  ~from_hop:(hop_at sfirst bridge.Path.dst)
              in
              Some (Path.concat g bridge joined)))

let simulate ?discipline ?max_steps g ps assignment timeline =
  Obs.with_span timeline_span @@ fun () ->
  (* Materialize the candidate sets the failover policy may consult, in
     assignment order, before simulating: generation order (hence any
     generator RNG draws) must not depend on when failures strike. *)
  Path_system.materialize ps (List.map fst (Array.to_list assignment));
  let outcome =
    Simulator.run_faulted ?discipline ?max_steps ~changes:(changes timeline)
      ~failover:(candidate_failover g ps) g assignment
  in
  let fs = Simulator.value outcome in
  Obs.incr ~by:fs.Simulator.dropped dropped_counter;
  Obs.incr ~by:fs.Simulator.rerouted rerouted_counter;
  outcome
