module Graph = Sso_graph.Graph
module Rng = Sso_prng.Rng
module Codec = Sso_artifact.Codec

type failure = { fail_edge : int; fail_factor : float }

type t = { label : string; failures : failure list }

let default_label failures =
  let ids = List.map (fun f -> string_of_int f.fail_edge) failures in
  "edges[" ^ String.concat "," ids ^ "]"

let validate g failures =
  let m = Graph.m g in
  List.iter
    (fun f ->
      if f.fail_edge < 0 || f.fail_edge >= m then
        invalid_arg "Scenario.make: edge id out of range";
      if not (f.fail_factor >= 0.0 && f.fail_factor < 1.0) then
        invalid_arg "Scenario.make: capacity factor must be in [0,1)")
    failures;
  let sorted =
    List.stable_sort (fun a b -> compare a.fail_edge b.fail_edge) failures
  in
  let rec dups = function
    | a :: (b :: _ as rest) ->
        if a.fail_edge = b.fail_edge then
          invalid_arg "Scenario.make: duplicate edge in failure set";
        dups rest
    | _ -> ()
  in
  dups sorted;
  sorted

let make ?label g failures =
  let failures = validate g failures in
  let label = match label with Some l -> l | None -> default_label failures in
  { label; failures }

let single g e = make ~label:(Printf.sprintf "edge-%d" e) g [ { fail_edge = e; fail_factor = 0.0 } ]

let of_edges ?label g es =
  make ?label g (List.map (fun e -> { fail_edge = e; fail_factor = 0.0 }) es)

let degrade ?label g ~factor es =
  if not (factor > 0.0 && factor < 1.0) then
    invalid_arg "Scenario.degrade: factor must be in (0,1)";
  let label =
    match label with
    | Some l -> Some l
    | None ->
        Some
          (Printf.sprintf "degrade-%g[%s]" factor
             (String.concat "," (List.map string_of_int (List.sort compare es))))
  in
  make ?label g (List.map (fun e -> { fail_edge = e; fail_factor = factor }) es)

let random_k rng g ~k =
  let m = Graph.m g in
  if k < 1 || k > m then invalid_arg "Scenario.random_k: k out of range";
  let perm = Rng.permutation rng m in
  let es = List.sort compare (Array.to_list (Array.sub perm 0 k)) in
  of_edges
    ~label:
      (Printf.sprintf "random-%d[%s]" k
         (String.concat "," (List.map string_of_int es)))
    g es

(* ---------- Structural shared-risk groups ---------- *)

let torus_rows g ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Scenario.torus_rows: sides must be >= 3";
  if Graph.n g <> rows * cols then
    invalid_arg "Scenario.torus_rows: vertex count does not match rows*cols";
  List.init rows (fun r ->
      let in_row v = v / cols = r in
      let es =
        Graph.fold_edges
          (fun id u v _cap acc -> if in_row u && in_row v then id :: acc else acc)
          g []
      in
      of_edges ~label:(Printf.sprintf "row-%d" r) g (List.rev es))

let fat_tree_pods g ~k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Scenario.fat_tree_pods: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  if Graph.n g <> cores + (k * k) then
    invalid_arg "Scenario.fat_tree_pods: vertex count does not match fat_tree k";
  List.init k (fun p ->
      let lo = cores + (p * k) and hi = cores + ((p + 1) * k) in
      let in_pod v = v >= lo && v < hi in
      let es =
        Graph.fold_edges
          (fun id u v _cap acc -> if in_pod u || in_pod v then id :: acc else acc)
          g []
      in
      of_edges ~label:(Printf.sprintf "pod-%d" p) g (List.rev es))

let incident g v =
  if v < 0 || v >= Graph.n g then invalid_arg "Scenario.incident: vertex out of range";
  let es = Array.to_list (Array.map fst (Graph.adj g v)) in
  of_edges ~label:(Printf.sprintf "vertex-%d" v) g (List.sort compare es)

(* ---------- Interrogation ---------- *)

let edges s = List.map (fun f -> f.fail_edge) s.failures

let removed s =
  let dead =
    List.filter_map
      (fun f -> if f.fail_factor = 0.0 then Some f.fail_edge else None)
      s.failures
  in
  match dead with
  | [] -> fun _ -> false
  | _ ->
      let tbl = Hashtbl.create (List.length dead) in
      List.iter (fun e -> Hashtbl.replace tbl e ()) dead;
      fun e -> Hashtbl.mem tbl e

let is_degradation s = List.exists (fun f -> f.fail_factor > 0.0) s.failures

let apply g s =
  if not (is_degradation s) then g
  else begin
    let factors = Hashtbl.create (List.length s.failures) in
    List.iter
      (fun f ->
        if f.fail_factor > 0.0 then Hashtbl.replace factors f.fail_edge f.fail_factor)
      s.failures;
    let b = Graph.Builder.create (Graph.n g) in
    (* Rebuild in id order: Builder.add_edge assigns dense sequential ids,
       so ids and endpoints are preserved and only capacities change. *)
    Array.iter
      (fun (e : Graph.edge) ->
        let cap =
          match Hashtbl.find_opt factors e.Graph.id with
          | Some f -> e.Graph.cap *. f
          | None -> e.Graph.cap
        in
        ignore (Graph.Builder.add_edge ~cap b e.Graph.u e.Graph.v))
      (Graph.edges g);
    Graph.Builder.build b
  end

(* ---------- Codec ---------- *)

let tag = 'F'

let encode s =
  let w = Codec.writer () in
  Codec.write_u8 w (Char.code tag);
  Codec.write_u8 w Codec.format_version;
  Codec.write_string w s.label;
  Codec.write_varint w (List.length s.failures);
  List.iter
    (fun f ->
      Codec.write_varint w f.fail_edge;
      Codec.write_f64 w f.fail_factor)
    s.failures;
  Codec.contents w

let decode g data =
  let r = Codec.reader data in
  if Codec.read_u8 r <> Char.code tag then
    raise (Codec.Corrupt "Scenario.decode: bad tag");
  if Codec.read_u8 r <> Codec.format_version then
    raise (Codec.Corrupt "Scenario.decode: bad version");
  let label = Codec.read_string r in
  let count = Codec.read_varint r in
  let failures =
    List.init count (fun _ ->
        let fail_edge = Codec.read_varint r in
        let fail_factor = Codec.read_f64 r in
        { fail_edge; fail_factor })
  in
  Codec.expect_end r;
  let m = Graph.m g in
  let rec check prev = function
    | [] -> ()
    | f :: rest ->
        if f.fail_edge <= prev || f.fail_edge >= m then
          raise (Codec.Corrupt "Scenario.decode: edge ids not sorted or out of range");
        if not (f.fail_factor >= 0.0 && f.fail_factor < 1.0) then
          raise (Codec.Corrupt "Scenario.decode: factor out of range");
        check f.fail_edge rest
  in
  check (-1) failures;
  { label; failures }

let digest s = Codec.fnv1a64 (encode s)
