module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Rng = Sso_prng.Rng
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

type discipline = Fifo | Random_rank of Rng.t | Longest_remaining

type stats = { makespan : int; delivered : int; max_queue : int; total_waits : int }

type 'a outcome = Completed of 'a | Out_of_budget of 'a

let value = function Completed s | Out_of_budget s -> s

let completed_exn = function
  | Completed s -> s
  | Out_of_budget _ -> failwith "Simulator: step budget exceeded (bug?)"

type packet = {
  id : int;
  ppair : int * int; (* demand pair this packet serves *)
  path : Path.t;
  hops : int array; (* edge ids in travel order *)
  verts : int array; (* vertices visited, length hops+1 *)
  mutable at : int; (* index into verts: current position *)
  rank : float; (* priority for Random_rank *)
}

let congestion_and_dilation g packets =
  let loads = Array.make (Graph.m g) 0 in
  let dil = ref 0 in
  List.iter
    (fun p ->
      dil := max !dil (Array.length p.hops);
      Array.iter (fun e -> loads.(e) <- loads.(e) + 1) p.hops)
    packets;
  let cong = Array.fold_left max 0 loads in
  (cong, !dil)

let build_packets g rng_opt assignment =
  let next_id = ref 0 in
  let packets = ref [] in
  Array.iter
    (fun (pair, paths) ->
      Array.iter
        (fun (p : Path.t) ->
          let rank = match rng_opt with Some rng -> Rng.float rng | None -> 0.0 in
          packets :=
            {
              id = !next_id;
              ppair = pair;
              path = p;
              hops = p.Path.edges;
              verts = Path.vertices g p;
              at = 0;
              rank;
            }
            :: !packets;
          incr next_id)
        paths)
    assignment;
  List.rev !packets

let lower_bound g assignment =
  let packets = build_packets g None assignment in
  let cong, dil = congestion_and_dilation g packets in
  max cong dil

let upper_bound_cd g assignment =
  let packets = build_packets g None assignment in
  let cong, dil = congestion_and_dilation g packets in
  (cong * dil) + dil

let compare_priority discipline a b =
  match discipline with
  | Fifo -> compare a.id b.id
  | Random_rank _ -> compare (b.rank, b.id) (a.rank, a.id)
  | Longest_remaining ->
      let ra = Array.length a.hops - a.at and rb = Array.length b.hops - b.at in
      compare (rb, a.id) (ra, b.id)

let run ?(discipline = Fifo) ?max_steps g assignment =
  Obs.traced "sim.run" @@ fun () ->
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let packets = build_packets g rng_opt assignment in
  let total = List.length packets in
  let cong, dil = congestion_and_dilation g packets in
  let budget =
    match max_steps with
    | Some b -> b
    | None -> 64 * ((cong * dil) + cong + dil + 1)
  in
  let active = List.filter (fun p -> Array.length p.hops > 0) packets in
  let remaining = ref active in
  let time = ref 0 in
  let max_queue = ref 0 in
  let total_waits = ref 0 in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= budget then out_of_budget := true
    else begin
      incr time;
      (* Group waiting packets by (next edge, direction). *)
      let queues = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let e = p.hops.(p.at) in
          let from_v = p.verts.(p.at) in
          let key = (e, from_v) in
          let q = try Hashtbl.find queues key with Not_found -> [] in
          Hashtbl.replace queues key (p :: q))
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width = max 1 (int_of_float (Float.floor (Graph.cap g e))) in
          let sorted = List.sort (compare_priority discipline) queue in
          let queue_len = List.length sorted in
          if queue_len > !max_queue then max_queue := queue_len;
          List.iteri
            (fun i p ->
              if i < width then p.at <- p.at + 1 else incr total_waits)
            sorted)
        queues;
      remaining := List.filter (fun p -> p.at < Array.length p.hops) !remaining
    end
  done;
  let stats =
    {
      makespan = !time;
      delivered = total - List.length !remaining;
      max_queue = !max_queue;
      total_waits = !total_waits;
    }
  in
  if Obs.tracing () then
    Obs.event "sim.result"
      ~attrs:
        [
          ("makespan", Trace.Int stats.makespan);
          ("delivered", Trace.Int stats.delivered);
          ("max_queue", Trace.Int stats.max_queue);
          ("total_waits", Trace.Int stats.total_waits);
          ("congestion", Trace.Int cong);
          ("dilation", Trace.Int dil);
        ];
  if !out_of_budget then Out_of_budget stats else Completed stats

(* ---------- Fault injection ---------- *)

type edge_change = { edge : int; at_step : int; factor : float }

type fault_stats = {
  base : stats;
  dropped : int;
  rerouted : int;
  recovery_makespan : int;
}

let run_faulted ?(discipline = Fifo) ?max_steps ~changes ~failover g assignment =
  Obs.traced "sim.run_faulted" @@ fun () ->
  let m = Graph.m g in
  List.iter
    (fun c ->
      if c.edge < 0 || c.edge >= m then
        invalid_arg "Simulator.run_faulted: edge id out of range";
      if c.at_step < 1 then
        invalid_arg "Simulator.run_faulted: change step must be >= 1";
      if not (c.factor >= 0.0) then
        invalid_arg "Simulator.run_faulted: capacity factor must be >= 0")
    changes;
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let packets = build_packets g rng_opt assignment in
  let total = List.length packets in
  let cong, dil = congestion_and_dilation g packets in
  let budget =
    ref
      (match max_steps with
      | Some b -> b
      | None -> 64 * ((cong * dil) + cong + dil + 1))
  in
  let factor = Array.make m 1.0 in
  let alive e = factor.(e) > 0.0 in
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (a.at_step, a.edge) (b.at_step, b.edge))
         changes)
  in
  let rerouted_ids = Hashtbl.create 16 in
  let dropped = ref 0 in
  let rerouted = ref 0 in
  let first_failure = ref max_int in
  let last_recovery = ref 0 in
  let remaining = ref (List.filter (fun p -> Array.length p.hops > 0) packets) in
  let time = ref 0 in
  let max_queue = ref 0 in
  let total_waits = ref 0 in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= !budget then out_of_budget := true
    else begin
      incr time;
      (* Apply due capacity changes (in (step, edge) order), then fail
         affected packets over. *)
      let due, rest = List.partition (fun c -> c.at_step <= !time) !pending in
      pending := rest;
      if due <> [] then begin
        let killed = ref false in
        List.iter
          (fun c ->
            if c.factor = 0.0 && alive c.edge then begin
              killed := true;
              if !first_failure = max_int then first_failure := !time
            end;
            factor.(c.edge) <- c.factor;
            if Obs.tracing () then
              Obs.event "fault.sim.change"
                ~attrs:
                  [
                    ("step", Trace.Int !time);
                    ("edge", Trace.Int c.edge);
                    ("factor", Trace.Float c.factor);
                  ])
          due;
        if !killed then
          remaining :=
            List.filter_map
              (fun p ->
                let dead = ref false in
                for i = p.at to Array.length p.hops - 1 do
                  if not (alive p.hops.(i)) then dead := true
                done;
                if not !dead then Some p
                else begin
                  let v = p.verts.(p.at) in
                  match failover ~pair:p.ppair ~at_vertex:v ~alive with
                  | None ->
                      incr dropped;
                      if Obs.tracing () then
                        Obs.event "fault.sim.drop"
                          ~attrs:
                            [
                              ("step", Trace.Int !time);
                              ("packet", Trace.Int p.id);
                              ("src", Trace.Int (fst p.ppair));
                              ("dst", Trace.Int (snd p.ppair));
                            ];
                      None
                  | Some q ->
                      if q.Path.src <> v || q.Path.dst <> snd p.ppair then
                        invalid_arg
                          "Simulator.run_faulted: failover path endpoints mismatch";
                      if Array.exists (fun e -> not (alive e)) q.Path.edges then
                        invalid_arg
                          "Simulator.run_faulted: failover path crosses a dead edge";
                      incr rerouted;
                      Hashtbl.replace rerouted_ids p.id ();
                      (* Detours lengthen the optimal schedule; grow the
                         default budget so a legitimate failover is never
                         misreported as exhaustion. *)
                      (match max_steps with
                      | Some _ -> ()
                      | None -> budget := !budget + (64 * (Array.length q.Path.edges + 1)));
                      if Obs.tracing () then
                        Obs.event "fault.sim.reroute"
                          ~attrs:
                            [
                              ("step", Trace.Int !time);
                              ("packet", Trace.Int p.id);
                              ("hops", Trace.Int (Array.length q.Path.edges));
                            ];
                      Some { p with path = q; hops = q.Path.edges; verts = Path.vertices g q; at = 0 }
                end)
              !remaining
      end;
      let queues = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let e = p.hops.(p.at) in
          let from_v = p.verts.(p.at) in
          let key = (e, from_v) in
          let q = try Hashtbl.find queues key with Not_found -> [] in
          Hashtbl.replace queues key (p :: q))
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width =
            if not (alive e) then 0
            else max 1 (int_of_float (Float.floor (Graph.cap g e *. factor.(e))))
          in
          let sorted = List.sort (compare_priority discipline) queue in
          let queue_len = List.length sorted in
          if queue_len > !max_queue then max_queue := queue_len;
          List.iteri
            (fun i p ->
              if i < width then p.at <- p.at + 1 else incr total_waits)
            sorted)
        queues;
      remaining :=
        List.filter
          (fun p ->
            if p.at < Array.length p.hops then true
            else begin
              if Hashtbl.mem rerouted_ids p.id && !time > !last_recovery then
                last_recovery := !time;
              false
            end)
          !remaining
    end
  done;
  let undelivered = List.length !remaining in
  let base =
    {
      makespan = !time;
      delivered = total - !dropped - undelivered;
      max_queue = !max_queue;
      total_waits = !total_waits;
    }
  in
  let recovery_makespan =
    if !rerouted = 0 || !first_failure = max_int then 0
    else max 0 (!last_recovery - !first_failure)
  in
  let fs = { base; dropped = !dropped; rerouted = !rerouted; recovery_makespan } in
  if Obs.tracing () then
    Obs.event "fault.sim.result"
      ~attrs:
        [
          ("makespan", Trace.Int base.makespan);
          ("delivered", Trace.Int base.delivered);
          ("dropped", Trace.Int fs.dropped);
          ("rerouted", Trace.Int fs.rerouted);
          ("recovery_makespan", Trace.Int fs.recovery_makespan);
        ];
  if !out_of_budget then Out_of_budget fs else Completed fs

type timed_packet = { pair : int * int; route : Path.t; release : int }

type load_stats = {
  finish_time : int;
  packets : int;
  delivered : int;
  mean_latency : float;
  p99_latency : float;
  mean_queueing : float;
  peak_queue : int;
}

type flight = {
  fp : packet;
  freleased : int;
  mutable farrived : int; (* -1 while in flight *)
}

let run_timed ?(discipline = Fifo) ?max_steps g timed =
  Obs.traced "sim.run_timed" @@ fun () ->
  List.iter
    (fun { release; _ } ->
      if release < 0 then invalid_arg "Simulator.run_timed: negative release time")
    timed;
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let flights =
    List.mapi
      (fun id { pair; route; release } ->
        let rank = match rng_opt with Some rng -> Rng.float rng | None -> 0.0 in
        {
          fp =
            {
              id;
              ppair = pair;
              path = route;
              hops = route.Path.edges;
              verts = Path.vertices g route;
              at = 0;
              rank;
            };
          freleased = release;
          farrived = (if Array.length route.Path.edges = 0 then release else -1);
        })
      timed
  in
  let total_hops =
    List.fold_left (fun acc f -> acc + Array.length f.fp.hops) 0 flights
  in
  let last_release = List.fold_left (fun acc f -> max acc f.freleased) 0 flights in
  let budget =
    match max_steps with
    | Some b -> b
    | None -> last_release + (8 * (total_hops + 1)) + 64
  in
  let compare_priority a b =
    match discipline with
    | Fifo -> compare (a.freleased, a.fp.id) (b.freleased, b.fp.id)
    | Random_rank _ -> compare (b.fp.rank, b.fp.id) (a.fp.rank, a.fp.id)
    | Longest_remaining ->
        let ra = Array.length a.fp.hops - a.fp.at
        and rb = Array.length b.fp.hops - b.fp.at in
        compare (rb, a.fp.id) (ra, b.fp.id)
  in
  let time = ref 0 in
  let peak_queue = ref 0 in
  let remaining = ref (List.filter (fun f -> f.farrived < 0) flights) in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= budget then out_of_budget := true
    else begin
      incr time;
      let queues = Hashtbl.create 64 in
      List.iter
        (fun f ->
          if f.freleased < !time then begin
            let e = f.fp.hops.(f.fp.at) in
            let from_v = f.fp.verts.(f.fp.at) in
            let key = (e, from_v) in
            let q = try Hashtbl.find queues key with Not_found -> [] in
            Hashtbl.replace queues key (f :: q)
          end)
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width = max 1 (int_of_float (Float.floor (Graph.cap g e))) in
          let sorted = List.sort compare_priority queue in
          let len = List.length sorted in
          if len > !peak_queue then peak_queue := len;
          List.iteri
            (fun i f ->
              if i < width then begin
                f.fp.at <- f.fp.at + 1;
                if f.fp.at >= Array.length f.fp.hops then f.farrived <- !time
              end)
            sorted)
        queues;
      remaining := List.filter (fun f -> f.farrived < 0) !remaining
    end
  done;
  (* Latency statistics are over delivered flights only; on a completed run
     that is every flight. *)
  let arrived = List.filter (fun f -> f.farrived >= 0) flights in
  let latencies =
    List.map (fun f -> float_of_int (f.farrived - f.freleased)) arrived
  in
  let queueing =
    List.map
      (fun f -> float_of_int (f.farrived - f.freleased - Array.length f.fp.hops))
      arrived
  in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let p99 xs =
    match xs with
    | [] -> 0.0
    | _ ->
        let arr = Array.of_list xs in
        Array.sort compare arr;
        let n = Array.length arr in
        arr.(min (n - 1) (max 0 (int_of_float (Float.ceil (0.99 *. float_of_int n)) - 1)))
  in
  let stats =
    {
      finish_time = List.fold_left (fun acc f -> max acc f.farrived) 0 arrived;
      packets = List.length flights;
      delivered = List.length arrived;
      mean_latency = mean latencies;
      p99_latency = p99 latencies;
      mean_queueing = mean queueing;
      peak_queue = !peak_queue;
    }
  in
  if Obs.tracing () then
    Obs.event "sim.result"
      ~attrs:
        [
          ("finish_time", Trace.Int stats.finish_time);
          ("packets", Trace.Int stats.packets);
          ("delivered", Trace.Int stats.delivered);
          ("mean_latency", Trace.Float stats.mean_latency);
          ("p99_latency", Trace.Float stats.p99_latency);
          ("mean_queueing", Trace.Float stats.mean_queueing);
          ("peak_queue", Trace.Int stats.peak_queue);
        ];
  if !out_of_budget then Out_of_budget stats else Completed stats
