module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Arena = Sso_graph.Arena
module Rng = Sso_prng.Rng
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

type discipline = Fifo | Random_rank of Rng.t | Longest_remaining

type stats = { makespan : int; delivered : int; max_queue : int; total_waits : int }

type 'a outcome = Completed of 'a | Out_of_budget of 'a

let value = function Completed s | Out_of_budget s -> s

let completed_exn = function
  | Completed s -> s
  | Out_of_budget _ -> failwith "Simulator: step budget exceeded (bug?)"

(* Routes live in a run-local arena; the hop/vertex sequences of every
   route are unpacked once into two flat int arrays, and packets carry
   offsets into them (a slice handle plus its unpacked position) instead
   of per-packet arrays.  Failover routes are appended to the same store
   mid-run. *)
type store = {
  arena : Arena.t;
  mutable eflat : int array; (* edge ids of all routes, back to back *)
  mutable vflat : int array; (* vertex sequences, hops+1 per route *)
  mutable elen : int;
  mutable vlen : int;
}

let grow arr len need =
  if len + need <= Array.length arr then arr
  else begin
    let arr' = Array.make (max (len + need) (2 * (Array.length arr + 1))) 0 in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

(* Unpack one arena slice onto the end of the flat store; returns its
   (edge offset, vertex offset, hops). *)
let push_slice st i =
  let h = Arena.hops st.arena i in
  st.eflat <- grow st.eflat st.elen h;
  st.vflat <- grow st.vflat st.vlen (h + 1);
  let eoff = st.elen and voff = st.vlen in
  st.vflat.(voff) <- Arena.src st.arena i;
  let j = ref 0 in
  Arena.iter_edges_vertices st.arena i (fun e v' ->
      st.eflat.(eoff + !j) <- e;
      st.vflat.(voff + !j + 1) <- v';
      incr j);
  st.elen <- st.elen + h;
  st.vlen <- st.vlen + h + 1;
  (eoff, voff, h)

type packet = {
  id : int;
  ppair : int * int; (* demand pair this packet serves *)
  mutable slice : int; (* current route's arena handle *)
  mutable eoff : int; (* its edges at eflat.(eoff ..) *)
  mutable voff : int; (* its vertices at vflat.(voff ..) *)
  mutable nhops : int;
  mutable at : int; (* hops already crossed: current vertex is voff+at *)
  rank : float; (* priority for Random_rank *)
}

let congestion_and_dilation g st packets =
  let loads = Array.make (Graph.m g) 0 in
  let dil = ref 0 in
  List.iter
    (fun p ->
      dil := max !dil p.nhops;
      for j = 0 to p.nhops - 1 do
        let e = st.eflat.(p.eoff + j) in
        loads.(e) <- loads.(e) + 1
      done)
    packets;
  let cong = Array.fold_left max 0 loads in
  (cong, !dil)

let build_packets g rng_opt assignment =
  let arena = Arena.create g in
  Array.iter
    (fun (_, paths) ->
      Array.iter (fun (p : Path.t) -> ignore (Arena.append_path arena p)) paths)
    assignment;
  let ids = Array.init (Arena.length arena) Fun.id in
  let off, eflat, vflat = Arena.unpack_with_vertices arena ids in
  let st =
    { arena; eflat; vflat; elen = Array.length eflat; vlen = Array.length vflat }
  in
  let next_id = ref 0 in
  let packets = ref [] in
  Array.iter
    (fun (pair, paths) ->
      Array.iter
        (fun (_ : Path.t) ->
          let i = !next_id in
          let rank = match rng_opt with Some rng -> Rng.float rng | None -> 0.0 in
          packets :=
            {
              id = i;
              ppair = pair;
              slice = i;
              eoff = off.(i);
              voff = off.(i) + i;
              nhops = off.(i + 1) - off.(i);
              at = 0;
              rank;
            }
            :: !packets;
          incr next_id)
        paths)
    assignment;
  (st, List.rev !packets)

let lower_bound g assignment =
  let st, packets = build_packets g None assignment in
  let cong, dil = congestion_and_dilation g st packets in
  max cong dil

let upper_bound_cd g assignment =
  let st, packets = build_packets g None assignment in
  let cong, dil = congestion_and_dilation g st packets in
  (cong * dil) + dil

let compare_priority discipline a b =
  match discipline with
  | Fifo -> compare a.id b.id
  | Random_rank _ -> compare (b.rank, b.id) (a.rank, a.id)
  | Longest_remaining ->
      let ra = a.nhops - a.at and rb = b.nhops - b.at in
      compare (rb, a.id) (ra, b.id)

let run ?(discipline = Fifo) ?max_steps g assignment =
  Obs.traced "sim.run" @@ fun () ->
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let st, packets = build_packets g rng_opt assignment in
  let total = List.length packets in
  let cong, dil = congestion_and_dilation g st packets in
  let budget =
    match max_steps with
    | Some b -> b
    | None -> 64 * ((cong * dil) + cong + dil + 1)
  in
  let active = List.filter (fun p -> p.nhops > 0) packets in
  let remaining = ref active in
  let time = ref 0 in
  let max_queue = ref 0 in
  let total_waits = ref 0 in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= budget then out_of_budget := true
    else begin
      incr time;
      (* Group waiting packets by (next edge, direction). *)
      let queues = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let e = st.eflat.(p.eoff + p.at) in
          let from_v = st.vflat.(p.voff + p.at) in
          let key = (e, from_v) in
          let q = try Hashtbl.find queues key with Not_found -> [] in
          Hashtbl.replace queues key (p :: q))
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width = max 1 (int_of_float (Float.floor (Graph.cap g e))) in
          let sorted = List.sort (compare_priority discipline) queue in
          let queue_len = List.length sorted in
          if queue_len > !max_queue then max_queue := queue_len;
          List.iteri
            (fun i p ->
              if i < width then p.at <- p.at + 1 else incr total_waits)
            sorted)
        queues;
      remaining := List.filter (fun p -> p.at < p.nhops) !remaining
    end
  done;
  let stats =
    {
      makespan = !time;
      delivered = total - List.length !remaining;
      max_queue = !max_queue;
      total_waits = !total_waits;
    }
  in
  if Obs.tracing () then
    Obs.event "sim.result"
      ~attrs:
        [
          ("makespan", Trace.Int stats.makespan);
          ("delivered", Trace.Int stats.delivered);
          ("max_queue", Trace.Int stats.max_queue);
          ("total_waits", Trace.Int stats.total_waits);
          ("congestion", Trace.Int cong);
          ("dilation", Trace.Int dil);
        ];
  if !out_of_budget then Out_of_budget stats else Completed stats

(* ---------- Fault injection ---------- *)

type edge_change = { edge : int; at_step : int; factor : float }

type fault_stats = {
  base : stats;
  dropped : int;
  rerouted : int;
  recovery_makespan : int;
}

let run_faulted ?(discipline = Fifo) ?max_steps ~changes ~failover g assignment =
  Obs.traced "sim.run_faulted" @@ fun () ->
  let m = Graph.m g in
  List.iter
    (fun c ->
      if c.edge < 0 || c.edge >= m then
        invalid_arg "Simulator.run_faulted: edge id out of range";
      if c.at_step < 1 then
        invalid_arg "Simulator.run_faulted: change step must be >= 1";
      if not (c.factor >= 0.0) then
        invalid_arg "Simulator.run_faulted: capacity factor must be >= 0")
    changes;
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let st, packets = build_packets g rng_opt assignment in
  let total = List.length packets in
  let cong, dil = congestion_and_dilation g st packets in
  let budget =
    ref
      (match max_steps with
      | Some b -> b
      | None -> 64 * ((cong * dil) + cong + dil + 1))
  in
  let factor = Array.make m 1.0 in
  let alive e = factor.(e) > 0.0 in
  let pending =
    ref
      (List.stable_sort
         (fun a b -> compare (a.at_step, a.edge) (b.at_step, b.edge))
         changes)
  in
  let rerouted_ids = Hashtbl.create 16 in
  let dropped = ref 0 in
  let rerouted = ref 0 in
  let first_failure = ref max_int in
  let last_recovery = ref 0 in
  let remaining = ref (List.filter (fun p -> p.nhops > 0) packets) in
  let time = ref 0 in
  let max_queue = ref 0 in
  let total_waits = ref 0 in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= !budget then out_of_budget := true
    else begin
      incr time;
      (* Apply due capacity changes (in (step, edge) order), then fail
         affected packets over. *)
      let due, rest = List.partition (fun c -> c.at_step <= !time) !pending in
      pending := rest;
      if due <> [] then begin
        let killed = ref false in
        List.iter
          (fun c ->
            if c.factor = 0.0 && alive c.edge then begin
              killed := true;
              if !first_failure = max_int then first_failure := !time
            end;
            factor.(c.edge) <- c.factor;
            if Obs.tracing () then
              Obs.event "fault.sim.change"
                ~attrs:
                  [
                    ("step", Trace.Int !time);
                    ("edge", Trace.Int c.edge);
                    ("factor", Trace.Float c.factor);
                  ])
          due;
        if !killed then
          remaining :=
            List.filter_map
              (fun p ->
                let dead = ref false in
                for i = p.at to p.nhops - 1 do
                  if not (alive st.eflat.(p.eoff + i)) then dead := true
                done;
                if not !dead then Some p
                else begin
                  let v = st.vflat.(p.voff + p.at) in
                  match failover ~pair:p.ppair ~at_vertex:v ~alive with
                  | None ->
                      incr dropped;
                      if Obs.tracing () then
                        Obs.event "fault.sim.drop"
                          ~attrs:
                            [
                              ("step", Trace.Int !time);
                              ("packet", Trace.Int p.id);
                              ("src", Trace.Int (fst p.ppair));
                              ("dst", Trace.Int (snd p.ppair));
                            ];
                      None
                  | Some q ->
                      if q.Path.src <> v || q.Path.dst <> snd p.ppair then
                        invalid_arg
                          "Simulator.run_faulted: failover path endpoints mismatch";
                      if Array.exists (fun e -> not (alive e)) q.Path.edges then
                        invalid_arg
                          "Simulator.run_faulted: failover path crosses a dead edge";
                      incr rerouted;
                      Hashtbl.replace rerouted_ids p.id ();
                      (* Detours lengthen the optimal schedule; grow the
                         default budget so a legitimate failover is never
                         misreported as exhaustion. *)
                      (match max_steps with
                      | Some _ -> ()
                      | None -> budget := !budget + (64 * (Array.length q.Path.edges + 1)));
                      if Obs.tracing () then
                        Obs.event "fault.sim.reroute"
                          ~attrs:
                            [
                              ("step", Trace.Int !time);
                              ("packet", Trace.Int p.id);
                              ("hops", Trace.Int (Array.length q.Path.edges));
                            ];
                      let i = Arena.append_path st.arena q in
                      let eoff, voff, nhops = push_slice st i in
                      p.slice <- i;
                      p.eoff <- eoff;
                      p.voff <- voff;
                      p.nhops <- nhops;
                      p.at <- 0;
                      Some p
                end)
              !remaining
      end;
      let queues = Hashtbl.create 64 in
      List.iter
        (fun p ->
          let e = st.eflat.(p.eoff + p.at) in
          let from_v = st.vflat.(p.voff + p.at) in
          let key = (e, from_v) in
          let q = try Hashtbl.find queues key with Not_found -> [] in
          Hashtbl.replace queues key (p :: q))
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width =
            if not (alive e) then 0
            else max 1 (int_of_float (Float.floor (Graph.cap g e *. factor.(e))))
          in
          let sorted = List.sort (compare_priority discipline) queue in
          let queue_len = List.length sorted in
          if queue_len > !max_queue then max_queue := queue_len;
          List.iteri
            (fun i p ->
              if i < width then p.at <- p.at + 1 else incr total_waits)
            sorted)
        queues;
      remaining :=
        List.filter
          (fun p ->
            if p.at < p.nhops then true
            else begin
              if Hashtbl.mem rerouted_ids p.id && !time > !last_recovery then
                last_recovery := !time;
              false
            end)
          !remaining
    end
  done;
  let undelivered = List.length !remaining in
  let base =
    {
      makespan = !time;
      delivered = total - !dropped - undelivered;
      max_queue = !max_queue;
      total_waits = !total_waits;
    }
  in
  let recovery_makespan =
    if !rerouted = 0 || !first_failure = max_int then 0
    else max 0 (!last_recovery - !first_failure)
  in
  let fs = { base; dropped = !dropped; rerouted = !rerouted; recovery_makespan } in
  if Obs.tracing () then
    Obs.event "fault.sim.result"
      ~attrs:
        [
          ("makespan", Trace.Int base.makespan);
          ("delivered", Trace.Int base.delivered);
          ("dropped", Trace.Int fs.dropped);
          ("rerouted", Trace.Int fs.rerouted);
          ("recovery_makespan", Trace.Int fs.recovery_makespan);
        ];
  if !out_of_budget then Out_of_budget fs else Completed fs

type timed_packet = { pair : int * int; route : Path.t; release : int }

type load_stats = {
  finish_time : int;
  packets : int;
  delivered : int;
  mean_latency : float;
  p99_latency : float;
  mean_queueing : float;
  peak_queue : int;
}

type flight = {
  fp : packet;
  freleased : int;
  mutable farrived : int; (* -1 while in flight *)
}

let run_timed ?(discipline = Fifo) ?max_steps g timed =
  Obs.traced "sim.run_timed" @@ fun () ->
  List.iter
    (fun { release; _ } ->
      if release < 0 then invalid_arg "Simulator.run_timed: negative release time")
    timed;
  let rng_opt = match discipline with Random_rank rng -> Some rng | _ -> None in
  let arena = Arena.create g in
  List.iter (fun { route; _ } -> ignore (Arena.append_path arena route)) timed;
  let ids = Array.init (Arena.length arena) Fun.id in
  let off, eflat, vflat = Arena.unpack_with_vertices arena ids in
  let st =
    { arena; eflat; vflat; elen = Array.length eflat; vlen = Array.length vflat }
  in
  let flights =
    List.mapi
      (fun id { pair; release; _ } ->
        let rank = match rng_opt with Some rng -> Rng.float rng | None -> 0.0 in
        let nhops = off.(id + 1) - off.(id) in
        {
          fp =
            {
              id;
              ppair = pair;
              slice = id;
              eoff = off.(id);
              voff = off.(id) + id;
              nhops;
              at = 0;
              rank;
            };
          freleased = release;
          farrived = (if nhops = 0 then release else -1);
        })
      timed
  in
  let total_hops = List.fold_left (fun acc f -> acc + f.fp.nhops) 0 flights in
  let last_release = List.fold_left (fun acc f -> max acc f.freleased) 0 flights in
  let budget =
    match max_steps with
    | Some b -> b
    | None -> last_release + (8 * (total_hops + 1)) + 64
  in
  let compare_priority a b =
    match discipline with
    | Fifo -> compare (a.freleased, a.fp.id) (b.freleased, b.fp.id)
    | Random_rank _ -> compare (b.fp.rank, b.fp.id) (a.fp.rank, a.fp.id)
    | Longest_remaining ->
        let ra = a.fp.nhops - a.fp.at and rb = b.fp.nhops - b.fp.at in
        compare (rb, a.fp.id) (ra, b.fp.id)
  in
  let time = ref 0 in
  let peak_queue = ref 0 in
  let remaining = ref (List.filter (fun f -> f.farrived < 0) flights) in
  let out_of_budget = ref false in
  while !remaining <> [] && not !out_of_budget do
    if !time >= budget then out_of_budget := true
    else begin
      incr time;
      let queues = Hashtbl.create 64 in
      List.iter
        (fun f ->
          if f.freleased < !time then begin
            let e = st.eflat.(f.fp.eoff + f.fp.at) in
            let from_v = st.vflat.(f.fp.voff + f.fp.at) in
            let key = (e, from_v) in
            let q = try Hashtbl.find queues key with Not_found -> [] in
            Hashtbl.replace queues key (f :: q)
          end)
        !remaining;
      Hashtbl.iter
        (fun (e, _) queue ->
          let width = max 1 (int_of_float (Float.floor (Graph.cap g e))) in
          let sorted = List.sort compare_priority queue in
          let len = List.length sorted in
          if len > !peak_queue then peak_queue := len;
          List.iteri
            (fun i f ->
              if i < width then begin
                f.fp.at <- f.fp.at + 1;
                if f.fp.at >= f.fp.nhops then f.farrived <- !time
              end)
            sorted)
        queues;
      remaining := List.filter (fun f -> f.farrived < 0) !remaining
    end
  done;
  (* Latency statistics are over delivered flights only; on a completed run
     that is every flight. *)
  let arrived = List.filter (fun f -> f.farrived >= 0) flights in
  let latencies =
    List.map (fun f -> float_of_int (f.farrived - f.freleased)) arrived
  in
  let queueing =
    List.map
      (fun f -> float_of_int (f.farrived - f.freleased - f.fp.nhops))
      arrived
  in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let p99 xs =
    match xs with
    | [] -> 0.0
    | _ ->
        let arr = Array.of_list xs in
        Array.sort Float.compare arr;
        let n = Array.length arr in
        arr.(min (n - 1) (max 0 (int_of_float (Float.ceil (0.99 *. float_of_int n)) - 1)))
  in
  let stats =
    {
      finish_time = List.fold_left (fun acc f -> max acc f.farrived) 0 arrived;
      packets = List.length flights;
      delivered = List.length arrived;
      mean_latency = mean latencies;
      p99_latency = p99 latencies;
      mean_queueing = mean queueing;
      peak_queue = !peak_queue;
    }
  in
  if Obs.tracing () then
    Obs.event "sim.result"
      ~attrs:
        [
          ("finish_time", Trace.Int stats.finish_time);
          ("packets", Trace.Int stats.packets);
          ("delivered", Trace.Int stats.delivered);
          ("mean_latency", Trace.Float stats.mean_latency);
          ("p99_latency", Trace.Float stats.p99_latency);
          ("mean_queueing", Trace.Float stats.mean_queueing);
          ("peak_queue", Trace.Int stats.peak_queue);
        ];
  if !out_of_budget then Out_of_budget stats else Completed stats
