(** Store-and-forward packet simulation.

    The paper's completion-time objective (Section 7) rests on the classic
    scheduling fact [LMR94]: packets routed on fixed paths with congestion
    [c] and dilation [d] can all be delivered in [O(c + d)] synchronous
    steps.  This module makes that operational: it simulates the
    packet-by-packet delivery of an integral path assignment and reports
    the actual makespan, so experiments can check that minimizing
    congestion + dilation really minimizes delivery time — the reason the
    objective matters to traffic engineering [KYY+18].

    Model: time proceeds in synchronous steps.  Each packet occupies a
    vertex and follows its preassigned path.  In one step an edge transmits
    at most [⌊cap⌋] packets (at least 1) {e per direction}.  Contending
    packets are ordered by the queue discipline. *)

type discipline =
  | Fifo  (** Earlier-injected packet first (ties by packet id). *)
  | Random_rank of Sso_prng.Rng.t
      (** Each packet draws one random rank at injection; highest rank
          first at every edge — the random-delay scheme behind the
          O(c + d) bound of [LMR94]. *)
  | Longest_remaining
      (** Most hops still to travel first — a practical heuristic. *)

type stats = {
  makespan : int;  (** Steps simulated (arrival of the last packet when the
                       run completed). *)
  delivered : int;
      (** Packets that reached their destination.  Equals the total packet
          count on a {!Completed} run with no drops; strictly less when the
          step budget ran out ({!Out_of_budget}) or packets were dropped by
          a fault ({!run_faulted}). *)
  max_queue : int;
      (** Largest number of packets simultaneously waiting to cross one
          (edge, direction). *)
  total_waits : int;
      (** Total packet-steps spent waiting (0 for uncontended traffic). *)
}

(** {1 Outcomes}

    Runs are bounded by a step budget.  Instead of raising when the budget
    runs out, every simulation returns a typed outcome carrying the
    statistics accumulated so far, so callers can distinguish "finished"
    from "gave up" without losing the partial data. *)

type 'a outcome =
  | Completed of 'a  (** Every surviving packet was delivered. *)
  | Out_of_budget of 'a
      (** The step budget was exhausted with packets still in flight; the
          payload holds partial statistics ([delivered < total]). *)

val value : 'a outcome -> 'a
(** The statistics, complete or partial. *)

val completed_exn : 'a outcome -> 'a
(** The statistics of a completed run.
    @raise Failure on {!Out_of_budget} — for call sites where exhausting
    the budget can only mean a bug in the schedule under test. *)

val run :
  ?discipline:discipline ->
  ?max_steps:int ->
  Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> stats outcome
(** Simulate the assignment to completion.  Packets with empty paths
    ([s = t]) are delivered at time 0.  [max_steps] (default
    [64 · (c·d + c + d + 1)], far above any schedule this model admits)
    bounds the run; exceeding it yields {!Out_of_budget} with the partial
    statistics.  [discipline] defaults to {!Fifo}. *)

val lower_bound : Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> int
(** [max(dilation, ⌈max-edge congestion⌉)] — no schedule can beat it. *)

val upper_bound_cd : Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> int
(** The trivial schedule bound [c·d + d]: every packet waits at most [c-1]
    steps per hop. *)

(** {1 Fault injection}

    A faulted run replays an assignment while edge capacities change at
    scheduled steps: an edge can die (factor 0), degrade (factor in
    (0,1)), or be repaired (factor restored).  When an edge on a packet's
    remaining route dies, the packet {e fails over}: the caller's policy
    proposes a replacement route from the packet's current vertex over the
    surviving edges (typically a surviving candidate path of the
    installed path system — see [Sso_fault.Timeline]), or the packet is
    dropped when no such route exists.  The simulator itself stays
    policy-agnostic, which keeps this library independent of the path
    system layer. *)

type edge_change = {
  edge : int;  (** Edge id whose capacity changes. *)
  at_step : int;  (** Step (≥ 1) at the start of which the change applies. *)
  factor : float;
      (** New capacity factor: 0 removes the edge, values in (0,1) degrade
          it (transmission width [max 1 ⌊cap·factor⌋] while alive), 1
          restores it.  Repairs do not move already-rerouted packets back. *)
}

type fault_stats = {
  base : stats;  (** [delivered] excludes dropped packets. *)
  dropped : int;  (** Packets with no surviving route after a failure. *)
  rerouted : int;  (** Packets that failed over onto a replacement route. *)
  recovery_makespan : int;
      (** Steps from the first edge death until the last rerouted packet
          arrived; 0 when nothing was rerouted. *)
}

val run_faulted :
  ?discipline:discipline ->
  ?max_steps:int ->
  changes:edge_change list ->
  failover:
    (pair:int * int ->
    at_vertex:int ->
    alive:(int -> bool) ->
    Sso_graph.Path.t option) ->
  Sso_graph.Graph.t -> Sso_flow.Rounding.assignment -> fault_stats outcome
(** Simulate the assignment under the given capacity changes.  At the
    start of each step, due changes apply; if any edge died, every packet
    whose remaining route crosses a dead edge consults [failover] with its
    demand [pair], its current [at_vertex], and the liveness predicate
    [alive].  A [Some route] answer must start at [at_vertex], end at the
    packet's destination, and use only alive edges ([Invalid_argument]
    otherwise); [None] drops the packet.  The default step budget grows
    with each reroute, so failovers onto long detours are not misreported
    as budget exhaustion.  Deterministic for fixed inputs: changes apply
    in (step, edge) order and the failover policy sees packets in packet-id
    order. *)

(** {1 Timed injection}

    The one-shot model above measures makespan; traffic engineering also
    cares about per-packet {e latency} under sustained load.  A timed run
    injects each packet at its release step and reports latency
    statistics (arrival − release − hops = queueing delay). *)

type timed_packet = {
  pair : int * int;
  route : Sso_graph.Path.t;
  release : int;  (** First step at which the packet may move (≥ 0). *)
}

type load_stats = {
  finish_time : int;  (** Step at which the last delivered packet arrived. *)
  packets : int;  (** Packets injected. *)
  delivered : int;  (** Packets that arrived (all of them on {!Completed}). *)
  mean_latency : float;  (** Mean (arrival − release) over delivered. *)
  p99_latency : float;
  mean_queueing : float;  (** Mean (latency − hops): pure waiting. *)
  peak_queue : int;
}

val run_timed :
  ?discipline:discipline ->
  ?max_steps:int ->
  Sso_graph.Graph.t -> timed_packet list -> load_stats outcome
(** Simulate to completion.  [max_steps] defaults to a generous bound
    derived from total load and path lengths; exhausting it yields
    {!Out_of_budget} with latency statistics over the delivered packets
    only. *)
