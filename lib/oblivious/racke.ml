module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Rng = Sso_prng.Rng
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

let build_span = Obs.span "racke.build"
let trees_counter = Obs.counter "racke.trees"

let tree_loads g tree =
  let loads = Array.make (Graph.m g) 0.0 in
  Array.iter
    (fun (e : Graph.edge) ->
      let p = Frt.route tree e.u e.v in
      Array.iter (fun e' -> loads.(e') <- loads.(e') +. e.cap) p.Path.edges)
    (Graph.edges g);
  Array.mapi (fun e load -> load /. Graph.cap g e) loads

let default_trees g =
  let n = Graph.n g in
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) ((v + 1) / 2) in
  (2 * log2 0 n) + 4

let forest ?pool rng ?trees ?(batch = 4) g =
  let count = match trees with Some c -> c | None -> default_trees g in
  if count <= 0 then invalid_arg "Racke.routing: need at least one tree";
  if batch <= 0 then invalid_arg "Racke.routing: batch must be positive";
  let m = Graph.m g in
  let cum = Array.make m 0.0 in
  (* Exponential penalties, normalized for stability; eta balances greed
     against diversity across the fixed number of rounds.  Trees are built
     in rounds of [batch]: every tree of a round shares the penalties
     accumulated by earlier rounds and gets its own index-keyed RNG child,
     so rounds parallelize with results identical for any job count (the
     round structure depends on [batch], never on [jobs]). *)
  let eta = 1.0 in
  let base_rng = Rng.split rng in
  let forest_rev = ref [] in
  let attrs =
    if Obs.tracing () then
      [ ("trees", Trace.Int count); ("batch", Trace.Int batch) ]
    else []
  in
  Obs.with_span ~attrs build_span (fun () ->
      let built = ref 0 in
      while !built < count do
        let b = min batch (count - !built) in
        let first = !built in
        let max_cum = Array.fold_left Float.max 0.0 cum in
        let length e = Float.exp (eta *. (cum.(e) -. max_cum)) /. Graph.cap g e in
        let round =
          Pool.parallel_init ?pool b (fun i ->
              let tree_rng = Rng.split_at base_rng (first + i) in
              let tree = Frt.build tree_rng g ~length in
              (tree, tree_loads g tree))
        in
        Array.iteri
          (fun i (tree, loads) ->
            Obs.incr trees_counter;
            let peak = Array.fold_left Float.max 1e-12 loads in
            Array.iteri (fun e load -> cum.(e) <- cum.(e) +. (load /. peak)) loads;
            if Obs.tracing () then
              Obs.event "racke.tree"
                ~attrs:
                  [
                    ("tree", Trace.Int (first + i));
                    ("peak", Trace.Float peak);
                    ("levels", Trace.Int (Frt.levels tree));
                  ];
            forest_rev := tree :: !forest_rev)
          round;
        built := !built + b
      done);
  List.rev !forest_rev

let of_forest g forest =
  let count = List.length forest in
  if count = 0 then invalid_arg "Racke.of_forest: empty forest";
  let weight = 1.0 /. float_of_int count in
  let generate s t = List.map (fun tree -> (weight, Frt.route tree s t)) forest in
  Oblivious.make ~name:"racke" g generate

let routing ?pool rng ?trees ?batch g = of_forest g (forest ?pool rng ?trees ?batch g)
