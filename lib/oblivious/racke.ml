module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Rng = Sso_prng.Rng
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

let build_span = Obs.span "racke.build"
let trees_counter = Obs.counter "racke.trees"

(* Edges are routed in fixed chunks (never a function of the job count):
   each chunk accumulates its loads into a sparse map of the edges its
   routes actually touch — a dense per-chunk array would be O(m) floats per
   worker — and the chunks merge serially in chunk order, ascending edge id
   within a chunk, so the float sums are identical at any [--jobs]. *)
let tree_load_chunks = 64

let tree_loads ?pool g tree =
  let m = Graph.m g in
  let loads = Array.make m 0.0 in
  if m > 0 then begin
    let edges = Graph.edges g in
    let chunks = min tree_load_chunks m in
    let partials =
      Pool.parallel_init ?pool chunks (fun k ->
          let lo = k * m / chunks and hi = (k + 1) * m / chunks in
          let tbl = Hashtbl.create 256 in
          for idx = lo to hi - 1 do
            let e : Graph.edge = edges.(idx) in
            let p = Frt.route tree e.u e.v in
            Array.iter
              (fun e' ->
                let cur =
                  match Hashtbl.find_opt tbl e' with Some c -> c | None -> 0.0
                in
                Hashtbl.replace tbl e' (cur +. e.cap))
              p.Path.edges
          done;
          let arr =
            Array.of_list (Hashtbl.fold (fun e' l acc -> (e', l) :: acc) tbl [])
          in
          Array.sort (fun ((a : int), _) ((b : int), _) -> compare a b) arr;
          arr)
    in
    Array.iter
      (Array.iter (fun (e', partial) -> loads.(e') <- loads.(e') +. partial))
      partials
  end;
  Array.mapi (fun e load -> load /. Graph.cap g e) loads

let default_trees g =
  let n = Graph.n g in
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) ((v + 1) / 2) in
  (2 * log2 0 n) + 4

let forest ?pool rng ?trees ?(batch = 4) g =
  let count = match trees with Some c -> c | None -> default_trees g in
  if count <= 0 then invalid_arg "Racke.routing: need at least one tree";
  if batch <= 0 then invalid_arg "Racke.routing: batch must be positive";
  let m = Graph.m g in
  let cum = Array.make m 0.0 in
  (* Exponential penalties, normalized for stability; eta balances greed
     against diversity across the fixed number of rounds.  Trees are built
     in rounds of [batch]: every tree of a round shares the penalties
     accumulated by earlier rounds and gets its own index-keyed RNG child,
     so the mixture depends on [batch] but never on [jobs].  The trees of a
     round are built one after another — the parallelism lives {e inside}
     each build (per-level center batches in {!Frt.build}) and inside each
     {!tree_loads} pass (edge chunks), where it scales with the graph
     instead of with the round width. *)
  let eta = 1.0 in
  let base_rng = Rng.split rng in
  let forest_rev = ref [] in
  let attrs =
    if Obs.tracing () then
      [ ("trees", Trace.Int count); ("batch", Trace.Int batch) ]
    else []
  in
  Obs.with_span ~attrs build_span (fun () ->
      let built = ref 0 in
      while !built < count do
        let b = min batch (count - !built) in
        let first = !built in
        let max_cum = Array.fold_left Float.max 0.0 cum in
        let length e = Float.exp (eta *. (cum.(e) -. max_cum)) /. Graph.cap g e in
        let round =
          Array.init b (fun i ->
              let tree_rng = Rng.split_at base_rng (first + i) in
              let tree = Frt.build ?pool tree_rng g ~length in
              (tree, tree_loads ?pool g tree))
        in
        Array.iteri
          (fun i (tree, loads) ->
            Obs.incr trees_counter;
            let peak = Array.fold_left Float.max 1e-12 loads in
            Array.iteri (fun e load -> cum.(e) <- cum.(e) +. (load /. peak)) loads;
            if Obs.tracing () then
              Obs.event "racke.tree"
                ~attrs:
                  [
                    ("tree", Trace.Int (first + i));
                    ("peak", Trace.Float peak);
                    ("levels", Trace.Int (Frt.levels tree));
                  ];
            forest_rev := tree :: !forest_rev)
          round;
        built := !built + b
      done);
  List.rev !forest_rev

let of_forest g forest =
  let count = List.length forest in
  if count = 0 then invalid_arg "Racke.of_forest: empty forest";
  let weight = 1.0 /. float_of_int count in
  let generate s t = List.map (fun tree -> (weight, Frt.route tree s t)) forest in
  Oblivious.make ~name:"racke" g generate

let routing ?pool rng ?trees ?batch g = of_forest g (forest ?pool rng ?trees ?batch g)
