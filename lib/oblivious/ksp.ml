module Yen = Sso_graph.Yen

let routing ?(weight = fun _ -> 1.0) ~k g =
  if k <= 0 then invalid_arg "Ksp.routing: k must be positive";
  let generate s t =
    let paths = Yen.k_shortest g ~weight ~k s t in
    let module Obs = Sso_obs.Obs in
    if Obs.tracing () then
      Obs.event "ksp.generate"
        ~attrs:
          [
            ("s", Sso_obs.Trace.Int s);
            ("t", Sso_obs.Trace.Int t);
            ("paths", Sso_obs.Trace.Int (List.length paths));
            ("k", Sso_obs.Trace.Int k);
          ];
    List.map (fun p -> (1.0, p)) paths
  in
  Oblivious.make ~name:(Printf.sprintf "ksp-%d" k) g generate
