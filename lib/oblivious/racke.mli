(** Räcke-style oblivious routing via multiplicative weights over FRT
    trees.

    [Räc08] proves every graph admits an O(log n)-competitive oblivious
    routing and reduces its construction to distance-preserving tree
    embeddings.  We implement the practical form of that reduction (the one
    SMORE [KYY+18] ships): iteratively sample FRT trees, where each round's
    edge lengths exponentially penalize edges the earlier trees overloaded
    (load measured by routing every edge's capacity through the tree), and
    take the uniform mixture of the sampled trees as the routing.

    This is the substitution documented in DESIGN.md §3: the object has the
    same shape as Räcke's (a distribution over decomposition trees) and is
    empirically polylog-competitive on our testbed, which suffices because
    Theorem 5.3 is stated relative to the base routing [R]. *)

val routing :
  ?pool:Sso_engine.Pool.t ->
  Sso_prng.Rng.t -> ?trees:int -> ?batch:int -> Sso_graph.Graph.t -> Oblivious.t
(** Build the routing from [trees] sampled decompositions (default
    [2·⌈log₂ n⌉ + 4]).  Construction cost: [trees] FRT builds plus one
    capacity-routing pass per tree.  Trees are sampled in rounds of
    [batch] (default 4): trees within a round share the penalty state of
    the previous rounds, each from its own index-keyed RNG child, so the
    mixture depends on [batch] but never on the job count.  Parallelism
    runs on [pool] (default: the process pool) {e inside} each tree —
    per-level center batches in {!Frt.build} and edge chunks in
    {!tree_loads} — where it scales with the graph instead of with the
    round width; the result is bit-identical for any job count. *)

val default_trees : Sso_graph.Graph.t -> int
(** The default tree count, [2·⌈log₂ n⌉ + 4]. *)

val forest :
  ?pool:Sso_engine.Pool.t ->
  Sso_prng.Rng.t -> ?trees:int -> ?batch:int -> Sso_graph.Graph.t -> Frt.t list
(** The MWU-sampled tree mixture behind {!routing}, exposed so the artifact
    store can persist it ({!Frt.to_parts}) and rebuild the routing without
    re-running the construction. *)

val of_forest : Sso_graph.Graph.t -> Frt.t list -> Oblivious.t
(** The uniform mixture over an already-built forest.
    [routing rng g = of_forest g (forest rng g)]. *)

val tree_loads :
  ?pool:Sso_engine.Pool.t -> Sso_graph.Graph.t -> Frt.t -> float array
(** Relative load per edge when each graph edge routes its capacity along
    the tree path between its endpoints — the penalty signal of the MWU
    loop, exposed for tests and diagnostics.  Edges are routed in fixed
    chunks on [pool] and merged in chunk order, so the float sums are
    identical at any job count. *)
