(** FRT random hierarchical decompositions (tree embeddings).

    Fakcharoenphol–Rao–Talwar metric embeddings: a random laminar family of
    clusters with geometrically shrinking radii, built from a random vertex
    permutation and a random radius scale.  Every tree maps back into the
    graph by routing each tree edge along a shortest path between cluster
    centers, so a tree induces a deterministic path per vertex pair; a
    distribution over trees induces an oblivious routing.  This is the
    building block of the Räcke-style construction in {!Racke}. *)

type t
(** One sampled decomposition tree over a graph. *)

val build :
  ?pool:Sso_engine.Pool.t ->
  Sso_prng.Rng.t -> Sso_graph.Graph.t -> length:(int -> float) -> t
(** Sample a decomposition w.r.t. the shortest-path metric induced by the
    per-edge [length] function (values are clamped below by a tiny positive
    constant, so zero lengths are safe).  Built level-wise by growing
    bounded-radius Dijkstra balls from the centers in permutation order —
    each vertex joins the first center within the level radius — so work is
    near-linear per level and memory is O(n·levels + m); no all-pairs
    distance matrix is ever formed.  Center batches within a level run on
    [pool]; chains and cluster ids are bit-identical at any job count.
    @raise Invalid_argument if the graph is disconnected. *)

val set_hub_cache_budget : int option -> unit
(** Override the per-tree budget (total cached predecessor-map bindings)
    for the hub shortest-path-tree cache of trees built afterwards.
    [None] restores the default ([max 65536 (8·n)]).  Exceeding the budget
    evicts least-recently-used hub trees (counted by the [frt.hub_evict]
    counter); routing results never depend on the budget.
    @raise Invalid_argument on a non-positive budget. *)

type parts = {
  p_levels : int;
  p_chain : int array array;  (** [n × (levels+1)] cluster centers *)
  p_cluster_id : int array array;  (** [n × (levels+1)] cluster identifiers *)
  p_lengths : float array;  (** clamped per-edge lengths, indexed by edge id *)
}
(** The serializable state of a decomposition.  Shortest-path trees are
    {e not} part of it: they are a deterministic function of [p_lengths]
    (truncated Dijkstra from each hub, radius fixed by level and the
    minimum length), so a tree rebuilt by {!of_parts} routes every pair
    exactly as the original did. *)

val to_parts : t -> parts
(** Extract the serializable state (arrays are copies). *)

val of_parts : Sso_graph.Graph.t -> parts -> t
(** Reconstruct a tree over [g].  @raise Invalid_argument if the dimensions
    or values do not fit [g]. *)

val levels : t -> int
(** Height of the decomposition (Θ(log (diameter/min-distance))). *)

val route : t -> int -> int -> Sso_graph.Path.t
(** The unique tree path between two vertices, mapped into the graph
    (concatenated center-to-center shortest paths, simplified). *)

val cluster_center : t -> int -> int -> int
(** [cluster_center t v level] is the center of the cluster containing [v]
    at [level] (level 0 clusters are singletons centered at [v]). *)
