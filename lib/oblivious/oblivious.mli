(** Oblivious routings.

    An oblivious routing fixes, for every vertex pair, a distribution over
    simple paths {e before} any demand is seen.  The semi-oblivious
    construction of the paper samples its candidate paths from exactly such
    a distribution, so this type is the substrate Theorem 5.3 builds on.

    Distributions are produced lazily per pair and memoized, because some
    routings (e.g. Valiant's trick) have supports of size Θ(n) per pair and
    most experiments only touch the pairs in a demand's support. *)

type t

val make :
  name:string ->
  Sso_graph.Graph.t ->
  (int -> int -> (float * Sso_graph.Path.t) list) ->
  t
(** [make ~name g dist] wraps a per-pair distribution generator.  For every
    [s <> t], [dist s t] must return a non-empty list of weighted
    (s,t)-paths (weights need not be normalized; they are when used).  The
    generator is called at most once per pair. *)

val name : t -> string

val graph : t -> Sso_graph.Graph.t

val distribution : t -> int -> int -> (float * Sso_graph.Path.t) list
(** Memoized, normalized distribution for a pair ([s <> t]). *)

val preload : t -> ((int * int) * (float * Sso_graph.Path.t) list) list -> unit
(** Install already-normalized distributions (as previously returned by
    {!distribution}) into the memo cache, bypassing re-normalization so the
    installed weights are bit-identical to the originals.  This is how the
    artifact store warm-starts a routing: cached pairs answer from the
    preloaded table, uncached pairs fall through to the generator.
    @raise Invalid_argument on empty lists, non-positive weights, or
    endpoint mismatches. *)

val sample : Sso_prng.Rng.t -> t -> int -> int -> Sso_graph.Path.t
(** Draw one path from [R(s,t)] — the sampling primitive behind
    α-samples. *)

val to_routing : t -> (int * int) list -> Sso_flow.Routing.t
(** Restriction of the oblivious routing to a finite set of pairs, as a
    {!Sso_flow.Routing.t} (used to evaluate [cong(R,d)]). *)

val congestion : t -> Sso_demand.Demand.t -> float
(** Expected congestion [cong(R,d)] of obliviously routing [d]. *)

val dilation : t -> Sso_demand.Demand.t -> int
(** Max hops over support paths of pairs in [supp(d)]. *)

val support_sparsity : t -> (int * int) list -> int
(** Largest per-pair support size among the given pairs — what "sparsity"
    would mean for the oblivious routing itself (Section 1.1 argues this is
    inherently large for competitive routings, unlike semi-oblivious
    candidate systems). *)
