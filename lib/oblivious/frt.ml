module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest
module Rng = Sso_prng.Rng
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

(* Routing only ever walks tree edges: shortest paths from a cluster
   center down to the centers of its child clusters (level-0 children are
   the cluster's own vertices).  Those paths are memoized per
   (hub, parent level): on first use, one truncated Dijkstra from the hub
   harvests the paths to {e all} of that hub's children at once — the
   children are known from the chain table — so the number of Dijkstras a
   tree ever runs is bounded by its cluster count, not by its query count,
   and the cache stores O(n) total hops instead of n-word predecessor
   arrays.  Total cached hops are bounded ([hub_cap]);
   least-recently-used hubs are evicted past the budget. *)
type hub_entry = {
  h_paths : (int, Path.t) Hashtbl.t; (* child center -> path hub -> child *)
  h_hops : int; (* total stored hops: the entry's weight against hub_cap *)
  mutable h_last_use : int;
}

type t = {
  graph : Graph.t;
  levels : int;
  chain : int array array; (* chain.(v).(i) = center of v's level-i cluster *)
  cluster_id : int array array; (* cluster_id.(v).(i): equal iff same cluster *)
  lengths : float array; (* clamped per-edge metric, indexed by edge id *)
  delta : float; (* min clamped edge length ([infinity] when m = 0) *)
  children : (int * int, int array) Hashtbl.t;
      (* (hub, parent level) -> distinct child centers below it *)
  hub_cache : (int * int, hub_entry) Hashtbl.t; (* key (hub, parent level) *)
  mutable hub_clock : int; (* LRU clock, bumped per lookup *)
  mutable hub_bindings : int; (* total hops across cached entries *)
  hub_cap : int;
  hub_lock : Mutex.t; (* guards the cache: trees route from pool workers *)
}

let min_length = 1e-9

let build_span = Obs.span "frt.build"
let metric_span = Obs.span "frt.metric"
let hub_evict_counter = Obs.counter "frt.hub_evict"

(* Per-tree budget on cached hub-tree bindings.  The default keeps the
   cache O(n): a handful of coarse (near-full-graph) trees plus thousands
   of fine ones.  Overridable for tests and tuning; routing results never
   depend on the budget, only miss counts do. *)
let default_hub_budget n = max 65536 (8 * n)
let hub_budget_override = ref None

let set_hub_cache_budget = function
  | Some b when b < 1 ->
      invalid_arg "Frt.set_hub_cache_budget: budget must be >= 1"
  | o -> hub_budget_override := o

let hub_budget n =
  match !hub_budget_override with Some b -> b | None -> default_hub_budget n

(* Enumerate the tree edges (hub at level i+1 -> child center at level i),
   grouped by hub.  O(n·levels); the same center can head several clusters
   of a level (one per parent cluster), hence the triple-keyed dedup. *)
let children_table ~levels ~chain n =
  let seen = Hashtbl.create 256 and groups = Hashtbl.create 256 in
  for i = 0 to levels - 1 do
    for v = 0 to n - 1 do
      let hub = chain.(v).(i + 1) and child = chain.(v).(i) in
      if hub <> child && not (Hashtbl.mem seen (i, hub, child)) then begin
        Hashtbl.add seen (i, hub, child) ();
        let gkey = (hub, i + 1) in
        let cur =
          match Hashtbl.find_opt groups gkey with Some l -> l | None -> []
        in
        Hashtbl.replace groups gkey (child :: cur)
      end
    done
  done;
  let table = Hashtbl.create (Hashtbl.length groups) in
  Hashtbl.iter
    (fun gkey l -> Hashtbl.replace table gkey (Array.of_list l))
    groups;
  table

let make_tree g ~levels ~chain ~cluster_id ~lengths ~delta =
  {
    graph = g;
    levels;
    chain;
    cluster_id;
    lengths;
    delta;
    children = children_table ~levels ~chain (Graph.n g);
    hub_cache = Hashtbl.create 64;
    hub_clock = 0;
    hub_bindings = 0;
    hub_cap = hub_budget (Graph.n g);
    hub_lock = Mutex.create ();
  }

(* One BFS up front: the ball-growing construction never computes a
   distance it does not need, so unlike the historical all-pairs pass a
   disconnected graph would otherwise only surface deep inside the level
   loop as a cluster that never covers the graph. *)
let check_connected g =
  let n = Graph.n g in
  if n > 0 then begin
    let dist = Shortest.bfs_dist g 0 in
    for v = 0 to n - 1 do
      if dist.(v) = max_int then
        invalid_arg
          (Printf.sprintf
             "Frt.build: graph is disconnected (vertex %d is unreachable \
              from vertex 0)"
             v)
    done
  end

(* How many centers were scanned before every vertex of a level was
   claimed, batched geometrically: the first batch is a single ball (the
   top levels are claimed whole by the first permutation center), then
   batches double up to [max_center_batch] so fine levels — thousands of
   tiny balls — amortize the fork/join cost.  The schedule is a function
   of the claim state alone, never of the job count, so the resulting
   chains are bit-identical at any [--jobs]. *)
let max_center_batch = 32

let build ?pool rng g ~length =
  let n = Graph.n g and m = Graph.m g in
  check_connected g;
  (* Snapshot the clamped metric: callers (the Räcke MWU loop) pass
     closures over mutable penalty state, and the tree must keep routing
     under the lengths it was built with — also what lets a tree
     round-trip through [to_parts]/[of_parts] bit-identically. *)
  let snapshot = Array.init m (fun e -> Float.max min_length (length e)) in
  (* delta_min: under a positive metric the closest pair of distinct
     vertices is always joined by a single edge (every path weighs at
     least its heaviest edge, and any multi-edge path at least two minimum
     lengths), so the minimum pairwise distance is the minimum clamped
     edge length — no all-pairs pass needed. *)
  let delta = Array.fold_left Float.min infinity snapshot in
  let ws = Shortest.Workspace.for_current_domain () in
  let ecc src =
    Shortest.dijkstra_into ws g ~weight:(fun e -> snapshot.(e)) src;
    let best = ref 0.0 and far = ref src in
    for v = 0 to n - 1 do
      let d = Shortest.Workspace.dist ws v in
      if d > !best then begin
        best := d;
        far := v
      end
    done;
    (!best, !far)
  in
  (* Double-sweep diameter upper bound: diam <= 2·ecc(v) for every v, and
     sweeping again from the farthest vertex found can only tighten it.
     Two Dijkstras replace the exact all-pairs maximum; the bound is at
     most 2x the diameter, so it costs at most one extra (redundant,
     single-cluster) level at the top of the decomposition. *)
  let diameter_ub =
    if n <= 1 then 0.0
    else
      Obs.with_span metric_span (fun () ->
          let ecc0, far = ecc 0 in
          let ecc1, _ = ecc far in
          2.0 *. Float.min ecc0 ecc1)
  in
  let scale = delta in
  let diameter = diameter_ub /. scale in
  (* Radii: r_i = beta · 2^{i-1} with beta in [1,2).  r_0 < 1 keeps level-0
     clusters singletons; levels grows until the radius covers the
     diameter bound. *)
  let beta = 1.0 +. Rng.float rng in
  let levels =
    let rec go i r = if r >= diameter then i else go (i + 1) (r *. 2.0) in
    go 1 beta
  in
  let pi = Rng.permutation rng n in
  let chain = Array.init n (fun v -> Array.make (levels + 1) v) in
  let cluster_id = Array.init n (fun v -> Array.make (levels + 1) v) in
  let next_id = ref n in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Top level: everything in one cluster centered at the first center in
     permutation order. *)
  let top_id = fresh () in
  for v = 0 to n - 1 do
    chain.(v).(levels) <- pi.(0);
    cluster_id.(v).(levels) <- top_id
  done;
  (* claim_stamp.(v) = i iff v has been claimed at level i: levels are
     processed top-down with distinct indices, so one array serves all of
     them without clearing.  best.(v) is the settle distance of v from the
     closest center of an earlier batch (per level): a ball reaching v at
     distance >= best.(v) stops expanding there, because everything beyond
     is at least as close to that earlier — hence higher-priority —
     center.  Each vertex improves its record O(log n) expected times
     under a random permutation, which is what makes a level near-linear
     instead of |balls| Dijkstras. *)
  let claim_stamp = Array.make n (-1) in
  let best = Array.make n infinity in
  let attrs =
    if Obs.tracing () then
      [
        ("vertices", Trace.Int n);
        ("levels", Trace.Int levels);
        ("beta", Trace.Float beta);
      ]
    else []
  in
  Obs.with_span ~attrs build_span (fun () ->
      (* Refine level by level.  At level i the radius is beta·2^{i-1}·δ;
         each vertex joins the first permutation center within that
         radius, and two vertices share a level-i cluster iff they share
         the level-(i+1) cluster and the same chosen center.

         Instead of scanning an all-pairs matrix row per vertex, grow
         bounded-radius Dijkstra balls from the centers in permutation
         order: a ball claims every still-unclaimed vertex it covers, so a
         vertex ends up with the first center within radius — identical
         cluster semantics, touching only distances that are actually
         within radius.  Balls of a batch are grown concurrently against
         the claim/record state frozen at batch start (workers only read
         it) and merged serially in permutation order, so the outcome is
         independent of scheduling.  Pruning on the frozen records is
         sound batched: a path entering a recorded vertex certifies an
         earlier center at least as close to everything downstream, so the
         only vertices a batched ball misses (relative to its serial run)
         are ones an earlier batch already claimed. *)
      for i = levels - 1 downto 1 do
        let radius = beta *. Float.pow 2.0 (float_of_int (i - 1)) *. scale in
        let level_sp = Obs.span (Printf.sprintf "frt.level.%02d" i) in
        let level_attrs =
          if Obs.tracing () then
            [ ("level", Trace.Int i); ("radius", Trace.Float radius) ]
          else []
        in
        Obs.with_span ~attrs:level_attrs level_sp (fun () ->
            Array.fill best 0 n infinity;
            let unclaimed = ref n and j = ref 0 and batch = ref 1 in
            while !unclaimed > 0 && !j < n do
              let b = min !batch (n - !j) in
              let first = !j in
              let balls =
                Pool.parallel_init ?pool b (fun k ->
                    let c = pi.(first + k) in
                    let ws = Shortest.Workspace.for_current_domain () in
                    let acc = ref [] in
                    Shortest.dijkstra_ball_into ws g ~weights:snapshot ~radius
                      ~prune:(fun v d -> d >= best.(v))
                      ~sources:[| c |] (fun v d -> acc := (v, d) :: !acc);
                    List.rev !acc)
              in
              Array.iteri
                (fun k ball ->
                  let c = pi.(first + k) in
                  List.iter
                    (fun (v, d) ->
                      if claim_stamp.(v) <> i then begin
                        claim_stamp.(v) <- i;
                        chain.(v).(i) <- c;
                        decr unclaimed
                      end;
                      if d < best.(v) then best.(v) <- d)
                    ball)
                balls;
              j := !j + b;
              batch := min max_center_batch (2 * !batch)
            done;
            (* Cluster ids in vertex order — the same first-encounter
               numbering the serial matrix scan produced. *)
            let ids = Hashtbl.create 64 in
            for v = 0 to n - 1 do
              let key = (cluster_id.(v).(i + 1), chain.(v).(i)) in
              let id =
                match Hashtbl.find_opt ids key with
                | Some id -> id
                | None ->
                    let id = fresh () in
                    Hashtbl.add ids key id;
                    id
              in
              cluster_id.(v).(i) <- id
            done)
      done);
  (* Level 0 stays singleton: chain.(v).(0) = v, cluster_id.(v).(0) = v. *)
  make_tree g ~levels ~chain ~cluster_id ~lengths:snapshot ~delta

type parts = {
  p_levels : int;
  p_chain : int array array;
  p_cluster_id : int array array;
  p_lengths : float array;
}

let to_parts t =
  {
    p_levels = t.levels;
    p_chain = Array.map Array.copy t.chain;
    p_cluster_id = Array.map Array.copy t.cluster_id;
    p_lengths = Array.copy t.lengths;
  }

let of_parts g p =
  let n = Graph.n g and m = Graph.m g in
  if p.p_levels < 1 then invalid_arg "Frt.of_parts: levels must be >= 1";
  if Array.length p.p_lengths <> m then invalid_arg "Frt.of_parts: lengths size mismatch";
  Array.iter
    (fun l ->
      if not (l >= min_length) then invalid_arg "Frt.of_parts: length below clamp")
    p.p_lengths;
  let check_table name tbl =
    if Array.length tbl <> n then invalid_arg ("Frt.of_parts: " ^ name ^ " size mismatch");
    Array.iter
      (fun row ->
        if Array.length row <> p.p_levels + 1 then
          invalid_arg ("Frt.of_parts: " ^ name ^ " row size mismatch"))
      tbl
  in
  check_table "chain" p.p_chain;
  check_table "cluster_id" p.p_cluster_id;
  Array.iter
    (fun row -> Array.iter (fun c -> if c < 0 || c >= n then invalid_arg "Frt.of_parts: center out of range") row)
    p.p_chain;
  let lengths = Array.copy p.p_lengths in
  let delta = Array.fold_left Float.min infinity lengths in
  make_tree g ~levels:p.p_levels ~chain:(Array.map Array.copy p.p_chain)
    ~cluster_id:(Array.map Array.copy p.p_cluster_id)
    ~lengths ~delta

let levels t = t.levels

let cluster_center t v level =
  if level < 0 || level > t.levels then invalid_arg "Frt.cluster_center: bad level";
  t.chain.(v).(level)

(* Truncation radius for a hub tree at parent level [l]: the hub claimed
   every vertex of its cluster within beta·2^{l-1}·δ, a child center sits
   within half that of some shared vertex, and beta < 2, so 2^{l+1}·δ
   covers any query with a 33% margin (ample against float rounding of
   path sums).  Crucially this is a function of [lengths] alone — not of
   the sampled beta — so a tree rebuilt by [of_parts] truncates, and hence
   tie-breaks, exactly like the original build and routes identically. *)
let hub_radius t plevel = Float.ldexp t.delta (plevel + 1)

(* Escalating uncached fallback for the (float-borderline) case where a
   child falls just outside the truncation radius: deterministic in
   (hub, radius) alone — never in cache state or scheduling. *)
let rec path_by_search t hub v ~radius =
  let ws = Shortest.Workspace.for_current_domain () in
  Shortest.dijkstra_ball_into ws t.graph ~weights:t.lengths ~radius
    ~sources:[| hub |] (fun _ _ -> ());
  match Shortest.Workspace.path ws t.graph v with
  | Some p -> p
  | None ->
      if radius = infinity then
        invalid_arg "Frt.route: graph is disconnected"
      else
        let radius = if radius > 1e300 then infinity else radius *. 4.0 in
        path_by_search t hub v ~radius

exception Filled

(* One truncated Dijkstra from [hub], stopped as soon as every child has
   settled, then a path per child read off the predecessor chains.  Only
   children the visitor saw settle are read back — a vertex that was
   relaxed but not yet settled when the early exit fired still carries a
   tentative predecessor — so the handful that the truncation radius
   misses by a float hair fall back to the escalating uncached search. *)
let fill_hub t hub plevel =
  let kids =
    match Hashtbl.find_opt t.children (hub, plevel) with
    | Some k -> k
    | None -> [||]
  in
  let want = Hashtbl.create (2 * Array.length kids) in
  Array.iter (fun c -> Hashtbl.replace want c ()) kids;
  let got = Hashtbl.create (2 * Array.length kids) in
  let remaining = ref (Hashtbl.length want) in
  let ws = Shortest.Workspace.for_current_domain () in
  (try
     Shortest.dijkstra_ball_into ws t.graph ~weights:t.lengths
       ~radius:(hub_radius t plevel) ~sources:[| hub |] (fun v _ ->
         if Hashtbl.mem want v && not (Hashtbl.mem got v) then begin
           Hashtbl.replace got v ();
           decr remaining;
           if !remaining = 0 then raise Filled
         end)
   with Filled -> ());
  let paths = Hashtbl.create (2 * Array.length kids) in
  let missing = ref [] in
  Array.iter
    (fun c ->
      if Hashtbl.mem got c then
        match Shortest.Workspace.path ws t.graph c with
        | Some p -> Hashtbl.replace paths c p
        | None -> missing := c :: !missing
      else missing := c :: !missing)
    kids;
  (* Fallback searches reuse the workspace, so they run only after every
     settled child has been read back. *)
  List.iter
    (fun c ->
      Hashtbl.replace paths c
        (path_by_search t hub c ~radius:(4.0 *. hub_radius t plevel)))
    (List.rev !missing);
  let hops = Hashtbl.fold (fun _ p acc -> acc + Path.hops p) paths 0 in
  { h_paths = paths; h_hops = max 1 hops; h_last_use = 0 }

let hub_entry t hub plevel =
  let key = (hub, plevel) in
  Mutex.lock t.hub_lock;
  t.hub_clock <- t.hub_clock + 1;
  let clock = t.hub_clock in
  let cached =
    match Hashtbl.find_opt t.hub_cache key with
    | Some e ->
        e.h_last_use <- clock;
        Some e
    | None -> None
  in
  Mutex.unlock t.hub_lock;
  match cached with
  | Some e -> e
  | None ->
      (* The Dijkstra runs outside the lock; a racing duplicate computes
         the same paths (the fill is a function of the key), so whichever
         insert lands is equivalent.  Entries are immutable once
         published: concurrent readers never see writes. *)
      let entry = fill_hub t hub plevel in
      Mutex.lock t.hub_lock;
      let entry =
        match Hashtbl.find_opt t.hub_cache key with
        | Some e ->
            e.h_last_use <- t.hub_clock;
            e
        | None ->
            entry.h_last_use <- clock;
            Hashtbl.replace t.hub_cache key entry;
            t.hub_bindings <- t.hub_bindings + entry.h_hops;
            (* Evict least-recently-used hubs past the budget; the entry
               just inserted is never the victim (it is only spared
               explicitly, since a budget below its own weight would
               otherwise evict it before its caller ever reads it). *)
            let keep_evicting = ref (t.hub_bindings > t.hub_cap) in
            while !keep_evicting && Hashtbl.length t.hub_cache > 1 do
              let worst = ref None in
              Hashtbl.iter
                (fun k (e : hub_entry) ->
                  if k <> key then
                    match !worst with
                    | Some (_, w) when w.h_last_use <= e.h_last_use -> ()
                    | _ -> worst := Some (k, e))
                t.hub_cache;
              (match !worst with
              | Some (k, e) ->
                  Hashtbl.remove t.hub_cache k;
                  t.hub_bindings <- t.hub_bindings - e.h_hops;
                  Obs.incr hub_evict_counter
              | None -> ());
              keep_evicting :=
                t.hub_bindings > t.hub_cap && !worst <> None
            done;
            entry
      in
      Mutex.unlock t.hub_lock;
      entry

(* Path hub → child along the memoized tree edge ([hub] the level-[plevel]
   center, [child] the center of one of its child clusters). *)
let hub_path t ~plevel hub child =
  if hub = child then Path.trivial child
  else begin
    let e = hub_entry t hub plevel in
    match Hashtbl.find_opt e.h_paths child with
    | Some p -> p
    | None ->
        (* Not a tree edge of this hub (never reached via [route]). *)
        path_by_search t hub child ~radius:(4.0 *. hub_radius t plevel)
  end

let route t s t_ =
  if s = t_ then Path.trivial s
  else begin
    (* Lowest level at which s and t share a cluster; vertices in a shared
       cluster also share its center, so the up- and down-chains meet. *)
    let rec meet i =
      if t.cluster_id.(s).(i) = t.cluster_id.(t_).(i) then i else meet (i + 1)
    in
    let j = meet 0 in
    (* Both chains root every segment at its parent (level i+1 >= 1)
       center — a bounded set of hubs whose trees truncate to the cluster
       scale.  (Rooting the down-chain at the child, as the historical
       code did, makes every routed destination a hub: an O(n)-entry cache
       of full predecessor trees.) *)
    let up =
      List.init j (fun i ->
          Path.reverse
            (hub_path t ~plevel:(i + 1) t.chain.(s).(i + 1) t.chain.(s).(i)))
    in
    let down =
      List.init j (fun i ->
          let lvl = j - i in
          hub_path t ~plevel:lvl t.chain.(t_).(lvl) t.chain.(t_).(lvl - 1))
    in
    let full =
      List.fold_left (fun acc p -> Path.concat t.graph acc p) (Path.trivial s) (up @ down)
    in
    Path.simplify t.graph full
  end
