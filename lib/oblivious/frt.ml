module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest
module Rng = Sso_prng.Rng

type t = {
  graph : Graph.t;
  levels : int;
  chain : int array array; (* chain.(v).(i) = center of v's level-i cluster *)
  cluster_id : int array array; (* cluster_id.(v).(i): equal iff same cluster *)
  sp_pred : (int, int array) Hashtbl.t; (* Dijkstra predecessor trees per hub *)
  sp_lock : Mutex.t; (* guards sp_pred: trees are routed through from pool workers *)
  length : int -> float;
}

let min_length = 1e-9

let build rng g ~length =
  let n = Graph.n g in
  (* Snapshot the clamped metric: callers (the Räcke MWU loop) pass
     closures over mutable penalty state, and the tree must keep routing
     under the lengths it was built with — also what lets a tree
     round-trip through [to_parts]/[of_parts] bit-identically. *)
  let snapshot =
    Array.init (Graph.m g) (fun e -> Float.max min_length (length e))
  in
  let clamped e = snapshot.(e) in
  (* All-pairs distances under the clamped metric: n Dijkstra runs sharing
     one workspace, so only the kept distance rows are allocated. *)
  let ws = Shortest.Workspace.for_current_domain () in
  let dist =
    Array.init n (fun v ->
        Shortest.dijkstra_into ws g ~weight:clamped v;
        Array.init n (Shortest.Workspace.dist ws))
  in
  let delta_min = ref infinity and delta_max = ref 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        if dist.(u).(v) < !delta_min then delta_min := dist.(u).(v);
        if dist.(u).(v) > !delta_max then delta_max := dist.(u).(v)
      end
    done
  done;
  if not (Float.is_finite !delta_max) then invalid_arg "Frt.build: graph is disconnected";
  let scale = !delta_min in
  let normalized u v = dist.(u).(v) /. scale in
  let diameter = !delta_max /. scale in
  (* Radii: r_i = beta · 2^{i-1} with beta in [1,2).  r_0 < 1 keeps level-0
     clusters singletons; levels grows until the radius covers the
     diameter. *)
  let beta = 1.0 +. Rng.float rng in
  let levels =
    let rec go i r = if r >= diameter then i else go (i + 1) (r *. 2.0) in
    go 1 beta
  in
  let pi = Rng.permutation rng n in
  let chain = Array.init n (fun v -> Array.make (levels + 1) v) in
  let cluster_id = Array.init n (fun v -> Array.make (levels + 1) v) in
  (* Top level: everything in one cluster centered at the first center in
     permutation order. *)
  let next_id = ref n in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let top_id = fresh () in
  for v = 0 to n - 1 do
    chain.(v).(levels) <- pi.(0);
    cluster_id.(v).(levels) <- top_id
  done;
  (* Refine level by level.  At level i the radius is beta·2^{i-1}; each
     vertex joins the first permutation center within that radius, and two
     vertices share a level-i cluster iff they share the level-(i+1)
     cluster and the same chosen center. *)
  for i = levels - 1 downto 1 do
    let radius = beta *. Float.pow 2.0 (float_of_int (i - 1)) in
    let ids = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      let center =
        let rec first j =
          if j >= n then v (* unreachable: v itself is within any radius *)
          else if normalized pi.(j) v <= radius then pi.(j)
          else first (j + 1)
        in
        first 0
      in
      chain.(v).(i) <- center;
      let key = (cluster_id.(v).(i + 1), center) in
      let id =
        match Hashtbl.find_opt ids key with
        | Some id -> id
        | None ->
            let id = fresh () in
            Hashtbl.add ids key id;
            id
      in
      cluster_id.(v).(i) <- id
    done
  done;
  (* Level 0 stays singleton: chain.(v).(0) = v, cluster_id.(v).(0) = v. *)
  let module Obs = Sso_obs.Obs in
  if Obs.tracing () then
    Obs.event "frt.build"
      ~attrs:
        [
          ("vertices", Sso_obs.Trace.Int n);
          ("levels", Sso_obs.Trace.Int levels);
          ("beta", Sso_obs.Trace.Float beta);
        ];
  {
    graph = g;
    levels;
    chain;
    cluster_id;
    sp_pred = Hashtbl.create 64;
    sp_lock = Mutex.create ();
    length = clamped;
  }

type parts = {
  p_levels : int;
  p_chain : int array array;
  p_cluster_id : int array array;
  p_lengths : float array;
}

let to_parts t =
  {
    p_levels = t.levels;
    p_chain = Array.map Array.copy t.chain;
    p_cluster_id = Array.map Array.copy t.cluster_id;
    p_lengths = Array.init (Graph.m t.graph) t.length;
  }

let of_parts g p =
  let n = Graph.n g and m = Graph.m g in
  if p.p_levels < 1 then invalid_arg "Frt.of_parts: levels must be >= 1";
  if Array.length p.p_lengths <> m then invalid_arg "Frt.of_parts: lengths size mismatch";
  Array.iter
    (fun l ->
      if not (l >= min_length) then invalid_arg "Frt.of_parts: length below clamp")
    p.p_lengths;
  let check_table name tbl =
    if Array.length tbl <> n then invalid_arg ("Frt.of_parts: " ^ name ^ " size mismatch");
    Array.iter
      (fun row ->
        if Array.length row <> p.p_levels + 1 then
          invalid_arg ("Frt.of_parts: " ^ name ^ " row size mismatch"))
      tbl
  in
  check_table "chain" p.p_chain;
  check_table "cluster_id" p.p_cluster_id;
  Array.iter
    (fun row -> Array.iter (fun c -> if c < 0 || c >= n then invalid_arg "Frt.of_parts: center out of range") row)
    p.p_chain;
  let lengths = Array.copy p.p_lengths in
  {
    graph = g;
    levels = p.p_levels;
    chain = Array.map Array.copy p.p_chain;
    cluster_id = Array.map Array.copy p.p_cluster_id;
    sp_pred = Hashtbl.create 64;
    sp_lock = Mutex.create ();
    length = (fun e -> lengths.(e));
  }

let levels t = t.levels

let cluster_center t v level =
  if level < 0 || level > t.levels then invalid_arg "Frt.cluster_center: bad level";
  t.chain.(v).(level)

let pred_tree t hub =
  Mutex.lock t.sp_lock;
  let cached = Hashtbl.find_opt t.sp_pred hub in
  Mutex.unlock t.sp_lock;
  match cached with
  | Some pred -> pred
  | None ->
      (* Dijkstra runs outside the lock; a racing duplicate computes the
         same tree, so the last write is harmless.  Only the cached pred
         row is allocated — scratch state lives in the domain workspace. *)
      let ws = Shortest.Workspace.for_current_domain () in
      Shortest.dijkstra_into ws t.graph ~weight:t.length hub;
      let pred =
        Array.init (Graph.n t.graph) (Shortest.Workspace.pred_edge ws)
      in
      Mutex.lock t.sp_lock;
      Hashtbl.replace t.sp_pred hub pred;
      Mutex.unlock t.sp_lock;
      pred

let hub_path t hub v =
  (* Path hub → v along the memoized shortest-path tree rooted at hub. *)
  if hub = v then Path.trivial v
  else begin
    let pred = pred_tree t hub in
    let rec collect u acc =
      if u = hub then acc
      else
        let e = pred.(u) in
        collect (Graph.other_end t.graph e u) (e :: acc)
    in
    Path.of_edges t.graph ~src:hub ~dst:v (Array.of_list (collect v []))
  end

(* Shortest path a → b, memoized through b's shortest-path tree (higher
   level centers repeat across pairs, so rooting at them shares work). *)
let center_to_center t a b = Path.reverse (hub_path t b a)

let route t s t_ =
  if s = t_ then Path.trivial s
  else begin
    (* Lowest level at which s and t share a cluster; vertices in a shared
       cluster also share its center, so the up- and down-chains meet. *)
    let rec meet i =
      if t.cluster_id.(s).(i) = t.cluster_id.(t_).(i) then i else meet (i + 1)
    in
    let j = meet 0 in
    let up = List.init j (fun i -> center_to_center t t.chain.(s).(i) t.chain.(s).(i + 1)) in
    let down =
      List.init j (fun i ->
          let lvl = j - i in
          center_to_center t t.chain.(t_).(lvl) t.chain.(t_).(lvl - 1))
    in
    let full =
      List.fold_left (fun acc p -> Path.concat t.graph acc p) (Path.trivial s) (up @ down)
    in
    Path.simplify t.graph full
  end
