module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest

let routing ?(stretch = 2) ?(paths_per_pair = 8) ~max_hops g =
  if max_hops <= 0 then invalid_arg "Hop_constrained.routing: max_hops must be positive";
  if stretch <= 0 then invalid_arg "Hop_constrained.routing: stretch must be positive";
  if paths_per_pair <= 0 then
    invalid_arg "Hop_constrained.routing: paths_per_pair must be positive";
  let budget = stretch * max_hops in
  let m = Graph.m g in
  let generate s t =
    (* Penalize edges already used by earlier extracted paths so the set is
       diverse; stop early when the penalties stop producing new paths. *)
    let penalty = Array.make m 1.0 in
    let weight e = penalty.(e) /. Graph.cap g e in
    let rec extract k acc =
      if k = 0 then acc
      else
        match Shortest.hop_limited_path g ~weight ~max_hops:budget s t with
        | None -> acc
        | Some p ->
            let fresh = not (List.exists (fun (_, q) -> Path.equal p q) acc) in
            Array.iter (fun e -> penalty.(e) <- penalty.(e) *. 4.0) p.Path.edges;
            extract (k - 1) (if fresh then (1.0, p) :: acc else acc)
    in
    let result = extract paths_per_pair [] in
    let module Obs = Sso_obs.Obs in
    if Obs.tracing () then
      Obs.event "hop.generate"
        ~attrs:
          [
            ("s", Sso_obs.Trace.Int s);
            ("t", Sso_obs.Trace.Int t);
            ("paths", Sso_obs.Trace.Int (List.length result));
            ("max_hops", Sso_obs.Trace.Int max_hops);
          ];
    result
  in
  Oblivious.make ~name:(Printf.sprintf "hop-%d" max_hops) g generate
