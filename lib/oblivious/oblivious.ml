module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Rng = Sso_prng.Rng

type t = {
  name : string;
  graph : Graph.t;
  generate : int -> int -> (float * Path.t) list;
  cache : (int * int, (float * Path.t) list) Hashtbl.t;
  (* Guards [cache] and serializes [generate]: distributions are queried
     from pool workers (sampling, congestion sweeps), and generators may
     memoize internally. *)
  lock : Mutex.t;
}

let make ~name graph generate =
  { name; graph; generate; cache = Hashtbl.create 256; lock = Mutex.create () }

let name r = r.name

let graph r = r.graph

let distribution r s t =
  if s = t then invalid_arg "Oblivious.distribution: s = t";
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) @@ fun () ->
  match Hashtbl.find_opt r.cache (s, t) with
  | Some dist -> dist
  | None ->
      let raw = r.generate s t in
      if raw = [] then
        invalid_arg
          (Printf.sprintf "Oblivious.distribution (%s): empty distribution for (%d,%d)"
             r.name s t);
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 raw in
      if not (total > 0.0) then
        invalid_arg "Oblivious.distribution: weights must have positive sum";
      List.iter
        (fun ((w, p) : float * Path.t) ->
          if w < 0.0 then invalid_arg "Oblivious.distribution: negative weight";
          if p.Path.src <> s || p.Path.dst <> t then
            invalid_arg "Oblivious.distribution: path endpoints do not match pair")
        raw;
      let dist =
        List.filter_map (fun (w, p) -> if w > 0.0 then Some (w /. total, p) else None) raw
      in
      Hashtbl.replace r.cache (s, t) dist;
      dist

let preload r entries =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) @@ fun () ->
  List.iter
    (fun ((s, t), dist) ->
      if s = t then invalid_arg "Oblivious.preload: s = t";
      if dist = [] then invalid_arg "Oblivious.preload: empty distribution";
      List.iter
        (fun ((w, p) : float * Path.t) ->
          if not (w > 0.0) then invalid_arg "Oblivious.preload: non-positive weight";
          if p.Path.src <> s || p.Path.dst <> t then
            invalid_arg "Oblivious.preload: path endpoints do not match pair")
        dist;
      Hashtbl.replace r.cache (s, t) dist)
    entries

let sample rng r s t =
  let dist = distribution r s t in
  let weights = Array.of_list (List.map fst dist) in
  let paths = Array.of_list (List.map snd dist) in
  paths.(Rng.discrete rng weights)

let to_routing r pairs =
  Routing.make
    (List.map (fun (s, t) -> ((s, t), distribution r s t)) (List.sort_uniq compare pairs))

let congestion r d =
  if Demand.support_size d = 0 then 0.0
  else Routing.congestion r.graph (to_routing r (Demand.support d)) d

let dilation r d =
  if Demand.support_size d = 0 then 0
  else Routing.dilation (to_routing r (Demand.support d)) d

let support_sparsity r pairs =
  List.fold_left (fun acc (s, t) -> max acc (List.length (distribution r s t))) 0 pairs
