let maximum ~left ~right adjf =
  (* Flatten the adjacency closures into CSR form once — the BFS/DFS
     phases then scan a flat int array in the original list order. *)
  let rows = Array.init left adjf in
  let off = Array.make (left + 1) 0 in
  for l = 0 to left - 1 do
    off.(l + 1) <- off.(l) + List.length rows.(l)
  done;
  let nbr = Array.make off.(left) (-1) in
  Array.iteri
    (fun l row -> List.iteri (fun i r -> nbr.(off.(l) + i) <- r) row)
    rows;
  let match_l = Array.make left (-1) in
  let match_r = Array.make right (-1) in
  let dist = Array.make left max_int in
  let bfs () =
    let queue = Queue.create () in
    let found = ref false in
    for l = 0 to left - 1 do
      if match_l.(l) < 0 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- max_int
    done;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      for i = off.(l) to off.(l + 1) - 1 do
        match match_r.(nbr.(i)) with
        | -1 -> found := true
        | l' ->
            if dist.(l') = max_int then begin
              dist.(l') <- dist.(l) + 1;
              Queue.add l' queue
            end
      done
    done;
    !found
  in
  let rec dfs l =
    let rec try_from i =
      if i >= off.(l + 1) then false
      else begin
        let r = nbr.(i) in
        let usable =
          match match_r.(r) with
          | -1 -> true
          | l' -> dist.(l') = dist.(l) + 1 && dfs l'
        in
        if usable then begin
          match_l.(l) <- r;
          match_r.(r) <- l;
          true
        end
        else try_from (i + 1)
      end
    in
    let ok = try_from off.(l) in
    if not ok then dist.(l) <- max_int;
    ok
  in
  let continue = ref true in
  while !continue do
    if bfs () then begin
      let advanced = ref false in
      for l = 0 to left - 1 do
        if match_l.(l) < 0 && dfs l then advanced := true
      done;
      if not !advanced then continue := false
    end
    else continue := false
  done;
  let pairs = ref [] in
  for l = left - 1 downto 0 do
    if match_l.(l) >= 0 then pairs := (l, match_l.(l)) :: !pairs
  done;
  Array.of_list !pairs
