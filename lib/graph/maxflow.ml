(* Dinic on a residual digraph.  Arcs are stored in flat arrays; arc [2k]
   and [2k+1] are the two directions of undirected edge [k] when built with
   [digraph_of], and in general [a lxor 1] is the reverse of arc [a].
   Outgoing arcs live in CSR form — vertex [v]'s arcs are
   [out_arc.(out_off.(v) .. out_off.(v+1) - 1)] — so level BFS and blocking
   DFS scan one flat int array instead of chasing per-vertex boxes. *)

type net = {
  nv : int;
  head : int array; (* arc -> head vertex *)
  residual : float array; (* arc -> remaining capacity *)
  out_off : int array; (* vertex -> first outgoing-arc slot *)
  out_arc : int array; (* packed outgoing arcs *)
  origin : int array; (* arc -> originating undirected edge id *)
}

let build g capf =
  let nv = Graph.n g in
  let m = Graph.m g in
  let head = Array.make (2 * m) 0 in
  let residual = Array.make (2 * m) 0.0 in
  let origin = Array.make (2 * m) 0 in
  let deg = Array.make nv 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      head.(2 * e.id) <- e.v;
      head.((2 * e.id) + 1) <- e.u;
      residual.(2 * e.id) <- capf e;
      residual.((2 * e.id) + 1) <- capf e;
      origin.(2 * e.id) <- e.id;
      origin.((2 * e.id) + 1) <- e.id;
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    (Graph.edges g);
  let out_off = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    out_off.(v + 1) <- out_off.(v) + deg.(v)
  done;
  let out_arc = Array.make (2 * m) 0 in
  let fill = Array.make nv 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      out_arc.(out_off.(e.u) + fill.(e.u)) <- 2 * e.id;
      fill.(e.u) <- fill.(e.u) + 1;
      out_arc.(out_off.(e.v) + fill.(e.v)) <- (2 * e.id) + 1;
      fill.(e.v) <- fill.(e.v) + 1)
    (Graph.edges g);
  { nv; head; residual; out_off; out_arc; origin }

let eps = 1e-9

module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

let dinic_phases = Obs.counter "dinic.phases"
let dinic_augmentations = Obs.counter "dinic.augmentations"

let bfs_levels net s t =
  let level = Array.make net.nv (-1) in
  level.(s) <- 0;
  let queue = Queue.create () in
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    for i = net.out_off.(v) to net.out_off.(v + 1) - 1 do
      let a = net.out_arc.(i) in
      let w = net.head.(a) in
      if net.residual.(a) > eps && level.(w) < 0 then begin
        level.(w) <- level.(v) + 1;
        Queue.add w queue
      end
    done
  done;
  if level.(t) < 0 then None else Some level

(* [iter.(v)] is an absolute cursor into [out_arc], starting at
   [out_off.(v)] — the standard current-arc optimization, now pointer-free. *)
let rec dfs_push net level iter t v limit =
  if v = t then limit
  else begin
    let pushed = ref 0.0 in
    let stop = net.out_off.(v + 1) in
    while iter.(v) < stop && limit -. !pushed > eps do
      let a = net.out_arc.(iter.(v)) in
      let w = net.head.(a) in
      if net.residual.(a) > eps && level.(w) = level.(v) + 1 then begin
        let amount =
          dfs_push net level iter t w (min (limit -. !pushed) net.residual.(a))
        in
        if amount > eps then begin
          net.residual.(a) <- net.residual.(a) -. amount;
          net.residual.(a lxor 1) <- net.residual.(a lxor 1) +. amount;
          pushed := !pushed +. amount
        end
        else iter.(v) <- iter.(v) + 1
      end
      else iter.(v) <- iter.(v) + 1
    done;
    !pushed
  end

let run net s t =
  let total = ref 0.0 in
  let continue = ref true in
  while !continue do
    match bfs_levels net s t with
    | None -> continue := false
    | Some level ->
        Obs.incr dinic_phases;
        let iter = Array.sub net.out_off 0 net.nv in
        let phase_augs = ref 0 in
        let pushed = ref (dfs_push net level iter t s infinity) in
        while !pushed > eps do
          Obs.incr dinic_augmentations;
          phase_augs := !phase_augs + 1;
          total := !total +. !pushed;
          pushed := dfs_push net level iter t s infinity
        done;
        if Obs.tracing () then
          Obs.event "dinic.phase"
            ~attrs:
              [
                ("augmentations", Trace.Int !phase_augs);
                ("flow", Trace.Float !total);
              ]
  done;
  !total

let max_flow g s t =
  if s = t then 0.0
  else
    let net = build g (fun e -> e.Graph.cap) in
    run net s t

let cut g s t =
  if s = t then 0
  else
    let net = build g (fun _ -> 1.0) in
    let value = run net s t in
    int_of_float (Float.round value)

let min_cut_edges g s t =
  if s = t then []
  else begin
    let net = build g (fun _ -> 1.0) in
    let _ = run net s t in
    (* Source side = vertices reachable in the residual graph. *)
    let reach = Array.make net.nv false in
    reach.(s) <- true;
    let queue = Queue.create () in
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      for i = net.out_off.(v) to net.out_off.(v + 1) - 1 do
        let a = net.out_arc.(i) in
        let w = net.head.(a) in
        if net.residual.(a) > eps && not reach.(w) then begin
          reach.(w) <- true;
          Queue.add w queue
        end
      done
    done;
    Graph.fold_edges
      (fun id u v _ acc -> if reach.(u) <> reach.(v) then id :: acc else acc)
      g []
  end
