(* Dinic on a residual digraph.  Arcs are stored in flat arrays; arc [2k]
   and [2k+1] are the two directions of undirected edge [k] when built with
   [digraph_of], and in general [a lxor 1] is the reverse of arc [a]. *)

type net = {
  nv : int;
  head : int array; (* arc -> head vertex *)
  residual : float array; (* arc -> remaining capacity *)
  out : int array array; (* vertex -> arcs leaving it *)
  origin : int array; (* arc -> originating undirected edge id *)
}

let build g capf =
  let m = Graph.m g in
  let head = Array.make (2 * m) 0 in
  let residual = Array.make (2 * m) 0.0 in
  let origin = Array.make (2 * m) 0 in
  let deg = Array.make (Graph.n g) 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      head.(2 * e.id) <- e.v;
      head.((2 * e.id) + 1) <- e.u;
      residual.(2 * e.id) <- capf e;
      residual.((2 * e.id) + 1) <- capf e;
      origin.(2 * e.id) <- e.id;
      origin.((2 * e.id) + 1) <- e.id;
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    (Graph.edges g);
  let out = Array.init (Graph.n g) (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make (Graph.n g) 0 in
  Array.iter
    (fun (e : Graph.edge) ->
      out.(e.u).(fill.(e.u)) <- 2 * e.id;
      fill.(e.u) <- fill.(e.u) + 1;
      out.(e.v).(fill.(e.v)) <- (2 * e.id) + 1;
      fill.(e.v) <- fill.(e.v) + 1)
    (Graph.edges g);
  { nv = Graph.n g; head; residual; out; origin }

let eps = 1e-9

let dinic_phases = Sso_engine.Metrics.counter "dinic.phases"
let dinic_augmentations = Sso_engine.Metrics.counter "dinic.augmentations"

let bfs_levels net s t =
  let level = Array.make net.nv (-1) in
  level.(s) <- 0;
  let queue = Queue.create () in
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun a ->
        let w = net.head.(a) in
        if net.residual.(a) > eps && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w queue
        end)
      net.out.(v)
  done;
  if level.(t) < 0 then None else Some level

let rec dfs_push net level iter t v limit =
  if v = t then limit
  else begin
    let pushed = ref 0.0 in
    let arcs = net.out.(v) in
    let narcs = Array.length arcs in
    while iter.(v) < narcs && limit -. !pushed > eps do
      let a = arcs.(iter.(v)) in
      let w = net.head.(a) in
      if net.residual.(a) > eps && level.(w) = level.(v) + 1 then begin
        let amount =
          dfs_push net level iter t w (min (limit -. !pushed) net.residual.(a))
        in
        if amount > eps then begin
          net.residual.(a) <- net.residual.(a) -. amount;
          net.residual.(a lxor 1) <- net.residual.(a lxor 1) +. amount;
          pushed := !pushed +. amount
        end
        else iter.(v) <- iter.(v) + 1
      end
      else iter.(v) <- iter.(v) + 1
    done;
    !pushed
  end

let run net s t =
  let total = ref 0.0 in
  let continue = ref true in
  while !continue do
    match bfs_levels net s t with
    | None -> continue := false
    | Some level ->
        Sso_engine.Metrics.incr dinic_phases;
        let iter = Array.make net.nv 0 in
        let pushed = ref (dfs_push net level iter t s infinity) in
        while !pushed > eps do
          Sso_engine.Metrics.incr dinic_augmentations;
          total := !total +. !pushed;
          pushed := dfs_push net level iter t s infinity
        done
  done;
  !total

let max_flow g s t =
  if s = t then 0.0
  else
    let net = build g (fun e -> e.Graph.cap) in
    run net s t

let cut g s t =
  if s = t then 0
  else
    let net = build g (fun _ -> 1.0) in
    let value = run net s t in
    int_of_float (Float.round value)

let min_cut_edges g s t =
  if s = t then []
  else begin
    let net = build g (fun _ -> 1.0) in
    let _ = run net s t in
    (* Source side = vertices reachable in the residual graph. *)
    let reach = Array.make net.nv false in
    reach.(s) <- true;
    let queue = Queue.create () in
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun a ->
          let w = net.head.(a) in
          if net.residual.(a) > eps && not reach.(w) then begin
            reach.(w) <- true;
            Queue.add w queue
          end)
        net.out.(v)
    done;
    Graph.fold_edges
      (fun id u v _ acc -> if reach.(u) <> reach.(v) then id :: acc else acc)
      g []
  end
