(* Iterative Tarjan low-link.  We track the edge id used to enter each
   vertex so that one parallel edge does not shield itself, while other
   parallel copies (different ids) correctly cancel bridgeness. *)

let find g =
  let n = Graph.n g in
  let off = Graph.csr_offsets g
  and eids = Graph.csr_edge_ids g
  and dsts = Graph.csr_targets g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let bridges = ref [] in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      (* Stack frames: (vertex, entering edge id, next CSR slot). *)
      let stack = ref [ (root, -1, ref off.(root)) ] in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, enter_edge, next) :: rest ->
            if !next < off.(v + 1) then begin
              let e = eids.(!next) and w = dsts.(!next) in
              incr next;
              if e <> enter_edge then begin
                if disc.(w) < 0 then begin
                  disc.(w) <- !timer;
                  low.(w) <- !timer;
                  incr timer;
                  stack := (w, e, ref off.(w)) :: !stack
                end
                else low.(v) <- min low.(v) disc.(w)
              end
            end
            else begin
              (* Retire v; propagate low-link to its parent. *)
              stack := rest;
              match rest with
              | (parent, _, _) :: _ when enter_edge >= 0 ->
                  low.(parent) <- min low.(parent) low.(v);
                  if low.(v) > disc.(parent) then bridges := enter_edge :: !bridges
              | _ -> ()
            end
      done
    end
  done;
  List.sort compare !bridges

let is_bridge g e = List.mem e (find g)

let count g = List.length (find g)
