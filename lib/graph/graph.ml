type edge = { id : int; u : int; v : int; cap : float }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) array array;
  (* Flat CSR mirror of [adj], in the same per-vertex order: the incidence
     list of vertex [v] is positions [csr_off.(v) .. csr_off.(v+1) - 1] of
     the packed arrays.  Hot traversals (Dijkstra, BFS, bridges) iterate
     these instead of the boxed-tuple rows. *)
  csr_off : int array;
  csr_edge : int array;
  csr_dst : int array;
}

module Builder = struct
  type graph = t

  type t = { bn : int; mutable rev_edges : edge list; mutable count : int }

  let create n =
    if n <= 0 then invalid_arg "Graph.Builder.create: need at least one vertex";
    { bn = n; rev_edges = []; count = 0 }

  let add_edge ?(cap = 1.0) b u v =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    if not (cap > 0.0) then invalid_arg "Graph.Builder.add_edge: capacity must be positive";
    let id = b.count in
    let u, v = if u <= v then (u, v) else (v, u) in
    b.rev_edges <- { id; u; v; cap } :: b.rev_edges;
    b.count <- id + 1;
    id

  let build b : graph =
    let edges = Array.of_list (List.rev b.rev_edges) in
    let m = Array.length edges in
    let deg = Array.make b.bn 0 in
    Array.iter
      (fun e ->
        deg.(e.u) <- deg.(e.u) + 1;
        deg.(e.v) <- deg.(e.v) + 1)
      edges;
    let csr_off = Array.make (b.bn + 1) 0 in
    for v = 0 to b.bn - 1 do
      csr_off.(v + 1) <- csr_off.(v) + deg.(v)
    done;
    let csr_edge = Array.make (2 * m) (-1) in
    let csr_dst = Array.make (2 * m) (-1) in
    let adj = Array.init b.bn (fun v -> Array.make deg.(v) (-1, -1)) in
    let fill = Array.make b.bn 0 in
    let place w e other =
      let slot = fill.(w) in
      adj.(w).(slot) <- (e.id, other);
      csr_edge.(csr_off.(w) + slot) <- e.id;
      csr_dst.(csr_off.(w) + slot) <- other;
      fill.(w) <- slot + 1
    in
    Array.iter
      (fun e ->
        place e.u e e.v;
        place e.v e e.u)
      edges;
    { n = b.bn; edges; adj; csr_off; csr_edge; csr_dst }
end

let n g = g.n

let m g = Array.length g.edges

let edge g id =
  if id < 0 || id >= Array.length g.edges then invalid_arg "Graph.edge: id out of range";
  g.edges.(id)

let edges g = g.edges

let cap g id = (edge g id).cap

let endpoints g id =
  let e = edge g id in
  (e.u, e.v)

let other_end g id v =
  let e = edge g id in
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg "Graph.other_end: vertex is not an endpoint"

let adj g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.adj: vertex out of range";
  g.adj.(v)

let csr_offsets g = g.csr_off

let csr_edge_ids g = g.csr_edge

let csr_targets g = g.csr_dst

let iter_adj g v f =
  if v < 0 || v >= g.n then invalid_arg "Graph.iter_adj: vertex out of range";
  let lo = g.csr_off.(v) and hi = g.csr_off.(v + 1) in
  for i = lo to hi - 1 do
    f g.csr_edge.(i) g.csr_dst.(i)
  done

let degree g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.degree: vertex out of range";
  g.csr_off.(v + 1) - g.csr_off.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let is_connected g =
  let seen = Array.make g.n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    for i = g.csr_off.(v) to g.csr_off.(v + 1) - 1 do
      let w = g.csr_dst.(i) in
      if not seen.(w) then begin
        seen.(w) <- true;
        incr count;
        Queue.add w queue
      end
    done
  done;
  !count = g.n

let fold_edges f g init =
  Array.fold_left (fun acc e -> f e.id e.u e.v e.cap acc) init g.edges

let total_capacity g = Array.fold_left (fun acc e -> acc +. e.cap) 0.0 g.edges
