(** Shared arena storage for path collections ([Path_arena]).

    A [Path.t] boxes one heap-allocated [int array] per path; a path system
    on a 10^5-node graph stores millions of them.  The arena packs the same
    information into one shared byte buffer plus two parallel int arrays,
    giving O(1) slice handles and iteration kernels that never materialize a
    per-path array.

    {2 Layout}

    Paths are appended; path [i] is identified by its index (a {e slice}
    handle, just an [int]).  Three parallel stores:

    - [data : Bytes.t] — the hop sequences of all paths, back to back.  A
      hop is stored as the {e CSR slot} of its edge: the position of the
      edge inside the current vertex's adjacency row ({!Graph.csr_offsets}
      order).  Slots are LEB128 varints, so a hop costs one byte on any
      graph with degree < 128 (8× smaller than a word-sized edge id).
      Decoding hop [j] of a path at vertex [v] reads slot [c] and resolves
      [e = csr_edge_ids.(csr_offsets.(v) + c)],
      [v' = csr_targets.(csr_offsets.(v) + c)] — which is why an arena is
      bound to its graph.
    - [meta : int array] — per path, [(byte_offset lsl 21) lor hops]
      (hops < 2^21, offsets < 2^42).  Byte regions of consecutive slices
      are contiguous: path [i] ends where path [i+1] begins.
    - [ends : int array] — per path, [src * n + dst] packed in one word.

    Appends are O(total row scan); every append validates that the edges
    form a walk from [src] to [dst] (the slot lookup {e is} the incidence
    check).  All reads are lock-free; appending is not thread-safe — pool
    workers fill private arenas that the caller {!append_all}s in task
    order, which keeps the merged layout independent of the job count. *)

type t

val create : ?capacity:int -> Graph.t -> t
(** Fresh empty arena over [g].  [capacity] pre-sizes the path tables. *)

val graph : t -> Graph.t
(** The graph the slot encoding resolves against. *)

val length : t -> int
(** Number of paths stored; valid slice handles are [0 .. length - 1]. *)

val memory_bytes : t -> int
(** Live bytes of path storage: packed hop bytes plus the two per-path
    metadata words.  This is the figure [BENCH_scale.json] reports as
    bytes/pair (divided by the pair count). *)

(** {1 Appending} *)

val append_walk : t -> src:int -> dst:int -> int array -> int
(** Validate [edge_ids] as a walk [src → dst] and append it; returns the
    new slice handle.  @raise Invalid_argument if an edge is not incident
    to the walk's current vertex, the walk does not end at [dst], an
    endpoint is out of range, or the path exceeds the 2^21-hop limit. *)

val append_path : t -> Path.t -> int
(** {!append_walk} on a path's fields. *)

val append_slice : t -> t -> int -> int
(** [append_slice dst src i] copies slice [i] of [src] (byte blit; both
    arenas must be over the same graph — physical equality).
    @raise Invalid_argument on a graph mismatch or bad handle. *)

val append_all : t -> t -> int
(** [append_all dst src] appends every path of [src] in slice order and
    returns the handle the first one received.  Used to merge per-worker
    builder arenas deterministically. *)

(** {1 O(1) slice accessors} *)

val hops : t -> int -> int
val src : t -> int -> int
val dst : t -> int -> int

(** {1 Iteration kernels}

    All kernels decode the packed hops in place; none allocates a per-path
    array.  Handles are not range-checked beyond array bounds. *)

val iter_edges_vertices : t -> int -> (int -> int -> unit) -> unit
(** [iter_edges_vertices a i f] calls [f e v'] for each hop: edge id [e]
    entering vertex [v'].  The source vertex is [src a i]. *)

val iter : t -> int -> (int -> unit) -> unit
(** Edge ids in path order. *)

val fold : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Left fold over edge ids. *)

val weight : t -> (int -> float) -> int -> float
(** Sum of a per-edge weight over the slice, accumulated in path order
    (same float operation order as {!Path.weight}). *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge a i e] — does slice [i] cross edge [e]? *)

val for_all : t -> int -> (int -> bool) -> bool
val exists : t -> int -> (int -> bool) -> bool

val compare_within_pair : t -> int -> int -> int
(** Compare two slices of the {e same} arena by their edge sequences with
    {!Path.compare} semantics for equal endpoints: shorter path first, then
    lexicographic on edge ids.  Used to impose the canonical candidate
    order without materializing paths. *)

(** {1 Materialization} *)

val edges : t -> int -> int array
(** The edge-id sequence as a fresh array. *)

val suffix_edges : t -> int -> from_hop:int -> int array
(** Edges from hop [from_hop] (0-based) to the end — the remaining route of
    a packet that has already crossed [from_hop] hops. *)

val vertices : t -> int -> int array
(** Vertex sequence [src .. dst], length [hops + 1]. *)

val to_path : t -> int -> Path.t
(** Rebuild the boxed representation (trusted; the walk was validated on
    append). *)

val unpack : t -> int array -> int array * int array
(** [unpack a ids] flattens the given slices into [(off, flat)] where the
    edge ids of [ids.(i)] occupy [flat.(off.(i)) .. flat.(off.(i+1) - 1)].
    Solvers unpack a candidate set once per solve and walk the flat arrays
    every round. *)

val unpack_with_vertices : t -> int array -> int array * int array * int array
(** [(off, flat_edges, flat_verts)]: as {!unpack}, with the vertex sequence
    of [ids.(i)] (length [hops + 1]) at [flat_verts.(off.(i) + i) ..]. *)

(** {1 Raw encoding access (codec)} *)

val byte_range : t -> int -> int * int
(** [(start, stop)] of the slice's packed-slot bytes inside the data
    buffer ([stop - start] bytes, exclusive stop). *)

val write_encoding : t -> int -> Buffer.t -> unit
(** Append the slice's packed-slot bytes to a buffer verbatim. *)

val append_encoded :
  t -> src:int -> dst:int -> hops:int -> Bytes.t -> pos:int -> int * int
(** [append_encoded a ~src ~dst ~hops buf ~pos] validates [hops] packed
    slots starting at [pos] — canonical varints, every slot inside its
    vertex's adjacency row, walk ending at [dst] — appends the path, and
    returns [(handle, bytes_consumed)].
    @raise Invalid_argument on any malformed byte (codecs wrap this into
    their [Corrupt] error). *)
