let bfs_dist g src =
  let off = Graph.csr_offsets g and dsts = Graph.csr_targets g in
  let dist = Array.make (Graph.n g) max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    for i = off.(v) to off.(v + 1) - 1 do
      let w = dsts.(i) in
      if dist.(w) = max_int then begin
        dist.(w) <- dist.(v) + 1;
        Queue.add w queue
      end
    done
  done;
  dist

let bfs_path g src dst =
  if src = dst then Some (Path.trivial src)
  else begin
    let off = Graph.csr_offsets g
    and eids = Graph.csr_edge_ids g
    and dsts = Graph.csr_targets g in
    let pred = Array.make (Graph.n g) (-1) in
    let seen = Array.make (Graph.n g) false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      for i = off.(v) to off.(v + 1) - 1 do
        let w = dsts.(i) in
        if not seen.(w) then begin
          seen.(w) <- true;
          pred.(w) <- eids.(i);
          if w = dst then found := true;
          Queue.add w queue
        end
      done
    done;
    if not !found then None
    else begin
      let rec collect v acc =
        if v = src then acc
        else
          let e = pred.(v) in
          collect (Graph.other_end g e v) (e :: acc)
      in
      let edge_ids = Array.of_list (collect dst []) in
      Some (Path.of_edges g ~src ~dst edge_ids)
    end
  end

(* ---------- Reusable Dijkstra workspace ---------- *)

module Workspace = struct
  (* Epoch-stamped state: [dist]/[pred] at [v] are valid only when
     [stamp.(v) = epoch], and [v] is settled only when
     [settled.(v) = epoch], so starting a new run is a single increment —
     no O(n) clearing, no per-call allocation.  The arrays grow to the
     largest graph seen and are reused across graphs (stale stamps from a
     previous graph can never equal a fresh epoch). *)
  type t = {
    mutable dist : float array;
    mutable pred : int array;
    mutable stamp : int array;
    mutable settled : int array;
    mutable wbuf : float array; (* validated per-call edge weights *)
    mutable epoch : int;
    mutable src : int; (* source of the last run *)
    heap : Heap.Int.t;
  }

  let create () =
    {
      dist = [||];
      pred = [||];
      stamp = [||];
      settled = [||];
      wbuf = [||];
      epoch = 0;
      src = -1;
      heap = Heap.Int.create ();
    }

  let ensure ws n =
    if Array.length ws.dist < n then begin
      ws.dist <- Array.make n infinity;
      ws.pred <- Array.make n (-1);
      ws.stamp <- Array.make n (-1);
      ws.settled <- Array.make n (-1)
    end

  let ensure_weights ws m =
    if Array.length ws.wbuf < m then ws.wbuf <- Array.make m 0.0

  let dist ws v = if ws.stamp.(v) = ws.epoch then ws.dist.(v) else infinity

  let pred_edge ws v = if ws.stamp.(v) = ws.epoch then ws.pred.(v) else -1

  let path ws g dst =
    let src = ws.src in
    if src < 0 then invalid_arg "Shortest.Workspace.path: no completed run";
    if src = dst then Some (Path.trivial src)
    else if pred_edge ws dst < 0 then None
    else begin
      let rec collect v acc =
        if v = src then acc
        else
          let e = pred_edge ws v in
          collect (Graph.other_end g e v) (e :: acc)
      in
      let edge_ids = Array.of_list (collect dst []) in
      Some (Path.of_edges g ~src ~dst edge_ids)
    end

  (* One workspace per domain, created lazily: pool workers (and the
     submitting domain) each reuse their own across oracle calls, so MWU
     rounds allocate nothing proportional to n or m.  Safe because a
     domain runs one shortest-path computation at a time (nested
     parallel_* calls are serial) and results never depend on which
     workspace served them. *)
  let domain_key = Domain.DLS.new_key create

  let for_current_domain () = Domain.DLS.get domain_key
end

(* Validate the weight function once per edge per call (not once per edge
   visit) while snapshotting it into the workspace buffer; the traversal
   then reads a flat float array. *)
let fill_weights ws g ~weight ~context =
  let m = Graph.m g in
  Workspace.ensure_weights ws m;
  let wbuf = ws.Workspace.wbuf in
  for e = 0 to m - 1 do
    let we = weight e in
    if we < 0.0 then invalid_arg (context ^ ": negative edge weight");
    wbuf.(e) <- we
  done;
  wbuf

(* Core Dijkstra over the CSR arrays.  Bit-compatible with the historical
   implementation: same neighbor order (CSR mirrors [adj]), same heap sift
   logic, same relaxation condition, so [dist]/[pred] — and every path
   reconstructed from them — are identical. *)
let run_dijkstra ws g wbuf src =
  let n = Graph.n g in
  let off = Graph.csr_offsets g
  and eids = Graph.csr_edge_ids g
  and dsts = Graph.csr_targets g in
  Workspace.ensure ws n;
  ws.Workspace.epoch <- ws.Workspace.epoch + 1;
  ws.Workspace.src <- src;
  let ep = ws.Workspace.epoch in
  let dist = ws.Workspace.dist
  and pred = ws.Workspace.pred
  and stamp = ws.Workspace.stamp
  and settled = ws.Workspace.settled
  and heap = ws.Workspace.heap in
  Heap.Int.clear heap;
  dist.(src) <- 0.0;
  pred.(src) <- -1;
  stamp.(src) <- ep;
  Heap.Int.push heap 0.0 src;
  while not (Heap.Int.is_empty heap) do
    let d = Heap.Int.min_key heap and v = Heap.Int.min_value heap in
    Heap.Int.remove_min heap;
    if settled.(v) <> ep then begin
      settled.(v) <- ep;
      for i = off.(v) to off.(v + 1) - 1 do
        let w = dsts.(i) in
        if settled.(w) <> ep then begin
          let nd = d +. wbuf.(eids.(i)) in
          let cur = if stamp.(w) = ep then dist.(w) else infinity in
          if nd < cur then begin
            dist.(w) <- nd;
            pred.(w) <- eids.(i);
            stamp.(w) <- ep;
            Heap.Int.push heap nd w
          end
        end
      done
    end
  done

(* ---------- Truncated / multi-source Dijkstra (ball growing) ---------- *)

(* Grow the ball of radius [radius] around [sources]: settle exactly the
   vertices whose multi-source distance is <= radius, calling [visit v d]
   at settle time (so in non-decreasing distance order).  Work is
   proportional to the ball and its frontier, never to the graph: pushes
   whose tentative distance exceeds the radius are pruned, so a unit-radius
   ball on a million-node graph costs one vertex's neighborhood scan.

   Distances agree bit-for-bit with an untruncated run: a pruned candidate
   has tentative distance > radius, and every vertex of the ball reaches
   its final distance through relaxations whose tentative distances are all
   <= its own (prefix distances along a shortest path are non-decreasing
   under non-negative weights), none of which are pruned.

   [weights] is a flat per-edge array so repeated calls (one per ball) skip
   the O(m) per-call validation sweep of [fill_weights]; edges are
   validated as they are first relaxed instead.

   [prune w nd] (checked at relaxation time, before pushing) discards the
   candidate as if it lay outside the radius; sources are exempt.  The FRT
   construction prunes candidates no closer than an earlier-permutation
   center's recorded distance — discarding them at the push keeps even the
   one-edge boundary of the surviving region out of the heap, which is
   what turns a level's ball-growing pass from |balls| Dijkstras into
   near-linear total work. *)
let no_prune _ _ = false

let dijkstra_ball_into ws g ~weights ~radius ?(prune = no_prune) ~sources visit
    =
  let n = Graph.n g in
  if Array.length weights < Graph.m g then
    invalid_arg "Shortest.dijkstra_ball: weights shorter than edge count";
  let off = Graph.csr_offsets g
  and eids = Graph.csr_edge_ids g
  and dsts = Graph.csr_targets g in
  Workspace.ensure ws n;
  ws.Workspace.epoch <- ws.Workspace.epoch + 1;
  ws.Workspace.src <- (if Array.length sources > 0 then sources.(0) else -1);
  let ep = ws.Workspace.epoch in
  let dist = ws.Workspace.dist
  and pred = ws.Workspace.pred
  and stamp = ws.Workspace.stamp
  and settled = ws.Workspace.settled
  and heap = ws.Workspace.heap in
  Heap.Int.clear heap;
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Shortest.dijkstra_ball: source out of range";
      if stamp.(s) <> ep then begin
        dist.(s) <- 0.0;
        pred.(s) <- -1;
        stamp.(s) <- ep;
        Heap.Int.push heap 0.0 s
      end)
    sources;
  (* radius < 0 (or NaN) admits nothing, not even the sources. *)
  if 0.0 <= radius then
    while not (Heap.Int.is_empty heap) do
      let d = Heap.Int.min_key heap and v = Heap.Int.min_value heap in
      Heap.Int.remove_min heap;
      if settled.(v) <> ep then begin
        settled.(v) <- ep;
        visit v d;
        for i = off.(v) to off.(v + 1) - 1 do
          let w = dsts.(i) in
          if settled.(w) <> ep then begin
            let we = weights.(eids.(i)) in
            if we < 0.0 then
              invalid_arg "Shortest.dijkstra_ball: negative edge weight";
            let nd = d +. we in
            if nd <= radius && not (prune w nd) then begin
              let cur = if stamp.(w) = ep then dist.(w) else infinity in
              if nd < cur then begin
                dist.(w) <- nd;
                pred.(w) <- eids.(i);
                stamp.(w) <- ep;
                Heap.Int.push heap nd w
              end
            end
          end
        done
      end
    done

let dijkstra_into ws g ~weight src =
  let wbuf = fill_weights ws g ~weight ~context:"Shortest.dijkstra" in
  run_dijkstra ws g wbuf src

let dijkstra g ~weight src =
  let ws = Workspace.for_current_domain () in
  dijkstra_into ws g ~weight src;
  let n = Graph.n g in
  (Array.init n (Workspace.dist ws), Array.init n (Workspace.pred_edge ws))

let dijkstra_path g ~weight src dst =
  let ws = Workspace.for_current_domain () in
  dijkstra_into ws g ~weight src;
  Workspace.path ws g dst

let dijkstra_paths ?workspace g ~weight src targets =
  let ws =
    match workspace with Some ws -> ws | None -> Workspace.for_current_domain ()
  in
  dijkstra_into ws g ~weight src;
  Array.map (fun dst -> Workspace.path ws g dst) targets

(* ---------- Hop-limited (Bellman–Ford over hop counts) ---------- *)

(* dist.(k).(v) = min weight of a walk src→v with at most k hops.  The
   per-level predecessor edge makes reconstruction hop-bounded even in
   the presence of zero-weight edges (a flat pred array could cycle). *)
let hop_limited_run g ~weight ~max_hops src =
  let n = Graph.n g in
  let m = Graph.m g in
  let wbuf = Array.make m 0.0 in
  for e = 0 to m - 1 do
    let we = weight e in
    if we < 0.0 then invalid_arg "Shortest.hop_limited_path: negative edge weight";
    wbuf.(e) <- we
  done;
  let dist = Array.make_matrix (max_hops + 1) n infinity in
  let pred = Array.make_matrix (max_hops + 1) n (-1) in
  dist.(0).(src) <- 0.0;
  let graph_edges = Graph.edges g in
  for k = 1 to max_hops do
    let dk = dist.(k) and dk1 = dist.(k - 1) and pk = pred.(k) in
    Array.blit dk1 0 dk 0 n;
    Array.iter
      (fun (e : Graph.edge) ->
        let we = wbuf.(e.id) in
        if dk1.(e.u) +. we < dk.(e.v) then begin
          dk.(e.v) <- dk1.(e.u) +. we;
          pk.(e.v) <- e.id
        end;
        if dk1.(e.v) +. we < dk.(e.u) then begin
          dk.(e.u) <- dk1.(e.v) +. we;
          pk.(e.u) <- e.id
        end)
      graph_edges
  done;
  (dist, pred)

let hop_limited_extract g ~max_hops src (dist, pred) dst =
  if dist.(max_hops).(dst) = infinity then None
  else begin
    (* Walk levels downward: a [-1] predecessor means the value was
       carried over from the previous level. *)
    let rec collect v k acc =
      if v = src && dist.(k).(v) = 0.0 && pred.(k).(v) = -1 then acc
      else if pred.(k).(v) = -1 then collect v (k - 1) acc
      else
        let e = pred.(k).(v) in
        collect (Graph.other_end g e v) (k - 1) (e :: acc)
    in
    let edge_ids = Array.of_list (collect dst max_hops []) in
    let walk = Path.of_edges g ~src ~dst edge_ids in
    Some (Path.simplify g walk)
  end

let hop_limited_path g ~weight ~max_hops src dst =
  if src = dst then Some (Path.trivial src)
  else if max_hops <= 0 then None
  else
    let tables = hop_limited_run g ~weight ~max_hops src in
    hop_limited_extract g ~max_hops src tables dst

let hop_limited_paths g ~weight ~max_hops src targets =
  if max_hops <= 0 then
    Array.map
      (fun dst -> if src = dst then Some (Path.trivial src) else None)
      targets
  else begin
    let tables = lazy (hop_limited_run g ~weight ~max_hops src) in
    Array.map
      (fun dst ->
        if src = dst then Some (Path.trivial src)
        else hop_limited_extract g ~max_hops src (Lazy.force tables) dst)
      targets
  end

let eccentricity g v =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0 (bfs_dist g v)

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = eccentricity g v in
    if e > !best then best := e
  done;
  !best

let all_pairs_hops g = Array.init (Graph.n g) (fun s -> bfs_dist g s)
