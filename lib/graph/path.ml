type t = { src : int; dst : int; edges : int array }

let trivial v = { src = v; dst = v; edges = [||] }

let of_edges g ~src ~dst edge_ids =
  let cur = ref src in
  Array.iter
    (fun e ->
      let u, v = Graph.endpoints g e in
      if u = !cur then cur := v
      else if v = !cur then cur := u
      else invalid_arg "Path.of_edges: edges do not form a walk")
    edge_ids;
  if !cur <> dst then invalid_arg "Path.of_edges: walk does not end at dst";
  { src; dst; edges = edge_ids }

let min_edge_between g u v =
  let best = ref (-1) in
  Array.iter
    (fun (e, w) -> if w = v && (!best < 0 || e < !best) then best := e)
    (Graph.adj g u);
  if !best < 0 then invalid_arg "Path.of_vertices: missing edge between consecutive vertices";
  !best

let of_vertices g = function
  | [] -> invalid_arg "Path.of_vertices: empty vertex list"
  | [ v ] -> trivial v
  | first :: _ as vs ->
      let rec collect acc = function
        | u :: (v :: _ as rest) -> collect (min_edge_between g u v :: acc) rest
        | [ last ] -> (last, List.rev acc)
        | [] -> assert false
      in
      let last, edge_list = collect [] vs in
      { src = first; dst = last; edges = Array.of_list edge_list }

let hops p = Array.length p.edges

let vertices g p =
  let out = Array.make (hops p + 1) p.src in
  let cur = ref p.src in
  Array.iteri
    (fun i e ->
      cur := Graph.other_end g e !cur;
      out.(i + 1) <- !cur)
    p.edges;
  out

let mem_edge p id = Array.exists (fun e -> e = id) p.edges

let is_simple g p =
  let vs = vertices g p in
  let seen = Hashtbl.create (Array.length vs) in
  Array.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vs

let simplify g p =
  (* Walk the path, and when a vertex repeats drop the loop between the two
     occurrences.  A single left-to-right pass with a last-seen index table
     suffices because excising a loop never creates an earlier repeat. *)
  let vs = vertices g p in
  let len = Array.length vs in
  let keep_edges = ref [] in
  let last_seen = Hashtbl.create len in
  (* [keep_edges] holds (vertex-index, edge) pairs of the retained prefix in
     reverse; on a repeat of vertex v we pop edges back to v's occurrence. *)
  Hashtbl.add last_seen vs.(0) 0;
  let depth = ref 0 in
  for i = 1 to len - 1 do
    let v = vs.(i) in
    (match Hashtbl.find_opt last_seen v with
    | Some d ->
        (* Pop retained edges until depth d, removing vertices from the
           table as they leave the retained prefix. *)
        while !depth > d do
          match !keep_edges with
          | (u, _) :: rest ->
              Hashtbl.remove last_seen u;
              keep_edges := rest;
              decr depth
          | [] -> assert false
        done
    | None ->
        keep_edges := (v, p.edges.(i - 1)) :: !keep_edges;
        incr depth;
        Hashtbl.replace last_seen v !depth)
  done;
  let edge_list = List.rev_map snd !keep_edges in
  { src = p.src; dst = p.dst; edges = Array.of_list edge_list }

let concat g p q =
  if p.dst <> q.src then invalid_arg "Path.concat: endpoints do not meet";
  simplify g { src = p.src; dst = q.dst; edges = Array.append p.edges q.edges }

let reverse p =
  let n = Array.length p.edges in
  { src = p.dst; dst = p.src; edges = Array.init n (fun i -> p.edges.(n - 1 - i)) }

let unsafe_of_edges ~src ~dst edges = { src; dst; edges }

(* Edge sequences are ordered like the polymorphic compare on int arrays
   this replaces: shorter array first, then lexicographic elementwise. *)
let compare_edge_arrays a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        match Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) with
        | 0 -> go (i + 1)
        | c -> c
    in
    go 0
  end

let equal p q =
  p.src = q.src && p.dst = q.dst && compare_edge_arrays p.edges q.edges = 0

let compare p q =
  match Int.compare p.src q.src with
  | 0 -> (
      match Int.compare p.dst q.dst with
      | 0 -> compare_edge_arrays p.edges q.edges
      | c -> c)
  | c -> c

let weight w p = Array.fold_left (fun acc e -> acc +. w e) 0.0 p.edges

let pp g fmt p =
  let vs = vertices g p in
  Format.pp_print_string fmt
    (String.concat "-" (Array.to_list (Array.map string_of_int vs)))
