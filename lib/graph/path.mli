(** Paths in a graph.

    A path records its source, destination and the sequence of edge ids it
    traverses, in order.  Because graphs are multigraphs, the edge sequence
    (not the vertex sequence) is the canonical representation: two paths on
    the same vertices through different parallel edges are distinct, and
    congestion is attributed to specific edge ids.

    The paper works with simple paths; {!simplify} converts any walk into a
    simple path with the same endpoints by excising loops, and constructors
    in this repository only hand out simple paths. *)

type t = private { src : int; dst : int; edges : int array }

val trivial : int -> t
(** [trivial v] is the empty path from [v] to itself (used for [s = t]
    pairs; it crosses no edges). *)

val of_edges : Graph.t -> src:int -> dst:int -> int array -> t
(** Validate an edge sequence as a walk from [src] to [dst] and build the
    path.  @raise Invalid_argument if consecutive edges do not share the
    expected endpoints. *)

val unsafe_of_edges : src:int -> dst:int -> int array -> t
(** Build a path from fields already known to form a walk, skipping the
    validation of {!of_edges}.  For trusted reconstruction only (arena
    slices, codec payloads that were validated on decode); the array is
    adopted, not copied. *)

val of_vertices : Graph.t -> int list -> t
(** Build a path from a vertex sequence, selecting for each hop an arbitrary
    minimum-id edge between the consecutive vertices.
    @raise Invalid_argument if some hop has no edge. *)

val hops : t -> int
(** Number of edges ([hop(p)] in the paper). *)

val vertices : Graph.t -> t -> int array
(** The vertex sequence [src, ..., dst] (length [hops + 1]). *)

val mem_edge : t -> int -> bool
(** Does the path cross edge [id]?  O(hops). *)

val is_simple : Graph.t -> t -> bool
(** No repeated vertex. *)

val simplify : Graph.t -> t -> t
(** Excise loops so that the result is simple; endpoints are preserved and
    the edge set of the result is a subset of the input's. *)

val concat : Graph.t -> t -> t -> t
(** [concat g p q] joins [p] ([s → x]) and [q] ([x → t]) into a walk
    [s → t] and {!simplify}s it.  @raise Invalid_argument if
    [p.dst <> q.src]. *)

val reverse : t -> t
(** The same edges traversed backwards. *)

val equal : t -> t -> bool
(** Structural equality on (src, dst, edge sequence). *)

val compare : t -> t -> int

val weight : (int -> float) -> t -> float
(** Sum of a per-edge weight function over the path's edges. *)

val pp : Graph.t -> Format.formatter -> t -> unit
(** Prints the vertex sequence, e.g. ["0-3-7"]. *)
