(** Undirected capacitated multigraphs.

    The paper works with undirected connected graphs where parallel edges
    stand in for capacities.  We keep explicit parallel edges (each with its
    own id) {e and} allow a real-valued capacity per edge, which subsumes the
    parallel-edge model: a unit-capacity multigraph is obtained by adding
    each parallel edge with capacity [1.0].  Congestion throughout the
    repository is load divided by capacity, which coincides with the paper's
    path-count congestion on unit capacities.

    Vertices are integers [0 .. n-1].  Edges are identified by dense integer
    ids [0 .. m-1] so per-edge state (loads, lengths, flows) lives in flat
    arrays. *)

type t
(** Immutable graph. *)

type edge = private { id : int; u : int; v : int; cap : float }
(** An undirected edge between [u] and [v] with positive capacity. *)

module Builder : sig
  type graph := t

  type t
  (** Mutable graph under construction. *)

  val create : int -> t
  (** [create n] starts a graph on vertices [0 .. n-1]. *)

  val add_edge : ?cap:float -> t -> int -> int -> int
  (** [add_edge b u v] appends an edge and returns its id.  Self-loops are
      rejected; parallel edges are allowed.  [cap] defaults to [1.0] and
      must be positive. *)

  val build : t -> graph
  (** Freeze into an immutable graph. *)
end

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edge : t -> int -> edge
(** Edge by id.  @raise Invalid_argument if out of range. *)

val edges : t -> edge array
(** All edges, indexed by id.  Do not mutate. *)

val cap : t -> int -> float
(** Capacity of edge [id]. *)

val endpoints : t -> int -> int * int
(** Endpoints [(u, v)] of edge [id], with [u <= v]. *)

val other_end : t -> int -> int -> int
(** [other_end g e v] is the endpoint of edge [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val adj : t -> int -> (int * int) array
(** [adj g v] lists [(edge_id, neighbor)] pairs incident to [v].  Do not
    mutate. *)

(** {1 Flat CSR adjacency}

    The incidence structure is also stored in compressed-sparse-row form:
    the incidence list of vertex [v] occupies positions
    [csr_offsets g .(v) .. csr_offsets g .(v+1) - 1] of the packed
    edge-id/target arrays, in exactly the same order as [adj g v].  Hot
    traversals iterate these flat int arrays instead of the boxed-tuple
    rows.  Do not mutate any of them. *)

val csr_offsets : t -> int array
(** [n + 1] offsets into the packed arrays; entry [n] is [2m]. *)

val csr_edge_ids : t -> int array
(** Packed incident edge ids, length [2m]. *)

val csr_targets : t -> int array
(** Packed neighbor vertices, aligned with {!csr_edge_ids}. *)

val iter_adj : t -> int -> (int -> int -> unit) -> unit
(** [iter_adj g v f] calls [f edge_id neighbor] for each incident edge of
    [v], in [adj] order, without materializing tuples. *)

val degree : t -> int -> int
(** Number of incident edges (with multiplicity). *)

val max_degree : t -> int

val is_connected : t -> bool

val fold_edges : (int -> int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g init] folds [f id u v cap] over all edges. *)

val total_capacity : t -> float
(** Sum of all edge capacities. *)
