type 'a t = { mutable keys : float array; mutable data : 'a option array; mutable size : int }

let create () = { keys = Array.make 16 0.0; data = Array.make 16 None; size = 0 }

let is_empty h = h.size = 0

let size h = h.size

let clear h =
  (* Drop payload references so cleared entries do not keep values alive. *)
  Array.fill h.data 0 h.size None;
  h.size <- 0

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0.0 in
  let data = Array.make (2 * cap) None in
  Array.blit h.keys 0 keys 0 cap;
  Array.blit h.data 0 data 0 cap;
  h.keys <- keys;
  h.data <- data

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let push h key value =
  if h.size = Array.length h.keys then grow h;
  h.keys.(h.size) <- key;
  h.data.(h.size) <- Some value;
  let i = ref h.size in
  h.size <- h.size + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) in
    let value = match h.data.(0) with Some v -> v | None -> assert false in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    Some (key, value)
  end

(* Monomorphic int-payload specialization: identical sift logic (so pop
   order matches the polymorphic heap entry for entry), but payloads live
   in a flat [int array] — no [Some] box per element, no allocation on
   [push]/[pop], and [clear] is O(1). *)
module Int = struct
  type t = { mutable keys : float array; mutable data : int array; mutable size : int }

  let create () = { keys = Array.make 16 0.0; data = Array.make 16 0; size = 0 }

  let is_empty h = h.size = 0

  let size h = h.size

  let clear h = h.size <- 0

  let grow h =
    let cap = Array.length h.keys in
    let keys = Array.make (2 * cap) 0.0 in
    let data = Array.make (2 * cap) 0 in
    Array.blit h.keys 0 keys 0 cap;
    Array.blit h.data 0 data 0 cap;
    h.keys <- keys;
    h.data <- data

  let swap h i j =
    let k = h.keys.(i) in
    h.keys.(i) <- h.keys.(j);
    h.keys.(j) <- k;
    let d = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- d

  let push h key value =
    if h.size = Array.length h.keys then grow h;
    h.keys.(h.size) <- key;
    h.data.(h.size) <- value;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let min_key h =
    if h.size = 0 then invalid_arg "Heap.Int.min_key: empty heap";
    h.keys.(0)

  let min_value h =
    if h.size = 0 then invalid_arg "Heap.Int.min_value: empty heap";
    h.data.(0)

  let remove_min h =
    if h.size = 0 then invalid_arg "Heap.Int.remove_min: empty heap";
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let key = h.keys.(0) in
      let value = h.data.(0) in
      remove_min h;
      Some (key, value)
    end
end
