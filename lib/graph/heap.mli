(** Minimal binary min-heaps with float keys.

    Decrease-key is handled by lazy deletion: callers insert duplicates and
    skip stale pops.  The polymorphic heap is the general-purpose variant;
    {!Int} is the allocation-free specialization Dijkstra runs on. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val clear : 'a t -> unit
(** Empty the heap in place, releasing payload references, so the backing
    storage can be reused across calls. *)

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key entry. *)

(** Monomorphic int-payload heap: payloads in a flat [int array] (no
    per-element boxing), no allocation on [push]/[pop_min], O(1) {!Int.clear}.
    Pop order is identical to the polymorphic heap for the same push
    sequence (same sift logic), which is what keeps workspace-based
    Dijkstra bit-identical to the historical implementation. *)
module Int : sig
  type t

  val create : unit -> t

  val is_empty : t -> bool

  val size : t -> int

  val clear : t -> unit

  val push : t -> float -> int -> unit

  val min_key : t -> float
  (** @raise Invalid_argument on an empty heap. *)

  val min_value : t -> int
  (** @raise Invalid_argument on an empty heap. *)

  val remove_min : t -> unit
  (** Drop the minimum entry.  Reading {!min_key}/{!min_value} first and
      then calling this is the allocation-free pop.
      @raise Invalid_argument on an empty heap. *)

  val pop : t -> (float * int) option
  (** Boxed convenience pop (allocates the result tuple). *)
end
