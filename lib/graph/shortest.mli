(** Shortest-path computations: BFS, Dijkstra, and hop-limited variants.

    Dijkstra takes an arbitrary non-negative per-edge weight function, which
    is how the MWU flow solvers and the Räcke construction re-weight the
    graph between iterations without rebuilding it.  The weight function is
    validated (and snapshotted) once per edge per call — not on every edge
    visit — and traversals run over the graph's flat CSR arrays.

    All entry points are bit-compatible with the historical boxed-adjacency
    implementation: identical [dist]/[pred] tables, identical paths. *)

val bfs_dist : Graph.t -> int -> int array
(** Hop distances from a source; [max_int] for unreachable vertices. *)

val bfs_path : Graph.t -> int -> int -> Path.t option
(** A minimum-hop path, if the destination is reachable. *)

(** Reusable single-source workspace: dist/pred/settled state, the
    validated-weight snapshot, and a monomorphic int-payload heap, all
    epoch-stamped so starting a run costs one integer increment instead of
    O(n) clearing.  A workspace is single-threaded state; use
    {!Workspace.for_current_domain} to get the calling domain's private
    one (pool workers each reuse their own across oracle calls). *)
module Workspace : sig
  type t

  val create : unit -> t

  val for_current_domain : unit -> t
  (** The calling domain's lazily-created private workspace. *)

  val dist : t -> int -> float
  (** Distance from the last run's source; [infinity] if unreached. *)

  val pred_edge : t -> int -> int
  (** Edge id entering the vertex on the last run's shortest-path tree;
      [-1] at the source and unreachable vertices. *)

  val path : t -> Graph.t -> int -> Path.t option
  (** Reconstruct the path from the last run's source to a vertex.
      @raise Invalid_argument if no run has completed. *)
end

val dijkstra_ball_into :
  Workspace.t ->
  Graph.t ->
  weights:float array ->
  radius:float ->
  ?prune:(int -> float -> bool) ->
  sources:int array -> (int -> float -> unit) -> unit
(** [dijkstra_ball_into ws g ~weights ~radius ~sources visit] grows the
    ball of radius [radius] around [sources] (multi-source: every source
    starts at distance 0): settles exactly the vertices whose distance is
    [<= radius], calling [visit v d] at settle time, in non-decreasing
    distance order.  Work is proportional to the ball and its one-edge
    frontier, never to the graph — the kernel behind the level-wise
    ball-growing FRT construction ({!Sso_oblivious.Frt.build}).

    [prune w nd] (default: never), checked at relaxation time, discards
    the candidate as if it lay outside the radius; sources are exempt.
    Settled vertices and their distances match the unpruned run only when
    the predicate is monotone in the sense used by the FRT construction
    (a vertex that survives pruning has a shortest path whose prefixes
    all survive); the kernel itself makes no such check.

    Settled distances and predecessor edges are bit-identical to an
    untruncated run and are left in [ws] ({!Workspace.dist} /
    {!Workspace.pred_edge}; {!Workspace.path} reconstructs from
    [sources.(0)] when a single source was given).  [weights] is a flat
    per-edge array (length [>= m]) so per-ball calls skip the O(m) weight
    validation sweep; entries must be non-negative and are validated as
    edges are first relaxed.  A negative (or NaN) [radius] settles
    nothing; [infinity] recovers the full single/multi-source run. *)

val dijkstra_into : Workspace.t -> Graph.t -> weight:(int -> float) -> int -> unit
(** [dijkstra_into ws g ~weight src] runs Dijkstra from [src], leaving the
    results in [ws] (read them with {!Workspace.dist} /
    {!Workspace.pred_edge} / {!Workspace.path}).  Performs no per-call
    allocation beyond heap growth on first use.  [weight e] must be
    non-negative; validated once per edge. *)

val dijkstra : Graph.t -> weight:(int -> float) -> int -> float array * int array
(** [dijkstra g ~weight src] returns [(dist, pred_edge)] where
    [pred_edge.(v)] is the edge id entering [v] on a shortest path tree
    ([-1] at the source and unreachable vertices), and [dist.(v)] is
    [infinity] when unreachable.  [weight e] must be non-negative.
    Allocates the two result arrays; hot loops that do not need owned
    arrays should use {!dijkstra_into}. *)

val dijkstra_path : Graph.t -> weight:(int -> float) -> int -> int -> Path.t option
(** A minimum-weight path between two vertices. *)

val dijkstra_paths :
  ?workspace:Workspace.t ->
  Graph.t -> weight:(int -> float) -> int -> int array -> Path.t option array
(** [dijkstra_paths g ~weight src targets] answers every target from one
    Dijkstra pass — the source-batched oracle: identical results to
    calling {!dijkstra_path} per target, at 1/|targets| of the cost.
    [workspace] defaults to the calling domain's. *)

val hop_limited_path :
  Graph.t -> weight:(int -> float) -> max_hops:int -> int -> int -> Path.t option
(** Minimum-weight walk using at most [max_hops] edges, simplified into a
    simple path (whose weight is then at most the walk's).  Bellman–Ford
    style dynamic program over hop counts, O(max_hops · m).  Returns [None]
    when no walk within the hop budget exists. *)

val hop_limited_paths :
  Graph.t ->
  weight:(int -> float) -> max_hops:int -> int -> int array -> Path.t option array
(** Source-batched {!hop_limited_path}: the DP tables depend only on the
    source, so one O(max_hops · m) pass answers every target.  Identical
    results to the per-target calls. *)

val eccentricity : Graph.t -> int -> int
(** Maximum hop distance from a vertex to any reachable vertex. *)

val diameter : Graph.t -> int
(** Maximum eccentricity over all vertices (hop metric).  O(n·m). *)

val all_pairs_hops : Graph.t -> int array array
(** [all_pairs_hops g] runs BFS from every vertex; row [s] is
    [bfs_dist g s].  O(n·m) and O(n²) memory — intended for the moderate
    graph sizes used in experiments. *)
