type t = {
  graph : Graph.t;
  mutable data : Bytes.t;
  mutable data_len : int;
  mutable meta : int array;
  mutable ends : int array;
  mutable count : int;
}

let hop_bits = 21
let max_hops = (1 lsl hop_bits) - 1
let max_offset = (1 lsl 42) - 1

let create ?(capacity = 16) graph =
  let capacity = max capacity 1 in
  {
    graph;
    data = Bytes.create (capacity * 8);
    data_len = 0;
    meta = Array.make capacity 0;
    ends = Array.make capacity 0;
    count = 0;
  }

let graph a = a.graph
let length a = a.count
let memory_bytes a = a.data_len + (16 * a.count)

let ensure_data a extra =
  let need = a.data_len + extra in
  if need > Bytes.length a.data then begin
    let cap = ref (max 64 (2 * Bytes.length a.data)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit a.data 0 fresh 0 a.data_len;
    a.data <- fresh
  end

let ensure_path a =
  if a.count = Array.length a.meta then begin
    let cap = max 16 (2 * a.count) in
    let grow arr =
      let fresh = Array.make cap 0 in
      Array.blit arr 0 fresh 0 a.count;
      fresh
    in
    a.meta <- grow a.meta;
    a.ends <- grow a.ends
  end

let hops a i = a.meta.(i) land max_hops
let src a i = a.ends.(i) / Graph.n a.graph
let dst a i = a.ends.(i) mod Graph.n a.graph

let record a ~src ~dst ~hops ~byte_off =
  if byte_off > max_offset then invalid_arg "Arena: data buffer exceeds 2^42 bytes";
  ensure_path a;
  let i = a.count in
  a.meta.(i) <- (byte_off lsl hop_bits) lor hops;
  a.ends.(i) <- (src * Graph.n a.graph) + dst;
  a.count <- i + 1;
  i

(* Append the LEB128 encoding of [v] (v >= 0) at the current tail. *)
let push_varint a v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    ensure_data a 1;
    Bytes.unsafe_set a.data a.data_len
      (Char.unsafe_chr (if !v = 0 then b else b lor 0x80));
    a.data_len <- a.data_len + 1;
    continue := !v <> 0
  done

let append_walk a ~src ~dst (edge_ids : int array) =
  let g = a.graph in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Arena.append_walk: endpoint out of range";
  let h = Array.length edge_ids in
  if h > max_hops then invalid_arg "Arena.append_walk: path exceeds hop limit";
  let off = Graph.csr_offsets g in
  let eids = Graph.csr_edge_ids g in
  let tgts = Graph.csr_targets g in
  let byte_off = a.data_len in
  let v = ref src in
  (try
     Array.iter
       (fun e ->
         let base = Array.unsafe_get off !v in
         let deg = Array.unsafe_get off (!v + 1) - base in
         let slot = ref (-1) in
         for j = 0 to deg - 1 do
           if !slot < 0 && Array.unsafe_get eids (base + j) = e then slot := j
         done;
         if !slot < 0 then
           invalid_arg "Arena.append_walk: edge not incident to walk vertex";
         push_varint a !slot;
         v := Array.unsafe_get tgts (base + !slot))
       edge_ids;
     if !v <> dst then invalid_arg "Arena.append_walk: walk does not end at dst"
   with e ->
     (* Roll back a partial encoding so a failed append leaves no trace. *)
     a.data_len <- byte_off;
     raise e);
  record a ~src ~dst ~hops:h ~byte_off

let append_path a (p : Path.t) =
  append_walk a ~src:p.Path.src ~dst:p.Path.dst p.Path.edges

let byte_range a i =
  let start = a.meta.(i) lsr hop_bits in
  let stop =
    if i + 1 < a.count then a.meta.(i + 1) lsr hop_bits else a.data_len
  in
  (start, stop)

let append_slice into from i =
  if not (into.graph == from.graph) then
    invalid_arg "Arena.append_slice: arenas are over different graphs";
  if i < 0 || i >= from.count then invalid_arg "Arena.append_slice: bad handle";
  let start, stop = byte_range from i in
  let len = stop - start in
  ensure_data into len;
  Bytes.blit from.data start into.data into.data_len len;
  let byte_off = into.data_len in
  into.data_len <- into.data_len + len;
  record into ~src:(src from i) ~dst:(dst from i) ~hops:(hops from i) ~byte_off

let append_all into from =
  if not (into.graph == from.graph) then
    invalid_arg "Arena.append_all: arenas are over different graphs";
  let first = into.count in
  ensure_data into from.data_len;
  Bytes.blit from.data 0 into.data into.data_len from.data_len;
  let shift = into.data_len in
  into.data_len <- into.data_len + from.data_len;
  for i = 0 to from.count - 1 do
    ensure_path into;
    let byte_off = (from.meta.(i) lsr hop_bits) + shift in
    if byte_off > max_offset then invalid_arg "Arena: data buffer exceeds 2^42 bytes";
    into.meta.(into.count) <- (byte_off lsl hop_bits) lor (from.meta.(i) land max_hops);
    into.ends.(into.count) <- from.ends.(i);
    into.count <- into.count + 1
  done;
  first

let iter_edges_vertices a i f =
  let g = a.graph in
  let off = Graph.csr_offsets g in
  let eids = Graph.csr_edge_ids g in
  let tgts = Graph.csr_targets g in
  let m = a.meta.(i) in
  let h = m land max_hops in
  let pos = ref (m lsr hop_bits) in
  let v = ref (src a i) in
  for _ = 1 to h do
    let slot = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = Char.code (Bytes.unsafe_get a.data !pos) in
      incr pos;
      slot := !slot lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := b >= 0x80
    done;
    let base = Array.unsafe_get off !v + !slot in
    let e = Array.unsafe_get eids base in
    v := Array.unsafe_get tgts base;
    f e !v
  done

let iter a i f = iter_edges_vertices a i (fun e _ -> f e)

let fold a i f init =
  let acc = ref init in
  iter a i (fun e -> acc := f !acc e);
  !acc

let weight a w i =
  let acc = ref 0.0 in
  iter a i (fun e -> acc := !acc +. w e);
  !acc

let mem_edge a i e =
  let found = ref false in
  iter a i (fun e' -> if e' = e then found := true);
  !found

let for_all a i f =
  let ok = ref true in
  iter a i (fun e -> if not (f e) then ok := false);
  !ok

let exists a i f =
  let found = ref false in
  iter a i (fun e -> if f e then found := true);
  !found

let edges a i =
  let out = Array.make (hops a i) 0 in
  let k = ref 0 in
  iter a i (fun e ->
      out.(!k) <- e;
      incr k);
  out

let suffix_edges a i ~from_hop =
  let h = hops a i in
  if from_hop < 0 || from_hop > h then invalid_arg "Arena.suffix_edges";
  let out = Array.make (h - from_hop) 0 in
  let k = ref 0 in
  iter a i (fun e ->
      if !k >= from_hop then out.(!k - from_hop) <- e;
      incr k);
  out

let vertices a i =
  let out = Array.make (hops a i + 1) (src a i) in
  let k = ref 1 in
  iter_edges_vertices a i (fun _ v ->
      out.(!k) <- v;
      incr k);
  out

let to_path a i = Path.unsafe_of_edges ~src:(src a i) ~dst:(dst a i) (edges a i)

let compare_within_pair a i j =
  let hi = hops a i and hj = hops a j in
  if hi <> hj then Int.compare hi hj
  else begin
    (* Equal hop counts: decode in lockstep and compare edge ids. *)
    let ei = edges a i and ej = edges a j in
    let rec go k =
      if k = hi then 0
      else
        match Int.compare ei.(k) ej.(k) with 0 -> go (k + 1) | c -> c
    in
    go 0
  end

let unpack a ids =
  let k = Array.length ids in
  let off = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    off.(i + 1) <- off.(i) + hops a ids.(i)
  done;
  let flat = Array.make off.(k) 0 in
  for i = 0 to k - 1 do
    let p = ref off.(i) in
    iter a ids.(i) (fun e ->
        Array.unsafe_set flat !p e;
        incr p)
  done;
  (off, flat)

let unpack_with_vertices a ids =
  let k = Array.length ids in
  let off = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    off.(i + 1) <- off.(i) + hops a ids.(i)
  done;
  let flat = Array.make off.(k) 0 in
  let verts = Array.make (off.(k) + k) 0 in
  for i = 0 to k - 1 do
    let p = ref off.(i) in
    let vp = ref (off.(i) + i) in
    verts.(!vp) <- src a ids.(i);
    iter_edges_vertices a ids.(i) (fun e v ->
        Array.unsafe_set flat !p e;
        incr p;
        incr vp;
        Array.unsafe_set verts !vp v)
  done;
  (off, flat, verts)

let write_encoding a i buf =
  let start, stop = byte_range a i in
  Buffer.add_subbytes buf a.data start (stop - start)

let append_encoded a ~src ~dst ~hops:h buf ~pos =
  let g = a.graph in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Arena.append_encoded: endpoint out of range";
  if h < 0 || h > max_hops then invalid_arg "Arena.append_encoded: bad hop count";
  let limit = Bytes.length buf in
  let off = Graph.csr_offsets g in
  let tgts = Graph.csr_targets g in
  let p = ref pos in
  let v = ref src in
  for _ = 1 to h do
    let slot = ref 0 and shift = ref 0 and continue = ref true in
    let last = ref 0 in
    while !continue do
      if !p >= limit then invalid_arg "Arena.append_encoded: truncated slot";
      if !shift > 28 then invalid_arg "Arena.append_encoded: slot varint too long";
      let b = Char.code (Bytes.unsafe_get buf !p) in
      incr p;
      slot := !slot lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      last := b;
      continue := b >= 0x80
    done;
    (* Canonical LEB128: a multi-byte encoding must not end in a zero
       group, or distinct byte strings would decode to the same path and
       re-encoding would not round-trip byte-identically. *)
    if !shift > 7 && !last = 0 then
      invalid_arg "Arena.append_encoded: non-canonical slot varint";
    let base = Array.unsafe_get off !v in
    let deg = Array.unsafe_get off (!v + 1) - base in
    if !slot >= deg then invalid_arg "Arena.append_encoded: slot outside adjacency row";
    v := Array.unsafe_get tgts (base + !slot)
  done;
  if !v <> dst then invalid_arg "Arena.append_encoded: walk does not end at dst";
  let len = !p - pos in
  ensure_data a len;
  Bytes.blit buf pos a.data a.data_len len;
  let byte_off = a.data_len in
  a.data_len <- a.data_len + len;
  let id = record a ~src ~dst ~hops:h ~byte_off in
  (id, len)
