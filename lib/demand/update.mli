(** Demand update events: the wire format of the routing service.

    A long-lived semi-oblivious router does not receive fresh demand
    matrices; it receives a stream of {e flow events} — arrivals,
    departures, and rate changes — and folds them into its active demand
    between re-optimizations.  This module is {!Workload}'s churn model
    made explicit: one versioned event type, a JSONL codec for logging and
    replaying streams, and the fold that applies a batch to a demand.

    The on-disk form mirrors the {!Sso_obs.Trace} codec: one JSON object
    per line, a versioned header declaring the event count, atomic writes
    (temp file + rename), and the same two-exception error contract —
    [sso serve] maps {!Unreadable} to exit code 10 and {!Corrupt} to 11,
    exactly like [sso cache] and [sso trace]. *)

exception Unreadable of string
(** The stream file (or its temp sibling during {!save}) cannot be read or
    written — an I/O problem, not a format problem. *)

exception Corrupt of string
(** The stream is readable but invalid: bad JSON, a missing or wrong
    schema tag, an unsupported version, a truncation (fewer events than
    the header declares), or an event that breaks the stream invariants
    (ticks must be non-decreasing, endpoints distinct and non-negative,
    rates finite and positive, departures and rate changes must refer to
    an active pair when applied). *)

val schema_version : int
(** Version written into (and required of) the header line. *)

type kind =
  | Arrive of float  (** A flow of the given rate joins the pair. *)
  | Depart  (** The pair's flows leave; the pair goes inactive. *)
  | Set_rate of float  (** The pair's aggregate rate is reset. *)

type t = { tick : int; src : int; dst : int; kind : kind }
(** One event.  [tick] is the batching epoch: all events sharing a tick
    are folded into the demand together and answered by one
    re-optimization. *)

val apply : Demand.t -> t list -> Demand.t
(** Fold a batch into a demand, in list order.  [Arrive r] adds [r] to
    the pair's rate (concurrent flows between the same endpoints
    aggregate), [Depart] deactivates the pair, [Set_rate r] replaces its
    aggregate rate.  @raise Corrupt when an event is inconsistent with the
    demand it is applied to (departure or rate change of an inactive
    pair, non-positive or non-finite rate, diagonal pair) — replaying a
    logged stream against the wrong prefix is a data error, not a
    programming error. *)

val by_tick : t list -> (int * t list) list
(** Group a stream into per-tick batches, in stream order.  Ticks need not
    be contiguous (quiet ticks are simply absent).  @raise Corrupt if the
    ticks are not non-decreasing. *)

val save : string -> t list -> unit
(** Write a stream atomically (temp + rename).  @raise Unreadable on I/O
    errors, [Invalid_argument] if the events violate the stream
    invariants (they would not round-trip). *)

val load : string -> t list
(** @raise Unreadable when the file cannot be read, [Corrupt] when it
    parses wrong, is truncated, or breaks a stream invariant. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
