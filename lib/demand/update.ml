module Json = Sso_obs.Trace.Json

exception Unreadable of string
exception Corrupt of string

let schema_version = 1
let schema_tag = "sso-serve-stream"

type kind = Arrive of float | Depart | Set_rate of float

type t = { tick : int; src : int; dst : int; kind : kind }

let equal a b =
  a.tick = b.tick && a.src = b.src && a.dst = b.dst
  &&
  match (a.kind, b.kind) with
  | Arrive x, Arrive y | Set_rate x, Set_rate y -> Float.equal x y
  | Depart, Depart -> true
  | (Arrive _ | Depart | Set_rate _), _ -> false

let op_name = function
  | Arrive _ -> "arrive"
  | Depart -> "depart"
  | Set_rate _ -> "set"

let pp fmt e =
  match e.kind with
  | Depart ->
      Format.fprintf fmt "@[tick %d: depart %d->%d@]" e.tick e.src e.dst
  | Arrive r ->
      Format.fprintf fmt "@[tick %d: arrive %d->%d rate %g@]" e.tick e.src
        e.dst r
  | Set_rate r ->
      Format.fprintf fmt "@[tick %d: set %d->%d rate %g@]" e.tick e.src e.dst r

(* Stream invariants, shared by [save] (programmer error) and [load]
   (data error).  Returns a description of the first violation. *)
let event_violation e =
  if e.tick < 0 then Some (Printf.sprintf "negative tick %d" e.tick)
  else if e.src < 0 || e.dst < 0 then
    Some (Printf.sprintf "negative endpoint in %d->%d" e.src e.dst)
  else if e.src = e.dst then
    Some (Printf.sprintf "diagonal pair %d->%d" e.src e.dst)
  else
    match e.kind with
    | Depart -> None
    | Arrive r | Set_rate r ->
        if Float.is_finite r && r > 0.0 then None
        else
          Some
            (Printf.sprintf "%s %d->%d with non-positive rate %g" (op_name e.kind)
               e.src e.dst r)

let stream_violation events =
  let rec go prev_tick = function
    | [] -> None
    | e :: rest -> (
        match event_violation e with
        | Some _ as v -> v
        | None ->
            if e.tick < prev_tick then
              Some
                (Printf.sprintf "tick %d after tick %d (ticks must be \
                                 non-decreasing)"
                   e.tick prev_tick)
            else go e.tick rest)
  in
  go 0 events

(* ---- applying batches ---- *)

let apply demand events =
  let table = Hashtbl.create 64 in
  Demand.fold
    (fun s t amount () -> Hashtbl.replace table (s, t) amount)
    demand ();
  List.iter
    (fun e ->
      (match event_violation e with
      | Some msg -> raise (Corrupt ("invalid event: " ^ msg))
      | None -> ());
      let pair = (e.src, e.dst) in
      match e.kind with
      | Arrive r ->
          let old =
            match Hashtbl.find_opt table pair with Some v -> v | None -> 0.0
          in
          Hashtbl.replace table pair (old +. r)
      | Depart ->
          if not (Hashtbl.mem table pair) then
            raise
              (Corrupt
                 (Printf.sprintf "tick %d: departure of inactive pair %d->%d"
                    e.tick e.src e.dst));
          Hashtbl.remove table pair
      | Set_rate r ->
          if not (Hashtbl.mem table pair) then
            raise
              (Corrupt
                 (Printf.sprintf "tick %d: rate change of inactive pair %d->%d"
                    e.tick e.src e.dst));
          Hashtbl.replace table pair r)
    events;
  Demand.of_list
    (Hashtbl.fold (fun (s, t) amount acc -> (s, t, amount) :: acc) table [])

let by_tick events =
  (match stream_violation events with
  | Some msg -> raise (Corrupt ("invalid stream: " ^ msg))
  | None -> ());
  let rec go acc current current_tick = function
    | [] ->
        List.rev
          (if current = [] then acc
           else (current_tick, List.rev current) :: acc)
    | e :: rest ->
        if current = [] || e.tick = current_tick then
          go acc (e :: current) e.tick rest
        else go ((current_tick, List.rev current) :: acc) [ e ] e.tick rest
  in
  go [] [] 0 events

(* ---- JSONL codec ---- *)

(* Same float spelling as the trace codec: finite floats round-trip via
   %.17g; non-finite rates are rejected before they reach the writer. *)
let add_rate buf r =
  if Float.is_integer r && Float.abs r < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" r)
  else Buffer.add_string buf (Printf.sprintf "%.17g" r)

let add_event buf e =
  Buffer.add_string buf
    (Printf.sprintf "{\"tick\":%d,\"src\":%d,\"dst\":%d,\"op\":\"%s\"" e.tick
       e.src e.dst (op_name e.kind));
  (match e.kind with
  | Depart -> ()
  | Arrive r | Set_rate r ->
      Buffer.add_string buf ",\"rate\":";
      add_rate buf r);
  Buffer.add_string buf "}\n"

let save path events =
  (match stream_violation events with
  | Some msg -> invalid_arg ("Update.save: " ^ msg)
  | None -> ());
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%S,\"version\":%d,\"events\":%d}\n" schema_tag
       schema_version (List.length events));
  List.iter (add_event buf) events;
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error msg -> raise (Unreadable msg)

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

(* The borrowed JSON parser raises the trace codec's exception; translate
   so callers only ever see this module's contract. *)
let parse_json line =
  match Json.parse line with
  | v -> v
  | exception Sso_obs.Trace.Corrupt msg -> raise (Corrupt msg)

let get_field obj key =
  match Json.member key obj with
  | Some v -> v
  | None -> corrupt "stream line is missing the %S field" key

let get_int obj key =
  match Json.number (get_field obj key) with
  | Some f when Float.is_integer f -> int_of_float f
  | Some _ | None -> corrupt "stream field %S is not an integer" key

let get_string obj key =
  match get_field obj key with
  | Json.Str s -> s
  | _ -> corrupt "stream field %S is not a string" key

let get_rate obj =
  match Json.number (get_field obj "rate") with
  | Some r -> r
  | None -> corrupt "stream field \"rate\" is not a number"

let parse_event line =
  let obj = parse_json line in
  let tick = get_int obj "tick"
  and src = get_int obj "src"
  and dst = get_int obj "dst" in
  let kind =
    match get_string obj "op" with
    | "arrive" -> Arrive (get_rate obj)
    | "depart" -> Depart
    | "set" -> Set_rate (get_rate obj)
    | other -> corrupt "unknown stream op %S" other
  in
  { tick; src; dst; kind }

let load path =
  let lines =
    match
      let ic = open_in_bin path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      read []
    with
    | lines -> lines
    | exception Sys_error msg -> raise (Unreadable msg)
  in
  match List.filter (fun l -> String.trim l <> "") lines with
  | [] -> corrupt "empty file is not an update stream"
  | header :: body ->
      let hdr = parse_json header in
      (match Json.member "schema" hdr with
      | Some (Json.Str s) when s = schema_tag -> ()
      | Some (Json.Str s) -> corrupt "not an update stream (schema %S)" s
      | _ -> corrupt "missing schema tag in the stream header");
      (match Json.member "version" hdr with
      | Some v when Json.number v = Some (float_of_int schema_version) -> ()
      | Some v -> (
          match Json.number v with
          | Some f -> corrupt "unsupported stream version %g" f
          | None -> corrupt "malformed stream version")
      | None -> corrupt "missing version in the stream header");
      let declared = get_int hdr "events" in
      let events = List.map parse_event body in
      let found = List.length events in
      if found <> declared then
        corrupt "stream declares %d events but contains %d%s" declared found
          (if found < declared then " (truncated?)" else "");
      (match stream_violation events with
      | Some msg -> corrupt "invalid stream: %s" msg
      | None -> ());
      events
