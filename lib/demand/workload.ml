module Rng = Sso_prng.Rng

type t = Demand.t list

let diurnal rng ~n ~epochs ~peak_total =
  if epochs <= 0 then invalid_arg "Workload.diurnal: epochs must be positive";
  if peak_total <= 0.0 then invalid_arg "Workload.diurnal: peak_total must be positive";
  List.init epochs (fun i ->
      let phase = 2.0 *. Float.pi *. float_of_int i /. float_of_int epochs in
      (* Sinusoid between 0.25 and 1.0 of the peak. *)
      let level = 0.625 +. (0.375 *. Float.sin (phase -. (Float.pi /. 2.0))) in
      Demand.gravity rng ~n ~total:(peak_total *. level))

let random_walk rng ~n ~epochs ~pairs ~churn =
  if epochs <= 0 then invalid_arg "Workload.random_walk: epochs must be positive";
  if not (churn >= 0.0 && churn <= 1.0) then
    invalid_arg "Workload.random_walk: churn must lie in [0,1]";
  if pairs <= 0 || pairs > n * (n - 1) / 2 then
    invalid_arg "Workload.random_walk: pairs out of range";
  let fresh_pair active =
    let rec draw () =
      let s = Rng.int rng n and t = Rng.int rng n in
      if s <> t && not (Hashtbl.mem active (s, t)) then (s, t) else draw ()
    in
    draw ()
  in
  let active = Hashtbl.create pairs in
  for _ = 1 to pairs do
    let p = fresh_pair active in
    Hashtbl.replace active p ()
  done;
  List.init epochs (fun _ ->
      (* Churn: resample a fraction of the active pairs. *)
      let current = Hashtbl.fold (fun p () acc -> p :: acc) active [] in
      List.iter
        (fun p ->
          if Rng.float rng < churn then begin
            Hashtbl.remove active p;
            let q = fresh_pair active in
            Hashtbl.replace active q ()
          end)
        current;
      Demand.of_list (Hashtbl.fold (fun (s, t) () acc -> (s, t, 1.0) :: acc) active []))

let generate ?(rate_churn = 0.0) rng ~n ~ticks ~pairs ~churn =
  if ticks <= 0 then
    invalid_arg
      (Printf.sprintf "Workload.generate: ticks must be positive, got %d" ticks);
  if not (churn >= 0.0 && churn <= 1.0) then
    invalid_arg
      (Printf.sprintf "Workload.generate: churn must lie in [0,1], got %g"
         churn);
  if not (rate_churn >= 0.0 && rate_churn <= 1.0) then
    invalid_arg
      (Printf.sprintf "Workload.generate: rate_churn must lie in [0,1], got %g"
         rate_churn);
  if pairs <= 0 || pairs > n * (n - 1) / 2 then
    invalid_arg
      (Printf.sprintf
         "Workload.generate: pairs must lie in [1, n(n-1)/2] = [1, %d], got %d"
         (n * (n - 1) / 2)
         pairs);
  let fresh_pair active =
    let rec draw () =
      let s = Rng.int rng n and t = Rng.int rng n in
      if s <> t && not (Hashtbl.mem active (s, t)) then (s, t) else draw ()
    in
    draw ()
  in
  let events = ref [] in
  let emit tick (src, dst) kind = events := { Update.tick; src; dst; kind } :: !events in
  (* Tick 0 bootstraps the active set; it mirrors [random_walk]'s initial
     draw exactly (same rng consumption), so applying ticks 0..k yields
     [random_walk]'s epoch k-1 for every k >= 1 when [rate_churn] is 0 —
     the equivalence the property tests pin down. *)
  let active = Hashtbl.create pairs in
  for _ = 1 to pairs do
    let p = fresh_pair active in
    Hashtbl.replace active p ();
    emit 0 p (Update.Arrive 1.0)
  done;
  for tick = 1 to ticks - 1 do
    let current = Hashtbl.fold (fun p () acc -> p :: acc) active [] in
    List.iter
      (fun p ->
        if Rng.float rng < churn then begin
          Hashtbl.remove active p;
          emit tick p Update.Depart;
          let q = fresh_pair active in
          Hashtbl.replace active q ();
          emit tick q (Update.Arrive 1.0)
        end)
      current;
    if rate_churn > 0.0 then begin
      let survivors = Hashtbl.fold (fun p () acc -> p :: acc) active [] in
      List.iter
        (fun p ->
          if Rng.float rng < rate_churn then
            (* Rates drift in [0.5, 1.5): bounded away from 0 so the pair
               stays active, bounded above so congestion stays comparable. *)
            emit tick p (Update.Set_rate (0.5 +. Rng.float rng)))
        survivors
    end
  done;
  List.rev !events

let hotspot_sweep ~n = List.init n (fun target -> Demand.hotspot ~n ~target)

let peak = function
  | [] -> Demand.empty
  | first :: rest ->
      List.fold_left
        (fun best d -> if Demand.siz d > Demand.siz best then d else best)
        first rest

let total_epochs = List.length
