(** Time-varying demand sequences.

    Semi-oblivious traffic engineering installs paths once and re-optimizes
    rates every few minutes against fresh traffic snapshots [KYY+18].  A
    workload is the sequence of such snapshots; the over-time experiments
    check that one fixed sampled path system serves every epoch of a
    realistic day. *)

type t = Demand.t list
(** Epochs in order. *)

val diurnal :
  Sso_prng.Rng.t -> n:int -> epochs:int -> peak_total:float -> t
(** Gravity matrices whose total volume follows a sinusoidal day profile
    (trough = 25% of [peak_total]) with fresh per-epoch activity noise —
    the standard WAN diurnal model. *)

val random_walk :
  Sso_prng.Rng.t -> n:int -> epochs:int -> pairs:int -> churn:float -> t
(** Unit-demand pair sets evolving by churn: each epoch, every active pair
    is resampled with probability [churn ∈ [0,1]].  Models flow arrivals
    and departures. *)

val generate :
  ?rate_churn:float ->
  Sso_prng.Rng.t -> n:int -> ticks:int -> pairs:int -> churn:float ->
  Update.t list
(** {!random_walk}'s churn model as an explicit event stream — the input
    of the routing service.  Tick 0 carries the [pairs] initial arrivals
    (unit rates); each later tick resamples every active pair with
    probability [churn ∈ [0,1]] (a departure followed by a fresh arrival)
    and, with probability [rate_churn] (default 0) per surviving pair,
    drifts its rate uniformly within [0.5, 1.5).  With [rate_churn = 0],
    folding ticks [0..k] with {!Update.apply} reproduces exactly epoch
    [k-1] of {!random_walk} run on the same rng — the two views of churn
    are the same process.
    @raise Invalid_argument when [churn] or [rate_churn] falls outside
    [0,1], [ticks] is not positive, or [pairs] is out of range; the
    message names the offending value. *)

val hotspot_sweep : n:int -> t
(** One epoch per vertex, each an all-to-one incast on that vertex — the
    adversarial sweep where every vertex takes a turn being popular. *)

val peak : t -> Demand.t
(** The epoch with the largest [siz] (empty demand for an empty list). *)

val total_epochs : t -> int
