(** On-disk checkpoints of the routing service (DESIGN.md §14).

    A checkpoint is a single self-validating binary blob wrapping a
    {!Serve.state}: a one-byte kind tag and version, the digest of the
    update stream it was taken against, the graph digest, a canonical
    rendering of the service configuration, the state fields (demand,
    routing, deferred events, failed edges, and the v2 slice payload of
    every materialized pair), and a trailing FNV-1a-64 checksum of
    everything before it.  Decoding verifies the checksum {e first}, so
    any bit flip anywhere in the file surfaces as
    {!Sso_artifact.Codec.Corrupt} before a single field is parsed —
    a damaged checkpoint can never half-restore.

    Files are written atomically (tmp + rename) as [ckpt-<tick>.bin]
    inside the checkpoint directory; {!latest} picks the highest tick.
    Resuming is exact: restoring the latest checkpoint and replaying the
    remaining ticks yields output byte-identical to an uninterrupted
    replay, at any [--jobs] (see the determinism argument in
    DESIGN.md §14). *)

exception Unreadable of string
(** IO-level failure (missing directory, permission, short write) —
    distinct from {!Sso_artifact.Codec.Corrupt}, which means the bytes
    were read fine but are damaged.  Mirrors the exit-code contract:
    10 unreadable, 11 corrupt. *)

val events_digest : Sso_demand.Update.t list -> int64
(** Canonical digest of an update stream (binary event encoding, FNV-1a)
    — stored in each checkpoint so resuming against a different stream
    is refused as corrupt instead of silently diverging. *)

val config_repr : Serve.config -> string
(** Canonical one-line rendering of a service configuration — stored in
    each checkpoint; a resume under a different configuration is
    refused. *)

val encode :
  stream_digest:int64 ->
  graph:Sso_graph.Graph.t ->
  config:Serve.config ->
  Serve.state -> string
(** The checkpoint blob. *)

val decode :
  graph:Sso_graph.Graph.t -> string -> int64 * string * Serve.state
(** [(stream_digest, config_repr, state)].  The caller compares the
    digest and configuration against its own before {!Serve.restore}.
    @raise Sso_artifact.Codec.Corrupt on checksum mismatch, bad tag or
    version, or any malformed field. *)

val filename : tick:int -> string
(** [ckpt-<tick>.bin] (zero-padded so lexicographic = numeric order).
    @raise Invalid_argument if [tick < 0]. *)

val write :
  dir:string ->
  stream_digest:int64 ->
  graph:Sso_graph.Graph.t ->
  config:Serve.config ->
  Serve.state -> string
(** Encode and atomically publish the checkpoint under [dir] (created if
    missing), returning its path.  The temporary sibling is removed on
    any failure.  @raise Unreadable when the filesystem says no,
    [Invalid_argument] if the state predates the first tick. *)

val latest : dir:string -> (int * string) option
(** The highest-tick checkpoint in [dir] as [(tick, path)]; [None] when
    the directory is missing or holds no [ckpt-*.bin]. *)

val load :
  graph:Sso_graph.Graph.t -> string -> int64 * string * Serve.state
(** Read and {!decode} a checkpoint file.  @raise Unreadable on IO
    failure, {!Sso_artifact.Codec.Corrupt} on damage. *)
