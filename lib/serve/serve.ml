module Rng = Sso_prng.Rng
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Update = Sso_demand.Update
module Routing = Sso_flow.Routing
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Simulator = Sso_sim.Simulator
module Codec = Sso_artifact.Codec
module Timeline = Sso_fault.Timeline
module Scenario = Sso_fault.Scenario

type config = {
  solver : Semi_oblivious.solver;
  warm_iters : int;
  warm_weight : int;
  refresh_every : int;
  event_budget : int;
  max_staleness : int;
}

let default_config =
  (* warm_iters/warm_weight follow the fault-recovery ladder's sweet spot
     (Fault.Sweep.default_recovery): 60 virtual rounds of history plus a
     few fresh rounds recover near-cold quality under small drifts. *)
  { solver = Semi_oblivious.default_solver;
    warm_iters = 20;
    warm_weight = 60;
    refresh_every = 0;
    event_budget = 0;
    max_staleness = 4 }

type mode = Cold | Warm | Degraded

type fault = Fail of int | Repair of int

type report = {
  tick : int;
  events : int;
  arrivals : int;
  departures : int;
  rate_changes : int;
  active_pairs : int;
  admitted : int;
  retired : int;
  deferred : int;
  failed_edges : int;
  rerouted : int;
  unroutable : int;
  congestion : float;
  mode : mode;
  staleness : int;
  solve_ns : int;
  tick_ns : int;
}

type t = {
  graph : Graph.t;
  system : Path_system.t;
  config : config;
  seen : ((int * int), unit) Hashtbl.t;  (* pairs materialized so far *)
  failed : (int, unit) Hashtbl.t;  (* edges currently down *)
  mutable survivors : Path_system.t option;
      (* cached filter_paths view over [system]; dropped on any fault *)
  mutable pending : Update.t list;  (* shed events, oldest first *)
  mutable demand : Demand.t;
  mutable routing : Routing.t option;
  mutable last_tick : int;  (* -1 before the first step *)
  mutable since_cold : int;  (* consecutive non-cold solves *)
  mutable degraded_streak : int;  (* consecutive degraded solves *)
}

let create ?(config = default_config) graph system =
  if config.warm_iters <= 0 then
    invalid_arg "Serve.create: warm_iters must be positive";
  if config.warm_weight <= 0 then
    invalid_arg "Serve.create: warm_weight must be positive";
  if config.refresh_every < 0 then
    invalid_arg "Serve.create: refresh_every must be non-negative";
  if config.event_budget < 0 then
    invalid_arg "Serve.create: event_budget must be non-negative";
  if config.max_staleness < 0 then
    invalid_arg "Serve.create: max_staleness must be non-negative";
  { graph; system; config;
    seen = Hashtbl.create 256;
    failed = Hashtbl.create 16;
    survivors = None;
    pending = [];
    demand = Demand.empty;
    routing = None;
    last_tick = -1;
    since_cold = 0;
    degraded_streak = 0 }

let graph t = t.graph
let system t = t.system
let demand t = t.demand
let routing t = t.routing
let pending t = t.pending
let failed_edges t =
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) t.failed [])

let tick_span = Obs.span "serve.tick"
let admit_span = Obs.span "serve.admit"
let solve_span = Obs.span "serve.solve"
let events_counter = Obs.counter "serve.events"
let admitted_counter = Obs.counter "serve.admitted"
let retired_counter = Obs.counter "serve.retired"
let deferred_counter = Obs.counter "serve.deferred"
let cold_counter = Obs.counter "serve.cold_solves"
let warm_counter = Obs.counter "serve.warm_solves"
let degraded_counter = Obs.counter "serve.degraded_solves"

(* Live telemetry: rolling per-tick latency quantiles plus throughput and
   staleness gauges.  All wall-clock — they surface only through
   [Obs.snapshot]/[Obs.expose] and never enter reports, digests, or trace
   payloads (the same boundary as [solve_ns]). *)
let tick_q = Obs.quantile "serve.tick_ns"
let admit_q = Obs.quantile "serve.admit_ns"
let solve_q = Obs.quantile "serve.solve_ns"
let inject_q = Obs.quantile "serve.inject_ns"
let staleness_gauge = Obs.gauge "serve.staleness"
let failed_gauge = Obs.gauge "serve.failed_edges"
let updates_gauge = Obs.gauge "serve.updates_per_sec"

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Update.Corrupt msg)) fmt

let check_batch t ~tick events =
  if tick <= t.last_tick then
    corrupt "tick %d after tick %d (ticks must be strictly increasing)" tick
      t.last_tick;
  let n = Graph.n t.graph in
  List.iter
    (fun (e : Update.t) ->
      if e.Update.tick <> tick then
        corrupt "event for tick %d inside the batch of tick %d" e.Update.tick
          tick;
      if e.Update.src >= n || e.Update.dst >= n then
        corrupt "tick %d: endpoint out of range in %d->%d (graph has %d \
                 vertices)"
          tick e.Update.src e.Update.dst n)
    events

let count_kinds events =
  List.fold_left
    (fun (a, d, r) (e : Update.t) ->
      match e.Update.kind with
      | Update.Arrive _ -> (a + 1, d, r)
      | Update.Depart -> (a, d + 1, r)
      | Update.Set_rate _ -> (a, d, r + 1))
    (0, 0, 0) events

(* ---------- faults ---------- *)

(* Apply a tick's fault events; returns the newly failed edge ids (in
   event order).  Contradictory events — double failure, repair of a
   healthy edge — are stream corruption, same as a departure of an
   inactive pair. *)
let apply_faults t ~tick faults =
  let m = Graph.m t.graph in
  let newly =
    List.filter_map
      (fun f ->
        match f with
        | Fail e ->
            if e < 0 || e >= m then
              corrupt "tick %d: Fail of edge %d out of range (graph has %d \
                       edges)" tick e m;
            if Hashtbl.mem t.failed e then
              corrupt "tick %d: edge %d failed while already down" tick e;
            Hashtbl.replace t.failed e ();
            Some e
        | Repair e ->
            if e < 0 || e >= m then
              corrupt "tick %d: Repair of edge %d out of range (graph has %d \
                       edges)" tick e m;
            if not (Hashtbl.mem t.failed e) then
              corrupt "tick %d: repair of healthy edge %d" tick e;
            Hashtbl.remove t.failed e;
            None)
      faults
  in
  if faults <> [] then t.survivors <- None;
  newly

(* The path system the solve runs on: the full system while nothing is
   failed, otherwise a cached filter_paths view keeping candidates whose
   edges are all up.  The predicate captures a snapshot of the failed
   set, so the lazily memoized view stays internally consistent; any
   fault event drops the cache. *)
let live_system t =
  if Hashtbl.length t.failed = 0 then t.system
  else
    match t.survivors with
    | Some s -> s
    | None ->
        let down = Hashtbl.copy t.failed in
        let s =
          Path_system.filter_paths
            (fun p -> not (Array.exists (Hashtbl.mem down) p.Path.edges))
            t.system
        in
        t.survivors <- Some s;
        s

let count_rerouted t newly =
  match (t.routing, newly) with
  | Some r, _ :: _ ->
      let hit (_, p) =
        Array.exists (fun e -> List.mem e newly) p.Path.edges
      in
      List.length
        (List.filter
           (fun (s, d) -> List.exists hit (Routing.distribution r s d))
           (Routing.pairs r))
  | _ -> 0

(* ---------- degraded serving ---------- *)

(* Serve the stale routing without a solve: each active routable pair
   keeps its previous distribution restricted to surviving paths
   (renormalized); pairs the stale routing misses, or whose whole
   distribution died, fall back to uniform over the surviving
   candidates.  O(active pairs), no MWU rounds. *)
let patch_stale t live stale pairs demand =
  let alive_path p =
    Hashtbl.length t.failed = 0
    || not (Array.exists (Hashtbl.mem t.failed) p.Path.edges)
  in
  let entries =
    List.map
      (fun (s, d) ->
        let alive =
          List.filter (fun (_, p) -> alive_path p)
            (Routing.distribution stale s d)
        in
        let dist =
          if alive <> [] then alive
          else List.map (fun p -> (1.0, p)) (Path_system.paths live s d)
        in
        ((s, d), dist))
      pairs
  in
  let r = Routing.make entries in
  (r, Routing.congestion t.graph r demand)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

let step t ~tick ?(faults = []) events =
  Obs.with_span tick_span @@ fun () ->
  let tick_t0 = Obs.now_ns () in
  check_batch t ~tick events;
  let newly_failed = apply_faults t ~tick faults in
  let rerouted = count_rerouted t newly_failed in
  (* Admission control: deferred leftovers go first, then the incoming
     batch, all in order; with a budget the overflow is shed to the next
     tick. *)
  let backlog = t.pending @ events in
  let budget = t.config.event_budget in
  let applied, shed =
    if budget > 0 && List.length backlog > budget then
      (take budget backlog, drop budget backlog)
    else (backlog, [])
  in
  t.pending <- shed;
  let deferred = List.length shed in
  let arrivals, departures, rate_changes = count_kinds applied in
  let before = t.demand in
  let demand = Update.apply before applied in
  let support = Demand.support demand in
  (* Admission: materialize never-seen pairs into the shared arena, in
     deterministic chunk order on the pool.  Retired pairs keep their
     slices — a returning commodity is re-admitted for free. *)
  let fresh =
    List.filter (fun p -> not (Hashtbl.mem t.seen p)) support
  in
  let admit_ns =
    if fresh = [] then 0
    else begin
      let a0 = Obs.now_ns () in
      Obs.with_span admit_span (fun () ->
          Path_system.materialize_parallel t.system fresh;
          List.iter (fun p -> Hashtbl.replace t.seen p ()) fresh);
      Obs.now_ns () - a0
    end
  in
  Obs.observe_quantile admit_q admit_ns;
  let retired =
    List.length
      (List.filter
         (fun (s, d) -> Demand.get demand s d <= 0.0)
         (Demand.support before))
  in
  let live = live_system t in
  (* Under failures a pair can lose every candidate; it is shed from the
     solve (its demand stays active, so a repair brings it straight
     back).  Probing slice_count here also materializes the surviving
     view's pairs in support order — serially, so the view's arena
     layout is independent of the job count. *)
  let routable, unroutable_pairs =
    if Hashtbl.length t.failed = 0 then (support, [])
    else
      List.partition
        (fun (s, d) -> Path_system.slice_count live s d > 0)
        support
  in
  let unroutable = List.length unroutable_pairs in
  let solve_demand =
    if unroutable = 0 then demand
    else Demand.filter (fun s d _ -> Path_system.slice_count live s d > 0)
        demand
  in
  let warm_capable =
    match t.config.solver with
    | Semi_oblivious.Mwu _ -> true
    | Semi_oblivious.Lp | Semi_oblivious.Gk _ -> false
  in
  let overloaded = deferred > 0 in
  let mode =
    match t.routing with
    | Some _
      when overloaded && t.degraded_streak < t.config.max_staleness ->
        Degraded
    | None -> Cold
    | Some _ when not warm_capable -> Cold
    | Some _
      when t.config.refresh_every > 0
           && t.since_cold + 1 >= t.config.refresh_every ->
        Cold
    | Some _ -> Warm
  in
  let t0 = Obs.now_ns () in
  let routing, congestion =
    Obs.with_span solve_span @@ fun () ->
    if routable = [] then (Routing.make [], 0.0)
    else
      match (mode, t.routing) with
      | Degraded, Some stale -> patch_stale t live stale routable solve_demand
      | Warm, Some warm when Hashtbl.length t.failed = 0 ->
          Semi_oblivious.reoptimize
            ~solver:(Semi_oblivious.Mwu t.config.warm_iters)
            ~warm_start:(warm, t.config.warm_weight)
            t.graph t.system demand
      | Warm, Some warm ->
          (* Failures in play: re-optimize on the surviving candidates,
             the fault-recovery ladder's warm step. *)
          Semi_oblivious.resolve
            ~solver:(Semi_oblivious.Mwu t.config.warm_iters)
            ~warm_start:(warm, t.config.warm_weight)
            t.graph live solve_demand
      | (Cold | Warm | Degraded), _ ->
          Semi_oblivious.route ~solver:t.config.solver t.graph live
            solve_demand
  in
  let solve_ns = Obs.now_ns () - t0 in
  Obs.observe_quantile solve_q solve_ns;
  (match mode with
  | Cold ->
      t.since_cold <- 0;
      t.degraded_streak <- 0;
      Obs.incr cold_counter
  | Warm ->
      t.since_cold <- t.since_cold + 1;
      t.degraded_streak <- 0;
      Obs.incr warm_counter
  | Degraded ->
      t.since_cold <- t.since_cold + 1;
      t.degraded_streak <- t.degraded_streak + 1;
      Obs.incr degraded_counter);
  t.demand <- demand;
  t.routing <- Some routing;
  t.last_tick <- tick;
  Obs.incr ~by:(List.length applied) events_counter;
  Obs.incr ~by:(List.length fresh) admitted_counter;
  Obs.incr ~by:retired retired_counter;
  Obs.incr ~by:deferred deferred_counter;
  let tick_ns = Obs.now_ns () - tick_t0 in
  let report =
    { tick;
      events = List.length applied;
      arrivals;
      departures;
      rate_changes;
      active_pairs = List.length support;
      admitted = List.length fresh;
      retired;
      deferred;
      failed_edges = Hashtbl.length t.failed;
      rerouted;
      unroutable;
      congestion;
      mode;
      staleness = t.since_cold;
      solve_ns;
      tick_ns }
  in
  if Obs.tracing () then
    Obs.event "serve.tick"
      ~attrs:
        [ ("tick", Trace.Int tick);
          ("events", Trace.Int report.events);
          ("pairs", Trace.Int report.active_pairs);
          ("admitted", Trace.Int report.admitted);
          ("retired", Trace.Int report.retired);
          ("deferred", Trace.Int report.deferred);
          ("failed_edges", Trace.Int report.failed_edges);
          ("rerouted", Trace.Int report.rerouted);
          ("unroutable", Trace.Int report.unroutable);
          ("congestion", Trace.Float congestion);
          ("mode",
           Trace.String
             (match mode with
             | Cold -> "cold"
             | Warm -> "warm"
             | Degraded -> "degraded"));
          ("staleness", Trace.Int report.staleness) ];
  Obs.set_gauge staleness_gauge (float_of_int report.staleness);
  Obs.set_gauge failed_gauge (float_of_int report.failed_edges);
  Obs.observe_quantile tick_q (Obs.now_ns () - tick_t0);
  report

let replay ?on_tick ?(faults = []) t events =
  let t0 = Obs.now_ns () in
  let total_events = ref 0 in
  let fault_tbl = Hashtbl.create 16 in
  List.iter
    (fun (tick, fs) ->
      let prev = try Hashtbl.find fault_tbl tick with Not_found -> [] in
      Hashtbl.replace fault_tbl tick (prev @ fs))
    faults;
  let batches = Update.by_tick events in
  let ticks =
    List.sort_uniq compare
      (List.map fst batches @ List.map fst faults)
  in
  let batch_tbl = Hashtbl.create 64 in
  List.iter (fun (tick, b) -> Hashtbl.replace batch_tbl tick b) batches;
  let observe report =
    total_events := !total_events + report.events;
    let elapsed_ns = Obs.now_ns () - t0 in
    if elapsed_ns > 0 then
      Obs.set_gauge updates_gauge
        (1e9 *. float_of_int !total_events /. float_of_int elapsed_ns);
    (match (on_tick, t.routing) with
    | Some f, Some routing -> f report routing
    | _ -> ());
    report
  in
  let reports =
    List.map
      (fun tick ->
        let batch = try Hashtbl.find batch_tbl tick with Not_found -> [] in
        let fs = try Hashtbl.find fault_tbl tick with Not_found -> [] in
        observe (step t ~tick ~faults:fs batch))
      ticks
  in
  (* Drain ticks: a budgeted replay keeps stepping past the stream until
     the shed backlog is empty, so it ends on the same demand as an
     unbudgeted replay of the same stream. *)
  let drained = ref [] in
  while t.pending <> [] do
    drained := observe (step t ~tick:(t.last_tick + 1) []) :: !drained
  done;
  reports @ List.rev !drained

let faults_of_timeline (timeline : Timeline.t) =
  let events = ref [] in
  List.iter
    (fun (e : Timeline.entry) ->
      if Scenario.is_degradation e.Timeline.scenario then
        invalid_arg
          "Serve.faults_of_timeline: degradation scenarios have no serve \
           equivalent (full removals only)";
      let edges = Scenario.edges e.Timeline.scenario in
      List.iter
        (fun edge ->
          (* rank 1 orders failures after the repairs of the same tick *)
          events := (e.Timeline.fail_at, 1, Fail edge) :: !events;
          match e.Timeline.repair_at with
          | Some r -> events := (r, 0, Repair edge) :: !events
          | None -> ())
        edges)
    timeline;
  let sorted =
    List.stable_sort
      (fun (t1, r1, _) (t2, r2, _) -> compare (t1, r1) (t2, r2))
      (List.rev !events)
  in
  let by_tick = Hashtbl.create 16 in
  let ticks =
    List.fold_left
      (fun acc (tick, _, f) ->
        let prev = try Hashtbl.find by_tick tick with Not_found -> [] in
        Hashtbl.replace by_tick tick (f :: prev);
        if prev = [] then tick :: acc else acc)
      [] sorted
  in
  List.map
    (fun tick -> (tick, List.rev (Hashtbl.find by_tick tick)))
    (List.rev ticks)

let simulate ?discipline ?max_steps ?on_tick rng ~period t events =
  if period <= 0 then invalid_arg "Serve.simulate: period must be positive";
  let packets = ref [] in
  let reports =
    replay t events ~on_tick:(fun report routing ->
        let i0 = Obs.now_ns () in
        (* One rng child per tick, consumed in the demand's lexicographic
           order: the packet draw is a pure function of (seed, stream). *)
        let tick_rng = Rng.split_at rng report.tick in
        Demand.fold
          (fun s d rate () ->
            (* Pairs the routing does not cover (unroutable under
               failures, or absent from a degraded patch) inject
               nothing. *)
            if Routing.distribution routing s d <> [] then begin
              let copies = max 1 (int_of_float (Float.ceil (rate -. 1e-9))) in
              for _ = 1 to copies do
                let route = Routing.sample_path tick_rng routing s d in
                packets :=
                  { Simulator.pair = (s, d);
                    route;
                    release = report.tick * period }
                  :: !packets
              done
            end)
          t.demand ();
        Obs.observe_quantile inject_q (Obs.now_ns () - i0);
        match on_tick with Some f -> f report routing | None -> ())
  in
  let outcome =
    Simulator.run_timed ?discipline ?max_steps t.graph (List.rev !packets)
  in
  (outcome, reports)

(* ---------- checkpointable state ---------- *)

type state = {
  s_tick : int;
  s_since_cold : int;
  s_degraded_streak : int;
  s_demand : Demand.t;
  s_routing : Routing.t option;
  s_pending : Update.t list;
  s_failed : int list;
  s_system : string;
}

let snapshot t =
  let pairs =
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) t.seen [])
  in
  let ranges =
    List.map
      (fun (s, d) -> ((s, d), Path_system.slice_range t.system s d))
      pairs
  in
  { s_tick = t.last_tick;
    s_since_cold = t.since_cold;
    s_degraded_streak = t.degraded_streak;
    s_demand = t.demand;
    s_routing = t.routing;
    s_pending = t.pending;
    s_failed = failed_edges t;
    s_system =
      Codec.encode_path_system_slices (Path_system.arena t.system) ranges }

let state_corrupt fmt =
  Printf.ksprintf (fun msg -> raise (Codec.Corrupt msg)) fmt

let restore ?(config = default_config) graph system state =
  let t = create ~config graph system in
  let n = Graph.n graph in
  let m = Graph.m graph in
  (* Re-derive the arena through the system's own generator, in the
     payload's canonical pair order, and insist the candidates match:
     a checkpoint taken against a different seed, α, or base routing
     must be rejected, never silently resumed. *)
  let decoded = Codec.decode_path_system graph state.s_system in
  List.iter
    (fun ((s, d), paths) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        state_corrupt "checkpoint pair %d->%d out of range (graph has %d \
                       vertices)" s d n;
      let regenerated = Path_system.paths system s d in
      if not (List.equal Path.equal regenerated paths) then
        state_corrupt
          "checkpoint pair %d->%d disagrees with the regenerated candidates \
           (different sampler seed, alpha, or base routing?)" s d;
      Hashtbl.replace t.seen (s, d) ())
    decoded;
  List.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        state_corrupt "checkpoint demand pair %d->%d out of range" s d)
    (Demand.support state.s_demand);
  List.iter
    (fun (e : Update.t) ->
      if e.Update.src < 0 || e.Update.src >= n || e.Update.dst < 0
         || e.Update.dst >= n then
        state_corrupt "checkpoint deferred event endpoint out of range in \
                       %d->%d" e.Update.src e.Update.dst)
    state.s_pending;
  let rec check_failed prev = function
    | [] -> ()
    | e :: rest ->
        if e < 0 || e >= m then
          state_corrupt "checkpoint failed edge %d out of range (graph has \
                         %d edges)" e m;
        if e <= prev then
          state_corrupt "checkpoint failed edges not strictly ascending";
        Hashtbl.replace t.failed e ();
        check_failed e rest
  in
  check_failed (-1) state.s_failed;
  t.demand <- state.s_demand;
  t.routing <- state.s_routing;
  t.pending <- state.s_pending;
  t.last_tick <- state.s_tick;
  t.since_cold <- state.s_since_cold;
  t.degraded_streak <- state.s_degraded_streak;
  t

(* ---------- metrics snapshot ---------- *)

let write_metrics ~path =
  Obs.sample_gc_gauges ();
  let body = Obs.expose (Obs.snapshot ()) in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  Fun.protect
    ~finally:(fun () ->
      (* Never leave a stale .tmp beside the target: if the write or the
         rename failed, the temporary goes with it. *)
      if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      (try output_string oc body
       with e ->
         close_out_noerr oc;
         raise e);
      close_out oc;
      Sys.rename tmp path)

(* ---------- SLO ---------- *)

type slo = {
  p99_budget_ms : float;
  p99_ms : float;
  burns : int;
  burned : bool;
}

let check_slo ~budget_ms reports =
  if not (budget_ms > 0.0) then
    invalid_arg
      (Printf.sprintf "Serve.check_slo: budget must be positive, got %g"
         budget_ms);
  match reports with
  | [] -> { p99_budget_ms = budget_ms; p99_ms = 0.0; burns = 0; burned = false }
  | _ ->
      let a = Array.of_list (List.map (fun r -> r.solve_ns) reports) in
      Array.sort compare a;
      (* Same nearest-rank index the bench suite reports. *)
      let p99_ns = a.((99 * (Array.length a - 1) + 50) / 100) in
      let budget_ns = budget_ms *. 1e6 in
      let burns =
        List.length
          (List.filter (fun r -> float_of_int r.solve_ns > budget_ns) reports)
      in
      {
        p99_budget_ms = budget_ms;
        p99_ms = float_of_int p99_ns /. 1e6;
        burns;
        burned = float_of_int p99_ns > budget_ns;
      }

type overload = {
  budget_tick_ms : float;
  max_tick_ms : float;
  slow_ticks : int;
  overloaded : bool;
}

let check_overload ~budget_ms reports =
  if not (budget_ms > 0.0) then
    invalid_arg
      (Printf.sprintf "Serve.check_overload: budget must be positive, got %g"
         budget_ms);
  let budget_ns = budget_ms *. 1e6 in
  let max_ns =
    List.fold_left (fun acc r -> max acc r.tick_ns) 0 reports
  in
  let slow =
    List.length
      (List.filter (fun r -> float_of_int r.tick_ns > budget_ns) reports)
  in
  { budget_tick_ms = budget_ms;
    max_tick_ms = float_of_int max_ns /. 1e6;
    slow_ticks = slow;
    overloaded = slow > 0 }
