module Rng = Sso_prng.Rng
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Update = Sso_demand.Update
module Routing = Sso_flow.Routing
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Simulator = Sso_sim.Simulator

type config = {
  solver : Semi_oblivious.solver;
  warm_iters : int;
  warm_weight : int;
  refresh_every : int;
}

let default_config =
  (* warm_iters/warm_weight follow the fault-recovery ladder's sweet spot
     (Fault.Sweep.default_recovery): 60 virtual rounds of history plus a
     few fresh rounds recover near-cold quality under small drifts. *)
  { solver = Semi_oblivious.default_solver;
    warm_iters = 20;
    warm_weight = 60;
    refresh_every = 0 }

type mode = Cold | Warm

type report = {
  tick : int;
  events : int;
  arrivals : int;
  departures : int;
  rate_changes : int;
  active_pairs : int;
  admitted : int;
  retired : int;
  congestion : float;
  mode : mode;
  staleness : int;
  solve_ns : int;
}

type t = {
  graph : Graph.t;
  system : Path_system.t;
  config : config;
  seen : ((int * int), unit) Hashtbl.t;  (* pairs materialized so far *)
  mutable demand : Demand.t;
  mutable routing : Routing.t option;
  mutable last_tick : int;  (* -1 before the first step *)
  mutable since_cold : int;  (* consecutive warm solves *)
}

let create ?(config = default_config) graph system =
  if config.warm_iters <= 0 then
    invalid_arg "Serve.create: warm_iters must be positive";
  if config.warm_weight <= 0 then
    invalid_arg "Serve.create: warm_weight must be positive";
  if config.refresh_every < 0 then
    invalid_arg "Serve.create: refresh_every must be non-negative";
  { graph; system; config;
    seen = Hashtbl.create 256;
    demand = Demand.empty;
    routing = None;
    last_tick = -1;
    since_cold = 0 }

let graph t = t.graph
let system t = t.system
let demand t = t.demand
let routing t = t.routing

let tick_span = Obs.span "serve.tick"
let admit_span = Obs.span "serve.admit"
let solve_span = Obs.span "serve.solve"
let events_counter = Obs.counter "serve.events"
let admitted_counter = Obs.counter "serve.admitted"
let retired_counter = Obs.counter "serve.retired"
let cold_counter = Obs.counter "serve.cold_solves"
let warm_counter = Obs.counter "serve.warm_solves"

(* Live telemetry: rolling per-tick latency quantiles plus throughput and
   staleness gauges.  All wall-clock — they surface only through
   [Obs.snapshot]/[Obs.expose] and never enter reports, digests, or trace
   payloads (the same boundary as [solve_ns]). *)
let tick_q = Obs.quantile "serve.tick_ns"
let admit_q = Obs.quantile "serve.admit_ns"
let solve_q = Obs.quantile "serve.solve_ns"
let inject_q = Obs.quantile "serve.inject_ns"
let staleness_gauge = Obs.gauge "serve.staleness"
let updates_gauge = Obs.gauge "serve.updates_per_sec"

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Update.Corrupt msg)) fmt

let check_batch t ~tick events =
  if tick <= t.last_tick then
    corrupt "tick %d after tick %d (ticks must be strictly increasing)" tick
      t.last_tick;
  let n = Graph.n t.graph in
  List.iter
    (fun (e : Update.t) ->
      if e.Update.tick <> tick then
        corrupt "event for tick %d inside the batch of tick %d" e.Update.tick
          tick;
      if e.Update.src >= n || e.Update.dst >= n then
        corrupt "tick %d: endpoint out of range in %d->%d (graph has %d \
                 vertices)"
          tick e.Update.src e.Update.dst n)
    events

let count_kinds events =
  List.fold_left
    (fun (a, d, r) (e : Update.t) ->
      match e.Update.kind with
      | Update.Arrive _ -> (a + 1, d, r)
      | Update.Depart -> (a, d + 1, r)
      | Update.Set_rate _ -> (a, d, r + 1))
    (0, 0, 0) events

let step t ~tick events =
  Obs.with_span tick_span @@ fun () ->
  let tick_t0 = Obs.now_ns () in
  check_batch t ~tick events;
  let arrivals, departures, rate_changes = count_kinds events in
  let before = t.demand in
  let demand = Update.apply before events in
  let support = Demand.support demand in
  (* Admission: materialize never-seen pairs into the shared arena, in
     deterministic chunk order on the pool.  Retired pairs keep their
     slices — a returning commodity is re-admitted for free. *)
  let fresh =
    List.filter (fun p -> not (Hashtbl.mem t.seen p)) support
  in
  let admit_ns =
    if fresh = [] then 0
    else begin
      let a0 = Obs.now_ns () in
      Obs.with_span admit_span (fun () ->
          Path_system.materialize_parallel t.system fresh;
          List.iter (fun p -> Hashtbl.replace t.seen p ()) fresh);
      Obs.now_ns () - a0
    end
  in
  Obs.observe_quantile admit_q admit_ns;
  let retired =
    List.length
      (List.filter
         (fun (s, d) -> Demand.get demand s d <= 0.0)
         (Demand.support before))
  in
  let warm_capable =
    match t.config.solver with
    | Semi_oblivious.Mwu _ -> true
    | Semi_oblivious.Lp | Semi_oblivious.Gk _ -> false
  in
  let mode =
    match t.routing with
    | None -> Cold
    | Some _ when not warm_capable -> Cold
    | Some _
      when t.config.refresh_every > 0
           && t.since_cold + 1 >= t.config.refresh_every ->
        Cold
    | Some _ -> Warm
  in
  let t0 = Obs.now_ns () in
  let routing, congestion =
    Obs.with_span solve_span @@ fun () ->
    if support = [] then (Routing.make [], 0.0)
    else
      match (mode, t.routing) with
      | Warm, Some warm ->
          Semi_oblivious.reoptimize
            ~solver:(Semi_oblivious.Mwu t.config.warm_iters)
            ~warm_start:(warm, t.config.warm_weight)
            t.graph t.system demand
      | (Cold | Warm), _ ->
          Semi_oblivious.route ~solver:t.config.solver t.graph t.system demand
  in
  let solve_ns = Obs.now_ns () - t0 in
  Obs.observe_quantile solve_q solve_ns;
  (match mode with
  | Cold ->
      t.since_cold <- 0;
      Obs.incr cold_counter
  | Warm ->
      t.since_cold <- t.since_cold + 1;
      Obs.incr warm_counter);
  t.demand <- demand;
  t.routing <- Some routing;
  t.last_tick <- tick;
  Obs.incr ~by:(List.length events) events_counter;
  Obs.incr ~by:(List.length fresh) admitted_counter;
  Obs.incr ~by:retired retired_counter;
  let report =
    { tick;
      events = List.length events;
      arrivals;
      departures;
      rate_changes;
      active_pairs = List.length support;
      admitted = List.length fresh;
      retired;
      congestion;
      mode;
      staleness = t.since_cold;
      solve_ns }
  in
  if Obs.tracing () then
    Obs.event "serve.tick"
      ~attrs:
        [ ("tick", Trace.Int tick);
          ("events", Trace.Int report.events);
          ("pairs", Trace.Int report.active_pairs);
          ("admitted", Trace.Int report.admitted);
          ("retired", Trace.Int report.retired);
          ("congestion", Trace.Float congestion);
          ("mode", Trace.String (match mode with Cold -> "cold" | Warm -> "warm"));
          ("staleness", Trace.Int report.staleness) ];
  Obs.set_gauge staleness_gauge (float_of_int report.staleness);
  Obs.observe_quantile tick_q (Obs.now_ns () - tick_t0);
  report

let replay ?on_tick t events =
  let t0 = Obs.now_ns () in
  let total_events = ref 0 in
  List.map
    (fun (tick, batch) ->
      let report = step t ~tick batch in
      total_events := !total_events + report.events;
      let elapsed_ns = Obs.now_ns () - t0 in
      if elapsed_ns > 0 then
        Obs.set_gauge updates_gauge
          (1e9 *. float_of_int !total_events /. float_of_int elapsed_ns);
      (match (on_tick, t.routing) with
      | Some f, Some routing -> f report routing
      | _ -> ());
      report)
    (Update.by_tick events)

let simulate ?discipline ?max_steps ?on_tick rng ~period t events =
  if period <= 0 then invalid_arg "Serve.simulate: period must be positive";
  let packets = ref [] in
  let reports =
    replay t events ~on_tick:(fun report routing ->
        let i0 = Obs.now_ns () in
        (* One rng child per tick, consumed in the demand's lexicographic
           order: the packet draw is a pure function of (seed, stream). *)
        let tick_rng = Rng.split_at rng report.tick in
        Demand.fold
          (fun s d rate () ->
            let copies = max 1 (int_of_float (Float.ceil (rate -. 1e-9))) in
            for _ = 1 to copies do
              let route = Routing.sample_path tick_rng routing s d in
              packets :=
                { Simulator.pair = (s, d);
                  route;
                  release = report.tick * period }
                :: !packets
            done)
          t.demand ();
        Obs.observe_quantile inject_q (Obs.now_ns () - i0);
        match on_tick with Some f -> f report routing | None -> ())
  in
  let outcome =
    Simulator.run_timed ?discipline ?max_steps t.graph (List.rev !packets)
  in
  (outcome, reports)

(* ---------- SLO ---------- *)

type slo = {
  p99_budget_ms : float;
  p99_ms : float;
  burns : int;
  burned : bool;
}

let check_slo ~budget_ms reports =
  if not (budget_ms > 0.0) then
    invalid_arg
      (Printf.sprintf "Serve.check_slo: budget must be positive, got %g"
         budget_ms);
  match reports with
  | [] -> { p99_budget_ms = budget_ms; p99_ms = 0.0; burns = 0; burned = false }
  | _ ->
      let a = Array.of_list (List.map (fun r -> r.solve_ns) reports) in
      Array.sort compare a;
      (* Same nearest-rank index the bench suite reports. *)
      let p99_ns = a.((99 * (Array.length a - 1) + 50) / 100) in
      let budget_ns = budget_ms *. 1e6 in
      let burns =
        List.length
          (List.filter (fun r -> float_of_int r.solve_ns > budget_ns) reports)
      in
      {
        p99_budget_ms = budget_ms;
        p99_ms = float_of_int p99_ns /. 1e6;
        burns;
        burned = float_of_int p99_ns > budget_ns;
      }
