(** Long-lived routing service: incremental re-optimization under churn.

    The semi-oblivious scheme is shaped like a daemon: the sparse sampled
    path system is installed {e once} (Stage 2), and only the rates on it
    are re-optimized as traffic changes (Stage 4).  This module is that
    daemon's engine.  It consumes a stream of {!Sso_demand.Update} events
    batched per tick and, for each batch:

    - folds the batch into the active demand ({!Sso_demand.Update.apply});
    - {e admits} newly seen commodities by materializing their candidate
      slices into the shared path arena
      ({!Sso_core.Path_system.materialize_parallel} — appends, never a
      rebuild, sharded across the engine pool with a layout independent
      of the job count);
    - {e retires} departed commodities (their distributions drop out of
      the warm routing; their arena slices stay, so a returning pair is
      re-admitted for free);
    - re-solves incrementally with {!Sso_core.Semi_oblivious.reoptimize},
      carrying the previous routing as MWU warm-start weight, falling
      back to a cold solve on the first tick and every [refresh_every]-th
      solve thereafter.

    Three robustness layers wrap that loop (DESIGN.md §14):

    - {e Faults in the loop}: {!step} takes per-tick {!fault} events that
      fail or repair edges.  While edges are down the solve runs on the
      surviving candidates ({!Sso_core.Path_system.filter_paths}), warm
      ticks re-optimize with {!Sso_core.Semi_oblivious.resolve} exactly
      like the fault-recovery ladder, and pairs left with no surviving
      candidate are excluded from the solve (counted [unroutable]) until
      a repair brings them back.
    - {e Overload shedding}: with a positive [event_budget], a tick
      admits at most that many events; the excess is deferred — requeued
      in order ahead of the next tick's batch and counted in the report.
      An overloaded tick may serve the previous routing unchanged
      ({!mode} [Degraded], restricted to surviving paths) instead of
      re-solving, for at most [max_staleness] consecutive ticks.
    - {e Checkpoint/restore}: {!snapshot} captures the full service state
      as a plain {!state} value and {!restore} rebuilds a service from
      it, re-deriving the arena from the system's own generator and
      refusing ({!Sso_artifact.Codec.Corrupt}) if the regenerated
      candidates disagree with the checkpointed ones.  See
      {!Checkpoint} for the on-disk format.

    Everything is deterministic: the same stream, seed, configuration,
    and fault schedule produce bit-identical routings, reports, and
    digests at any [--jobs].  Per-tick telemetry flows through [serve.*]
    counters/spans and, when tracing is on, a [serve.tick] trace event
    per batch. *)

type config = {
  solver : Sso_core.Semi_oblivious.solver;
      (** Cold-solve engine (default [Mwu 300]).  Warm ticks need an MWU
          solver; with [Lp]/[Gk] every tick is a cold solve. *)
  warm_iters : int;  (** Fresh MWU rounds per warm tick (default 20). *)
  warm_weight : int;
      (** Virtual rounds the carried routing counts as (default 60). *)
  refresh_every : int;
      (** Cold re-solve every this many solves; [0] (the default) never
          refreshes — the warm chain runs for the service's lifetime. *)
  event_budget : int;
      (** Per-tick admission budget: a tick applies at most this many
          events (deferred leftovers first, then the incoming batch in
          order); the rest carries over to the next tick.  [0] (the
          default) admits everything. *)
  max_staleness : int;
      (** Consecutive ticks allowed to serve the stale routing
          ([Degraded]) when over budget before a real re-solve is
          forced (default 4; [0] never degrades — overloaded ticks
          still shed events but always re-solve). *)
}

val default_config : config

type mode =
  | Cold  (** Full solve from scratch. *)
  | Warm  (** Incremental MWU re-optimization from the previous routing. *)
  | Degraded
      (** Overloaded: the previous routing served as-is (restricted to
          surviving paths), no solve.  Bounded by [max_staleness]. *)

type fault =
  | Fail of int  (** The edge id goes down before the tick's solve. *)
  | Repair of int  (** The edge id comes back. *)

type report = {
  tick : int;
  events : int;
      (** Events {e applied} this tick (deferred leftovers included);
          shed events surface in [deferred] instead. *)
  arrivals : int;
  departures : int;
  rate_changes : int;
  active_pairs : int;  (** Commodities after folding the batch. *)
  admitted : int;  (** Pairs newly materialized into the arena. *)
  retired : int;  (** Pairs that left the active set this tick. *)
  deferred : int;
      (** Events shed to the next tick by the [event_budget] policy. *)
  failed_edges : int;  (** Edges down after this tick's fault events. *)
  rerouted : int;
      (** Pairs whose previous routing put weight on an edge that failed
          this tick — the commodities the fault actually displaced. *)
  unroutable : int;
      (** Active pairs with no surviving candidate path; excluded from
          the solve until a repair restores a candidate. *)
  congestion : float;  (** Congestion of the re-optimized routing. *)
  mode : mode;
  staleness : int;
      (** Warm or degraded solves since the last cold solve, this one
          included; [0] on cold ticks. *)
  solve_ns : int;
      (** Wall time of the re-solve — nondeterministic; deterministic
          outputs (JSON, digests) must not include it. *)
  tick_ns : int;
      (** Wall time of the whole tick (admission + solve + bookkeeping) —
          nondeterministic, same contract as [solve_ns]; input to
          {!check_overload}. *)
}

type t

val create : ?config:config -> Sso_graph.Graph.t -> Sso_core.Path_system.t -> t
(** A fresh service over an installed path system (typically a lazy
    α-sample, so admission generates paths on demand).  No solve happens
    until the first {!step}. *)

val graph : t -> Sso_graph.Graph.t
val system : t -> Sso_core.Path_system.t

val demand : t -> Sso_demand.Demand.t
(** The active demand (empty before the first step). *)

val routing : t -> Sso_flow.Routing.t option
(** The current routing ([None] before the first step). *)

val pending : t -> Sso_demand.Update.t list
(** Events shed by the budget policy, waiting (in order) for the next
    tick. *)

val failed_edges : t -> int list
(** Edges currently down, ascending. *)

val step : t -> tick:int -> ?faults:fault list -> Sso_demand.Update.t list ->
  report
(** Fold one tick's batch and re-solve.  Ticks must be strictly
    increasing across calls; every event must carry the given tick and
    endpoints within the graph.  [faults] are applied {e before} the
    batch: each [Fail] must name a live in-range edge and each [Repair]
    a currently failed one.  @raise Sso_demand.Update.Corrupt on stream
    inconsistencies (wrong tick, out-of-range endpoint, departure of an
    inactive pair, double failure, repair of a healthy edge, ...),
    [Invalid_argument] if a demanded pair has no candidate paths while
    nothing is failed (with failures such pairs are shed as
    [unroutable] instead). *)

val replay :
  ?on_tick:(report -> Sso_flow.Routing.t -> unit) ->
  ?faults:(int * fault list) list ->
  t -> Sso_demand.Update.t list -> report list
(** Drive the service over a whole logged stream, one {!step} per tick
    present in the stream or the fault schedule (fault-only ticks step
    with an empty batch); [faults] maps ticks to fault events and may
    extend past the stream.  After the last tick, deferred events are
    drained on synthetic trailing ticks until the queue is empty, so a
    budgeted replay ends on the same demand as an unbudgeted one.
    [on_tick] observes each report with the tick's routing (e.g. to feed
    the simulator or hash the routing). *)

val faults_of_timeline : Sso_fault.Timeline.t -> (int * fault list) list
(** Bridge a fault timeline into the service: each entry's scenario
    edges fail at [fail_at] and repair at [repair_at] (when present),
    with steps read as ticks.  Within a tick, repairs precede failures,
    so a repair-then-refail schedule is expressible.  Sorted by tick,
    ready for {!replay}.  @raise Invalid_argument if an entry's scenario
    is a degradation (the service models full removals only). *)

val simulate :
  ?discipline:Sso_sim.Simulator.discipline ->
  ?max_steps:int ->
  ?on_tick:(report -> Sso_flow.Routing.t -> unit) ->
  Sso_prng.Rng.t -> period:int -> t -> Sso_demand.Update.t list ->
  Sso_sim.Simulator.load_stats Sso_sim.Simulator.outcome * report list
(** Replay the stream and push the resulting traffic through the packet
    simulator: each tick injects, per active commodity the tick's
    routing covers, [ceil rate] packets on paths drawn from that routing
    (a per-tick [Rng.split_at] child, so the draw is independent of
    [--jobs]), released at [tick * period].  Commodities the routing
    does not cover (e.g. unroutable under failures) inject nothing.
    Returns the timed-load statistics beside the per-tick reports.
    [on_tick] observes each report after the tick's packets are injected
    (e.g. the metrics snapshot writer).  [period] must be positive. *)

(** {1 Checkpointable state}

    {!state} is the full value of a service between ticks — everything
    {!step} reads besides the graph and the path-system generator.  The
    arena is captured as the v2 slice payload of every materialized
    pair ({!Sso_artifact.Codec.encode_path_system_slices}), and
    {!restore} re-derives it from the (per-pair deterministic) generator
    of a freshly sampled system, comparing against the payload so a
    checkpoint from a different seed, α, or base routing is rejected as
    {!Sso_artifact.Codec.Corrupt} rather than silently resumed. *)

type state = {
  s_tick : int;  (** [last_tick]; [-1] before the first step. *)
  s_since_cold : int;
  s_degraded_streak : int;
  s_demand : Sso_demand.Demand.t;
  s_routing : Sso_flow.Routing.t option;
  s_pending : Sso_demand.Update.t list;
  s_failed : int list;  (** Failed edge ids, strictly ascending. *)
  s_system : string;
      (** v2 slice payload of the materialized pairs (sorted). *)
}

val snapshot : t -> state
(** Capture the service between ticks.  Pure read — the service keeps
    running. *)

val restore :
  ?config:config -> Sso_graph.Graph.t -> Sso_core.Path_system.t -> state -> t
(** Rebuild a service from a snapshot over a freshly created system
    (same graph, same sampler seed).  Every checkpointed pair is
    materialized through the system's generator in canonical (sorted)
    order and compared path-by-path against the payload.
    @raise Sso_artifact.Codec.Corrupt if the payload is damaged, the
    regenerated candidates differ (wrong seed/α/base), or any endpoint,
    edge id, or failed-edge list is out of contract. *)

(** {1 Telemetry and SLO}

    Every {!step} feeds rolling quantiles [serve.tick_ns] /
    [serve.admit_ns] / [serve.solve_ns] (and {!simulate} [serve.inject_ns])
    plus [serve.staleness], [serve.failed_edges] and
    [serve.updates_per_sec] gauges in the {!Sso_obs.Obs} registry.  All
    wall-clock: they surface only through [Obs.snapshot]/[Obs.expose],
    never in reports, digests, or trace payloads. *)

val write_metrics : path:string -> unit
(** Snapshot the registry (GC gauges sampled) as Prometheus text
    exposition to [path], atomically: the text is written to a [.tmp]
    sibling and renamed over the target.  The temporary is removed on
    {e any} failure — an interrupted write never leaves a stale [.tmp]
    beside the target.  @raise Sys_error when the write fails. *)

type slo = {
  p99_budget_ms : float;  (** The budget checked against. *)
  p99_ms : float;  (** Nearest-rank p99 of per-tick [solve_ns], in ms. *)
  burns : int;  (** Ticks whose solve exceeded the budget. *)
  burned : bool;  (** [p99_ms] exceeds the budget. *)
}

val check_slo : budget_ms:float -> report list -> slo
(** Evaluate a replay's per-tick solve latencies against a p99 budget
    (the nearest-rank index the bench suite reports).  An empty report
    list yields [p99_ms = 0.] and no burn.  Wall-clock based — callers
    must keep the verdict out of deterministic output ([sso serve replay
    --slo-p99-ms] reports on stderr and signals burn via exit code 12).
    @raise Invalid_argument if [budget_ms <= 0]. *)

type overload = {
  budget_tick_ms : float;  (** The per-tick wall budget checked. *)
  max_tick_ms : float;  (** Slowest tick observed, in ms. *)
  slow_ticks : int;  (** Ticks over budget. *)
  overloaded : bool;  (** [slow_ticks > 0]. *)
}

val check_overload : budget_ms:float -> report list -> overload
(** The wall-clock face of the overload policy: flag every tick whose
    total wall time ([tick_ns]) exceeded the budget.  Same contract as
    {!check_slo} — stderr/exit-code only, never in deterministic output
    ([sso serve replay --overload-ms], exit 12 when overloaded).
    @raise Invalid_argument if [budget_ms <= 0]. *)
