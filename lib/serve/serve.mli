(** Long-lived routing service: incremental re-optimization under churn.

    The semi-oblivious scheme is shaped like a daemon: the sparse sampled
    path system is installed {e once} (Stage 2), and only the rates on it
    are re-optimized as traffic changes (Stage 4).  This module is that
    daemon's engine.  It consumes a stream of {!Sso_demand.Update} events
    batched per tick and, for each batch:

    - folds the batch into the active demand ({!Sso_demand.Update.apply});
    - {e admits} newly seen commodities by materializing their candidate
      slices into the shared path arena
      ({!Sso_core.Path_system.materialize_parallel} — appends, never a
      rebuild, sharded across the engine pool with a layout independent
      of the job count);
    - {e retires} departed commodities (their distributions drop out of
      the warm routing; their arena slices stay, so a returning pair is
      re-admitted for free);
    - re-solves incrementally with {!Sso_core.Semi_oblivious.reoptimize},
      carrying the previous routing as MWU warm-start weight, falling
      back to a cold solve on the first tick and every [refresh_every]-th
      solve thereafter.

    Everything is deterministic: the same stream, seed, and configuration
    produce bit-identical routings, reports, and digests at any [--jobs].
    Per-tick telemetry flows through [serve.*] counters/spans and, when
    tracing is on, a [serve.tick] trace event per batch. *)

type config = {
  solver : Sso_core.Semi_oblivious.solver;
      (** Cold-solve engine (default [Mwu 300]).  Warm ticks need an MWU
          solver; with [Lp]/[Gk] every tick is a cold solve. *)
  warm_iters : int;  (** Fresh MWU rounds per warm tick (default 20). *)
  warm_weight : int;
      (** Virtual rounds the carried routing counts as (default 60). *)
  refresh_every : int;
      (** Cold re-solve every this many solves; [0] (the default) never
          refreshes — the warm chain runs for the service's lifetime. *)
}

val default_config : config

type mode = Cold | Warm

type report = {
  tick : int;
  events : int;  (** Events in this tick's batch. *)
  arrivals : int;
  departures : int;
  rate_changes : int;
  active_pairs : int;  (** Commodities after folding the batch. *)
  admitted : int;  (** Pairs newly materialized into the arena. *)
  retired : int;  (** Pairs that left the active set this tick. *)
  congestion : float;  (** Congestion of the re-optimized routing. *)
  mode : mode;
  staleness : int;
      (** Warm solves since the last cold solve, this one included;
          [0] on cold ticks. *)
  solve_ns : int;
      (** Wall time of the re-solve — the only nondeterministic field;
          deterministic outputs (JSON, digests) must not include it. *)
}

type t

val create : ?config:config -> Sso_graph.Graph.t -> Sso_core.Path_system.t -> t
(** A fresh service over an installed path system (typically a lazy
    α-sample, so admission generates paths on demand).  No solve happens
    until the first {!step}. *)

val graph : t -> Sso_graph.Graph.t
val system : t -> Sso_core.Path_system.t

val demand : t -> Sso_demand.Demand.t
(** The active demand (empty before the first step). *)

val routing : t -> Sso_flow.Routing.t option
(** The current routing ([None] before the first step). *)

val step : t -> tick:int -> Sso_demand.Update.t list -> report
(** Fold one tick's batch and re-solve.  Ticks must be strictly
    increasing across calls; every event must carry the given tick and
    endpoints within the graph.  @raise Sso_demand.Update.Corrupt on
    stream inconsistencies (wrong tick, out-of-range endpoint, departure
    of an inactive pair, ...), [Invalid_argument] if a demanded pair has
    no candidate paths. *)

val replay : ?on_tick:(report -> Sso_flow.Routing.t -> unit) -> t ->
  Sso_demand.Update.t list -> report list
(** Drive the service over a whole logged stream, one {!step} per tick
    present in it ({!Sso_demand.Update.by_tick}); [on_tick] observes each
    report with the tick's routing (e.g. to feed the simulator or hash
    the routing). *)

val simulate :
  ?discipline:Sso_sim.Simulator.discipline ->
  ?max_steps:int ->
  ?on_tick:(report -> Sso_flow.Routing.t -> unit) ->
  Sso_prng.Rng.t -> period:int -> t -> Sso_demand.Update.t list ->
  Sso_sim.Simulator.load_stats Sso_sim.Simulator.outcome * report list
(** Replay the stream and push the resulting traffic through the packet
    simulator: each tick injects, per active commodity, [ceil rate]
    packets on paths drawn from that tick's routing (a per-tick
    [Rng.split_at] child, so the draw is independent of [--jobs]),
    released at [tick * period].  Returns the timed-load statistics
    beside the per-tick reports.  [on_tick] observes each report after
    the tick's packets are injected (e.g. the metrics snapshot writer).
    [period] must be positive. *)

(** {1 Telemetry and SLO}

    Every {!step} feeds rolling quantiles [serve.tick_ns] /
    [serve.admit_ns] / [serve.solve_ns] (and {!simulate} [serve.inject_ns])
    plus [serve.staleness] and [serve.updates_per_sec] gauges in the
    {!Sso_obs.Obs} registry.  All wall-clock: they surface only through
    [Obs.snapshot]/[Obs.expose], never in reports, digests, or trace
    payloads. *)

type slo = {
  p99_budget_ms : float;  (** The budget checked against. *)
  p99_ms : float;  (** Nearest-rank p99 of per-tick [solve_ns], in ms. *)
  burns : int;  (** Ticks whose solve exceeded the budget. *)
  burned : bool;  (** [p99_ms] exceeds the budget. *)
}

val check_slo : budget_ms:float -> report list -> slo
(** Evaluate a replay's per-tick solve latencies against a p99 budget
    (the nearest-rank index the bench suite reports).  An empty report
    list yields [p99_ms = 0.] and no burn.  Wall-clock based — callers
    must keep the verdict out of deterministic output ([sso serve replay
    --slo-p99-ms] reports on stderr and signals burn via exit code 12).
    @raise Invalid_argument if [budget_ms <= 0]. *)
