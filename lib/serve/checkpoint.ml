module Graph = Sso_graph.Graph
module Update = Sso_demand.Update
module Semi_oblivious = Sso_core.Semi_oblivious
module Codec = Sso_artifact.Codec

exception Unreadable of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Codec.Corrupt msg)) fmt
let unreadable fmt = Printf.ksprintf (fun msg -> raise (Unreadable msg)) fmt

let tag = 0x4B (* 'K' *)
let version = 1

(* ---------- event encoding (shared by pending and events_digest) ---------- *)

let write_event w (e : Update.t) =
  Codec.write_varint w e.Update.tick;
  Codec.write_varint w e.Update.src;
  Codec.write_varint w e.Update.dst;
  match e.Update.kind with
  | Update.Arrive rate ->
      Codec.write_u8 w 0;
      Codec.write_f64 w rate
  | Update.Depart -> Codec.write_u8 w 1
  | Update.Set_rate rate ->
      Codec.write_u8 w 2;
      Codec.write_f64 w rate

let read_event r : Update.t =
  let tick = Codec.read_varint r in
  let src = Codec.read_varint r in
  let dst = Codec.read_varint r in
  let kind =
    match Codec.read_u8 r with
    | 0 -> Update.Arrive (Codec.read_f64 r)
    | 1 -> Update.Depart
    | 2 -> Update.Set_rate (Codec.read_f64 r)
    | k -> corrupt "checkpoint: unknown event kind %d" k
  in
  { Update.tick; src; dst; kind }

let events_digest events =
  let w = Codec.writer () in
  Codec.write_varint w (List.length events);
  List.iter (write_event w) events;
  Codec.fnv1a64 (Codec.contents w)

let config_repr (c : Serve.config) =
  let solver =
    match c.Serve.solver with
    | Semi_oblivious.Lp -> "lp"
    | Semi_oblivious.Mwu n -> Printf.sprintf "mwu-%d" n
    | Semi_oblivious.Gk eps -> Printf.sprintf "gk-%h" eps
  in
  Printf.sprintf "solver=%s;warm_iters=%d;warm_weight=%d;refresh_every=%d;\
                  event_budget=%d;max_staleness=%d"
    solver c.Serve.warm_iters c.Serve.warm_weight c.Serve.refresh_every
    c.Serve.event_budget c.Serve.max_staleness

(* ---------- blob codec ---------- *)

let encode ~stream_digest ~graph ~config (s : Serve.state) =
  let w = Codec.writer () in
  Codec.write_u8 w tag;
  Codec.write_u8 w version;
  Codec.write_i64 w stream_digest;
  Codec.write_i64 w (Codec.graph_digest graph);
  Codec.write_string w (config_repr config);
  Codec.write_varint w (s.Serve.s_tick + 1);
  Codec.write_varint w s.Serve.s_since_cold;
  Codec.write_varint w s.Serve.s_degraded_streak;
  Codec.write_string w (Codec.encode_demand s.Serve.s_demand);
  (match s.Serve.s_routing with
  | None -> Codec.write_u8 w 0
  | Some r ->
      Codec.write_u8 w 1;
      Codec.write_string w (Codec.encode_routing r));
  Codec.write_varint w (List.length s.Serve.s_pending);
  List.iter (write_event w) s.Serve.s_pending;
  Codec.write_varint w (List.length s.Serve.s_failed);
  List.iter (Codec.write_varint w) s.Serve.s_failed;
  Codec.write_string w s.Serve.s_system;
  let body = Codec.contents w in
  let tail = Codec.writer () in
  Codec.write_i64 tail (Codec.fnv1a64 body);
  body ^ Codec.contents tail

let decode ~graph blob =
  let len = String.length blob in
  (* Checksum first: any flipped bit anywhere fails here, before a
     single field is parsed. *)
  if len < 10 then corrupt "checkpoint: truncated (%d bytes)" len;
  let body = String.sub blob 0 (len - 8) in
  let declared = Codec.read_i64 (Codec.reader (String.sub blob (len - 8) 8)) in
  if not (Int64.equal declared (Codec.fnv1a64 body)) then
    corrupt "checkpoint: checksum mismatch";
  let r = Codec.reader body in
  let t = Codec.read_u8 r in
  if t <> tag then corrupt "checkpoint: bad tag 0x%02x" t;
  let v = Codec.read_u8 r in
  if v <> version then corrupt "checkpoint: unsupported version %d" v;
  let stream_digest = Codec.read_i64 r in
  let graph_digest = Codec.read_i64 r in
  if not (Int64.equal graph_digest (Codec.graph_digest graph)) then
    corrupt "checkpoint: graph digest mismatch (taken on a different graph)";
  let config = Codec.read_string r in
  let s_tick = Codec.read_varint r - 1 in
  let s_since_cold = Codec.read_varint r in
  let s_degraded_streak = Codec.read_varint r in
  let s_demand = Codec.decode_demand (Codec.read_string r) in
  let s_routing =
    match Codec.read_u8 r with
    | 0 -> None
    | 1 -> Some (Codec.decode_routing graph (Codec.read_string r))
    | f -> corrupt "checkpoint: bad routing flag %d" f
  in
  let n_pending = Codec.read_varint r in
  let s_pending = List.init n_pending (fun _ -> read_event r) in
  let n_failed = Codec.read_varint r in
  let s_failed = List.init n_failed (fun _ -> Codec.read_varint r) in
  let s_system = Codec.read_string r in
  Codec.expect_end r;
  ( stream_digest,
    config,
    { Serve.s_tick;
      s_since_cold;
      s_degraded_streak;
      s_demand;
      s_routing;
      s_pending;
      s_failed;
      s_system } )

(* ---------- files ---------- *)

let filename ~tick =
  if tick < 0 then invalid_arg "Checkpoint.filename: tick must be >= 0";
  Printf.sprintf "ckpt-%010d.bin" tick

let parse_filename name =
  if String.length name = 19
     && String.sub name 0 5 = "ckpt-"
     && String.sub name 15 4 = ".bin"
  then int_of_string_opt (String.sub name 5 10)
  else None

let write ~dir ~stream_digest ~graph ~config state =
  if state.Serve.s_tick < 0 then
    invalid_arg "Checkpoint.write: no tick processed yet";
  let blob = encode ~stream_digest ~graph ~config state in
  (try
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (err, _, _) ->
      unreadable "checkpoint dir %s: %s" dir (Unix.error_message err));
  let path = Filename.concat dir (filename ~tick:state.Serve.s_tick) in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  (try
     Fun.protect
       ~finally:(fun () ->
         if Sys.file_exists tmp then
           try Sys.remove tmp with Sys_error _ -> ())
       (fun () ->
         let oc = open_out_bin tmp in
         (try output_string oc blob
          with e ->
            close_out_noerr oc;
            raise e);
         close_out oc;
         Sys.rename tmp path)
   with Sys_error msg -> unreadable "checkpoint %s: %s" path msg);
  path

let latest ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
      Array.fold_left
        (fun best name ->
          match parse_filename name with
          | Some tick
            when (match best with Some (t, _) -> tick > t | None -> true) ->
              Some (tick, Filename.concat dir name)
          | _ -> best)
        None names

let load ~graph path =
  let blob =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | Sys_error msg -> unreadable "%s" msg
    | End_of_file -> unreadable "checkpoint %s: short read" path
  in
  decode ~graph blob
