(** Canonical, versioned binary codecs for the artifact store.

    Hand-rolled writer/reader over [Buffer]/[string] — deliberately not
    [Marshal]: the encoding is stable across OCaml versions and
    architectures, every read is bounds-checked, and malformed input raises
    {!Corrupt} instead of segfaulting or silently misreading.  Floats are
    stored as their IEEE-754 bit patterns, so every round trip is
    bit-identical — the property the determinism contract (DESIGN.md §6)
    rests on: a warm run that decodes a cached object must behave exactly
    like the cold run that built it.

    Every top-level codec writes a one-byte kind tag and a format-version
    byte.  Bump {!format_version} on any layout change: old cache entries
    then decode as {!Corrupt} and are treated as misses (never
    half-deserialized). *)

exception Corrupt of string
(** Raised by every [decode_*]/[read_*] on malformed, truncated, or
    mis-tagged input.  The store maps it to a cache miss. *)

val format_version : int

(** {1 Primitives} *)

type writer
type reader

val writer : unit -> writer
val contents : writer -> string

val reader : string -> reader
val expect_end : reader -> unit
(** @raise Corrupt if unread bytes remain. *)

val write_u8 : writer -> int -> unit
val read_u8 : reader -> int

val write_varint : writer -> int -> unit
(** LEB128 for non-negative ints.  @raise Invalid_argument on negatives. *)

val read_varint : reader -> int

val write_i64 : writer -> int64 -> unit
val read_i64 : reader -> int64

val write_f64 : writer -> float -> unit
(** IEEE-754 bits, little-endian — bit-exact round trip. *)

val read_f64 : reader -> float

val write_string : writer -> string -> unit
val read_string : reader -> string

(** {1 Hashing} *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a — the store's content-address hash. *)

val hex_of_key : int64 -> string
(** 16 lowercase hex digits. *)

(** {1 Object codecs} *)

val encode_graph : Sso_graph.Graph.t -> string
val decode_graph : string -> Sso_graph.Graph.t

val graph_digest : Sso_graph.Graph.t -> int64
(** [fnv1a64 (encode_graph g)] — the graph component of recipe keys. *)

val encode_demand : Sso_demand.Demand.t -> string
val decode_demand : string -> Sso_demand.Demand.t

val encode_path : Sso_graph.Path.t -> string
val decode_path : Sso_graph.Graph.t -> string -> Sso_graph.Path.t
(** Decoding validates the edge sequence against the graph. *)

val encode_path_system :
  Sso_graph.Graph.t -> ((int * int) * Sso_graph.Path.t list) list -> string
(** Materialized candidate sets, canonically ordered by pair.  Writes the
    v2 layout: paths are stored as packed CSR-slot bytes (the
    {!Sso_graph.Arena} encoding) against the graph, roughly one byte per
    hop.  @raise Invalid_argument if a path is not a walk of the graph. *)

val encode_path_system_slices :
  Sso_graph.Arena.t -> ((int * int) * (int * int)) list -> string
(** Same format, written directly from an arena: per pair the [count]
    slices starting at [first] (ranges as [(pair, (first, count))]) are
    blitted verbatim from the arena's data buffer — no boxed path is
    materialized on the save path. *)

val decode_path_system :
  Sso_graph.Graph.t -> string -> ((int * int) * Sso_graph.Path.t list) list
(** Accepts both the v1 layout (edge-id varints per path) and v2 — old
    cache entries stay readable. *)

val encode_arena : Sso_graph.Arena.t -> string
val decode_arena : Sso_graph.Graph.t -> string -> Sso_graph.Arena.t
(** A whole arena as one block: slice count, then per slice
    [src, dst, hops] varints followed by its packed slot bytes.  Decoding
    re-validates every slot against the graph's adjacency rows
    ({!Corrupt} on any malformed byte). *)

val encode_distributions :
  ((int * int) * (float * Sso_graph.Path.t) list) list -> string
(** Per-pair weighted path distributions (oblivious-routing restrictions,
    Stage-4 rate solutions), canonically ordered by pair. *)

val decode_distributions :
  Sso_graph.Graph.t -> string -> ((int * int) * (float * Sso_graph.Path.t) list) list

val encode_routing : Sso_flow.Routing.t -> string
val decode_routing : Sso_graph.Graph.t -> string -> Sso_flow.Routing.t
(** Stage-4 rate solutions.  Decoding goes through
    {!Sso_flow.Routing.of_normalized}, so weights round-trip bit-exactly. *)

val encode_forest : Sso_oblivious.Frt.parts list -> string
val decode_forest : string -> Sso_oblivious.Frt.parts list
(** Räcke tree mixtures as {!Sso_oblivious.Frt.parts}. *)

val pairs_digest : (int * int) list -> int64
(** Canonical digest of a pair set (sorted, deduplicated) — used in recipe
    keys for pair-scoped artifacts. *)
