(** Memoizing wrappers: the expensive constructions, backed by {!Store}.

    Each wrapper is a drop-in for the underlying constructor; pass
    [?store] to enable caching (omitted ⇒ identical to calling the
    constructor directly).  The determinism contract: for a fixed seed, a
    warm run produces bit-identical results to the cold run that populated
    the cache, at any job count.  Two ingredients make that hold:

    - payloads round-trip bit-exactly ({!Codec}), and decoded objects are
      installed through trusted constructors ({!Sso_oblivious.Oblivious.preload},
      {!Sso_flow.Routing.of_normalized}) that skip re-normalization;
    - RNG consumption visible to the caller is the same on hit and miss.
      Pass each wrapper a {e dedicated} generator (callers here always pass
      [Rng.split parent], which advances the parent at the call site
      either way); on a hit the child is simply never drawn from, and
      sampled systems key their per-pair draws by [Rng.split_at], so
      queries outside the cached pair set draw exactly what the cold run
      would have. *)

val racke_recipe :
  ?trees:int ->
  ?batch:int ->
  rng:Sso_prng.Rng.t ->
  Sso_graph.Graph.t ->
  Store.recipe
(** The recipe {!racke} uses: kind ["racke-forest"], keyed by graph
    digest, tree count, batch size, and the RNG fingerprint.  Take it
    {e before} the generator is consumed (fingerprinting does not advance
    it). *)

val racke_forest :
  ?store:Store.t ->
  ?pool:Sso_engine.Pool.t ->
  Sso_prng.Rng.t ->
  ?trees:int ->
  ?batch:int ->
  Sso_graph.Graph.t ->
  Sso_oblivious.Frt.t list
(** The MWU tree mixture behind {!racke}, cached under the same
    ["racke-forest"] recipe: a hit decodes the stored {!Codec.encode_forest}
    payload through {!Sso_oblivious.Frt.of_parts} instead of re-running the
    construction.  Exposed for callers that need the trees themselves
    (digests, per-tree diagnostics, the scale bench) rather than the
    mixture routing. *)

val racke :
  ?store:Store.t ->
  ?pool:Sso_engine.Pool.t ->
  Sso_prng.Rng.t ->
  ?trees:int ->
  ?batch:int ->
  Sso_graph.Graph.t ->
  Sso_oblivious.Oblivious.t
(** {!Sso_oblivious.Racke.routing} with the MWU tree mixture cached as an
    {!Codec.encode_forest} payload.  A hit skips the entire construction
    (FRT builds and capacity-routing passes) and rebuilds the routing with
    {!Sso_oblivious.Racke.of_forest}; shortest-path state is recomputed
    lazily and deterministically from the stored edge lengths. *)

val hop_constrained :
  ?store:Store.t ->
  ?stretch:int ->
  ?paths_per_pair:int ->
  max_hops:int ->
  pairs:(int * int) list ->
  Sso_graph.Graph.t ->
  Sso_oblivious.Oblivious.t
(** {!Sso_oblivious.Hop_constrained.routing} with the per-pair
    distributions for [pairs] cached.  On a miss the distributions for
    [pairs] are computed eagerly (so unreachable-within-budget pairs raise
    here rather than at first query); on a hit they are preloaded
    bit-identically and other pairs fall through to the generator. *)

val alpha_sample :
  ?store:Store.t ->
  base_key:string ->
  Sso_prng.Rng.t ->
  Sso_oblivious.Oblivious.t ->
  alpha:int ->
  pairs:(int * int) list ->
  Sso_core.Path_system.t
(** {!Sso_core.Sampler.alpha_sample} with the materialized candidate sets
    for [pairs] cached.  [base_key] must canonically name the base
    routing's identity (e.g. [Codec.hex_of_key (Store.key recipe)] of the
    recipe that built it): the sampled paths depend on the base routing's
    distributions, which the oblivious name + graph digest alone do not
    pin down.  The fallback sampler is constructed on both hit and miss,
    so caller-visible RNG consumption is identical; pairs outside the
    cached set sample from their own [split_at] children exactly as a cold
    run would. *)
