module Graph = Sso_graph.Graph
module Rng = Sso_prng.Rng
module Obs = Sso_obs.Obs
module Oblivious = Sso_oblivious.Oblivious
module Racke = Sso_oblivious.Racke
module Frt = Sso_oblivious.Frt
module Hop_constrained = Sso_oblivious.Hop_constrained
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system

let hex = Codec.hex_of_key

(* A payload that passes the store checksum but fails semantic validation
   on decode (e.g. after a format change without a version bump) is still
   damage: count it and fall back to a rebuild. *)
let semantic_corrupt () = Obs.incr (Obs.counter "artifact.corrupt")

(* ---- Räcke forests ---- *)

let racke_recipe ?trees ?batch ~rng g =
  let trees = match trees with Some t -> t | None -> Racke.default_trees g in
  let batch = Option.value batch ~default:4 in
  Store.recipe ~kind:"racke-forest"
    [
      ("graph", hex (Codec.graph_digest g));
      ("trees", string_of_int trees);
      ("batch", string_of_int batch);
      ("rng", hex (Rng.fingerprint rng));
    ]

let racke_forest ?store ?pool rng ?trees ?batch g =
  match store with
  | None -> Racke.forest ?pool rng ?trees ?batch g
  | Some st ->
      let recipe = racke_recipe ?trees ?batch ~rng g in
      let rebuild () =
        let forest = Racke.forest ?pool rng ?trees ?batch g in
        Store.put st recipe
          (Codec.encode_forest (List.map Frt.to_parts forest));
        forest
      in
      (match Store.find st recipe with
      | None -> rebuild ()
      | Some payload -> (
          match List.map (Frt.of_parts g) (Codec.decode_forest payload) with
          | forest -> forest
          | exception (Codec.Corrupt _ | Invalid_argument _) ->
              semantic_corrupt ();
              rebuild ()))

let racke ?store ?pool rng ?trees ?batch g =
  Racke.of_forest g (racke_forest ?store ?pool rng ?trees ?batch g)

(* ---- hop-constrained distributions ---- *)

let hop_constrained ?store ?(stretch = 2) ?(paths_per_pair = 8) ~max_hops
    ~pairs g =
  let routing = Hop_constrained.routing ~stretch ~paths_per_pair ~max_hops g in
  match store with
  | None -> routing
  | Some st ->
      let pairs = List.sort_uniq compare pairs in
      let recipe =
        Store.recipe ~kind:"hop-distributions"
          [
            ("graph", hex (Codec.graph_digest g));
            ("stretch", string_of_int stretch);
            ("paths_per_pair", string_of_int paths_per_pair);
            ("max_hops", string_of_int max_hops);
            ("pairs", hex (Codec.pairs_digest pairs));
          ]
      in
      let warm payload =
        match Codec.decode_distributions g payload with
        | entries -> (
            try
              Oblivious.preload routing entries;
              true
            with Invalid_argument _ ->
              semantic_corrupt ();
              false)
        | exception Codec.Corrupt _ ->
            semantic_corrupt ();
            false
      in
      let hit = match Store.find st recipe with
        | Some payload -> warm payload
        | None -> false
      in
      if not hit then begin
        let entries =
          List.map
            (fun (s, t) -> ((s, t), Oblivious.distribution routing s t))
            pairs
        in
        Store.put st recipe (Codec.encode_distributions entries)
      end;
      routing

(* ---- α-samples ---- *)

let alpha_sample ?store ~base_key rng r ~alpha ~pairs =
  let g = Oblivious.graph r in
  match store with
  | None -> Sampler.alpha_sample rng r ~alpha
  | Some st ->
      let pairs = List.sort_uniq compare pairs in
      let recipe =
        Store.recipe ~kind:"alpha-sample"
          [
            ("graph", hex (Codec.graph_digest g));
            ("base", base_key);
            ("oblivious", Oblivious.name r);
            ("alpha", string_of_int alpha);
            ("rng", hex (Rng.fingerprint rng));
            ("pairs", hex (Codec.pairs_digest pairs));
          ]
      in
      let found = Store.find st recipe in
      (* Construct the fallback in both paths: it consumes the same RNG
         state either way (one split now, per-pair split_at children on
         query), keeping caller-visible draws identical cold and warm. *)
      let fallback = Sampler.alpha_sample rng r ~alpha in
      let save () =
        (* Parallel materialization is layout-deterministic, but workers
           would interleave trace events; keep the serial path under
           tracing so trace goldens stay stable. *)
        if Obs.tracing () then Path_system.materialize fallback pairs
        else Path_system.materialize_parallel fallback pairs;
        let ranges =
          List.map
            (fun (s, t) -> ((s, t), Path_system.slice_range fallback s t))
            pairs
        in
        Store.put st recipe
          (Codec.encode_path_system_slices (Path_system.arena fallback) ranges);
        fallback
      in
      (match found with
      | None -> save ()
      | Some payload -> (
          match Codec.decode_path_system g payload with
          | entries ->
              let table = Hashtbl.create (List.length entries) in
              List.iter (fun (pair, ps) -> Hashtbl.replace table pair ps) entries;
              Path_system.of_generator g (fun s t ->
                  match Hashtbl.find_opt table (s, t) with
                  | Some ps -> ps
                  | None -> Path_system.paths fallback s t)
          | exception Codec.Corrupt _ ->
              semantic_corrupt ();
              save ()))
