module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

exception Unreadable of string

let unreadable fmt = Printf.ksprintf (fun msg -> raise (Unreadable msg)) fmt

let c_hit = Obs.counter "artifact.hit"
let c_miss = Obs.counter "artifact.miss"
let c_corrupt = Obs.counter "artifact.corrupt"
let c_bytes_read = Obs.counter "artifact.bytes_read"
let c_bytes_written = Obs.counter "artifact.bytes_written"
let h_payload = Obs.histogram "artifact.payload_bytes"

(* ---- recipes ---- *)

type recipe = { kind : string; params : (string * string) list }

let recipe ~kind params = { kind; params }

let key r =
  let w = Codec.writer () in
  Codec.write_string w r.kind;
  Codec.write_varint w (List.length r.params);
  List.iter
    (fun (name, value) ->
      Codec.write_string w name;
      Codec.write_string w value)
    r.params;
  Codec.fnv1a64 (Codec.contents w)

let describe r =
  Printf.sprintf "%s(%s)" r.kind
    (String.concat ", "
       (List.map (fun (name, value) -> name ^ "=" ^ value) r.params))

let cache_event outcome r =
  if Obs.tracing () then
    Obs.event ("artifact." ^ outcome)
      ~attrs:
        [
          ("kind", Trace.String r.kind);
          ("key", Trace.String (Codec.hex_of_key (key r)));
        ]

(* ---- entry file format ---- *)

let magic = "SSOA"
let store_version = 1

let encode_entry ~kind ~description payload =
  let w = Codec.writer () in
  String.iter (fun c -> Codec.write_u8 w (Char.code c)) magic;
  Codec.write_u8 w store_version;
  Codec.write_string w kind;
  Codec.write_string w description;
  Codec.write_string w payload;
  Codec.write_i64 w (Codec.fnv1a64 payload);
  Codec.contents w

(* @raise Codec.Corrupt on any damage. *)
let decode_entry data =
  let r = Codec.reader data in
  String.iter
    (fun c ->
      if Codec.read_u8 r <> Char.code c then
        raise (Codec.Corrupt "store: bad magic"))
    magic;
  let v = Codec.read_u8 r in
  if v <> store_version then
    raise (Codec.Corrupt (Printf.sprintf "store: unsupported version %d" v));
  let kind = Codec.read_string r in
  let description = Codec.read_string r in
  let payload = Codec.read_string r in
  let checksum = Codec.read_i64 r in
  Codec.expect_end r;
  if Codec.fnv1a64 payload <> checksum then
    raise (Codec.Corrupt "store: checksum mismatch");
  (kind, description, payload)

(* ---- the store ---- *)

type t = { dir : string }

let default_dir () =
  let non_empty = function Some d when d <> "" -> Some d | _ -> None in
  match non_empty (Sys.getenv_opt "SSO_CACHE_DIR") with
  | Some d -> d
  | None -> (
      match non_empty (Sys.getenv_opt "XDG_CACHE_HOME") with
      | Some d -> Filename.concat d "sso"
      | None -> (
          match non_empty (Sys.getenv_opt "HOME") with
          | Some h -> Filename.concat (Filename.concat h ".cache") "sso"
          | None -> "_artifacts"))

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (err, _, _) ->
        unreadable "cannot create %s: %s" path (Unix.error_message err)
  end

let open_ ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  mkdir_p dir;
  if not (try Sys.is_directory dir with Sys_error _ -> false) then
    unreadable "%s is not a directory" dir;
  { dir }

let dir t = t.dir

let entry_file t r = Filename.concat t.dir (Codec.hex_of_key (key r) ^ ".art")
let manifest_file t = Filename.concat t.dir "manifest.txt"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let find t r =
  let path = entry_file t r in
  if not (Sys.file_exists path) then begin
    Obs.incr c_miss;
    cache_event "miss" r;
    None
  end
  else
    match decode_entry (read_file path) with
    | exception Sys_error _ ->
        Obs.incr c_miss;
        cache_event "miss" r;
        None
    | exception Codec.Corrupt _ ->
        Obs.incr c_corrupt;
        Obs.incr c_miss;
        cache_event "corrupt" r;
        (try Sys.remove path with Sys_error _ -> ());
        None
    | kind, description, payload ->
        if kind <> r.kind || description <> describe r then begin
          (* Key collision between distinct recipes: not our object. *)
          Obs.incr c_miss;
          cache_event "miss" r;
          None
        end
        else begin
          Obs.incr c_hit;
          Obs.incr ~by:(String.length payload) c_bytes_read;
          Obs.observe h_payload (String.length payload);
          cache_event "hit" r;
          Some payload
        end

let append_manifest t line =
  try
    Out_channel.with_open_gen
      [ Open_append; Open_creat; Open_wronly ]
      0o644 (manifest_file t)
      (fun oc -> Out_channel.output_string oc (line ^ "\n"))
  with Sys_error _ -> () (* the manifest is advisory *)

let put t r payload =
  let path = entry_file t r in
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let data = encode_entry ~kind:r.kind ~description:(describe r) payload in
  (try
     Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data)
   with Sys_error msg -> unreadable "cannot write %s: %s" tmp msg);
  (try Sys.rename tmp path
   with Sys_error msg ->
     (try Sys.remove tmp with Sys_error _ -> ());
     unreadable "cannot rename %s: %s" tmp msg);
  Obs.incr ~by:(String.length payload) c_bytes_written;
  Obs.observe h_payload (String.length payload);
  if Obs.tracing () then
    Obs.event "artifact.put"
      ~attrs:
        [
          ("kind", Trace.String r.kind);
          ("key", Trace.String (Codec.hex_of_key (key r)));
          ("bytes", Trace.Int (String.length payload));
        ];
  append_manifest t
    (Printf.sprintf "%s %s %d %s"
       (Codec.hex_of_key (key r))
       r.kind (String.length payload) (describe r))

(* ---- inspection and maintenance ---- *)

type entry = {
  entry_key : string;
  entry_kind : string;
  entry_description : string;
  entry_bytes : int;
}

type listing = { entries : entry list; corrupt : string list }

let is_entry_file name = Filename.check_suffix name ".art"

(* [put] writes "<key>.art.tmp.<pid>". *)
let is_tmp_file name =
  let needle = ".tmp." in
  let n = String.length name and k = String.length needle in
  let rec go i = i + k <= n && (String.sub name i k = needle || go (i + 1)) in
  go 0

let list_dir t =
  match Sys.readdir t.dir with
  | files ->
      Array.sort compare files;
      Array.to_list files
  | exception Sys_error msg -> unreadable "cannot list %s" msg

let scan t =
  let files = list_dir t in
  List.fold_left
    (fun acc name ->
      if not (is_entry_file name) then acc
      else
        let path = Filename.concat t.dir name in
        match decode_entry (read_file path) with
        | exception (Sys_error _ | Codec.Corrupt _) ->
            { acc with corrupt = acc.corrupt @ [ name ] }
        | kind, description, payload ->
            let e =
              {
                entry_key = Filename.chop_suffix name ".art";
                entry_kind = kind;
                entry_description = description;
                entry_bytes = String.length payload;
              }
            in
            { acc with entries = acc.entries @ [ e ] })
    { entries = []; corrupt = [] }
    files

let rewrite_manifest t entries =
  try
    Out_channel.with_open_bin (manifest_file t) (fun oc ->
        List.iter
          (fun e ->
            Printf.fprintf oc "%s %s %d %s\n" e.entry_key e.entry_kind
              e.entry_bytes e.entry_description)
          entries)
  with Sys_error _ -> ()

let gc t =
  let files = list_dir t in
  let stale =
    List.filter (fun name -> is_tmp_file name) files
  in
  let listing = scan t in
  let doomed = stale @ listing.corrupt in
  let removed =
    List.fold_left
      (fun acc name ->
        match Sys.remove (Filename.concat t.dir name) with
        | () -> acc + 1
        | exception Sys_error _ -> acc)
      0 doomed
  in
  rewrite_manifest t listing.entries;
  removed

let clear t =
  let files = list_dir t in
  let removed =
    List.fold_left
      (fun acc name ->
        if is_entry_file name || is_tmp_file name then
          match Sys.remove (Filename.concat t.dir name) with
          | () -> acc + (if is_entry_file name then 1 else 0)
          | exception Sys_error _ -> acc
        else acc)
      0 files
  in
  (try Sys.remove (manifest_file t) with Sys_error _ -> ());
  removed
