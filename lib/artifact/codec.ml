module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Arena = Sso_graph.Arena
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Frt = Sso_oblivious.Frt

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

let format_version = 1

(* ---- primitives ---- *)

type writer = Buffer.t
type reader = { data : string; mutable pos : int }

let writer () = Buffer.create 256
let contents w = Buffer.contents w
let reader data = { data; pos = 0 }

let expect_end r =
  if r.pos <> String.length r.data then
    corrupt "codec: %d trailing bytes" (String.length r.data - r.pos)

let write_u8 w v = Buffer.add_char w (Char.chr (v land 0xFF))

let read_u8 r =
  if r.pos >= String.length r.data then corrupt "codec: truncated input";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let write_varint w v =
  if v < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go v =
    if v < 0x80 then write_u8 w v
    else begin
      write_u8 w (0x80 lor (v land 0x7F));
      go (v lsr 7)
    end
  in
  go v

let read_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "codec: varint overflow";
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let write_i64 w v =
  for i = 0 to 7 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let read_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (read_u8 r)) (8 * i))
  done;
  !v

let write_f64 w v = write_i64 w (Int64.bits_of_float v)
let read_f64 r = Int64.float_of_bits (read_i64 r)

let write_string w s =
  write_varint w (String.length s);
  Buffer.add_string w s

(* [List.init]'s evaluation order is unspecified; reads are effectful, so
   sequence them explicitly. *)
let read_list n f =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
  go n []

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then corrupt "codec: truncated string";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* ---- hashing ---- *)

let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let hex_of_key k = Printf.sprintf "%016Lx" k

(* ---- tags ---- *)

let tag_graph = 0x47 (* 'G' *)
let tag_demand = 0x44 (* 'D' *)
let tag_path = 0x70 (* 'p' *)
let tag_path_system = 0x50 (* 'P' *)
let tag_distributions = 0x52 (* 'R' *)
let tag_forest = 0x46 (* 'F' *)
let tag_arena = 0x41 (* 'A' *)

(* Path systems moved to the arena slot encoding in v2; v1 payloads (edge
   ids per path) remain decodable so existing caches stay warm. *)
let path_system_version = 2
let arena_version = 1

let write_header w tag =
  write_u8 w tag;
  write_u8 w format_version

let write_header_v w tag v =
  write_u8 w tag;
  write_u8 w v

let read_header_upto r tag ~max =
  let got = read_u8 r in
  if got <> tag then corrupt "codec: tag mismatch (want %#x, got %#x)" tag got;
  let v = read_u8 r in
  if v < 1 || v > max then corrupt "codec: unsupported format version %d" v;
  v

let read_header r tag = ignore (read_header_upto r tag ~max:format_version)

(* Wrap Invalid_argument from reconstruction (Builder, Path.of_edges, ...)
   into Corrupt: a payload describing an impossible object is damage, not a
   programming error at the decode site. *)
let guarded f = try f () with Invalid_argument msg -> corrupt "codec: %s" msg

(* ---- graph ---- *)

let encode_graph g =
  let w = writer () in
  write_header w tag_graph;
  write_varint w (Graph.n g);
  write_varint w (Graph.m g);
  Graph.fold_edges
    (fun _ u v cap () ->
      write_varint w u;
      write_varint w v;
      write_f64 w cap)
    g ();
  contents w

let decode_graph s =
  let r = reader s in
  read_header r tag_graph;
  let n = read_varint r in
  let m = read_varint r in
  guarded @@ fun () ->
  let b = Graph.Builder.create n in
  for _ = 1 to m do
    let u = read_varint r in
    let v = read_varint r in
    let cap = read_f64 r in
    ignore (Graph.Builder.add_edge ~cap b u v)
  done;
  expect_end r;
  Graph.Builder.build b

let graph_digest g = fnv1a64 (encode_graph g)

(* ---- demand ---- *)

let encode_demand d =
  let w = writer () in
  write_header w tag_demand;
  write_varint w (Demand.support_size d);
  Demand.fold
    (fun s t v () ->
      write_varint w s;
      write_varint w t;
      write_f64 w v)
    d ();
  contents w

let decode_demand s =
  let r = reader s in
  read_header r tag_demand;
  let count = read_varint r in
  guarded @@ fun () ->
  let triples =
    read_list count (fun () ->
        let a = read_varint r in
        let b = read_varint r in
        let v = read_f64 r in
        (a, b, v))
  in
  expect_end r;
  Demand.of_list triples

(* ---- paths ---- *)

let write_path_body w (p : Path.t) =
  write_varint w (Array.length p.Path.edges);
  Array.iter (write_varint w) p.Path.edges

let read_path_body r g ~src ~dst =
  let hops = read_varint r in
  let edges = Array.init hops (fun _ -> read_varint r) in
  guarded (fun () -> Path.of_edges g ~src ~dst edges)

let encode_path p =
  let w = writer () in
  write_header w tag_path;
  write_varint w p.Path.src;
  write_varint w p.Path.dst;
  write_path_body w p;
  contents w

let decode_path g s =
  let r = reader s in
  read_header r tag_path;
  let src = read_varint r in
  let dst = read_varint r in
  let p = read_path_body r g ~src ~dst in
  expect_end r;
  p

(* ---- pair tables (path systems and distributions) ---- *)

let canonical entries = List.sort (fun (a, _) (b, _) -> compare a b) entries

let write_pairs w entries write_value =
  write_varint w (List.length entries);
  List.iter
    (fun ((s, t), value) ->
      write_varint w s;
      write_varint w t;
      write_value value)
    (canonical entries)

let read_pairs r read_value =
  let count = read_varint r in
  read_list count (fun () ->
      let s = read_varint r in
      let t = read_varint r in
      ((s, t), read_value s t))

(* v2 path bodies: hop count, then the arena's packed CSR-slot bytes
   verbatim (one LEB128 varint per hop) — the whole candidate collection
   serializes as one blit from the arena's shared buffer. *)

let read_slot_path_body r g ~src ~dst =
  let hops = read_varint r in
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    corrupt "codec: path endpoint out of range";
  (* Each packed hop takes at least one byte. *)
  if hops > String.length r.data - r.pos then corrupt "codec: truncated path";
  let offs = Graph.csr_offsets g in
  let eids = Graph.csr_edge_ids g in
  let tgts = Graph.csr_targets g in
  let edges = Array.make hops 0 in
  let v = ref src in
  for j = 0 to hops - 1 do
    let slot = read_varint r in
    let base = offs.(!v) in
    if slot >= offs.(!v + 1) - base then
      corrupt "codec: hop slot outside adjacency row";
    edges.(j) <- eids.(base + slot);
    v := tgts.(base + slot)
  done;
  if !v <> dst then corrupt "codec: path does not end at dst";
  guarded (fun () -> Path.of_edges g ~src ~dst edges)

let encode_path_system_slices arena ranges =
  let w = writer () in
  write_header_v w tag_path_system path_system_version;
  write_pairs w ranges (fun (first, count) ->
      write_varint w count;
      for k = 0 to count - 1 do
        write_varint w (Arena.hops arena (first + k));
        Arena.write_encoding arena (first + k) w
      done);
  contents w

let encode_path_system g entries =
  (* Appending into a scratch arena both validates the paths as walks of
     [g] and produces the slot bytes the v2 format stores. *)
  let a = Arena.create g in
  let ranges =
    List.map
      (fun ((s, t), paths) ->
        let first = Arena.length a in
        List.iter (fun p -> ignore (Arena.append_path a p)) paths;
        ((s, t), (first, List.length paths)))
      entries
  in
  encode_path_system_slices a ranges

let decode_path_system g s =
  let r = reader s in
  let version = read_header_upto r tag_path_system ~max:path_system_version in
  let read_body = if version = 1 then read_path_body else read_slot_path_body in
  let entries =
    read_pairs r (fun src dst ->
        let count = read_varint r in
        read_list count (fun () -> read_body r g ~src ~dst))
  in
  expect_end r;
  entries

(* ---- standalone arenas ---- *)

let encode_arena a =
  let w = writer () in
  write_header_v w tag_arena arena_version;
  write_varint w (Arena.length a);
  for i = 0 to Arena.length a - 1 do
    write_varint w (Arena.src a i);
    write_varint w (Arena.dst a i);
    write_varint w (Arena.hops a i);
    Arena.write_encoding a i w
  done;
  contents w

let decode_arena g s =
  let r = reader s in
  ignore (read_header_upto r tag_arena ~max:arena_version);
  let count = read_varint r in
  let a = Arena.create ~capacity:count g in
  let data = Bytes.unsafe_of_string r.data in
  for _ = 1 to count do
    let src = read_varint r in
    let dst = read_varint r in
    let hops = read_varint r in
    guarded (fun () ->
        let _, consumed = Arena.append_encoded a ~src ~dst ~hops data ~pos:r.pos in
        r.pos <- r.pos + consumed)
  done;
  expect_end r;
  a

let encode_distributions entries =
  let w = writer () in
  write_header w tag_distributions;
  write_pairs w entries (fun dist ->
      write_varint w (List.length dist);
      List.iter
        (fun (weight, p) ->
          write_f64 w weight;
          write_path_body w p)
        dist);
  contents w

let decode_distributions g s =
  let r = reader s in
  read_header r tag_distributions;
  let entries =
    read_pairs r (fun src dst ->
        let count = read_varint r in
        read_list count (fun () ->
            let weight = read_f64 r in
            (weight, read_path_body r g ~src ~dst)))
  in
  expect_end r;
  entries

let encode_routing routing =
  encode_distributions
    (List.map
       (fun (s, t) -> ((s, t), Routing.distribution routing s t))
       (Routing.pairs routing))

let decode_routing g s =
  guarded (fun () -> Routing.of_normalized (decode_distributions g s))

(* ---- FRT forests ---- *)

let write_table w tbl =
  write_varint w (Array.length tbl);
  Array.iter
    (fun row ->
      write_varint w (Array.length row);
      Array.iter (write_varint w) row)
    tbl

let read_table r =
  let n = read_varint r in
  Array.init n (fun _ ->
      let len = read_varint r in
      Array.init len (fun _ -> read_varint r))

let write_parts w (p : Frt.parts) =
  write_varint w p.Frt.p_levels;
  write_table w p.Frt.p_chain;
  write_table w p.Frt.p_cluster_id;
  write_varint w (Array.length p.Frt.p_lengths);
  Array.iter (write_f64 w) p.Frt.p_lengths

let read_parts r =
  let p_levels = read_varint r in
  let p_chain = read_table r in
  let p_cluster_id = read_table r in
  let m = read_varint r in
  let p_lengths = Array.init m (fun _ -> read_f64 r) in
  { Frt.p_levels; p_chain; p_cluster_id; p_lengths }

let encode_forest parts =
  let w = writer () in
  write_header w tag_forest;
  write_varint w (List.length parts);
  List.iter (write_parts w) parts;
  contents w

let decode_forest s =
  let r = reader s in
  read_header r tag_forest;
  let count = read_varint r in
  let parts = read_list count (fun () -> read_parts r) in
  expect_end r;
  parts

(* ---- pair digests ---- *)

let pairs_digest pairs =
  let w = writer () in
  List.iter
    (fun (s, t) ->
      write_varint w s;
      write_varint w t)
    (List.sort_uniq compare pairs);
  fnv1a64 (contents w)
