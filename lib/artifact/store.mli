(** Content-addressed on-disk artifact cache.

    Keys are the 64-bit FNV-1a hash of the canonical encoding of a
    {!recipe} — the full description of how an artifact is produced
    (constructor kind, parameters, graph digest, RNG fingerprint) — so two
    runs that would compute the same object read and write the same entry,
    and any change to the inputs changes the key.

    Entries are single files [<16-hex-digits>.art] holding a magic number,
    the recipe's kind and description (a hash-collision guard), the payload,
    and an FNV-1a checksum of the payload.  Writes go to a temp file and are
    [rename]d into place, so a crashed or concurrent writer never leaves a
    half-written entry under a live key.  Reads verify the checksum; any
    damage makes the entry a miss and removes the stale file — a corrupt
    payload is never deserialized.

    A human-readable [manifest.txt] in the store directory logs one line per
    write.  {!Sso_engine.Metrics} counters [artifact.hit], [artifact.miss],
    [artifact.corrupt], [artifact.bytes_read], and [artifact.bytes_written]
    expose cache behaviour to [--metrics]. *)

exception Unreadable of string
(** The store directory cannot be created, read, or is not a directory.
    Distinct from per-entry corruption, which is silent (a miss). *)

(** {1 Recipes} *)

type recipe
(** What an artifact is a function of.  Equal recipes address equal
    entries. *)

val recipe : kind:string -> (string * string) list -> recipe
(** [recipe ~kind params]: [kind] names the constructor
    (e.g. ["racke-forest"]); [params] are name/value components in a fixed
    caller-chosen order (digests as hex, numbers as decimal). *)

val key : recipe -> int64
(** FNV-1a of the canonical encoding of the recipe. *)

val describe : recipe -> string
(** Human-readable rendering, e.g. ["racke-forest(graph=
    1a2b..., trees=12)"] — stored inside the entry and compared on read, so
    a key collision between different recipes reads as a miss, never as the
    wrong object. *)

(** {1 The store} *)

type t

val default_dir : unit -> string
(** Resolution order: [SSO_CACHE_DIR], [XDG_CACHE_HOME/sso],
    [HOME/.cache/sso], then [_artifacts] in the working directory. *)

val open_ : ?dir:string -> unit -> t
(** Open (creating if needed) the store at [dir] (default
    {!default_dir}).  @raise Unreadable if the directory cannot be created
    or is not a directory. *)

val dir : t -> string

val find : t -> recipe -> string option
(** The cached payload, or [None] on miss.  Corrupt entries (bad magic,
    version, checksum, or truncation) and entries whose stored recipe
    description disagrees with [recipe] count as misses; corrupt files are
    removed. *)

val put : t -> recipe -> string -> unit
(** Store a payload under the recipe's key (atomic: temp file + rename)
    and append a manifest line.  @raise Unreadable if the directory has
    disappeared or is not writable. *)

(** {1 Inspection and maintenance} *)

type entry = {
  entry_key : string;  (** 16 hex digits *)
  entry_kind : string;
  entry_description : string;
  entry_bytes : int;  (** payload size *)
}

type listing = {
  entries : entry list;  (** valid entries, sorted by key *)
  corrupt : string list;  (** file names of damaged entries *)
}

val scan : t -> listing
(** Inspect every entry without removing anything.
    @raise Unreadable if the directory cannot be listed. *)

val gc : t -> int
(** Remove corrupt entries and leftover temp files, rewrite the manifest
    from the survivors; returns the number of files removed.
    @raise Unreadable if the directory cannot be listed. *)

val clear : t -> int
(** Remove every entry (and the manifest); returns the number of entries
    removed.  @raise Unreadable if the directory cannot be listed. *)
