(** Min-congestion multicommodity-flow solvers.

    These implement Stage 4 of the semi-oblivious pipeline — given the
    revealed demand, pick the congestion-minimizing fractional routing on
    the candidate path system — and the offline optimum [opt_{G,ℝ}(d)] the
    competitive ratio compares against.

    Two engines are provided and cross-validated in the test suite:

    - an exact LP (path formulation, dense simplex) for small instances;
    - a multiplicative-weights (no-regret game) solver whose path oracle is
      pluggable: candidate-set lookup for path-restricted routing, Dijkstra
      for the unrestricted optimum, and a hop-limited DP for the
      hop-constrained optimum used by the completion-time results. *)

type candidates = ((int * int) * Sso_graph.Path.t list) list
(** Candidate path sets per pair — a path system restricted to the pairs of
    interest.  Every listed path must connect its pair. *)

type slice_candidates = Slice_candidates.t
(** Candidate sets as arena slices — the flat index the solvers walk in
    place (see {!Slice_candidates}).  The path-list API below converts
    through this representation, so both entry points run the same
    engine. *)

val slice_candidates_of_arena :
  Sso_graph.Arena.t -> ((int * int) * (int * int)) list -> slice_candidates
(** Index per-pair slice ranges [(first, count)] of a shared arena. *)

val slice_candidates_of_list :
  Sso_graph.Graph.t -> candidates -> slice_candidates
(** Index boxed candidate lists (appending them into a private arena). *)

val mwu_on_slices :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  Sso_graph.Graph.t -> slice_candidates -> Sso_demand.Demand.t -> Routing.t * float
(** {!mwu_on_paths} on a prebuilt slice index — candidate systems already
    stored in an arena solve without materializing any path list. *)

val mwu_on_slices_warm :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  warm:Routing.t ->
  warm_weight:int ->
  Sso_graph.Graph.t -> slice_candidates -> Sso_demand.Demand.t -> Routing.t * float
(** {!mwu_on_paths_warm} on a prebuilt slice index. *)

val lp_on_paths :
  Sso_graph.Graph.t -> candidates -> Sso_demand.Demand.t -> Routing.t * float
(** Exact minimum congestion of fractionally routing [d] where each pair
    only uses its candidate paths.  Returns the optimal routing and its
    congestion.  @raise Invalid_argument if some demanded pair has no
    candidates.  Intended for instances with up to a few thousand
    (pair, path) variables. *)

val mwu_on_paths :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  Sso_graph.Graph.t -> candidates -> Sso_demand.Demand.t -> Routing.t * float
(** Approximate version of {!lp_on_paths} via multiplicative weights
    ([iters] defaults to 300; error decays as [O(1/√iters)]).  Candidate
    lookups go through a hashtable index built once per solve.  Results are
    bit-identical for any [pool]. *)

val mwu_on_paths_warm :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  warm:Routing.t ->
  warm_weight:int ->
  Sso_graph.Graph.t -> candidates -> Sso_demand.Demand.t -> Routing.t * float
(** Incremental re-optimization: seed the MWU with a previous routing
    counted as [warm_weight] already-played rounds, then run [iters] fresh
    rounds.  This is the traffic-engineering control loop — when the
    demand drifts slightly between snapshots, a handful of warm rounds
    recovers near-optimal rates at a fraction of a cold solve's cost.  The
    warm routing should be supported on the same candidate system (its
    paths enter the averaged output verbatim); pairs it does not cover are
    handled by the fresh rounds alone. *)

val lp_unrestricted :
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> float
(** Exact [opt_{G,ℝ}(d)]: edge-based LP over all flows (not just candidate
    paths).  Exact but expensive — meant for small graphs in tests. *)

val mwu_unrestricted :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  ?batched:bool ->
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> Routing.t * float
(** Approximate [opt_{G,ℝ}(d)] with a Dijkstra best-response oracle.  The
    returned routing is supported on the paths the oracle produced.

    With [batched] (the default), each round groups the demand's support by
    source — [Demand.support] is sorted, so groups are consecutive runs —
    and answers all of a source's targets from one Dijkstra pass
    ({!Sso_graph.Shortest.dijkstra_paths}).  The routing is bit-identical
    to the per-pair oracle ([batched:false]) and to any [pool] size; the
    flag exists so tests can assert exactly that. *)

val mwu_unrestricted_avoiding :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  ?batched:bool ->
  avoid:(int -> bool) ->
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> (Routing.t * float) option
(** Like {!mwu_unrestricted} but never using edges for which [avoid] is
    true — the post-failure optimum of the robustness experiments.
    [None] if a demanded pair is disconnected by the failures. *)

val mwu_hop_limited :
  ?pool:Sso_engine.Pool.t ->
  ?iters:int ->
  ?batched:bool ->
  max_hops:int ->
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> (Routing.t * float) option
(** Approximate [opt^{(h)}_{G,ℝ}(d)]: min congestion over routings with
    dilation ≤ [max_hops].  [None] if some demanded pair is not reachable
    within the hop budget. *)

val lower_bound_sparse_cut : Sso_graph.Graph.t -> Sso_demand.Demand.t -> float
(** A cheap certified lower bound on [opt_{G,ℝ}(d)]: the max over demanded
    pairs of [d(s,t) / cut-capacity(s,t)], and the average-load bound
    [siz(d) · (min-hop distance) / total capacity].  Used to sanity-check
    the approximate optima from below in tests and experiments. *)
