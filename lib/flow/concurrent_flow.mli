(** Garg–Könemann maximum concurrent flow.

    The third, independent min-congestion engine (besides the exact LP and
    the MWU game solver): the classic width-independent fractional packing
    algorithm.  Min-congestion and max concurrent flow are duals — if
    [λ*] is the largest multiplier such that [λ*·d] fits with congestion
    ≤ 1, then [opt cong(d) = 1/λ*] — and Garg–Könemann approximates [λ*]
    within [1+ε] by repeatedly routing along cheapest paths under
    exponentially growing edge lengths.

    We return the accumulated path flows re-normalized into a per-pair
    distribution and its {e measured} congestion, so the result is always
    a feasible routing of [d] regardless of the approximation constant;
    the test suite cross-validates all three engines against each other. *)

val on_paths :
  ?epsilon:float ->
  Sso_graph.Graph.t ->
  Min_congestion.candidates ->
  Sso_demand.Demand.t ->
  Routing.t * float
(** Min-congestion routing restricted to candidate paths ([epsilon]
    defaults to 0.1; smaller = more accurate and slower).
    @raise Invalid_argument if a demanded pair has no candidates. *)

val on_slices :
  ?epsilon:float ->
  Sso_graph.Graph.t ->
  Min_congestion.slice_candidates ->
  Sso_demand.Demand.t ->
  Routing.t * float
(** {!on_paths} on a prebuilt slice index — same phase structure and
    bit-identical output, walking the flat candidate arrays in place. *)

val unrestricted :
  ?epsilon:float ->
  Sso_graph.Graph.t -> Sso_demand.Demand.t -> Routing.t * float
(** Same with a Dijkstra cheapest-path oracle over all simple paths —
    approximates the offline optimum [opt_{G,ℝ}(d)]. *)
