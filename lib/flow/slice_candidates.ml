(* Candidate path sets as arena slices — the flat index Stage-4 solvers
   walk in place.

   The candidate set is unpacked once per solve into [(cand_off, edge_off,
   flat)] int arrays, and every round's oracle/accumulation loops run over
   those arrays — no per-path boxed array is touched until the final
   routing is emitted.  Candidates keep their generation order (the order
   the boxed oracles scanned lists in), and [rank] additionally stores, per
   pair, the candidate order ascending by [Path.compare] — the order the
   boxed solvers' [Path_map] imposed on outputs — so results stay
   bit-identical to the list-based implementation this replaces. *)

module Path = Sso_graph.Path
module Arena = Sso_graph.Arena
module Path_map = Map.Make (Path)

type t = {
  arena : Arena.t;
  pos : (int * int, int) Hashtbl.t;  (* pair -> pair position (first wins) *)
  cand_off : int array;  (* pair position -> candidate range, npairs + 1 *)
  slice_ids : int array;  (* candidate -> arena slice handle *)
  canon : int array;
      (* candidate -> canonical candidate: duplicate paths inside one
         pair's list collapse onto their first occurrence, the way a
         [Path_map] keyed by path merged them. *)
  rank : int array;
      (* per pair range: candidates ascending by path order (ties — i.e.
         duplicates — broken by position, so the canonical copy leads) *)
  edge_off : int array;  (* candidate -> edge range, ncands + 1 *)
  flat : int array;  (* concatenated edge ids, path order *)
}

(* Order two candidates the way [Path.compare] orders paths of one pair:
   fewer hops first, then lexicographic on edge ids. *)
let compare_cands edge_off flat c1 c2 =
  let h1 = edge_off.(c1 + 1) - edge_off.(c1) in
  let h2 = edge_off.(c2 + 1) - edge_off.(c2) in
  if h1 <> h2 then Int.compare h1 h2
  else begin
    let rec go k =
      if k = h1 then 0
      else
        match Int.compare flat.(edge_off.(c1) + k) flat.(edge_off.(c2) + k) with
        | 0 -> go (k + 1)
        | c -> c
    in
    go 0
  end

let of_arena arena ranges =
  let entries = Array.of_list ranges in
  let npairs = Array.length entries in
  let pos = Hashtbl.create ((2 * npairs) + 1) in
  Array.iteri
    (fun i (pair, _) -> if not (Hashtbl.mem pos pair) then Hashtbl.add pos pair i)
    entries;
  let cand_off = Array.make (npairs + 1) 0 in
  for i = 0 to npairs - 1 do
    let _, (_, count) = entries.(i) in
    cand_off.(i + 1) <- cand_off.(i) + count
  done;
  let ncands = cand_off.(npairs) in
  let slice_ids = Array.make ncands 0 in
  for i = 0 to npairs - 1 do
    let _, (first, count) = entries.(i) in
    for k = 0 to count - 1 do
      slice_ids.(cand_off.(i) + k) <- first + k
    done
  done;
  let edge_off, flat = Arena.unpack arena slice_ids in
  let rank = Array.init ncands Fun.id in
  let cmp c1 c2 =
    match compare_cands edge_off flat c1 c2 with
    | 0 -> Int.compare c1 c2
    | c -> c
  in
  for i = 0 to npairs - 1 do
    let lo = cand_off.(i) and hi = cand_off.(i + 1) in
    let seg = Array.sub rank lo (hi - lo) in
    Array.sort cmp seg;
    Array.blit seg 0 rank lo (hi - lo)
  done;
  let canon = Array.init ncands Fun.id in
  for i = 0 to npairs - 1 do
    for k = cand_off.(i) + 1 to cand_off.(i + 1) - 1 do
      let prev = rank.(k - 1) and cur = rank.(k) in
      if compare_cands edge_off flat prev cur = 0 then canon.(cur) <- canon.(prev)
    done
  done;
  { arena; pos; cand_off; slice_ids; canon; rank; edge_off; flat }

let of_list g cands =
  let arena = Arena.create ~capacity:(4 * max 1 (List.length cands)) g in
  let seen = Hashtbl.create ((2 * List.length cands) + 1) in
  let ranges =
    List.filter_map
      (fun (pair, paths) ->
        if Hashtbl.mem seen pair then None
        else begin
          Hashtbl.add seen pair ();
          let first = Arena.length arena in
          List.iter (fun (p : Path.t) -> ignore (Arena.append_path arena p)) paths;
          Some (pair, (first, Arena.length arena - first))
        end)
      cands
  in
  of_arena arena ranges

let position sc pair = match Hashtbl.find_opt sc.pos pair with Some i -> i | None -> -1
let ncands sc = sc.cand_off.(Array.length sc.cand_off - 1)
let is_empty_at sc i = sc.cand_off.(i) >= sc.cand_off.(i + 1)

(* Cheapest candidate of pair position [i] under [weight]: the same strict
   [<] left fold the boxed oracle ran over the candidate list, on the flat
   arrays.  [-1] when the pair has no candidates. *)
let cheapest sc ~weight i =
  let lo = sc.cand_off.(i) and hi = sc.cand_off.(i + 1) in
  if lo >= hi then -1
  else begin
    let score c =
      let acc = ref 0.0 in
      for k = sc.edge_off.(c) to sc.edge_off.(c + 1) - 1 do
        acc := !acc +. weight (Array.unsafe_get sc.flat k)
      done;
      !acc
    in
    let best = ref lo and bw = ref (score lo) in
    for c = lo + 1 to hi - 1 do
      let w = score c in
      if w < !bw then begin
        bw := w;
        best := c
      end
    done;
    !best
  end

let canonical sc c = sc.canon.(c)

let iter_edges sc c f =
  for k = sc.edge_off.(c) to sc.edge_off.(c + 1) - 1 do
    f (Array.unsafe_get sc.flat k)
  done

let fold_edges sc c f init =
  let acc = ref init in
  iter_edges sc c (fun e -> acc := f !acc e);
  !acc

(* Find the candidate of pair position [i] whose edge sequence equals [p]
   (first occurrence in generation order), for warm-start seeding. *)
let find sc i (p : Path.t) =
  let h = Array.length p.Path.edges in
  let lo = sc.cand_off.(i) and hi = sc.cand_off.(i + 1) in
  let rec go c =
    if c >= hi then -1
    else if
      sc.edge_off.(c + 1) - sc.edge_off.(c) = h
      && begin
           let rec eq k =
             k = h || (sc.flat.(sc.edge_off.(c) + k) = p.Path.edges.(k) && eq (k + 1))
           in
           eq 0
         end
    then c
    else go (c + 1)
  in
  go lo

(* Averaged per-pair distribution in descending path order — the order
   [Path_map.fold ... (c, p) :: acc] produced — merging candidate counts
   with any overflow paths (warm-start paths outside the candidate set). *)
let pair_distribution sc ~counts ~present ~overflow i =
  let lo = sc.cand_off.(i) and hi = sc.cand_off.(i + 1) in
  let ascending = ref [] in
  for k = hi - 1 downto lo do
    let c = sc.rank.(k) in
    if sc.canon.(c) = c && present.(c) then
      ascending := (Arena.to_path sc.arena sc.slice_ids.(c), counts.(c)) :: !ascending
  done;
  let merged =
    match overflow with
    | None -> !ascending
    | Some bindings ->
        (* Both inputs ascend by path order and never collide: an overflow
           path equal to a candidate would have been seeded as one. *)
        List.merge (fun (p, _) (q, _) -> Path.compare p q) !ascending bindings
  in
  List.fold_left (fun acc (p, c) -> (c, p) :: acc) [] merged
