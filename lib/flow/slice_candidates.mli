(** Candidate path sets as arena slices.

    The flat per-solve index the Stage-4 solvers walk in place: candidate
    edge ids are unpacked once into contiguous int arrays ([cand_off] per
    pair, [edge_off] per candidate, [flat] edge ids), so per-round oracle
    and accumulation loops never touch a boxed path.  Alongside the
    generation order the index stores, per pair, the candidate permutation
    ascending by {!Sso_graph.Path.compare} — the order the boxed solvers'
    [Path_map] imposed on outputs — so slice-based solves produce
    bit-identical routings to the list-based implementation they replace. *)

type t

val of_arena : Sso_graph.Arena.t -> ((int * int) * (int * int)) list -> t
(** [of_arena arena ranges] indexes, per pair, the [count] consecutive
    arena slices starting at [first] (ranges as [(pair, (first, count))];
    the first binding of a duplicated pair wins). *)

val of_list : Sso_graph.Graph.t -> ((int * int) * Sso_graph.Path.t list) list -> t
(** Index boxed candidate lists by appending them into a private arena
    (validating each path against [g]). *)

val position : t -> int * int -> int
(** Pair position of a pair, [-1] when the pair is not in the index. *)

val ncands : t -> int
(** Total number of candidates across all pairs. *)

val is_empty_at : t -> int -> bool
(** Does pair position [i] have an empty candidate set? *)

val cheapest : t -> weight:(int -> float) -> int -> int
(** Cheapest candidate of pair position [i] under [weight] — the same
    strict [<] left fold over candidates in generation order (ties keep the
    first) and the same per-path left-to-right weight sum as the boxed
    oracle.  [-1] when the pair has no candidates. *)

val canonical : t -> int -> int
(** Canonical representative of a candidate: duplicate paths inside one
    pair's list collapse onto their first occurrence, the way a [Path_map]
    keyed by path merged them.  Accumulate per-candidate statistics at the
    canonical index. *)

val iter_edges : t -> int -> (int -> unit) -> unit
(** Edge ids of a candidate, in path order. *)

val fold_edges : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val find : t -> int -> Sso_graph.Path.t -> int
(** First candidate of pair position [i] (generation order) whose edge
    sequence equals the path's, or [-1] — warm-start seeding. *)

val pair_distribution :
  t ->
  counts:float array ->
  present:bool array ->
  overflow:(Sso_graph.Path.t * float) list option ->
  int ->
  (float * Sso_graph.Path.t) list
(** The averaged distribution of pair position [i] in descending path
    order (the order [Path_map.fold (fun p c acc -> (c, p) :: acc)]
    produced): canonical candidates with [present], weighted by [counts],
    merged with the ascending [overflow] list (warm-start paths outside
    the candidate set).  Boxed paths are materialized here and only
    here. *)
