(** Routings: per-pair distributions over paths (Section 4 of the paper).

    A routing [R] assigns to each vertex pair [(s,t)] in its domain a
    probability distribution [R(s,t)] over simple (s,t)-paths.  Routing a
    demand [d] places weight [d(s,t) · P(R(s,t) = p)] on each path, and the
    congestion of an edge is the total weight crossing it divided by its
    capacity (with unit capacities this is the paper's path count). *)

module Pair_map : Map.S with type key = int * int

type t
(** Immutable routing. *)

val make : ((int * int) * (float * Sso_graph.Path.t) list) list -> t
(** Build from per-pair weighted path lists.  Weights must be non-negative
    with a positive sum per pair; they are normalized to a distribution.
    Paths must connect the pair's endpoints.  Duplicate paths within a pair
    are merged.  @raise Invalid_argument on violations. *)

val singleton_paths : ((int * int) * Sso_graph.Path.t) list -> t
(** Deterministic routing: one path per pair. *)

val of_normalized : ((int * int) * (float * Sso_graph.Path.t) list) list -> t
(** Trusted constructor for distributions that are already normalized (as
    returned by {!distribution}): weights are installed {e without}
    re-normalization, so a decode–encode round trip through the artifact
    codecs is bit-identical.  @raise Invalid_argument on duplicate pairs,
    non-positive weights, endpoint mismatches, or per-pair sums farther
    than [1e-6] from 1. *)

val distribution : t -> int -> int -> (float * Sso_graph.Path.t) list
(** The distribution for a pair; [[]] if the pair is absent. *)

val pairs : t -> (int * int) list

val covers : t -> Sso_demand.Demand.t -> bool
(** Does the routing define a distribution for every pair in the demand's
    support? *)

val support_sparsity : t -> int
(** Maximum support size over pairs — the sparsity of [supp(R)] as a path
    system. *)

val edge_loads : Sso_graph.Graph.t -> t -> Sso_demand.Demand.t -> float array
(** Absolute load (not divided by capacity) per edge id when routing the
    demand.  @raise Invalid_argument if some demanded pair is missing. *)

val congestion : Sso_graph.Graph.t -> t -> Sso_demand.Demand.t -> float
(** [cong(R,d) = max_e load_e / cap_e]; [0] for the empty demand. *)

val edge_congestion : Sso_graph.Graph.t -> t -> Sso_demand.Demand.t -> int -> float
(** Congestion of one edge. *)

val dilation : t -> Sso_demand.Demand.t -> int
(** [dil(R,d)]: maximum hop count over paths with positive weight used by
    pairs in the demand's support; [0] for the empty demand. *)

val is_integral_on : t -> Sso_demand.Demand.t -> bool
(** Is [d(s,t) · P(R(s,t) = p)] a whole number for all [s, t, p]? *)

val restrict : t -> (int * int) list -> t
(** Keep only the listed pairs. *)

val merge_convex :
  Sso_demand.Demand.t * t -> Sso_demand.Demand.t * t -> t
(** Demand-weighted combination (Lemma 5.15): the routing that, for each
    pair, mixes the two distributions proportionally to the two demands.
    Pairs present in only one argument keep that argument's distribution.
    Its congestion on [d1 + d2] is at most [cong(R1,d1) + cong(R2,d2)]. *)

val sample_path : Sso_prng.Rng.t -> t -> int -> int -> Sso_graph.Path.t
(** Draw a path from [R(s,t)].  @raise Invalid_argument if the pair is
    absent. *)
