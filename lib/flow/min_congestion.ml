module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Arena = Sso_graph.Arena
module Shortest = Sso_graph.Shortest
module Maxflow = Sso_graph.Maxflow
module Demand = Sso_demand.Demand
module Simplex = Sso_lp.Simplex
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

let span_lp = Obs.span "stage4.lp"
let span_mwu = Obs.span "stage4.mwu"
let span_lp_unrestricted = Obs.span "opt.lp_unrestricted"
let mwu_iterations = Obs.counter "mwu.iterations"
let mwu_oracle_calls = Obs.counter "mwu.oracle_calls"
let mwu_sssp_batches = Obs.counter "mwu.sssp_batches"

type candidates = ((int * int) * Path.t list) list

(* Hashtable-backed index over the assoc-list candidates type: built once
   per solve so per-round lookups are O(1) instead of O(pairs).  First
   binding wins on duplicate pairs, matching [List.assoc_opt]. *)
let index_candidates (cands : candidates) =
  let tbl = Hashtbl.create ((2 * List.length cands) + 1) in
  List.iter
    (fun (pair, ps) -> if not (Hashtbl.mem tbl pair) then Hashtbl.add tbl pair ps)
    cands;
  tbl

let candidates_for index s t =
  match Hashtbl.find_opt index (s, t) with Some ps -> ps | None -> []

(* ---------- Exact LP on a candidate path system ---------- *)

let lp_on_paths g cands demand =
  if Demand.support_size demand = 0 then (Routing.make [], 0.0)
  else Obs.with_span span_lp @@ fun () -> begin
    let index = index_candidates cands in
    (* Variables: one absolute flow per (pair, candidate path), plus the
       congestion bound z as the last variable. *)
    let entries =
      Demand.fold
        (fun s t amount acc ->
          match candidates_for index s t with
          | [] -> invalid_arg "Min_congestion.lp_on_paths: demanded pair has no candidates"
          | ps -> ((s, t), amount, ps) :: acc)
        demand []
    in
    let num_paths =
      List.fold_left (fun acc (_, _, ps) -> acc + List.length ps) 0 entries
    in
    let z = num_paths in
    (* Assign variable indices. *)
    let indexed =
      let next = ref 0 in
      List.map
        (fun (pair, amount, ps) ->
          let vars =
            List.map
              (fun p ->
                let v = !next in
                incr next;
                (v, p))
              ps
          in
          (pair, amount, vars))
        entries
    in
    (* Demand satisfaction: sum of a pair's path flows = demand. *)
    let demand_rows =
      List.map
        (fun (_, amount, vars) ->
          {
            Simplex.coeffs = List.map (fun (v, _) -> (v, 1.0)) vars;
            relation = Simplex.Eq;
            rhs = amount;
          })
        indexed
    in
    (* Capacity rows: per edge, total flow ≤ cap · z. *)
    let per_edge = Hashtbl.create 64 in
    List.iter
      (fun (_, _, vars) ->
        List.iter
          (fun (v, (p : Path.t)) ->
            Array.iter
              (fun e ->
                let cur = try Hashtbl.find per_edge e with Not_found -> [] in
                Hashtbl.replace per_edge e ((v, 1.0) :: cur))
              p.Path.edges)
          vars)
      indexed;
    let capacity_rows =
      Hashtbl.fold
        (fun e coeffs acc ->
          {
            Simplex.coeffs = (z, -.Graph.cap g e) :: coeffs;
            relation = Simplex.Le;
            rhs = 0.0;
          }
          :: acc)
        per_edge []
    in
    let problem =
      {
        Simplex.num_vars = num_paths + 1;
        objective = [ (z, 1.0) ];
        constraints = demand_rows @ capacity_rows;
      }
    in
    match Simplex.solve problem with
    | Simplex.Infeasible | Simplex.Unbounded ->
        failwith "Min_congestion.lp_on_paths: LP should always be feasible and bounded"
    | Simplex.Optimal { objective; solution } ->
        let routing =
          Routing.make
            (List.map
               (fun (pair, _, vars) ->
                 (* Simplex solutions can carry -1e-15-scale noise. *)
                 (pair, List.map (fun (v, p) -> (Float.max 0.0 solution.(v), p)) vars))
               indexed)
        in
        (routing, Float.max 0.0 objective)
  end

(* ---------- Multiplicative weights ----------

   Zero-sum game view: the adversary maintains a distribution over edges
   (implicitly, via exponential weights on cumulative normalized loads);
   the router best-responds by sending each commodity along its cheapest
   admissible path under those weights; the average of the best responses
   converges to the min-congestion routing at rate O(width·√(ln m / T)). *)

module Path_map = Map.Make (Path)

(* Best-response oracles come in two shapes.  A [Per_pair] oracle answers
   one commodity at a time (candidate-set lookup, where each answer is
   O(candidates)).  A [Batched] oracle answers every commodity sharing a
   source from one single-source computation (Dijkstra / hop-limited DP),
   which is where the support of real demands — gravity matrices, incast,
   ladders — collapses many pairs onto few sources.  Both shapes must
   return, per pair, exactly the path the per-pair computation would. *)
type oracle =
  | Per_pair of (weight:(int -> float) -> int -> int -> Path.t option)
  | Batched of (weight:(int -> float) -> int -> int array -> Path.t option array)

let mwu_generic ?pool ?(iters = 300) ?warm ?(label = "mwu") g ~oracle demand =
  if iters <= 0 then invalid_arg "Min_congestion: iters must be positive";
  if Demand.support_size demand = 0 then Some (Routing.make [], 0.0)
  else Obs.with_span span_mwu @@ fun () -> begin
    let m = Graph.m g in
    let support = Demand.support demand in
    let support_arr = Array.of_list support in
    let pairs = Array.length support_arr in
    if Obs.tracing () then
      Obs.event "mwu.solve"
        ~attrs:
          [
            ("solver", Trace.String label);
            ("pairs", Trace.Int pairs);
            ("iters", Trace.Int iters);
          ];
    (* Per-round invariants, hoisted out of the relaxation/accumulation
       inner loops: demand amounts and edge capacities are loop constants. *)
    let amounts = Array.map (fun (s, t) -> Demand.get demand s t) support_arr in
    let caps = Array.init m (Graph.cap g) in
    (* Group the support by source.  [Demand.support] is lexicographically
       sorted, so equal sources form consecutive runs; grouping runs (and
       flattening group answers in group order) therefore preserves support
       order exactly — the determinism argument needs nothing more. *)
    let groups =
      let acc = ref [] in
      let i = ref 0 in
      while !i < pairs do
        let s = fst support_arr.(!i) in
        let j = ref !i in
        while !j < pairs && fst support_arr.(!j) = s do incr j done;
        acc := (s, Array.init (!j - !i) (fun k -> snd support_arr.(!i + k))) :: !acc;
        i := !j
      done;
      Array.of_list (List.rev !acc)
    in
    (* Per-commodity best responses are independent within a round, so they
       fan out on the pool; results come back in support order, and loads
       are folded serially in that order, so the routing is bit-identical
       for any job count.  Tiny supports stay serial — the dispatch
       overhead would dominate (the cutoff is a constant, never the job
       count, to preserve determinism). *)
    let best_responses ~weight =
      Obs.incr ~by:pairs mwu_oracle_calls;
      match oracle with
      | Per_pair oracle ->
          if pairs < 4 then Array.map (fun (s, t) -> oracle ~weight s t) support_arr
          else Pool.parallel_map ?pool (fun (s, t) -> oracle ~weight s t) support_arr
      | Batched oracle ->
          Obs.incr ~by:(Array.length groups) mwu_sssp_batches;
          let per_group =
            if pairs < 4 then
              Array.map (fun (s, ts) -> oracle ~weight s ts) groups
            else Pool.parallel_map ?pool (fun (s, ts) -> oracle ~weight s ts) groups
          in
          Array.concat (Array.to_list per_group)
    in
    (* Feasibility probe with uniform weights; also yields the width
       normalizer U (congestion of the probe routing). *)
    let probe_weight e = 1.0 /. caps.(e) in
    let probe = best_responses ~weight:probe_weight in
    if Array.exists (fun p -> p = None) probe then None
    else begin
      let loads = Array.make m 0.0 in
      Array.iteri
        (fun i p ->
          match p with
          | Some (p : Path.t) ->
              let amount = amounts.(i) in
              Array.iter (fun e -> loads.(e) <- loads.(e) +. amount) p.Path.edges
          | None -> assert false)
        probe;
      let u_norm = ref 1e-12 in
      Array.iteri
        (fun e load ->
          let c = load /. caps.(e) in
          if c > !u_norm then u_norm := c)
        loads;
      let u_norm = !u_norm in
      let eta = Float.sqrt (4.0 *. Float.log (float_of_int (max 2 m)) /. float_of_int iters) in
      let cum = Array.make m 0.0 in
      let counts = Hashtbl.create pairs in
      (* Warm start: treat a previous routing as [weight] already-played
         rounds — seed both the play counts (so the average is anchored)
         and the cumulative loads (so the adversary remembers). *)
      (match warm with
      | None -> ()
      | Some (previous, weight) ->
          if weight <= 0 then invalid_arg "Min_congestion: warm-start weight must be positive";
          let wf = float_of_int weight in
          Array.iteri
            (fun i (s, t) ->
              match Routing.distribution previous s t with
              | [] -> ()
              | dist ->
                  let entry =
                    List.fold_left
                      (fun acc (w, p) ->
                        Path_map.update p
                          (function
                            | None -> Some (w *. wf) | Some c -> Some (c +. (w *. wf)))
                          acc)
                      Path_map.empty dist
                  in
                  Hashtbl.replace counts (s, t) entry;
                  let amount = amounts.(i) in
                  List.iter
                    (fun (w, (p : Path.t)) ->
                      Array.iter
                        (fun e ->
                          cum.(e) <-
                            cum.(e) +. (wf *. w *. amount /. (caps.(e) *. u_norm)))
                        p.Path.edges)
                    dist)
            support_arr);
      let record pair p =
        let cur = try Hashtbl.find counts pair with Not_found -> Path_map.empty in
        let cur =
          Path_map.update p (function None -> Some 1.0 | Some c -> Some (c +. 1.0)) cur
        in
        Hashtbl.replace counts pair cur
      in
      (* The adversary weight is recomputed once per edge per round into a
         flat buffer (hoisting the exp out of the oracles' inner loops, and
         off of every edge visit), reused across rounds. *)
      let warr = Array.make m 0.0 in
      let round_weight e = warr.(e) in
      let round_loads = Array.make m 0.0 in
      let base_plays = match warm with None -> 0 | Some (_, w) -> w in
      for round = 1 to iters do
        Obs.incr mwu_iterations;
        let max_cum = Array.fold_left Float.max neg_infinity cum in
        for e = 0 to m - 1 do
          warr.(e) <- Float.exp (eta *. (cum.(e) -. max_cum)) /. caps.(e)
        done;
        let responses = best_responses ~weight:round_weight in
        Array.fill round_loads 0 m 0.0;
        Array.iteri
          (fun i response ->
            match response with
            | None -> assert false (* probed feasible above *)
            | Some p ->
                record support_arr.(i) p;
                let amount = amounts.(i) in
                Array.iter
                  (fun e -> round_loads.(e) <- round_loads.(e) +. amount)
                  p.Path.edges)
          responses;
        for e = 0 to m - 1 do
          cum.(e) <- cum.(e) +. (round_loads.(e) /. (caps.(e) *. u_norm))
        done;
        (* Per-round convergence telemetry.  The cumulative normalized load
           satisfies cum(e)·u_norm = (total load on e so far)/cap(e), so
           max_e cum · u_norm / plays is exactly the congestion of the
           routing averaged over all plays (warm start included). *)
        if Obs.tracing () then begin
          let round_peak = ref 0.0 and cum_peak = ref neg_infinity in
          for e = 0 to m - 1 do
            let rc = round_loads.(e) /. caps.(e) in
            if rc > !round_peak then round_peak := rc;
            if cum.(e) > !cum_peak then cum_peak := cum.(e)
          done;
          let plays = float_of_int (base_plays + round) in
          let support_paths =
            Hashtbl.fold (fun _ dist acc -> acc + Path_map.cardinal dist) counts 0
          in
          Obs.event "mwu.round"
            ~attrs:
              [
                ("solver", Trace.String label);
                ("round", Trace.Int round);
                ("round_congestion", Trace.Float !round_peak);
                ("avg_congestion", Trace.Float (!cum_peak *. u_norm /. plays));
                ("potential", Trace.Float !cum_peak);
                ("support_paths", Trace.Int support_paths);
              ]
        end
      done;
      let routing =
        Routing.make
          (List.map
             (fun (s, t) ->
               let dist = Hashtbl.find counts (s, t) in
               ((s, t), Path_map.fold (fun p c acc -> (c, p) :: acc) dist []))
             support)
      in
      Some (routing, Routing.congestion g routing demand)
    end
  end

(* ---------- Candidate sets as arena slices ----------

   Stage-4 candidate solving runs on the flat index of {!Slice_candidates}:
   the candidate set is unpacked once per solve and every round's
   oracle/accumulation loops walk int arrays in place. *)

type slice_candidates = Slice_candidates.t

let slice_candidates_of_arena = Slice_candidates.of_arena
let slice_candidates_of_list g (cands : candidates) = Slice_candidates.of_list g cands

(* The MWU game of [mwu_generic], specialized to candidate slices: same
   dispatch structure, counters, trace events and float operation order,
   with best responses as candidate indices instead of boxed paths. *)
let mwu_slices ?pool ?(iters = 300) ?warm ~label g sc demand =
  if iters <= 0 then invalid_arg "Min_congestion: iters must be positive";
  if Demand.support_size demand = 0 then Some (Routing.make [], 0.0)
  else Obs.with_span span_mwu @@ fun () -> begin
    let m = Graph.m g in
    let support = Demand.support demand in
    let support_arr = Array.of_list support in
    let pairs = Array.length support_arr in
    if Obs.tracing () then
      Obs.event "mwu.solve"
        ~attrs:
          [
            ("solver", Trace.String label);
            ("pairs", Trace.Int pairs);
            ("iters", Trace.Int iters);
          ];
    let amounts = Array.map (fun (s, t) -> Demand.get demand s t) support_arr in
    let caps = Array.init m (Graph.cap g) in
    (* Pair positions in the candidate index, [-1] for uncovered pairs. *)
    let positions = Array.map (Slice_candidates.position sc) support_arr in
    let answer ~weight i =
      let p = positions.(i) in
      if p < 0 then -1 else Slice_candidates.cheapest sc ~weight p
    in
    let best_responses ~weight =
      Obs.incr ~by:pairs mwu_oracle_calls;
      if pairs < 4 then Array.init pairs (fun i -> answer ~weight i)
      else Pool.parallel_init ?pool pairs (fun i -> answer ~weight i)
    in
    let add_loads loads c amount =
      Slice_candidates.iter_edges sc c (fun e ->
          Array.unsafe_set loads e (Array.unsafe_get loads e +. amount))
    in
    let probe_weight e = 1.0 /. caps.(e) in
    let probe = best_responses ~weight:probe_weight in
    if Array.exists (fun c -> c < 0) probe then None
    else begin
      let loads = Array.make m 0.0 in
      Array.iteri (fun i c -> add_loads loads c amounts.(i)) probe;
      let u_norm = ref 1e-12 in
      Array.iteri
        (fun e load ->
          let c = load /. caps.(e) in
          if c > !u_norm then u_norm := c)
        loads;
      let u_norm = !u_norm in
      let eta = Float.sqrt (4.0 *. Float.log (float_of_int (max 2 m)) /. float_of_int iters) in
      let cum = Array.make m 0.0 in
      let ncands = Slice_candidates.ncands sc in
      let counts = Array.make ncands 0.0 in
      let present = Array.make ncands false in
      let overflow : (int, (Path.t * float) list) Hashtbl.t = Hashtbl.create 7 in
      (match warm with
      | None -> ()
      | Some (previous, weight) ->
          if weight <= 0 then invalid_arg "Min_congestion: warm-start weight must be positive";
          let wf = float_of_int weight in
          Array.iteri
            (fun i (s, t) ->
              match Routing.distribution previous s t with
              | [] -> ()
              | dist ->
                  let over = ref Path_map.empty in
                  List.iter
                    (fun (w, p) ->
                      let c =
                        if positions.(i) < 0 then -1
                        else Slice_candidates.find sc positions.(i) p
                      in
                      if c >= 0 then begin
                        let cc = Slice_candidates.canonical sc c in
                        counts.(cc) <- counts.(cc) +. (w *. wf);
                        present.(cc) <- true
                      end
                      else
                        over :=
                          Path_map.update p
                            (function
                              | None -> Some (w *. wf) | Some c -> Some (c +. (w *. wf)))
                            !over)
                    dist;
                  if not (Path_map.is_empty !over) then
                    Hashtbl.replace overflow i
                      (Path_map.fold (fun p c acc -> (p, c) :: acc) !over []
                      |> List.rev);
                  let amount = amounts.(i) in
                  List.iter
                    (fun (w, (p : Path.t)) ->
                      Array.iter
                        (fun e ->
                          cum.(e) <-
                            cum.(e) +. (wf *. w *. amount /. (caps.(e) *. u_norm)))
                        p.Path.edges)
                    dist)
            support_arr);
      let record c =
        let cc = Slice_candidates.canonical sc c in
        counts.(cc) <- counts.(cc) +. 1.0;
        present.(cc) <- true
      in
      let warr = Array.make m 0.0 in
      let round_weight e = warr.(e) in
      let round_loads = Array.make m 0.0 in
      let base_plays = match warm with None -> 0 | Some (_, w) -> w in
      for round = 1 to iters do
        Obs.incr mwu_iterations;
        let max_cum = Array.fold_left Float.max neg_infinity cum in
        for e = 0 to m - 1 do
          warr.(e) <- Float.exp (eta *. (cum.(e) -. max_cum)) /. caps.(e)
        done;
        let responses = best_responses ~weight:round_weight in
        Array.fill round_loads 0 m 0.0;
        Array.iteri
          (fun i c ->
            if c < 0 then assert false (* probed feasible above *);
            record c;
            add_loads round_loads c amounts.(i))
          responses;
        for e = 0 to m - 1 do
          cum.(e) <- cum.(e) +. (round_loads.(e) /. (caps.(e) *. u_norm))
        done;
        if Obs.tracing () then begin
          let round_peak = ref 0.0 and cum_peak = ref neg_infinity in
          for e = 0 to m - 1 do
            let rc = round_loads.(e) /. caps.(e) in
            if rc > !round_peak then round_peak := rc;
            if cum.(e) > !cum_peak then cum_peak := cum.(e)
          done;
          let plays = float_of_int (base_plays + round) in
          let support_paths =
            let n = ref 0 in
            Array.iter (fun p -> if p then incr n) present;
            Hashtbl.iter (fun _ over -> n := !n + List.length over) overflow;
            !n
          in
          Obs.event "mwu.round"
            ~attrs:
              [
                ("solver", Trace.String label);
                ("round", Trace.Int round);
                ("round_congestion", Trace.Float !round_peak);
                ("avg_congestion", Trace.Float (!cum_peak *. u_norm /. plays));
                ("potential", Trace.Float !cum_peak);
                ("support_paths", Trace.Int support_paths);
              ]
        end
      done;
      let routing =
        Routing.make
          (List.mapi
             (fun i pair ->
               ( pair,
                 Slice_candidates.pair_distribution sc ~counts ~present
                   ~overflow:(Hashtbl.find_opt overflow i)
                   positions.(i) ))
             support)
      in
      Some (routing, Routing.congestion g routing demand)
    end
  end

let mwu_on_slices ?pool ?iters g sc demand =
  match mwu_slices ?pool ?iters ~label:"on_paths" g sc demand with
  | Some result -> result
  | None -> invalid_arg "Min_congestion.mwu_on_paths: demanded pair has no candidates"

let mwu_on_slices_warm ?pool ?iters ~warm ~warm_weight g sc demand =
  match
    mwu_slices ?pool ?iters ~warm:(warm, warm_weight) ~label:"on_paths_warm" g sc demand
  with
  | Some result -> result
  | None -> invalid_arg "Min_congestion.mwu_on_paths_warm: demanded pair has no candidates"

let mwu_on_paths ?pool ?iters g cands demand =
  mwu_on_slices ?pool ?iters g (slice_candidates_of_list g cands) demand

let mwu_on_paths_warm ?pool ?iters ~warm ~warm_weight g cands demand =
  mwu_on_slices_warm ?pool ?iters ~warm ~warm_weight g
    (slice_candidates_of_list g cands)
    demand

let unrestricted_oracle ?(batched = true) g =
  if batched then
    Batched (fun ~weight s ts -> Shortest.dijkstra_paths g ~weight s ts)
  else Per_pair (fun ~weight s t -> Shortest.dijkstra_path g ~weight s t)

let mwu_unrestricted ?pool ?iters ?batched g demand =
  match
    mwu_generic ?pool ?iters ~label:"unrestricted" g
      ~oracle:(unrestricted_oracle ?batched g) demand
  with
  | Some result -> result
  | None -> invalid_arg "Min_congestion.mwu_unrestricted: graph is disconnected"

let mwu_unrestricted_avoiding ?pool ?iters ?(batched = true) ~avoid g demand =
  let mask weight e = if avoid e then infinity else weight e in
  let oracle =
    if batched then
      Batched (fun ~weight s ts -> Shortest.dijkstra_paths g ~weight:(mask weight) s ts)
    else Per_pair (fun ~weight s t -> Shortest.dijkstra_path g ~weight:(mask weight) s t)
  in
  mwu_generic ?pool ?iters ~label:"avoiding" g ~oracle demand

let mwu_hop_limited ?pool ?iters ?(batched = true) ~max_hops g demand =
  let oracle =
    if batched then
      Batched (fun ~weight s ts -> Shortest.hop_limited_paths g ~weight ~max_hops s ts)
    else Per_pair (fun ~weight s t -> Shortest.hop_limited_path g ~weight ~max_hops s t)
  in
  mwu_generic ?pool ?iters ~label:"hop_limited" g ~oracle demand

(* ---------- Exact unrestricted LP (edge formulation) ---------- *)

let lp_unrestricted g demand =
  if Demand.support_size demand = 0 then 0.0
  else Obs.with_span span_lp_unrestricted @@ fun () -> begin
    let n = Graph.n g and m = Graph.m g in
    let commodities = Demand.support demand in
    let k = List.length commodities in
    (* Variables: for commodity i and edge e, flow in the u→v direction is
       var (i·2m + 2e) and v→u is var (i·2m + 2e + 1); z is the last. *)
    let z = k * 2 * m in
    let var i e dir = (i * 2 * m) + (2 * e) + dir in
    let conservation =
      List.concat
        (List.mapi
           (fun i (s, t) ->
             let amount = Demand.get demand s t in
             List.filter_map
               (fun v ->
                 let coeffs = ref [] in
                 Array.iter
                   (fun (e, _) ->
                     let u, _ = Graph.endpoints g e in
                     (* u→v direction leaves u and enters the other end. *)
                     let dir_out = if v = u then 0 else 1 in
                     coeffs := (var i e dir_out, 1.0) :: (var i e (1 - dir_out), -1.0) :: !coeffs)
                   (Graph.adj g v);
                 let rhs = if v = s then amount else if v = t then -.amount else 0.0 in
                 if !coeffs = [] && rhs = 0.0 then None
                 else Some { Simplex.coeffs = !coeffs; relation = Simplex.Eq; rhs })
               (List.init n Fun.id))
           commodities)
    in
    let capacity =
      List.init m (fun e ->
          let coeffs =
            List.concat
              (List.mapi (fun i _ -> [ (var i e 0, 1.0); (var i e 1, 1.0) ]) commodities)
          in
          {
            Simplex.coeffs = (z, -.Graph.cap g e) :: coeffs;
            relation = Simplex.Le;
            rhs = 0.0;
          })
    in
    let problem =
      {
        Simplex.num_vars = z + 1;
        objective = [ (z, 1.0) ];
        constraints = conservation @ capacity;
      }
    in
    match Simplex.solve problem with
    | Simplex.Optimal { objective; _ } -> Float.max 0.0 objective
    | Simplex.Infeasible | Simplex.Unbounded ->
        failwith "Min_congestion.lp_unrestricted: LP should be feasible and bounded"
  end

(* ---------- Certified lower bounds ---------- *)

let lower_bound_sparse_cut g demand =
  let per_pair =
    Demand.fold
      (fun s t amount acc ->
        let cutcap = Maxflow.max_flow g s t in
        if cutcap > 0.0 then Float.max acc (amount /. cutcap) else acc)
      demand 0.0
  in
  (* Volume bound: every unit of (s,t) demand occupies at least hop(s,t)
     units of capacity, and total capacity is finite. *)
  let volume =
    Demand.fold
      (fun s t amount acc ->
        match Shortest.bfs_dist g s with
        | dist when dist.(t) <> max_int -> acc +. (amount *. float_of_int dist.(t))
        | _ -> acc)
      demand 0.0
  in
  Float.max per_pair (volume /. Graph.total_capacity g)
