module Path = Sso_graph.Path
module Graph = Sso_graph.Graph
module Demand = Sso_demand.Demand
module Rng = Sso_prng.Rng

module Pair_map = Map.Make (struct
  type t = int * int

  let compare = compare
end)

module Path_map = Map.Make (Path)

type t = (float * Path.t) list Pair_map.t

let normalize pair entries =
  let s, t = pair in
  let total =
    List.fold_left
      (fun acc (w, (p : Path.t)) ->
        if w < 0.0 then invalid_arg "Routing.make: negative weight";
        if p.Path.src <> s || p.Path.dst <> t then
          invalid_arg "Routing.make: path endpoints do not match pair";
        acc +. w)
      0.0 entries
  in
  if not (total > 0.0) then invalid_arg "Routing.make: weights must have positive sum";
  (* Merge duplicate paths and normalize. *)
  let merged =
    List.fold_left
      (fun acc (w, p) ->
        Path_map.update p (function None -> Some w | Some w' -> Some (w +. w')) acc)
      Path_map.empty entries
  in
  Path_map.fold
    (fun p w acc -> if w > 0.0 then (w /. total, p) :: acc else acc)
    merged []

let make entries =
  List.fold_left
    (fun acc (pair, dist) ->
      if Pair_map.mem pair acc then invalid_arg "Routing.make: duplicate pair";
      Pair_map.add pair (normalize pair dist) acc)
    Pair_map.empty entries

let singleton_paths entries = make (List.map (fun (pair, p) -> (pair, [ (1.0, p) ])) entries)

let of_normalized entries =
  List.fold_left
    (fun acc ((pair, dist) : (int * int) * (float * Path.t) list) ->
      if Pair_map.mem pair acc then invalid_arg "Routing.of_normalized: duplicate pair";
      let s, t = pair in
      let total =
        List.fold_left
          (fun sum (w, (p : Path.t)) ->
            if not (w > 0.0) then
              invalid_arg "Routing.of_normalized: weights must be positive";
            if p.Path.src <> s || p.Path.dst <> t then
              invalid_arg "Routing.of_normalized: path endpoints do not match pair";
            sum +. w)
          0.0 dist
      in
      if Float.abs (total -. 1.0) > 1e-6 then
        invalid_arg "Routing.of_normalized: weights must sum to 1";
      Pair_map.add pair dist acc)
    Pair_map.empty entries

let distribution r s t =
  match Pair_map.find_opt (s, t) r with Some d -> d | None -> []

let pairs r = List.map fst (Pair_map.bindings r)

let covers r d =
  List.for_all (fun (s, t) -> Pair_map.mem (s, t) r) (Demand.support d)

let support_sparsity r =
  Pair_map.fold (fun _ dist acc -> max acc (List.length dist)) r 0

let edge_loads g r d =
  let loads = Array.make (Graph.m g) 0.0 in
  Demand.fold
    (fun s t amount () ->
      match Pair_map.find_opt (s, t) r with
      | None -> invalid_arg "Routing.edge_loads: demanded pair missing from routing"
      | Some dist ->
          List.iter
            (fun (w, p) ->
              Array.iter
                (fun e -> loads.(e) <- loads.(e) +. (amount *. w))
                p.Path.edges)
            dist)
    d ();
  loads

let congestion g r d =
  let loads = edge_loads g r d in
  let best = ref 0.0 in
  Array.iteri
    (fun e load ->
      let c = load /. Graph.cap g e in
      if c > !best then best := c)
    loads;
  !best

let edge_congestion g r d e =
  let loads = edge_loads g r d in
  loads.(e) /. Graph.cap g e

let dilation r d =
  Demand.fold
    (fun s t _ acc ->
      List.fold_left
        (fun acc (w, p) -> if w > 0.0 then max acc (Path.hops p) else acc)
        acc (distribution r s t))
    d 0

let is_integral_on r d =
  let eps = 1e-9 in
  Demand.fold
    (fun s t amount acc ->
      acc
      && List.for_all
           (fun (w, _) ->
             let x = amount *. w in
             Float.abs (x -. Float.round x) < eps)
           (distribution r s t))
    d true

let restrict r keep =
  let keep_set = List.fold_left (fun acc p -> Pair_map.add p () acc) Pair_map.empty keep in
  Pair_map.filter (fun pair _ -> Pair_map.mem pair keep_set) r

let merge_convex (d1, r1) (d2, r2) =
  Pair_map.merge
    (fun pair dist1 dist2 ->
      match (dist1, dist2) with
      | None, None -> None
      | Some dist, None | None, Some dist -> Some dist
      | Some dist1, Some dist2 ->
          let s, t = pair in
          let a = Demand.get d1 s t and b = Demand.get d2 s t in
          if a +. b <= 0.0 then Some dist1
          else begin
            let scaled1 = List.map (fun (w, p) -> (w *. a, p)) dist1 in
            let scaled2 = List.map (fun (w, p) -> (w *. b, p)) dist2 in
            Some (normalize pair (scaled1 @ scaled2))
          end)
    r1 r2

let sample_path rng r s t =
  match distribution r s t with
  | [] -> invalid_arg "Routing.sample_path: pair missing from routing"
  | dist ->
      let weights = Array.of_list (List.map fst dist) in
      let paths = Array.of_list (List.map snd dist) in
      paths.(Rng.discrete rng weights)
