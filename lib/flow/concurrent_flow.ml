module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Shortest = Sso_graph.Shortest
module Demand = Sso_demand.Demand

module Path_map = Map.Make (Path)

(* Garg–Könemann phases: edge lengths start at δ/cap and are multiplied by
   (1 + ε·f/cap) whenever f flow crosses the edge.  A phase pushes each
   commodity's full demand (in bottleneck-sized chunks); phases repeat
   until the total "length volume" D = Σ l_e·cap_e reaches 1.  The
   accumulated per-pair flows, re-normalized to distributions, form the
   output routing. *)

module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

let span_gk = Obs.span "stage4.gk"

let solve ?(epsilon = 0.1) g ~oracle demand =
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Concurrent_flow: epsilon must lie in (0,1)";
  if Demand.support_size demand = 0 then (Routing.make [], 0.0)
  else Obs.with_span span_gk @@ fun () -> begin
    let m = Graph.m g in
    let mf = float_of_int (max 2 m) in
    let delta = (1.0 +. epsilon) /. Float.pow ((1.0 +. epsilon) *. mf) (1.0 /. epsilon) in
    (* Capacities are loop constants — snapshot them once instead of going
       through [Graph.cap]'s bounds-checked record access in every phase. *)
    let caps = Array.init m (Graph.cap g) in
    let length = Array.make m 0.0 in
    Array.iteri (fun e _ -> length.(e) <- delta /. caps.(e)) length;
    (* [volume] stays a full fold on purpose: an incrementally-maintained
       running sum would accumulate different rounding than this left-to-
       right reduction and change the phase count (and hence the output). *)
    let volume () =
      let d = ref 0.0 in
      for e = 0 to m - 1 do
        d := !d +. (length.(e) *. caps.(e))
      done;
      !d
    in
    let commodities = Demand.support demand in
    let flows = Hashtbl.create (List.length commodities) in
    let record pair p amount =
      let cur = try Hashtbl.find flows pair with Not_found -> Path_map.empty in
      let cur =
        Path_map.update p
          (function None -> Some amount | Some a -> Some (a +. amount))
          cur
      in
      Hashtbl.replace flows pair cur
    in
    let weight e = length.(e) in
    (* Feasibility probe: every commodity must have at least one path. *)
    List.iter
      (fun (s, t) ->
        match oracle ~weight s t with
        | Some _ -> ()
        | None -> invalid_arg "Concurrent_flow: demanded pair has no route")
      commodities;
    if Obs.tracing () then
      Obs.event "gk.solve"
        ~attrs:
          [
            ("pairs", Trace.Int (List.length commodities));
            ("epsilon", Trace.Float epsilon);
          ];
    (* Guard against pathological parameter combinations. *)
    let max_phases = 100_000 in
    let phases = ref 0 in
    while volume () < 1.0 && !phases < max_phases do
      incr phases;
      if Obs.tracing () then
        Obs.event "gk.phase"
          ~attrs:
            [ ("phase", Trace.Int !phases); ("volume", Trace.Float (volume ())) ];
      List.iter
        (fun (s, t) ->
          let remaining = ref (Demand.get demand s t) in
          while !remaining > 1e-12 && volume () < 1.0 do
            match oracle ~weight s t with
            | None -> remaining := 0.0
            | Some (p : Path.t) ->
                let bottleneck =
                  Array.fold_left
                    (fun acc e -> Float.min acc caps.(e))
                    infinity p.Path.edges
                in
                let amount = Float.min !remaining bottleneck in
                record (s, t) p amount;
                Array.iter
                  (fun e ->
                    length.(e) <-
                      length.(e) *. (1.0 +. (epsilon *. amount /. caps.(e))))
                  p.Path.edges;
                remaining := !remaining -. amount
          done)
        commodities
    done;
    if !phases >= max_phases then failwith "Concurrent_flow: phase budget exceeded";
    let routing =
      Routing.make
        (List.map
           (fun pair ->
             let dist = Hashtbl.find flows pair in
             (pair, Path_map.fold (fun p a acc -> (a, p) :: acc) dist []))
           commodities)
    in
    (routing, Routing.congestion g routing demand)
  end

(* The same phase structure as [solve], specialized to candidate slices:
   identical chunking, float updates, record order and trace events, with
   the cheapest-path oracle and the flow accumulation walking the flat
   candidate index in place. *)
let on_slices ?(epsilon = 0.1) g sc demand =
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Concurrent_flow: epsilon must lie in (0,1)";
  if Demand.support_size demand = 0 then (Routing.make [], 0.0)
  else Obs.with_span span_gk @@ fun () -> begin
    let m = Graph.m g in
    let mf = float_of_int (max 2 m) in
    let delta = (1.0 +. epsilon) /. Float.pow ((1.0 +. epsilon) *. mf) (1.0 /. epsilon) in
    let caps = Array.init m (Graph.cap g) in
    let length = Array.make m 0.0 in
    Array.iteri (fun e _ -> length.(e) <- delta /. caps.(e)) length;
    (* [volume] stays a full fold on purpose — see [solve]. *)
    let volume () =
      let d = ref 0.0 in
      for e = 0 to m - 1 do
        d := !d +. (length.(e) *. caps.(e))
      done;
      !d
    in
    let commodities = Demand.support demand in
    let positions =
      Array.of_list (List.map (Slice_candidates.position sc) commodities)
    in
    let counts = Array.make (Slice_candidates.ncands sc) 0.0 in
    let present = Array.make (Slice_candidates.ncands sc) false in
    let record c amount =
      let cc = Slice_candidates.canonical sc c in
      counts.(cc) <- counts.(cc) +. amount;
      present.(cc) <- true
    in
    let weight e = length.(e) in
    (* Feasibility probe: every commodity must have at least one path. *)
    Array.iter
      (fun i ->
        if i < 0 || Slice_candidates.is_empty_at sc i then
          invalid_arg "Concurrent_flow: demanded pair has no route")
      positions;
    if Obs.tracing () then
      Obs.event "gk.solve"
        ~attrs:
          [
            ("pairs", Trace.Int (List.length commodities));
            ("epsilon", Trace.Float epsilon);
          ];
    let max_phases = 100_000 in
    let phases = ref 0 in
    while volume () < 1.0 && !phases < max_phases do
      incr phases;
      if Obs.tracing () then
        Obs.event "gk.phase"
          ~attrs:
            [ ("phase", Trace.Int !phases); ("volume", Trace.Float (volume ())) ];
      List.iteri
        (fun k (s, t) ->
          let i = positions.(k) in
          let remaining = ref (Demand.get demand s t) in
          while !remaining > 1e-12 && volume () < 1.0 do
            let c = Slice_candidates.cheapest sc ~weight i in
            if c < 0 then remaining := 0.0
            else begin
              let bottleneck =
                Slice_candidates.fold_edges sc c
                  (fun acc e -> Float.min acc caps.(e))
                  infinity
              in
              let amount = Float.min !remaining bottleneck in
              record c amount;
              Slice_candidates.iter_edges sc c (fun e ->
                  length.(e) <-
                    length.(e) *. (1.0 +. (epsilon *. amount /. caps.(e))));
              remaining := !remaining -. amount
            end
          done)
        commodities
    done;
    if !phases >= max_phases then failwith "Concurrent_flow: phase budget exceeded";
    let routing =
      Routing.make
        (List.mapi
           (fun k pair ->
             ( pair,
               Slice_candidates.pair_distribution sc ~counts ~present ~overflow:None
                 positions.(k) ))
           commodities)
    in
    (routing, Routing.congestion g routing demand)
  end

let on_paths ?epsilon g cands demand =
  on_slices ?epsilon g (Slice_candidates.of_list g cands) demand

let unrestricted ?epsilon g demand =
  solve ?epsilon g ~oracle:(fun ~weight s t -> Shortest.dijkstra_path g ~weight s t) demand
