(** Lightweight instrumentation: named monotonic counters and wall-clock
    span timers with a thread-safe registry.

    Counters are atomic integers safe to bump from any domain (MWU
    iterations, oracle calls, Dinic augmentations, sampled trees).  Spans
    accumulate wall-clock time and call counts around a closure (Stage-4
    solves, the Räcke construction).  [--metrics] in the bench harness and
    CLI dumps the registry as a table or JSON after the run. *)

type counter
type span

val counter : string -> counter
(** Find or create the counter registered under [name].  Calling twice
    with the same name returns the same counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) atomically. *)

val counter_value : counter -> int

val span : string -> span
(** Find or create the span registered under [name]. *)

val with_span : span -> (unit -> 'a) -> 'a
(** Run the closure, adding its wall-clock duration and one call to the
    span (also on exceptions). *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] is [with_span (span name) f]. *)

val span_total_ns : span -> int
val span_calls : span -> int

val reset : unit -> unit
(** Zero every registered counter and span (registrations persist). *)

val table : unit -> string
(** Human-readable table of all non-zero counters and spans, sorted by
    name.  Empty string when nothing was recorded. *)

val json : unit -> string
(** The same data as a JSON object
    [{"counters": {...}, "spans": {name: {"ns": n, "calls": c}}}]. *)
