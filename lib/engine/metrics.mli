(** Lightweight instrumentation: named monotonic counters and wall-clock
    span timers with a thread-safe registry.

    This module is now a compatibility shim over {!Sso_obs.Obs}, which
    extends the registry with histograms and optional trace events.  The
    types are equal, not merely similar: a counter registered here and one
    registered through [Obs] under the same name are the same object, so
    call sites can migrate one at a time.  [table]/[json] output is
    byte-identical to the pre-shim implementation. *)

type counter = Sso_obs.Obs.counter
type span = Sso_obs.Obs.span

val counter : string -> counter
(** Find or create the counter registered under [name].  Calling twice
    with the same name returns the same counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) atomically. *)

val counter_value : counter -> int

val span : string -> span
(** Find or create the span registered under [name]. *)

val with_span : span -> (unit -> 'a) -> 'a
(** Run the closure, adding its wall-clock duration and one call to the
    span (also on exceptions). *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] is [with_span (span name) f]. *)

val span_total_ns : span -> int
val span_calls : span -> int

val reset : unit -> unit
(** Zero every registered counter and span (registrations persist). *)

val table : unit -> string
(** Human-readable table of all non-zero counters and spans, sorted by
    name.  Empty string when nothing was recorded. *)

val json : unit -> string
(** The same data as a JSON object
    [{"counters": {...}, "spans": {name: {"ns": n, "calls": c}}}]. *)
