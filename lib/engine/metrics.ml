(* Thread-safe metrics registry.  Counters and span accumulators are
   atomics so hot paths never take the registry lock; the lock only guards
   find-or-create and enumeration. *)

type counter = { cname : string; value : int Atomic.t }
type span = { sname : string; total_ns : int Atomic.t; calls : int Atomic.t }

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let spans : (string, span) Hashtbl.t = Hashtbl.create 32

let registered tbl make name =
  Mutex.lock lock;
  let entry =
    match Hashtbl.find_opt tbl name with
    | Some e -> e
    | None ->
        let e = make name in
        Hashtbl.replace tbl name e;
        e
  in
  Mutex.unlock lock;
  entry

let counter name =
  registered counters (fun cname -> { cname; value = Atomic.make 0 }) name

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let span name =
  registered spans
    (fun sname -> { sname; total_ns = Atomic.make 0; calls = Atomic.make 0 })
    name

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let with_span sp f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      ignore (Atomic.fetch_and_add sp.total_ns (max 0 (now_ns () - t0)));
      ignore (Atomic.fetch_and_add sp.calls 1))
    f

let time name f = with_span (span name) f
let span_total_ns sp = Atomic.get sp.total_ns
let span_calls sp = Atomic.get sp.calls

let reset () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.total_ns 0;
      Atomic.set s.calls 0)
    spans;
  Mutex.unlock lock

let snapshot () =
  Mutex.lock lock;
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) counters []
  in
  let ss =
    Hashtbl.fold
      (fun name s acc -> (name, Atomic.get s.total_ns, Atomic.get s.calls) :: acc)
      spans []
  in
  Mutex.unlock lock;
  ( List.sort compare (List.filter (fun (_, v) -> v <> 0) cs),
    List.sort compare (List.filter (fun (_, _, c) -> c <> 0) ss) )

let table () =
  let cs, ss = snapshot () in
  if cs = [] && ss = [] then ""
  else begin
    let buf = Buffer.create 256 in
    if cs <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "%-32s %14s\n" "counter" "value");
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %14d\n" name v))
        cs
    end;
    if ss <> [] then begin
      if cs <> [] then Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%-32s %10s %12s %12s\n" "span" "calls" "total ms" "ms/call");
      List.iter
        (fun (name, ns, calls) ->
          let ms = float_of_int ns /. 1e6 in
          Buffer.add_string buf
            (Printf.sprintf "%-32s %10d %12.2f %12.3f\n" name calls ms
               (ms /. float_of_int (max 1 calls))))
        ss
    end;
    Buffer.contents buf
  end

let json () =
  let cs, ss = snapshot () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%S: %d" name v))
    cs;
  Buffer.add_string buf "}, \"spans\": {";
  List.iteri
    (fun i (name, ns, calls) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "%S: {\"ns\": %d, \"calls\": %d}" name ns calls))
    ss;
  Buffer.add_string buf "}}";
  Buffer.contents buf
