(* Compatibility shim: the registry now lives in Sso_obs.Obs (which adds
   histograms and trace-event emission on spans).  Existing call sites and
   the [--metrics] output are unchanged — [table]/[json] delegate to the
   byte-identical formatters in Obs. *)

module Obs = Sso_obs.Obs

type counter = Obs.counter
type span = Obs.span

let counter = Obs.counter
let incr = Obs.incr
let counter_value = Obs.counter_value
let span = Obs.span
let with_span sp f = Obs.with_span sp f
let time = Obs.time
let span_total_ns = Obs.span_total_ns
let span_calls = Obs.span_calls
let reset = Obs.reset_metrics
let table = Obs.metrics_table
let json = Obs.metrics_json
