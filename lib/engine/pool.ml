(* Fixed-size domain pool with a shared task queue.  See pool.mli for the
   determinism contract. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

(* Set while a domain is executing pool tasks; nested parallel_* calls
   check it and run serially instead of re-entering the queue. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let inside_task () = Domain.DLS.get busy_key

let worker pool () =
  Domain.DLS.set busy_key true;
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      if pool.stop then None
      else if Queue.is_empty pool.queue then begin
        Condition.wait pool.work pool.lock;
        next ()
      end
      else Some (Queue.pop pool.queue)
    in
    let task = next () in
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  if jobs < 1 then invalid_arg "Engine.Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* ---- default pool ---- *)

let default_lock = Mutex.create ()
let default_pool = ref None
let requested_jobs = ref None

let default_jobs () =
  Mutex.lock default_lock;
  let j =
    match (!default_pool, !requested_jobs) with
    | Some p, _ -> p.jobs
    | None, Some j -> j
    | None, None -> Domain.recommended_domain_count ()
  in
  Mutex.unlock default_lock;
  j

let set_default_jobs j =
  if j < 1 then invalid_arg "Engine.Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := None;
  requested_jobs := Some j;
  Mutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?jobs:!requested_jobs () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let () =
  at_exit (fun () ->
      match !default_pool with
      | Some p ->
          default_pool := None;
          shutdown p
      | None -> ())

(* ---- parallel primitives ---- *)

module Obs = Sso_obs.Obs

(* Queue [task 0 .. task (n-1)] on the pool and collect the results.  The
   caller has already peeled off the serial fast paths. *)
let execute pool task n =
  begin
    let results = Array.make n None in
    (* Lowest failing task index wins, so the raised exception does not
       depend on scheduling order. *)
    let failure = Atomic.make None in
    let remaining = Atomic.make n in
    let fin_lock = Mutex.create () and fin_cond = Condition.create () in
    let run i =
      (try results.(i) <- Some (task i)
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         let rec record () =
           match Atomic.get failure with
           | Some (j, _, _) when j <= i -> ()
           | cur ->
               if not (Atomic.compare_and_set failure cur (Some (i, e, bt)))
               then record ()
         in
         record ());
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock fin_lock;
        Condition.broadcast fin_cond;
        Mutex.unlock fin_lock
      end
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run i) pool.queue
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.lock;
    (* The submitting domain works the queue too.  Only one domain submits
       top-level maps (nested calls are serial), so every queued task
       belongs to this call. *)
    Domain.DLS.set busy_key true;
    let rec drain () =
      Mutex.lock pool.lock;
      let task =
        if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
      in
      Mutex.unlock pool.lock;
      match task with
      | Some task ->
          task ();
          drain ()
      | None -> ()
    in
    drain ();
    Domain.DLS.set busy_key false;
    Mutex.lock fin_lock;
    while Atomic.get remaining > 0 do
      Condition.wait fin_cond fin_lock
    done;
    Mutex.unlock fin_lock;
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?pool f input =
  let pool = match pool with Some p -> p | None -> default () in
  let n = Array.length input in
  if n = 0 then [||]
  else if inside_task () then Array.map f input
  else if not (Obs.tracing ()) then
    if pool.jobs = 1 || pool.stop || n = 1 then Array.map f input
    else execute pool (fun i -> f input.(i)) n
  else begin
    (* Tracing: pre-assign one stream slot per task, in submission order.
       Event keys then depend only on the task index — not on which domain
       runs a task or when — so the merged trace is identical at any
       --jobs.  The serial path wraps tasks the same way (and marks the
       domain busy so nested parallel calls degrade to Array.map exactly
       as they would on a worker). *)
    let base = Obs.reserve_slots n in
    let task i = Obs.in_task (base + i) (fun () -> f input.(i)) in
    Fun.protect ~finally:Obs.fresh_stream (fun () ->
        if pool.jobs = 1 || pool.stop || n = 1 then begin
          Domain.DLS.set busy_key true;
          Fun.protect
            ~finally:(fun () -> Domain.DLS.set busy_key false)
            (fun () -> Array.init n task)
        end
        else execute pool task n)
  end

let parallel_init ?pool n f =
  if n < 0 then invalid_arg "Engine.Pool.parallel_init: negative length";
  parallel_map ?pool f (Array.init n Fun.id)

let parallel_list_map ?pool f l =
  Array.to_list (parallel_map ?pool f (Array.of_list l))
