(** Deterministic fixed-size work pool over OCaml 5 domains.

    Every embarrassingly parallel loop in the repository (trial
    repetitions, independent FRT tree samples, per-commodity oracle calls,
    the single-link failure sweep, adversary trials) runs through this
    module.  The hard invariant is {b determinism}: for a fixed input,
    {!parallel_map} returns bit-identical results for any job count,
    including [jobs = 1].  The pool guarantees its half of that contract by
    assembling results in task-index order and never letting scheduling
    order leak into outputs; call sites guarantee the other half by giving
    each task its own [Rng.split_at] child keyed by task index instead of
    drawing from a shared stream.

    Tasks must not block on each other.  A [parallel_*] call issued from
    inside a running task (a nested call) falls back to serial execution on
    the calling domain, so nesting is always safe and never deadlocks. *)

type t
(** A pool of worker domains.  The pool is safe to share; parallel
    submissions are serviced by [jobs - 1] worker domains plus the
    submitting domain itself. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool executing at most [jobs] tasks
    concurrently ([jobs - 1] worker domains; the caller participates).
    [jobs] defaults to [Domain.recommended_domain_count ()].  [jobs = 1]
    spawns no domains and makes every [parallel_*] call purely serial.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Concurrency bound the pool was created with. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Calling [parallel_*]
    on a shut-down pool runs serially. *)

val default : unit -> t
(** The process-wide pool, created lazily with {!set_default_jobs}'s value
    (or the domain-count default).  Joined automatically at exit. *)

val set_default_jobs : int -> unit
(** Set the job count used by {!default}, shutting down any existing
    default pool.  This is what [--jobs N] plumbs through. *)

val default_jobs : unit -> int
(** Job count the next {!default} call will use. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f arr] is [Array.map f arr] computed on the pool
    ([?pool] defaults to {!default}).  Results are placed by index, so the
    output is independent of scheduling.  If any task raises, the exception
    of the lowest-index failing task is re-raised (with its backtrace)
    after all tasks finish — deterministically, regardless of job count. *)

val parallel_init : ?pool:t -> int -> (int -> 'a) -> 'a array
(** [parallel_init n f] is [Array.init n f] on the pool, with the same
    determinism and exception contract as {!parallel_map}. *)

val parallel_list_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over lists, preserving order. *)

val inside_task : unit -> bool
(** [true] while executing inside a pool task — i.e. when a [parallel_*]
    call would run serially.  Exposed for diagnostics and tests. *)
