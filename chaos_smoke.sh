#!/bin/sh
# Chaos smoke test: the crash-safety contract of DESIGN.md §14.
#
#   1. Kill a checkpointing replay at several ticks (exit 137) and resume
#      each time: the final routing digest must be byte-identical to an
#      uninterrupted replay, at --jobs 1 and --jobs 4.
#   2. Replay a fault timeline (worst-k adversary live) at --jobs 1 and
#      --jobs 4: the full JSON reports must be byte-identical.
#   3. Flip one byte in the latest checkpoint: the resume must exit 11
#      with an empty stdout — a damaged checkpoint can never half-restore
#      or silently produce a wrong routing.
#   4. Flip one byte mid-stream: exit 11, never wrong output.
#   5. A stream that parses but corrupts mid-replay (endpoint outside the
#      graph) under --metrics-out: exit 11, the last good metrics
#      snapshot survives, and no stale .tmp is left behind.
. "$(dirname "$0")/smoke_lib.sh"

stream="$dir/stream.jsonl"
"$SSO" serve generate --family torus --size 4 --ticks 60 --pairs 32 \
  --churn 0.3 --rate-churn 0.2 -o "$stream" > /dev/null

replay() {
  "$SSO" serve replay "$stream" --family torus --size 4 --json "$@" \
    2> /dev/null
}
digest_of() {
  sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' "$1" | tail -1
}

replay > "$dir/ref.json"
ref=$(digest_of "$dir/ref.json")
test -n "$ref" || { echo "chaos_smoke: no reference digest" >&2; exit 1; }

# --- kill and resume ---------------------------------------------------
for crash in 7 23 41; do
  for jobs in 1 4; do
    ckpt="$dir/ckpt.$crash.$jobs"
    expect_exit 137 "injected crash at tick $crash" \
      "$SSO" serve replay "$stream" --family torus --size 4 --json \
      --checkpoint-every 5 --checkpoint-dir "$ckpt" --crash-after "$crash" \
      --jobs "$jobs"
    ls "$ckpt"/ckpt-*.bin > /dev/null || {
      echo "chaos_smoke: no checkpoint written before the tick-$crash crash" >&2
      exit 1
    }
    replay --checkpoint-dir "$ckpt" --resume --jobs "$jobs" \
      > "$dir/resumed.json"
    got=$(digest_of "$dir/resumed.json")
    test "$got" = "$ref" || {
      echo "chaos_smoke: resume after tick-$crash crash (jobs $jobs)" \
        "diverged: $got != $ref" >&2
      exit 1
    }
  done
done

# --- fault timeline, jobs-invariant ------------------------------------
replay --faults worst:3@15-40 --jobs 1 > "$dir/faults.j1.json"
replay --faults worst:3@15-40 --jobs 4 > "$dir/faults.j4.json"
cmp "$dir/faults.j1.json" "$dir/faults.j4.json" || {
  echo "chaos_smoke: faulted replay differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
grep -q '"failed_edges": [1-9]' "$dir/faults.j1.json" || {
  echo "chaos_smoke: fault timeline never took an edge down" >&2
  exit 1
}

# --- bit-flipped checkpoint: exit 11, empty stdout ---------------------
ckpt="$dir/ckpt.7.1"
latest=$(ls "$ckpt"/ckpt-*.bin | tail -1)
printf '\001' | dd of="$latest" bs=1 seek=40 count=1 conv=notrunc 2> /dev/null
expect_exit 11 "bit-flipped checkpoint" \
  "$SSO" serve replay "$stream" --family torus --size 4 --json \
  --checkpoint-dir "$ckpt" --resume
"$SSO" serve replay "$stream" --family torus --size 4 --json \
  --checkpoint-dir "$ckpt" --resume > "$dir/corrupt.out" 2> /dev/null || true
test ! -s "$dir/corrupt.out" || {
  echo "chaos_smoke: corrupt checkpoint produced output on stdout" >&2
  exit 1
}

# --- bit-flipped stream: exit 11 ---------------------------------------
cp "$stream" "$dir/flipped.jsonl"
mid=$(($(wc -c < "$stream") / 2))
printf 'X' | dd of="$dir/flipped.jsonl" bs=1 seek="$mid" count=1 \
  conv=notrunc 2> /dev/null
expect_exit 11 "bit-flipped stream" \
  "$SSO" serve replay "$dir/flipped.jsonl" --family torus --size 4

# --- mid-replay corruption under --metrics-out: no stale .tmp ----------
events=$(($(wc -l < "$stream") - 1))
{
  echo "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":$((events + 1))}"
  sed 1d "$stream"
  echo '{"tick":99,"src":0,"dst":3000,"op":"arrive","rate":1}'
} > "$dir/bad_tail.jsonl"
expect_exit 11 "mid-replay corruption" \
  "$SSO" serve replay "$dir/bad_tail.jsonl" --family torus --size 4 \
  --metrics-out "$dir/metrics.prom"
test -s "$dir/metrics.prom" || {
  echo "chaos_smoke: last good metrics snapshot missing" >&2
  exit 1
}
if ls "$dir"/metrics.prom.tmp* > /dev/null 2>&1; then
  echo "chaos_smoke: stale metrics .tmp left after mid-replay failure" >&2
  exit 1
fi

echo "chaos_smoke: ok"
