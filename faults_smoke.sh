#!/bin/sh
# Fault-injection smoke test: `sso faults sweep` output is byte-identical
# at --jobs 1 and --jobs 4 on a torus and a fat-tree, a mid-flight SRLG
# timeline run where every demanded pair keeps a surviving candidate
# reports dropped = 0, sweeps cache through the artifact store (warm runs
# record hits and stay byte-identical modulo the hit counters), the
# fault.* trace events are emitted, and the exit-code contract (10 for an
# unreadable store) holds.
. "$(dirname "$0")/smoke_lib.sh"

# Jobs-invariance: singles sweep on a torus, SRLG sweep on a fat-tree.
"$SSO" faults sweep --family torus --size 4 --json --jobs 1 > "$dir/torus.j1"
"$SSO" faults sweep --family torus --size 4 --json --jobs 4 > "$dir/torus.j4"
cmp "$dir/torus.j1" "$dir/torus.j4" || {
  echo "faults_smoke: torus sweep differs between --jobs 1 and --jobs 4" >&2
  exit 1
}
"$SSO" faults sweep --family fat-tree --size 4 --scenarios srlg --json --jobs 1 \
  > "$dir/ft.j1"
"$SSO" faults sweep --family fat-tree --size 4 --scenarios srlg --json --jobs 4 \
  > "$dir/ft.j4"
cmp "$dir/ft.j1" "$dir/ft.j4" || {
  echo "faults_smoke: fat-tree SRLG sweep differs between --jobs 1 and --jobs 4" >&2
  exit 1
}

# Mid-flight failover: a torus row fails at step 2; with this seed every
# demanded pair retains a surviving candidate, so nothing may be dropped.
# (The seed is re-pinned whenever the sampled trees change — e.g. the
# ball-growing FRT rewrite altered the level count draw.)
"$SSO" faults timeline --family torus --size 4 --scenario srlg:2 --fail-at 2 \
  --seed 2 --json > "$dir/timeline.json"
grep -q '"all_pairs_retain_candidate": true' "$dir/timeline.json" || {
  echo "faults_smoke: expected every pair to retain a candidate" >&2
  exit 1
}
grep -q '"dropped": 0' "$dir/timeline.json" || {
  echo "faults_smoke: packets dropped despite surviving candidates" >&2
  exit 1
}
grep -q '"completed": true' "$dir/timeline.json" || {
  echo "faults_smoke: timeline run blew its step budget" >&2
  exit 1
}

# Caching: a cold sweep misses, a warm one hits, and the reports are
# byte-identical modulo the cache counters themselves.
"$SSO" faults sweep --family torus --size 4 --recovery --json \
  --cache-dir "$dir/store" > "$dir/cold.json"
"$SSO" faults sweep --family torus --size 4 --recovery --json \
  --cache-dir "$dir/store" > "$dir/warm.json"
grep -q '"cache": {"hit": 0' "$dir/cold.json" || {
  echo "faults_smoke: cold sweep should start from an empty store" >&2
  exit 1
}
grep '"cache"' "$dir/warm.json" | grep -q '"hit": 0' && {
  echo "faults_smoke: warm sweep recorded no cache hits" >&2
  exit 1
}
grep -v '"cache"' "$dir/cold.json" > "$dir/cold.norm"
grep -v '"cache"' "$dir/warm.json" > "$dir/warm.norm"
cmp "$dir/cold.norm" "$dir/warm.norm" || {
  echo "faults_smoke: warm sweep output differs from cold" >&2
  exit 1
}

# Tracing: the sweep emits fault.* spans and per-scenario report events.
"$SSO" faults sweep --family torus --size 4 --json --trace "$dir/sweep.jsonl" \
  > /dev/null
head -1 "$dir/sweep.jsonl" | grep -q '"schema":"sso-trace","version":1' || {
  echo "faults_smoke: bad or missing trace header" >&2
  exit 1
}
grep -q '"name":"fault.report"' "$dir/sweep.jsonl" || {
  echo "faults_smoke: no fault.report events in the trace" >&2
  exit 1
}
grep -q 'fault.sweep' "$dir/sweep.jsonl" || {
  echo "faults_smoke: no fault.sweep span in the trace" >&2
  exit 1
}

# Exit code 10 for an unreadable store path.
expect_exit 10 "unreadable store" \
  "$SSO" faults sweep --family torus --size 4 --cache-dir /dev/null/nope

echo "faults_smoke: ok"
