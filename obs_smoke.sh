#!/bin/sh
# Telemetry smoke test: replay a short churn stream with --metrics-out and
# validate the Prometheus text exposition (every line is # HELP / # TYPE /
# name{...} value, and the serve latency quantiles, throughput/staleness
# gauges, and GC gauges are all present), check that enabling metrics
# leaves the deterministic JSON byte-identical at --jobs 1 and 4, exercise
# the --slo-p99-ms gate (generous budget passes, impossible budget exits
# 12 with the verdict on stderr only), and check the span-tree profilers:
# `sso trace flame --weight calls` must be byte-identical at --jobs 1 and
# 4, and `sso trace top` must rank the serve spans.
. "$(dirname "$0")/smoke_lib.sh"

"$SSO" serve generate --ticks 12 --pairs 12 --churn 0.2 -o "$dir/stream.jsonl" > /dev/null

# --- Prometheus exposition ---------------------------------------------
"$SSO" serve replay "$dir/stream.jsonl" --json --metrics-out "$dir/metrics.prom" \
  > "$dir/replay.metrics.json" 2> /dev/null

test -s "$dir/metrics.prom" || {
  echo "obs_smoke: --metrics-out wrote no file" >&2
  exit 1
}

# Every line is a comment (# HELP / # TYPE) or a sample (name{labels} value).
awk '
  /^# HELP sso_[a-zA-Z0-9_]+ / { next }
  /^# TYPE sso_[a-zA-Z0-9_]+ (counter|gauge|histogram|summary)$/ { next }
  /^sso_[a-zA-Z0-9_]+(\{[^}]*\})? -?([0-9]|NaN|[+-]Inf)/ { next }
  { print "obs_smoke: malformed exposition line: " $0; bad = 1 }
  END { exit bad }
' "$dir/metrics.prom" >&2

# Required series: per-tick latency quantiles, throughput and staleness
# gauges, GC gauges sampled at snapshot time.
for series in \
  'sso_serve_solve_ns{quantile="0.5"}' \
  'sso_serve_solve_ns{quantile="0.99"}' \
  'sso_serve_tick_ns{quantile="0.9"}' \
  'sso_serve_updates_per_sec ' \
  'sso_serve_staleness ' \
  'sso_gc_heap_words '; do
  grep -qF "$series" "$dir/metrics.prom" || {
    echo "obs_smoke: missing series $series" >&2
    exit 1
  }
done

# --- metrics must not perturb deterministic output ---------------------
"$SSO" serve replay "$dir/stream.jsonl" --json --jobs 1 \
  --metrics-out "$dir/m1.prom" > "$dir/replay.j1.json" 2> /dev/null
"$SSO" serve replay "$dir/stream.jsonl" --json --jobs 4 \
  --metrics-out "$dir/m4.prom" > "$dir/replay.j4.json" 2> /dev/null
cmp "$dir/replay.j1.json" "$dir/replay.j4.json" || {
  echo "obs_smoke: metrics-enabled replay differs between --jobs 1 and 4" >&2
  exit 1
}
cmp "$dir/replay.metrics.json" "$dir/replay.j1.json" || {
  echo "obs_smoke: replay JSON unstable across runs" >&2
  exit 1
}

# --- SLO gate ----------------------------------------------------------
"$SSO" serve replay "$dir/stream.jsonl" --json --slo-p99-ms 60000 \
  > /dev/null 2> "$dir/slo.ok.err"
grep -q 'slo: .* ok ' "$dir/slo.ok.err" || {
  echo "obs_smoke: no SLO verdict on stderr" >&2
  exit 1
}
expect_exit 12 "SLO burn" \
  "$SSO" serve replay "$dir/stream.jsonl" --json --slo-p99-ms 0.000001
"$SSO" serve replay "$dir/stream.jsonl" --json --slo-p99-ms 0.000001 \
  > "$dir/slo.burn.json" 2> "$dir/slo.burn.err" || true
grep -q 'BURNED' "$dir/slo.burn.err" || {
  echo "obs_smoke: no burn verdict on stderr" >&2
  exit 1
}
# The burn must not leak into stdout: deterministic JSON is unchanged.
cmp "$dir/slo.burn.json" "$dir/replay.j1.json" || {
  echo "obs_smoke: SLO check perturbed the deterministic JSON" >&2
  exit 1
}

# --- span-tree profiling -----------------------------------------------
"$SSO" serve replay "$dir/stream.jsonl" --json --jobs 1 --trace "$dir/t1.jsonl" \
  > /dev/null 2> /dev/null
"$SSO" serve replay "$dir/stream.jsonl" --json --jobs 4 --trace "$dir/t4.jsonl" \
  > /dev/null 2> /dev/null
# Call-weighted folded stacks are a pure function of the deterministic
# (slot, seq) event order — byte-identical at any job count.
"$SSO" trace flame "$dir/t1.jsonl" --weight calls > "$dir/flame.j1"
"$SSO" trace flame "$dir/t4.jsonl" --weight calls > "$dir/flame.j4"
cmp "$dir/flame.j1" "$dir/flame.j4" || {
  echo "obs_smoke: folded stacks differ between --jobs 1 and 4" >&2
  exit 1
}
grep -q '^serve.tick;serve.solve ' "$dir/flame.j1" || {
  echo "obs_smoke: flame output is missing the serve span hierarchy" >&2
  exit 1
}
"$SSO" trace flame "$dir/t1.jsonl" > /dev/null           # default ns weights
"$SSO" trace top "$dir/t1.jsonl" > "$dir/top.txt"
grep -q 'serve.solve' "$dir/top.txt" || {
  echo "obs_smoke: trace top is missing the serve spans" >&2
  exit 1
}

echo "obs_smoke: ok"
