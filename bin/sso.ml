(* sso — command-line driver for the sparse semi-oblivious routing library.

   Subcommands:
     gen     generate a graph and print it in the edge-list format
     info    print statistics of a graph
     route   build a sampled path system and route a demand through it
     attack  run the Section-8 adversary on C(n,k)
     faults  fault injection: scenario sweeps, timelines, worst-k search
     serve   long-lived routing service: generate/replay update streams
     cache   inspect and maintain the artifact store (ls/stat/gc/clear)

   Examples:
     sso gen --kind hypercube --size 4 > cube.g
     sso info cube.g
     sso route cube.g --base valiant --alpha 3 --demand permutation --seed 7
     sso route cube.g --cache            # memoize the Racke construction
     sso attack --leaves 12 --middles 6 --alpha 2
     sso cache ls *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Gen = Sso_graph.Gen
module Gio = Sso_graph.Gio
module Shortest = Sso_graph.Shortest
module Demand = Sso_demand.Demand
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Ksp = Sso_oblivious.Ksp
module Racke = Sso_oblivious.Racke
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Lower_bound = Sso_core.Lower_bound
module Store = Sso_artifact.Store
module Memo = Sso_artifact.Memo
module Obs = Sso_obs.Obs
module Trace = Sso_obs.Trace

open Cmdliner

(* Exit codes for cache problems, distinct from cmdliner's 124/125:
   10 = the store directory is unreadable, 11 = corrupt entries seen,
   12 = a --slo-p99-ms budget burned during serve replay. *)
let exit_unreadable = 10
let exit_corrupt = 11
let exit_slo = 12

(* ---- shared argument parsers ---- *)

let seed_arg =
  let doc = "PRNG seed; every run is deterministic given the seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel stages (default: the number of cores). \
     Results are identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let set_jobs = function
  | Some jobs when jobs >= 1 -> Sso_engine.Pool.set_default_jobs jobs
  | Some jobs ->
      Printf.eprintf "sso: --jobs must be >= 1, got %d\n" jobs;
      exit 124
  | None -> ()

let read_graph path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Gio.of_string text

(* ---- artifact-cache arguments ---- *)

let cache_arg =
  let doc =
    "Memoize expensive constructions (Räcke forests) in the on-disk \
     artifact store.  Results are bit-identical with or without the cache."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let no_cache_arg =
  let doc = "Disable the artifact cache (overrides $(b,--cache))." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Artifact store directory (implies $(b,--cache)).  Default: \
     $(b,SSO_CACHE_DIR), then $(b,XDG_CACHE_HOME)/sso, then ~/.cache/sso."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let open_store cache no_cache cache_dir =
  if no_cache || not (cache || cache_dir <> None) then None
  else
    match Store.open_ ?dir:cache_dir () with
    | st -> Some st
    | exception Store.Unreadable msg ->
        Printf.eprintf "sso: cannot open the artifact store: %s\n" msg;
        exit exit_unreadable

(* ---- tracing arguments ---- *)

let trace_arg =
  let doc =
    "Record a structured execution trace (spans, per-round solver telemetry) \
     to $(docv) as JSONL.  Inspect it with $(b,sso trace)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let start_trace = function None -> () | Some _ -> Obs.set_tracing true

let finish_trace ~seed = function
  | None -> ()
  | Some path ->
      let meta =
        [
          ("seed", Trace.Int seed);
          ("jobs", Trace.Int (Sso_engine.Pool.default_jobs ()));
        ]
      in
      (match Obs.write_trace ~path ~meta with
      | () -> ()
      | exception Trace.Unreadable msg ->
          Printf.eprintf "sso: cannot write trace: %s\n" msg;
          exit exit_unreadable)

(* ---- gen ---- *)

let gen_cmd =
  let kind_arg =
    let doc =
      "Topology: hypercube, grid, torus, cycle, path, complete, expander, \
       two-cliques, abilene, c-gadget."
    in
    Arg.(value & opt string "grid" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let size_arg =
    let doc =
      "Primary size (hypercube dimension; side for grid/torus; vertex count \
       otherwise)."
    in
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc)
  in
  let aux_arg =
    let doc = "Secondary size (middles for c-gadget, degree for expander)." in
    Arg.(value & opt int 3 & info [ "aux" ] ~docv:"K" ~doc)
  in
  let run kind size aux seed =
    let rng = Rng.create seed in
    let g =
      match kind with
      | "hypercube" -> Gen.hypercube size
      | "grid" -> Gen.grid size size
      | "torus" -> Gen.torus size size
      | "cycle" -> Gen.cycle size
      | "path" -> Gen.path_graph size
      | "complete" -> Gen.complete size
      | "expander" -> Gen.random_regular rng size aux
      | "two-cliques" -> Gen.two_cliques size
      | "abilene" -> fst (Gen.abilene ())
      | "c-gadget" -> (Gen.c_graph size aux).Gen.c_graph
      | other -> failwith (Printf.sprintf "unknown topology %S" other)
    in
    print_string (Gio.to_string g)
  in
  let doc = "generate a graph and print it as an edge list" in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ kind_arg $ size_arg $ aux_arg $ seed_arg)

(* ---- info ---- *)

let graph_pos =
  let doc = "Graph file in the edge-list format produced by $(b,sso gen)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let info_cmd =
  let run path =
    let g = read_graph path in
    Printf.printf "vertices   %d\n" (Graph.n g);
    Printf.printf "edges      %d\n" (Graph.m g);
    Printf.printf "max degree %d\n" (Graph.max_degree g);
    Printf.printf "connected  %b\n" (Graph.is_connected g);
    if Graph.is_connected g then Printf.printf "diameter   %d\n" (Shortest.diameter g);
    Printf.printf "capacity   %g\n" (Graph.total_capacity g)
  in
  let doc = "print statistics of a graph" in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run $ graph_pos)

(* ---- route ---- *)

let route_cmd =
  let base_arg =
    let doc = "Base oblivious routing: racke, valiant, ksp, shortest, ecube." in
    Arg.(value & opt string "racke" & info [ "base" ] ~docv:"BASE" ~doc)
  in
  let alpha_arg =
    let doc = "Paths sampled per pair (the paper's α); 0 = use the full support." in
    Arg.(value & opt int 4 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let cut_arg =
    let doc = "Sample α + cut_G(s,t) paths instead of α (Definition 5.2)." in
    Arg.(value & flag & info [ "with-cut" ] ~doc)
  in
  let demand_arg =
    let doc =
      "Demand workload: permutation, pairs:N, gravity:TOTAL, all-to-all, or \
       file:PATH (one 's t amount' line per pair)."
    in
    Arg.(value & opt string "permutation" & info [ "demand" ] ~docv:"DEMAND" ~doc)
  in
  let solver_arg =
    let doc =
      "Stage-4 solver: mwu[:ITERS] (default), gk[:EPS] (Garg-Konemann), or \
       lp (exact, small instances)."
    in
    Arg.(value & opt string "mwu" & info [ "solver" ] ~docv:"SOLVER" ~doc)
  in
  let run path base alpha with_cut demand_spec solver_spec seed jobs cache
      no_cache cache_dir trace =
    set_jobs jobs;
    start_trace trace;
    let store = open_store cache no_cache cache_dir in
    let g = read_graph path in
    let rng = Rng.create seed in
    let base_routing =
      match base with
      | "racke" -> Memo.racke ?store (Rng.split rng) g
      | "valiant" -> Valiant.routing g
      | "ksp" -> Ksp.routing ~k:(max 4 alpha) g
      | "shortest" -> Deterministic.shortest_path g
      | "ecube" -> Deterministic.ecube g
      | other -> failwith (Printf.sprintf "unknown base routing %S" other)
    in
    let system =
      if alpha = 0 then Path_system.of_oblivious_support base_routing
      else if with_cut then Sampler.alpha_cut_sample (Rng.split rng) base_routing ~alpha
      else Sampler.alpha_sample (Rng.split rng) base_routing ~alpha
    in
    let demand =
      match String.split_on_char ':' demand_spec with
      | [ "permutation" ] -> Demand.random_permutation (Rng.split rng) (Graph.n g)
      | [ "pairs"; count ] ->
          Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:(int_of_string count)
      | [ "gravity"; total ] ->
          Demand.gravity (Rng.split rng) ~n:(Graph.n g) ~total:(float_of_string total)
      | [ "all-to-all" ] -> Demand.all_to_all (Graph.n g)
      | [ "file"; path ] ->
          let ic = open_in path in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          Demand.of_string text
      | _ -> failwith (Printf.sprintf "unknown demand spec %S" demand_spec)
    in
    let solver =
      match String.split_on_char ':' solver_spec with
      | [ "lp" ] -> Semi_oblivious.Lp
      | [ "mwu" ] -> Semi_oblivious.default_solver
      | [ "mwu"; iters ] -> Semi_oblivious.Mwu (int_of_string iters)
      | [ "gk" ] -> Semi_oblivious.Gk 0.1
      | [ "gk"; eps ] -> Semi_oblivious.Gk (float_of_string eps)
      | _ -> failwith (Printf.sprintf "unknown solver %S" solver_spec)
    in
    let congestion = Semi_oblivious.congestion ~solver g system demand in
    let opt = Semi_oblivious.opt g demand in
    let oblivious_congestion = Oblivious.congestion base_routing demand in
    Printf.printf "demand size           %.0f (%d pairs)\n" (Demand.siz demand)
      (Demand.support_size demand);
    Printf.printf "system sparsity       %d\n"
      (Path_system.sparsity_on system (Demand.support demand));
    Printf.printf "semi-oblivious cong   %.4f\n" congestion;
    Printf.printf "base oblivious cong   %.4f\n" oblivious_congestion;
    Printf.printf "offline optimum (est) %.4f\n" opt;
    Printf.printf "competitive ratio     %.3f\n" (congestion /. opt);
    finish_trace ~seed trace
  in
  let doc = "sample a path system from an oblivious routing and route a demand" in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ graph_pos $ base_arg $ alpha_arg $ cut_arg $ demand_arg
      $ solver_arg $ seed_arg $ jobs_arg $ cache_arg $ no_cache_arg
      $ cache_dir_arg $ trace_arg)

(* ---- attack ---- *)

let attack_cmd =
  let leaves_arg =
    let doc = "Leaves per star in C(n,k)." in
    Arg.(value & opt int 12 & info [ "leaves" ] ~docv:"N" ~doc)
  in
  let middles_arg =
    let doc = "Middle vertices in C(n,k)." in
    Arg.(value & opt int 6 & info [ "middles" ] ~docv:"K" ~doc)
  in
  let alpha_arg =
    let doc = "Sparsity of the sampled system under attack." in
    Arg.(value & opt int 2 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let run leaves middles alpha seed jobs trace =
    set_jobs jobs;
    start_trace trace;
    let c = Gen.c_graph leaves middles in
    let rng = Rng.create seed in
    let base = Ksp.routing ~k:(2 * middles) c.Gen.c_graph in
    let system = Sampler.alpha_sample rng base ~alpha in
    let attack = Lower_bound.attack c system in
    let measured =
      Semi_oblivious.congestion ~solver:Semi_oblivious.Lp c.Gen.c_graph system
        attack.Lower_bound.demand
    in
    Printf.printf "gadget C(%d,%d), alpha = %d\n" leaves middles alpha;
    Printf.printf "bottleneck S'        {%s}\n"
      (String.concat "," (List.map string_of_int attack.Lower_bound.bottleneck));
    Printf.printf "matched pairs        %d\n" attack.Lower_bound.pairs_matched;
    Printf.printf "certified bound      %.3f\n" attack.Lower_bound.predicted_congestion;
    Printf.printf "measured congestion  %.3f\n" measured;
    Printf.printf "offline optimum      1.000\n";
    finish_trace ~seed trace
  in
  let doc = "run the Section-8 lower-bound adversary on C(n,k)" in
  Cmd.v (Cmd.info "attack" ~doc)
    Term.(
      const run $ leaves_arg $ middles_arg $ alpha_arg $ seed_arg $ jobs_arg
      $ trace_arg)

(* ---- simulate ---- *)

let simulate_cmd =
  let module Simulator = Sso_sim.Simulator in
  let alpha_arg =
    let doc = "Paths sampled per pair." in
    Arg.(value & opt int 4 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let packets_arg =
    let doc = "Number of random unit packets to inject." in
    Arg.(value & opt int 16 & info [ "packets" ] ~docv:"N" ~doc)
  in
  let run path alpha packets seed jobs cache no_cache cache_dir trace =
    set_jobs jobs;
    start_trace trace;
    let store = open_store cache no_cache cache_dir in
    let g = read_graph path in
    let rng = Rng.create seed in
    let base = Memo.racke ?store (Rng.split rng) g in
    let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
    let demand =
      Demand.random_pairs (Rng.split rng) ~n:(Graph.n g)
        ~pairs:(min packets (Graph.n g * (Graph.n g - 1)))
    in
    let assignment, congestion =
      Sso_core.Integral.congestion_upper (Rng.split rng) g system demand
    in
    let report name discipline =
      let stats = Simulator.completed_exn (Simulator.run ~discipline g assignment) in
      Printf.printf "%-18s makespan %4d  max queue %4d  waits %5d\n" name
        stats.Simulator.makespan stats.Simulator.max_queue stats.Simulator.total_waits
    in
    Printf.printf "packets %d  integral congestion %.0f  lower bound %d steps\n\n"
      (Demand.support_size demand) congestion
      (Simulator.lower_bound g assignment);
    report "fifo" Simulator.Fifo;
    report "random-rank" (Simulator.Random_rank (Rng.split rng));
    report "longest-remaining" Simulator.Longest_remaining;
    finish_trace ~seed trace
  in
  let doc = "route packets semi-obliviously and simulate their delivery" in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ graph_pos $ alpha_arg $ packets_arg $ seed_arg $ jobs_arg
      $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)

(* ---- faults ---- *)

let faults_cmd =
  let module Simulator = Sso_sim.Simulator in
  let module Scenario = Sso_fault.Scenario in
  let module Timeline = Sso_fault.Timeline in
  let module Fsweep = Sso_fault.Sweep in
  let module Codec = Sso_artifact.Codec in
  (* Fault experiments generate their graph from a named family instead of
     reading a file: the SRLG derivations need the generator's vertex
     layout (torus rows, fat-tree pods). *)
  let family_arg =
    let doc = "Graph family: torus, fat-tree, abilene, b4." in
    Arg.(value & opt string "torus" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let size_arg =
    let doc = "Family size (torus side, fat-tree k; ignored for WANs)." in
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"SIZE" ~doc)
  in
  let alpha_arg =
    let doc = "Paths sampled per pair (the paper's α)." in
    Arg.(value & opt int 4 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
  in
  let base_arg =
    let doc = "Base oblivious routing: racke, valiant, ksp, shortest." in
    Arg.(value & opt string "racke" & info [ "base" ] ~docv:"BASE" ~doc)
  in
  let demand_arg =
    let doc = "Demand workload: pairs:N, permutation, gravity:TOTAL, all-to-all." in
    Arg.(value & opt string "pairs:6" & info [ "demand" ] ~docv:"DEMAND" ~doc)
  in
  let solver_arg =
    let doc = "Stage-4 solver: mwu[:ITERS] (default), gk[:EPS], or lp." in
    Arg.(value & opt string "mwu" & info [ "solver" ] ~docv:"SOLVER" ~doc)
  in
  let json_arg =
    let doc = "Emit deterministic JSON (byte-identical for any $(b,--jobs))." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let build_family family size =
    match family with
    | "torus" -> Gen.torus size size
    | "fat-tree" -> Gen.fat_tree size
    | "abilene" -> fst (Gen.abilene ())
    | "b4" -> fst (Gen.b4 ())
    | other -> failwith (Printf.sprintf "unknown family %S" other)
  in
  let srlgs g family size =
    match family with
    | "torus" -> Scenario.torus_rows g ~rows:size ~cols:size
    | "fat-tree" -> Scenario.fat_tree_pods g ~k:size
    | _ ->
        (* WAN topologies: model node failures as shared-risk groups. *)
        List.init (Graph.n g) (Scenario.incident g)
  in
  let parse_solver solver_spec =
    match String.split_on_char ':' solver_spec with
    | [ "lp" ] -> Semi_oblivious.Lp
    | [ "mwu" ] -> Semi_oblivious.default_solver
    | [ "mwu"; iters ] -> Semi_oblivious.Mwu (int_of_string iters)
    | [ "gk" ] -> Semi_oblivious.Gk 0.1
    | [ "gk"; eps ] -> Semi_oblivious.Gk (float_of_string eps)
    | _ -> failwith (Printf.sprintf "unknown solver %S" solver_spec)
  in
  let parse_demand rng g demand_spec =
    match String.split_on_char ':' demand_spec with
    | [ "permutation" ] -> Demand.random_permutation rng (Graph.n g)
    | [ "pairs"; count ] ->
        Demand.random_pairs rng ~n:(Graph.n g) ~pairs:(int_of_string count)
    | [ "gravity"; total ] ->
        Demand.gravity rng ~n:(Graph.n g) ~total:(float_of_string total)
    | [ "all-to-all" ] -> Demand.all_to_all (Graph.n g)
    | _ -> failwith (Printf.sprintf "unknown demand spec %S" demand_spec)
  in
  (* Same draw order as [sso route]/[sso simulate]: base, system, demand,
     then scenario randomness — so every command sees the same sampled
     system for the same seed. *)
  let setup ?store ~family ~size ~base ~alpha ~demand:demand_spec ~seed () =
    let g = build_family family size in
    let rng = Rng.create seed in
    let base_routing =
      match base with
      | "racke" -> Memo.racke ?store (Rng.split rng) g
      | "valiant" -> Valiant.routing g
      | "ksp" -> Ksp.routing ~k:(max 4 alpha) g
      | "shortest" -> Deterministic.shortest_path g
      | other -> failwith (Printf.sprintf "unknown base routing %S" other)
    in
    let system = Sampler.alpha_sample (Rng.split rng) base_routing ~alpha in
    let demand = parse_demand (Rng.split rng) g demand_spec in
    let scen_rng = Rng.split rng in
    let system_key =
      Printf.sprintf "fam=%s;size=%d;base=%s;alpha=%d;seed=%d" family size base
        alpha seed
    in
    (g, system, demand, scen_rng, system_key)
  in
  let jstr s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  in
  let jfloat f =
    if Float.is_nan f then "\"nan\""
    else if f = infinity then "\"inf\""
    else if f = neg_infinity then "\"-inf\""
    else Printf.sprintf "%.17g" f
  in
  let jbool b = if b then "true" else "false" in
  let cache_json store =
    match store with
    | None -> ""
    | Some _ ->
        Printf.sprintf ",\n  \"cache\": {\"hit\": %d, \"miss\": %d}"
          (Obs.counter_value (Obs.counter "artifact.hit"))
          (Obs.counter_value (Obs.counter "artifact.miss"))
  in
  let report_json (r : Fsweep.report) =
    Printf.sprintf
      "{\"label\": %s, \"edges\": [%s], \"connected\": %s, \"survivable\": %s, \
       \"achieved\": %s, \"post_opt\": %s, \"ratio\": %s, \"recovery_rounds\": \
       %d, \"warm_congestion\": %s}"
      (jstr r.Fsweep.scenario.Scenario.label)
      (String.concat ", "
         (List.map string_of_int (Scenario.edges r.Fsweep.scenario)))
      (jbool r.Fsweep.connected) (jbool r.Fsweep.survivable)
      (jfloat r.Fsweep.achieved) (jfloat r.Fsweep.post_opt)
      (jfloat r.Fsweep.ratio) r.Fsweep.recovery_rounds
      (jfloat r.Fsweep.warm_congestion)
  in
  let summary_json (s : Fsweep.summary) =
    Printf.sprintf
      "{\"scenarios\": %d, \"disconnected\": %d, \"unsurvivable\": %d, \
       \"mean_ratio\": %s, \"worst_ratio\": %s, \"mean_recovery_rounds\": %s}"
      s.Fsweep.scenarios s.Fsweep.disconnected s.Fsweep.unsurvivable
      (jfloat s.Fsweep.mean_ratio) (jfloat s.Fsweep.worst_ratio)
      (jfloat s.Fsweep.mean_recovery_rounds)
  in
  let print_report_line (r : Fsweep.report) =
    Printf.printf "%-20s %9s %9s  achieved %8s  opt %8s  ratio %8s%s\n"
      r.Fsweep.scenario.Scenario.label
      (if r.Fsweep.connected then "connected" else "DISCONN")
      (if r.Fsweep.survivable then "ok" else "UNSURV")
      (Printf.sprintf "%.3f" r.Fsweep.achieved)
      (Printf.sprintf "%.3f" r.Fsweep.post_opt)
      (Printf.sprintf "%.3f" r.Fsweep.ratio)
      (if r.Fsweep.recovery_rounds >= 0 then
         Printf.sprintf "  recovered in %d rounds" r.Fsweep.recovery_rounds
       else "")
  in
  let sweep_cmd =
    let scenarios_arg =
      let doc =
        "Scenario set: singles (every edge), srlg (rows/pods/nodes of the \
         family), random:K:COUNT (COUNT random K-edge sets), or \
         degrade:FACTOR (every edge at partial capacity)."
      in
      Arg.(value & opt string "singles" & info [ "scenarios" ] ~docv:"SPEC" ~doc)
    in
    let recovery_arg =
      let doc = "Also measure warm-started time-to-recover per scenario." in
      Arg.(value & flag & info [ "recovery" ] ~doc)
    in
    let run family size alpha base demand_spec solver_spec scen_spec recovery
        json seed jobs cache no_cache cache_dir trace =
      set_jobs jobs;
      start_trace trace;
      let store = open_store cache no_cache cache_dir in
      let g, system, demand, scen_rng, system_key =
        setup ?store ~family ~size ~base ~alpha ~demand:demand_spec ~seed ()
      in
      let scenarios =
        match String.split_on_char ':' scen_spec with
        | [ "singles" ] -> Fsweep.singles g
        | [ "srlg" ] -> srlgs g family size
        | [ "random"; k; count ] ->
            let k = int_of_string k and count = int_of_string count in
            List.init count (fun i ->
                Scenario.random_k (Rng.split_at scen_rng i) g ~k)
        | [ "degrade"; factor ] ->
            let factor = float_of_string factor in
            List.init (Graph.m g) (fun e -> Scenario.degrade g ~factor [ e ])
        | _ -> failwith (Printf.sprintf "unknown scenario spec %S" scen_spec)
      in
      let solver = parse_solver solver_spec in
      let recovery = if recovery then Some Fsweep.default_recovery else None in
      let reports =
        Fsweep.run ~solver ?store ~system_key ?recovery g system demand
          scenarios
      in
      let s = Fsweep.summary reports in
      if json then begin
        Printf.printf
          "{\n  \"schema\": \"sso-faults-sweep\",\n  \"version\": 1,\n  \
           \"family\": %s,\n  \"size\": %d,\n  \"base\": %s,\n  \"alpha\": \
           %d,\n  \"demand\": %s,\n  \"solver\": %s,\n  \"scenarios\": %s,\n  \
           \"seed\": %d,\n  \"reports\": [\n"
          (jstr family) size (jstr base) alpha (jstr demand_spec)
          (jstr solver_spec) (jstr scen_spec) seed;
        List.iteri
          (fun i r ->
            Printf.printf "    %s%s\n" (report_json r)
              (if i < List.length reports - 1 then "," else ""))
          reports;
        Printf.printf "  ],\n  \"summary\": %s%s\n}\n" (summary_json s)
          (cache_json store)
      end
      else begin
        Printf.printf "family %s  size %d  alpha %d  demand %s  scenarios %d\n\n"
          family size alpha demand_spec (List.length scenarios);
        List.iter print_report_line reports;
        Printf.printf
          "\nsummary: %d scenarios, %d disconnected, %d unsurvivable, mean \
           ratio %.3f, worst %.3f\n"
          s.Fsweep.scenarios s.Fsweep.disconnected s.Fsweep.unsurvivable
          s.Fsweep.mean_ratio s.Fsweep.worst_ratio;
        if s.Fsweep.mean_recovery_rounds = s.Fsweep.mean_recovery_rounds then
          Printf.printf "mean recovery %.1f warm MWU rounds\n"
            s.Fsweep.mean_recovery_rounds
      end;
      finish_trace ~seed trace
    in
    let doc = "sweep failure scenarios: congestion and recovery per scenario" in
    Cmd.v (Cmd.info "sweep" ~doc)
      Term.(
        const run $ family_arg $ size_arg $ alpha_arg $ base_arg $ demand_arg
        $ solver_arg $ scenarios_arg $ recovery_arg $ json_arg $ seed_arg
        $ jobs_arg $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)
  in
  let timeline_cmd =
    let scenario_arg =
      let doc = "What fails: srlg:I (the I-th group), edge:E, or random:K." in
      Arg.(value & opt string "srlg:0" & info [ "scenario" ] ~docv:"SPEC" ~doc)
    in
    let fail_at_arg =
      let doc = "Step at which the failure strikes (mid-flight)." in
      Arg.(value & opt int 2 & info [ "fail-at" ] ~docv:"STEP" ~doc)
    in
    let repair_at_arg =
      let doc = "Optional repair step (> fail step)." in
      Arg.(value & opt (some int) None & info [ "repair-at" ] ~docv:"STEP" ~doc)
    in
    let packets_arg =
      let doc = "Number of random unit packets to inject." in
      Arg.(value & opt int 12 & info [ "packets" ] ~docv:"N" ~doc)
    in
    let run family size alpha base scen_spec fail_at repair_at packets json seed
        jobs cache no_cache cache_dir trace =
      set_jobs jobs;
      start_trace trace;
      let store = open_store cache no_cache cache_dir in
      let g, system, demand, scen_rng, _system_key =
        setup ?store ~family ~size ~base ~alpha
          ~demand:(Printf.sprintf "pairs:%d" packets) ~seed ()
      in
      let scenario =
        match String.split_on_char ':' scen_spec with
        | [ "srlg"; i ] -> (
            let groups = srlgs g family size in
            match List.nth_opt groups (int_of_string i) with
            | Some s -> s
            | None -> failwith "srlg index out of range")
        | [ "edge"; e ] -> Scenario.single g (int_of_string e)
        | [ "random"; k ] ->
            Scenario.random_k (Rng.split_at scen_rng 0) g ~k:(int_of_string k)
        | _ -> failwith (Printf.sprintf "unknown scenario spec %S" scen_spec)
      in
      let assignment, congestion =
        Sso_core.Integral.congestion_upper (Rng.split scen_rng) g system demand
      in
      let timeline = [ Timeline.entry ?repair_at ~at:fail_at scenario ] in
      let outcome = Timeline.simulate g system assignment timeline in
      let fs = Simulator.value outcome in
      let completed = match outcome with Simulator.Completed _ -> true | _ -> false in
      (* Does every demanded pair keep a candidate avoiding the dead
         edges?  When true, the failover policy delivers everything. *)
      let removed = Scenario.removed scenario in
      let pairs_covered =
        List.for_all
          (fun (s, t) ->
            List.exists
              (fun (p : Sso_graph.Path.t) ->
                not (Array.exists removed p.Sso_graph.Path.edges))
              (Path_system.paths system s t))
          (Demand.support demand)
      in
      if json then
        Printf.printf
          "{\n  \"schema\": \"sso-faults-timeline\",\n  \"version\": 1,\n  \
           \"family\": %s,\n  \"size\": %d,\n  \"alpha\": %d,\n  \"scenario\": \
           %s,\n  \"fail_at\": %d,\n  \"repair_at\": %s,\n  \"seed\": %d,\n  \
           \"congestion\": %s,\n  \"completed\": %s,\n  \
           \"all_pairs_retain_candidate\": %s,\n  \"makespan\": %d,\n  \
           \"delivered\": %d,\n  \"dropped\": %d,\n  \"rerouted\": %d,\n  \
           \"recovery_makespan\": %d,\n  \"max_queue\": %d,\n  \
           \"total_waits\": %d%s\n}\n"
          (jstr family) size alpha
          (jstr scenario.Scenario.label)
          fail_at
          (match repair_at with Some r -> string_of_int r | None -> "null")
          seed (jfloat congestion) (jbool completed) (jbool pairs_covered)
          fs.Simulator.base.Simulator.makespan
          fs.Simulator.base.Simulator.delivered fs.Simulator.dropped
          fs.Simulator.rerouted fs.Simulator.recovery_makespan
          fs.Simulator.base.Simulator.max_queue
          fs.Simulator.base.Simulator.total_waits (cache_json store)
      else begin
        Printf.printf "scenario %s fails at step %d%s\n" scenario.Scenario.label
          fail_at
          (match repair_at with
          | Some r -> Printf.sprintf ", repaired at %d" r
          | None -> "");
        Printf.printf "all pairs retain a candidate: %b\n" pairs_covered;
        Printf.printf
          "makespan %d  delivered %d  dropped %d  rerouted %d  recovery \
           makespan %d\n"
          fs.Simulator.base.Simulator.makespan
          fs.Simulator.base.Simulator.delivered fs.Simulator.dropped
          fs.Simulator.rerouted fs.Simulator.recovery_makespan;
        if not completed then Printf.printf "WARNING: step budget exhausted\n"
      end;
      finish_trace ~seed trace
    in
    let doc = "simulate packets while an SRLG dies mid-flight (and recovers)" in
    Cmd.v (Cmd.info "timeline" ~doc)
      Term.(
        const run $ family_arg $ size_arg $ alpha_arg $ base_arg $ scenario_arg
        $ fail_at_arg $ repair_at_arg $ packets_arg $ json_arg $ seed_arg
        $ jobs_arg $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)
  in
  let worst_k_cmd =
    let k_arg =
      let doc = "Failure-set size to search for." in
      Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)
    in
    let candidates_arg =
      let doc = "Candidate pool: the N most damaging single edges." in
      Arg.(value & opt int 8 & info [ "candidates" ] ~docv:"N" ~doc)
    in
    let run family size alpha base demand_spec solver_spec k candidates json
        seed jobs cache no_cache cache_dir trace =
      set_jobs jobs;
      start_trace trace;
      let store = open_store cache no_cache cache_dir in
      let g, system, demand, _scen_rng, system_key =
        setup ?store ~family ~size ~base ~alpha ~demand:demand_spec ~seed ()
      in
      let solver = parse_solver solver_spec in
      let worst =
        Fsweep.worst_k ~solver ?store ~system_key ~candidates g system demand ~k
      in
      if json then
        Printf.printf
          "{\n  \"schema\": \"sso-faults-worst-k\",\n  \"version\": 1,\n  \
           \"family\": %s,\n  \"size\": %d,\n  \"alpha\": %d,\n  \"k\": %d,\n  \
           \"seed\": %d,\n  \"worst\": %s%s\n}\n"
          (jstr family) size alpha k seed (report_json worst) (cache_json store)
      else begin
        Printf.printf "greedy worst-%d on %s (pool %d):\n" k family candidates;
        print_report_line worst
      end;
      finish_trace ~seed trace
    in
    let doc = "greedy search for an adversarial correlated k-edge failure" in
    Cmd.v (Cmd.info "worst-k" ~doc)
      Term.(
        const run $ family_arg $ size_arg $ alpha_arg $ base_arg $ demand_arg
        $ solver_arg $ k_arg $ candidates_arg $ json_arg $ seed_arg $ jobs_arg
        $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)
  in
  let doc = "fault injection: scenario sweeps, timelines, adversarial sets" in
  Cmd.group (Cmd.info "faults" ~doc) [ sweep_cmd; timeline_cmd; worst_k_cmd ]

(* ---- serve ---- *)

let serve_cmd =
  let module Serve = Sso_serve.Serve in
  let module Checkpoint = Sso_serve.Checkpoint in
  let module Simulator = Sso_sim.Simulator in
  let module Update = Sso_demand.Update in
  let module Workload = Sso_demand.Workload in
  let module Codec = Sso_artifact.Codec in
  let family_arg =
    let doc = "Graph family: torus, fat-tree, abilene, b4, expander." in
    Arg.(value & opt string "torus" & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let size_arg =
    let doc =
      "Family size (torus side, fat-tree k, expander vertices; ignored for \
       WANs)."
    in
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"SIZE" ~doc)
  in
  let build_family rng family size =
    match family with
    | "torus" -> Gen.torus size size
    | "fat-tree" -> Gen.fat_tree size
    | "abilene" -> fst (Gen.abilene ())
    | "b4" -> fst (Gen.b4 ())
    | "expander" -> Gen.random_regular rng size 4
    | other -> failwith (Printf.sprintf "unknown family %S" other)
  in
  let stream_pos =
    let doc = "Update stream recorded with $(b,sso serve generate)." in
    (* [string], not [file]: a missing path must surface as our exit 10,
       not cmdliner's 124. *)
    Arg.(required & pos 0 (some string) None & info [] ~docv:"STREAM" ~doc)
  in
  let jstr s = Printf.sprintf "%S" s in
  let jfloat f =
    if Float.is_nan f then "\"nan\""
    else if f = infinity then "\"inf\""
    else if f = neg_infinity then "\"-inf\""
    else Printf.sprintf "%.17g" f
  in
  let generate_cmd =
    let ticks_arg =
      let doc = "Number of ticks (tick 0 carries the initial arrivals)." in
      Arg.(value & opt int 50 & info [ "ticks" ] ~docv:"TICKS" ~doc)
    in
    let pairs_arg =
      let doc = "Active commodities maintained by the churn walk." in
      Arg.(value & opt int 16 & info [ "pairs" ] ~docv:"PAIRS" ~doc)
    in
    let churn_arg =
      let doc = "Per-tick resample probability for each active pair, in [0,1]." in
      Arg.(value & opt float 0.1 & info [ "churn" ] ~docv:"P" ~doc)
    in
    let rate_churn_arg =
      let doc = "Per-tick rate-drift probability for surviving pairs, in [0,1]." in
      Arg.(value & opt float 0.0 & info [ "rate-churn" ] ~docv:"P" ~doc)
    in
    let output_arg =
      let doc = "Write the JSONL stream to $(docv)." in
      Arg.(
        required
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE" ~doc)
    in
    let run family size ticks pairs churn rate_churn output seed =
      let rng = Rng.create seed in
      let g = build_family (Rng.split rng) family size in
      let events =
        Workload.generate ~rate_churn (Rng.split rng) ~n:(Graph.n g) ~ticks
          ~pairs ~churn
      in
      (match Update.save output events with
      | () -> ()
      | exception Update.Unreadable msg ->
          Printf.eprintf "sso serve: cannot write stream: %s\n" msg;
          exit exit_unreadable);
      Printf.printf "wrote %d events (%d ticks, %d pairs, churn %g) to %s\n"
        (List.length events) ticks pairs churn output
    in
    let doc = "generate a logged update stream from the churn model" in
    Cmd.v (Cmd.info "generate" ~doc)
      Term.(
        const run $ family_arg $ size_arg $ ticks_arg $ pairs_arg $ churn_arg
        $ rate_churn_arg $ output_arg $ seed_arg)
  in
  let replay_cmd =
    let alpha_arg =
      let doc = "Paths sampled per pair (the paper's α)." in
      Arg.(value & opt int 4 & info [ "alpha" ] ~docv:"ALPHA" ~doc)
    in
    let base_arg =
      let doc = "Base oblivious routing: racke, valiant, ksp, shortest." in
      Arg.(value & opt string "racke" & info [ "base" ] ~docv:"BASE" ~doc)
    in
    let solver_arg =
      let doc = "Cold-solve engine: mwu[:ITERS] (default), gk[:EPS], or lp." in
      Arg.(value & opt string "mwu" & info [ "solver" ] ~docv:"SOLVER" ~doc)
    in
    let warm_iters_arg =
      let doc = "Fresh MWU rounds per warm tick." in
      Arg.(value & opt int 20 & info [ "warm-iters" ] ~docv:"N" ~doc)
    in
    let warm_weight_arg =
      let doc = "Virtual rounds the carried routing counts as." in
      Arg.(value & opt int 60 & info [ "warm-weight" ] ~docv:"N" ~doc)
    in
    let refresh_arg =
      let doc = "Cold re-solve every $(docv) solves (0 = never)." in
      Arg.(value & opt int 0 & info [ "refresh" ] ~docv:"N" ~doc)
    in
    let simulate_arg =
      let doc = "Push the replayed traffic through the packet simulator." in
      Arg.(value & flag & info [ "simulate" ] ~doc)
    in
    let period_arg =
      let doc = "Simulator steps between ticks (with $(b,--simulate))." in
      Arg.(value & opt int 4 & info [ "period" ] ~docv:"STEPS" ~doc)
    in
    let json_arg =
      let doc = "Emit deterministic JSON (byte-identical for any $(b,--jobs))." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let metrics_out_arg =
      let doc =
        "Write a Prometheus text-exposition snapshot of the metrics registry \
         (per-tick latency quantiles, throughput/staleness gauges, GC gauges) \
         to $(docv) after every tick and at the end.  Writes are atomic \
         (temp + rename), so a scraper never sees a torn file."
      in
      Arg.(
        value & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE" ~doc)
    in
    let slo_arg =
      let doc =
        "p99 budget for per-tick solve latency, in milliseconds.  After the \
         replay, the SLO verdict is reported on stderr; a burned budget \
         (p99 over $(docv)) exits 12.  Stdout stays byte-identical."
      in
      Arg.(
        value & opt (some float) None
        & info [ "slo-p99-ms" ] ~docv:"MS" ~doc)
    in
    let overload_arg =
      let doc =
        "Wall-clock overload budget for a whole tick (admission + solve), in \
         milliseconds.  Verdict on stderr after the replay; any tick over \
         budget exits 12.  Stdout stays byte-identical."
      in
      Arg.(
        value & opt (some float) None
        & info [ "overload-ms" ] ~docv:"MS" ~doc)
    in
    let faults_arg =
      let doc =
        "Live fault schedule: comma-separated items of the form \
         $(b,edges:E1+E2\\@T[-R]) (fail the listed edge ids at tick T, repair \
         at R), $(b,random:K\\@T[-R]) (K seed-derived random edges), or \
         $(b,worst:K\\@T[-R]) (the greedy worst-K adversarial set computed \
         against the stream's initial demand).  Failed edges take their \
         candidate paths down with them; the solve runs on the survivors.  \
         Ticks are >= 1."
      in
      Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
    in
    let checkpoint_every_arg =
      let doc =
        "Write a checkpoint to $(b,--checkpoint-dir) every $(docv) processed \
         ticks (0 = never; a bare $(b,--checkpoint-dir) implies 1)."
      in
      Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
    in
    let checkpoint_dir_arg =
      let doc = "Directory for checkpoint files (created if missing)." in
      Arg.(
        value & opt (some string) None
        & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
    in
    let resume_arg =
      let doc =
        "Resume from the latest checkpoint in $(b,--checkpoint-dir): restore \
         the service state, skip ticks at or before it, and continue — the \
         final routing digest is byte-identical to an uninterrupted replay.  \
         A checkpoint from a different stream, configuration, or sampler \
         seed exits 11; with no checkpoint present the replay starts fresh."
      in
      Arg.(value & flag & info [ "resume" ] ~doc)
    in
    let crash_after_arg =
      let doc =
        "Kill the process (exit 137, no cleanup) right after processing tick \
         $(docv) — the chaos harness's crash injection."
      in
      Arg.(
        value & opt (some int) None
        & info [ "crash-after" ] ~docv:"TICK" ~doc)
    in
    let event_budget_arg =
      let doc =
        "Per-tick admission budget: apply at most $(docv) events per tick \
         and defer the rest to the next tick (0 = unlimited)."
      in
      Arg.(value & opt int 0 & info [ "event-budget" ] ~docv:"N" ~doc)
    in
    let max_staleness_arg =
      let doc =
        "Consecutive over-budget ticks allowed to serve the stale routing \
         (degraded mode) before a re-solve is forced."
      in
      Arg.(value & opt int 4 & info [ "max-staleness" ] ~docv:"N" ~doc)
    in
    let parse_solver solver_spec =
      match String.split_on_char ':' solver_spec with
      | [ "lp" ] -> Semi_oblivious.Lp
      | [ "mwu" ] -> Semi_oblivious.default_solver
      | [ "mwu"; iters ] -> Semi_oblivious.Mwu (int_of_string iters)
      | [ "gk" ] -> Semi_oblivious.Gk 0.1
      | [ "gk"; eps ] -> Semi_oblivious.Gk (float_of_string eps)
      | _ -> failwith (Printf.sprintf "unknown solver %S" solver_spec)
    in
    let mode_name = function
      | Serve.Cold -> "cold"
      | Serve.Warm -> "warm"
      | Serve.Degraded -> "degraded"
    in
    let report_json (r : Serve.report) =
      Printf.sprintf
        "{\"tick\": %d, \"events\": %d, \"arrivals\": %d, \"departures\": %d, \
         \"rate_changes\": %d, \"pairs\": %d, \"admitted\": %d, \"retired\": \
         %d, \"deferred\": %d, \"failed_edges\": %d, \"rerouted\": %d, \
         \"unroutable\": %d, \"congestion\": %s, \"mode\": %s, \
         \"staleness\": %d}"
        r.Serve.tick r.Serve.events r.Serve.arrivals r.Serve.departures
        r.Serve.rate_changes r.Serve.active_pairs r.Serve.admitted
        r.Serve.retired r.Serve.deferred r.Serve.failed_edges r.Serve.rerouted
        r.Serve.unroutable (jfloat r.Serve.congestion)
        (jstr (mode_name r.Serve.mode)) r.Serve.staleness
    in
    (* --faults SPEC parses to a fault timeline, then bridges into the
       per-tick Fail/Repair schedule the service consumes. *)
    let parse_faults g system events rng spec =
      let module Scenario = Sso_fault.Scenario in
      let module Timeline = Sso_fault.Timeline in
      let module Sweep = Sso_fault.Sweep in
      let parse_window s =
        match String.split_on_char '-' s with
        | [ a ] -> (int_of_string a, None)
        | [ a; b ] -> (int_of_string a, Some (int_of_string b))
        | _ -> failwith (Printf.sprintf "bad fault window %S" s)
      in
      let entries =
        List.map
          (fun item ->
            match String.split_on_char '@' item with
            | [ kind; window ] ->
                let at, repair_at = parse_window window in
                let scenario =
                  match String.split_on_char ':' kind with
                  | [ "edges"; ids ] ->
                      Scenario.of_edges g
                        (List.map int_of_string (String.split_on_char '+' ids))
                  | [ "random"; k ] ->
                      Scenario.random_k rng g ~k:(int_of_string k)
                  | [ "worst"; k ] ->
                      let demand0 =
                        match Update.by_tick events with
                        | (_, batch) :: _ ->
                            Update.apply Sso_demand.Demand.empty batch
                        | [] -> Sso_demand.Demand.empty
                      in
                      if Sso_demand.Demand.support demand0 = [] then
                        failwith
                          "worst:K fault needs a stream with initial demand";
                      let report =
                        Sweep.worst_k g system demand0 ~k:(int_of_string k)
                      in
                      report.Sweep.scenario
                  | _ ->
                      failwith
                        (Printf.sprintf "unknown fault kind in %S" item)
                in
                Timeline.entry ?repair_at ~at scenario
            | _ ->
                failwith
                  (Printf.sprintf
                     "bad fault item %S (expected KIND@TICK[-REPAIR])" item))
          (String.split_on_char ',' spec)
      in
      Serve.faults_of_timeline entries
    in
    let run stream family size alpha base solver_spec warm_iters warm_weight
        refresh simulate period json metrics_out slo_p99_ms overload_ms
        faults_spec checkpoint_every checkpoint_dir resume crash_after
        event_budget max_staleness seed jobs cache no_cache cache_dir trace =
      set_jobs jobs;
      (match slo_p99_ms with
      | Some b when not (b > 0.0) ->
          Printf.eprintf "sso serve: --slo-p99-ms must be positive, got %g\n" b;
          exit 124
      | _ -> ());
      (match overload_ms with
      | Some b when not (b > 0.0) ->
          Printf.eprintf "sso serve: --overload-ms must be positive, got %g\n" b;
          exit 124
      | _ -> ());
      if event_budget < 0 then begin
        Printf.eprintf "sso serve: --event-budget must be non-negative\n";
        exit 124
      end;
      if max_staleness < 0 then begin
        Printf.eprintf "sso serve: --max-staleness must be non-negative\n";
        exit 124
      end;
      if checkpoint_every < 0 then begin
        Printf.eprintf "sso serve: --checkpoint-every must be non-negative\n";
        exit 124
      end;
      if (checkpoint_every > 0 || resume) && checkpoint_dir = None then begin
        Printf.eprintf
          "sso serve: --checkpoint-every/--resume need --checkpoint-dir\n";
        exit 124
      end;
      let checkpoint_every =
        if checkpoint_dir <> None && checkpoint_every = 0 then 1
        else checkpoint_every
      in
      start_trace trace;
      let store = open_store cache no_cache cache_dir in
      let events =
        match Update.load stream with
        | events -> events
        | exception Update.Unreadable msg ->
            Printf.eprintf "sso serve: %s\n" msg;
            exit exit_unreadable
        | exception Update.Corrupt msg ->
            Printf.eprintf "sso serve: %s\n" msg;
            exit exit_corrupt
      in
      (* Same draw order as the other commands: graph, base, system, then
         consumer randomness — the same seed sees the same sampled system
         everywhere. *)
      let rng = Rng.create seed in
      let g = build_family (Rng.split rng) family size in
      let base_routing =
        match base with
        | "racke" -> Memo.racke ?store (Rng.split rng) g
        | "valiant" -> Valiant.routing g
        | "ksp" -> Ksp.routing ~k:(max 4 alpha) g
        | "shortest" -> Deterministic.shortest_path g
        | other -> failwith (Printf.sprintf "unknown base routing %S" other)
      in
      let system = Sampler.alpha_sample (Rng.split rng) base_routing ~alpha in
      let sim_rng = Rng.split rng in
      let fault_rng = Rng.split rng in
      let config =
        { Serve.solver = parse_solver solver_spec;
          warm_iters;
          warm_weight;
          refresh_every = refresh;
          event_budget;
          max_staleness }
      in
      let faults =
        match faults_spec with
        | None -> []
        | Some spec -> (
            match parse_faults g system events fault_rng spec with
            | faults -> faults
            | exception Failure msg ->
                Printf.eprintf "sso serve: --faults %s\n" msg;
                exit 124)
      in
      if simulate && faults <> [] then begin
        Printf.eprintf
          "sso serve: --faults models routing-level failures; combine with \
           the packet-level `sso faults timeline` instead of --simulate\n";
        exit 124
      end;
      (* The stream digest pins every checkpoint to the exact stream (and
         the config repr to the exact policy) it was taken under; a
         resume against anything else is corruption, not divergence. *)
      let stream_digest = Checkpoint.events_digest events in
      let config_repr = Checkpoint.config_repr config in
      let srv, resume_tick =
        if not resume then (Serve.create ~config g system, -1)
        else
          let dir = Option.get checkpoint_dir in
          match Checkpoint.latest ~dir with
          | None -> (Serve.create ~config g system, -1)
          | Some (_, path) -> (
              match Checkpoint.load ~graph:g path with
              | exception Checkpoint.Unreadable msg ->
                  Printf.eprintf "sso serve: %s\n" msg;
                  exit exit_unreadable
              | exception Codec.Corrupt msg ->
                  Printf.eprintf "sso serve: checkpoint %s: %s\n" path msg;
                  exit exit_corrupt
              | ckpt_digest, ckpt_config, state -> (
                  if not (Int64.equal ckpt_digest stream_digest) then begin
                    Printf.eprintf
                      "sso serve: checkpoint %s was taken against a \
                       different update stream\n"
                      path;
                    exit exit_corrupt
                  end;
                  if ckpt_config <> config_repr then begin
                    Printf.eprintf
                      "sso serve: checkpoint %s was taken under a different \
                       configuration (%s)\n"
                      path ckpt_config;
                    exit exit_corrupt
                  end;
                  match Serve.restore ~config g system state with
                  | srv ->
                      Printf.eprintf "resuming from %s (tick %d)\n" path
                        state.Serve.s_tick;
                      (srv, state.Serve.s_tick)
                  | exception Codec.Corrupt msg ->
                      Printf.eprintf "sso serve: checkpoint %s: %s\n" path msg;
                      exit exit_corrupt))
      in
      let events =
        List.filter (fun (e : Update.t) -> e.Update.tick > resume_tick) events
      in
      let faults = List.filter (fun (tick, _) -> tick > resume_tick) faults in
      (* Periodic exposition writer: refresh GC gauges, freeze the whole
         registry, render, atomic write — wall-clock data flows only to
         this file, never to stdout or the digest. *)
      let write_metrics =
        match metrics_out with
        | None -> None
        | Some path ->
            Some
              (fun () ->
                try Serve.write_metrics ~path
                with Sys_error msg ->
                  Printf.eprintf "sso serve: cannot write metrics: %s\n" msg;
                  exit exit_unreadable)
      in
      let processed = ref 0 in
      let on_tick (r : Serve.report) (_ : Sso_flow.Routing.t) =
        (match write_metrics with Some write -> write () | None -> ());
        (match checkpoint_dir with
        | Some dir when checkpoint_every > 0 ->
            incr processed;
            if !processed mod checkpoint_every = 0 then begin
              match
                Checkpoint.write ~dir ~stream_digest ~graph:g ~config
                  (Serve.snapshot srv)
              with
              | (_ : string) -> ()
              | exception Checkpoint.Unreadable msg ->
                  Printf.eprintf "sso serve: %s\n" msg;
                  exit exit_unreadable
            end
        | _ -> ());
        match crash_after with
        | Some t when r.Serve.tick >= t ->
            (* A hard kill, not an exit: no flush, no atexit, no trace
               finalization — exactly what the chaos harness resumes
               from. *)
            Unix._exit 137
        | _ -> ()
      in
      let on_tick = Some on_tick in
      let t0 = Obs.now_ns () in
      let outcome, reports =
        match
          if simulate then
            let outcome, reports =
              Serve.simulate ?on_tick sim_rng ~period srv events
            in
            (Some outcome, reports)
          else (None, Serve.replay ?on_tick ~faults srv events)
        with
        | result -> result
        | exception Update.Corrupt msg ->
            Printf.eprintf "sso serve: %s\n" msg;
            exit exit_corrupt
      in
      Option.iter (fun write -> write ()) write_metrics;
      let wall_ns = Obs.now_ns () - t0 in
      let digest =
        match Serve.routing srv with
        | Some r -> Codec.hex_of_key (Codec.fnv1a64 (Codec.encode_routing r))
        | None -> String.make 16 '0'
      in
      let final_congestion =
        match List.rev reports with r :: _ -> r.Serve.congestion | [] -> 0.0
      in
      let final_pairs =
        match List.rev reports with r :: _ -> r.Serve.active_pairs | [] -> 0
      in
      let sim_json =
        match outcome with
        | None -> ""
        | Some outcome ->
            let s = Simulator.value outcome in
            Printf.sprintf
              ",\n  \"sim\": {\"completed\": %s, \"packets\": %d, \
               \"delivered\": %d, \"finish_time\": %d, \"mean_latency\": %s, \
               \"p99_latency\": %s, \"peak_queue\": %d}"
              (match outcome with
              | Simulator.Completed _ -> "true"
              | Simulator.Out_of_budget _ -> "false")
              s.Simulator.packets s.Simulator.delivered s.Simulator.finish_time
              (jfloat s.Simulator.mean_latency) (jfloat s.Simulator.p99_latency)
              s.Simulator.peak_queue
      in
      if json then begin
        Printf.printf
          "{\n  \"schema\": \"sso-serve-replay\",\n  \"version\": 2,\n  \
           \"family\": %s,\n  \"size\": %d,\n  \"alpha\": %d,\n  \"base\": \
           %s,\n  \"solver\": %s,\n  \"warm_iters\": %d,\n  \"warm_weight\": \
           %d,\n  \"refresh\": %d,\n  \"event_budget\": %d,\n  \
           \"max_staleness\": %d,\n  \"faults\": %s,\n  \"seed\": %d,\n  \
           \"events\": %d,\n  \"ticks\": [\n"
          (jstr family) size alpha (jstr base) (jstr solver_spec) warm_iters
          warm_weight refresh event_budget max_staleness
          (match faults_spec with None -> "null" | Some s -> jstr s)
          seed (List.length events);
        List.iteri
          (fun i r ->
            Printf.printf "    %s%s\n" (report_json r)
              (if i < List.length reports - 1 then "," else ""))
          reports;
        Printf.printf
          "  ],\n  \"final\": {\"pairs\": %d, \"congestion\": %s, \"digest\": \
           %s}%s%s\n}\n"
          final_pairs (jfloat final_congestion) (jstr digest) sim_json
          (match store with
          | None -> ""
          | Some _ ->
              Printf.sprintf ",\n  \"cache\": {\"hit\": %d, \"miss\": %d}"
                (Obs.counter_value (Obs.counter "artifact.hit"))
                (Obs.counter_value (Obs.counter "artifact.miss")))
      end
      else begin
        Printf.printf "family %s  size %d  alpha %d  base %s  solver %s\n"
          family size alpha base solver_spec;
        Printf.printf "stream %s  events %d  ticks %d\n\n" stream
          (List.length events) (List.length reports);
        List.iter
          (fun (r : Serve.report) ->
            Printf.printf
              "tick %4d  %-8s  events %3d (+%d -%d ~%d)  pairs %4d  admitted \
               %3d  retired %3d  deferred %3d  failed %2d  rerouted %3d  \
               unroutable %2d  staleness %2d  cong %.4f\n"
              r.Serve.tick (mode_name r.Serve.mode) r.Serve.events
              r.Serve.arrivals r.Serve.departures r.Serve.rate_changes
              r.Serve.active_pairs r.Serve.admitted r.Serve.retired
              r.Serve.deferred r.Serve.failed_edges r.Serve.rerouted
              r.Serve.unroutable r.Serve.staleness r.Serve.congestion)
          reports;
        Printf.printf "\nfinal: pairs %d  congestion %.6f  digest %s\n"
          final_pairs final_congestion digest;
        match outcome with
        | None -> ()
        | Some outcome ->
            let s = Simulator.value outcome in
            Printf.printf
              "sim: %s  delivered %d/%d  finish %d  mean latency %.3f  p99 \
               %.3f  peak queue %d\n"
              (match outcome with
              | Simulator.Completed _ -> "completed"
              | Simulator.Out_of_budget _ -> "OUT-OF-BUDGET")
              s.Simulator.delivered s.Simulator.packets s.Simulator.finish_time
              s.Simulator.mean_latency s.Simulator.p99_latency
              s.Simulator.peak_queue
      end;
      (* Wall-clock throughput goes to stderr: stdout must stay
         byte-identical across runs and job counts. *)
      Printf.eprintf "replayed %d events in %.1f ms (%.0f updates/sec)\n"
        (List.length events)
        (float_of_int wall_ns /. 1e6)
        (float_of_int (List.length events) /. (float_of_int wall_ns /. 1e9));
      finish_trace ~seed trace;
      (* SLO/overload verdicts last, on stderr only (wall clock): the
         trace and all deterministic output are complete before a burn
         exits 12. *)
      (match slo_p99_ms with
      | None -> ()
      | Some budget_ms ->
          let slo = Serve.check_slo ~budget_ms reports in
          Printf.eprintf
            "slo: p99 solve %.3f ms vs budget %.3f ms — %s (%d/%d ticks over \
             budget)\n"
            slo.Serve.p99_ms slo.Serve.p99_budget_ms
            (if slo.Serve.burned then "BURNED" else "ok")
            slo.Serve.burns (List.length reports);
          if slo.Serve.burned then exit exit_slo);
      match overload_ms with
      | None -> ()
      | Some budget_ms ->
          let o = Serve.check_overload ~budget_ms reports in
          Printf.eprintf
            "overload: max tick %.3f ms vs budget %.3f ms — %s (%d/%d ticks \
             over budget)\n"
            o.Serve.max_tick_ms o.Serve.budget_tick_ms
            (if o.Serve.overloaded then "OVERLOADED" else "ok")
            o.Serve.slow_ticks (List.length reports);
          if o.Serve.overloaded then exit exit_slo
    in
    let doc = "replay a logged update stream through the routing service" in
    Cmd.v (Cmd.info "replay" ~doc)
      Term.(
        const run $ stream_pos $ family_arg $ size_arg $ alpha_arg $ base_arg
        $ solver_arg $ warm_iters_arg $ warm_weight_arg $ refresh_arg
        $ simulate_arg $ period_arg $ json_arg $ metrics_out_arg $ slo_arg
        $ overload_arg $ faults_arg $ checkpoint_every_arg
        $ checkpoint_dir_arg $ resume_arg $ crash_after_arg
        $ event_budget_arg $ max_staleness_arg $ seed_arg $ jobs_arg
        $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)
  in
  let doc = "long-lived routing service: generate and replay update streams" in
  Cmd.group (Cmd.info "serve" ~doc) [ generate_cmd; replay_cmd ]

(* ---- cache ---- *)

let cache_cmd =
  (* Every subcommand exits 0 on success, [exit_unreadable] (10) when the
     store directory cannot be opened or listed, and — for the read-only
     inspections — [exit_corrupt] (11) when damaged entries were seen. *)
  let with_store cache_dir f =
    match
      let store = Store.open_ ?dir:cache_dir () in
      f store
    with
    | () -> ()
    | exception Store.Unreadable msg ->
        Printf.eprintf "sso cache: %s\n" msg;
        exit exit_unreadable
  in
  let report_corrupt corrupt =
    if corrupt <> [] then begin
      Printf.eprintf
        "sso cache: %d corrupt entries (run 'sso cache gc' to remove them)\n"
        (List.length corrupt);
      exit exit_corrupt
    end
  in
  let ls_cmd =
    let run cache_dir =
      with_store cache_dir (fun store ->
          let listing = Store.scan store in
          List.iter
            (fun (e : Store.entry) ->
              Printf.printf "%s  %-18s %10d  %s\n" e.Store.entry_key
                e.Store.entry_kind e.Store.entry_bytes e.Store.entry_description)
            listing.Store.entries;
          List.iter
            (fun name -> Printf.printf "%-16s  CORRUPT\n" name)
            listing.Store.corrupt;
          report_corrupt listing.Store.corrupt)
    in
    let doc = "list cached artifacts (key, kind, payload bytes, recipe)" in
    Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ cache_dir_arg)
  in
  let stat_cmd =
    let run cache_dir =
      with_store cache_dir (fun store ->
          let listing = Store.scan store in
          let bytes =
            List.fold_left
              (fun acc (e : Store.entry) -> acc + e.Store.entry_bytes)
              0 listing.Store.entries
          in
          Printf.printf "directory  %s\n" (Store.dir store);
          Printf.printf "entries    %d\n" (List.length listing.Store.entries);
          Printf.printf "payload    %d bytes\n" bytes;
          Printf.printf "corrupt    %d\n" (List.length listing.Store.corrupt);
          (* Per-kind breakdown: which artifact families occupy the store
             (racke forests vs alpha-sample arenas vs fault reports). *)
          let kinds = Hashtbl.create 8 in
          List.iter
            (fun (e : Store.entry) ->
              let count, sz =
                Option.value
                  (Hashtbl.find_opt kinds e.Store.entry_kind)
                  ~default:(0, 0)
              in
              Hashtbl.replace kinds e.Store.entry_kind
                (count + 1, sz + e.Store.entry_bytes))
            listing.Store.entries;
          Hashtbl.fold (fun kind stats acc -> (kind, stats) :: acc) kinds []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          |> List.iter (fun (kind, (count, sz)) ->
                 Printf.printf "  %-18s %6d entries  %10d bytes\n" kind count
                   sz);
          report_corrupt listing.Store.corrupt)
    in
    let doc = "print store location, entry count, payload size, and per-kind breakdown" in
    Cmd.v (Cmd.info "stat" ~doc) Term.(const run $ cache_dir_arg)
  in
  let gc_cmd =
    let run cache_dir =
      with_store cache_dir (fun store ->
          Printf.printf "removed %d damaged or stale files\n" (Store.gc store))
    in
    let doc = "remove corrupt entries and leftover temp files" in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ cache_dir_arg)
  in
  let clear_cmd =
    let run cache_dir =
      with_store cache_dir (fun store ->
          Printf.printf "removed %d entries\n" (Store.clear store))
    in
    let doc = "remove every cached artifact" in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ cache_dir_arg)
  in
  let doc = "inspect and maintain the on-disk artifact store" in
  Cmd.group (Cmd.info "cache" ~doc) [ ls_cmd; stat_cmd; gc_cmd; clear_cmd ]

(* ---- trace ---- *)

let trace_cmd =
  (* Exit conventions mirror [sso cache]: 10 when the file cannot be
     read, 11 when it is not a valid version-1 sso trace. *)
  let trace_pos p =
    let doc = "JSONL trace produced with $(b,--trace FILE)." in
    (* [string], not [file]: a missing path must surface as our exit 10,
       not cmdliner's 124. *)
    Arg.(required & pos p (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let load path =
    match Trace.load path with
    | t -> t
    | exception Trace.Unreadable msg ->
        Printf.eprintf "sso trace: %s\n" msg;
        exit exit_unreadable
    | exception Trace.Corrupt msg ->
        Printf.eprintf "sso trace: %s\n" msg;
        exit exit_corrupt
  in
  let ms ns = float_of_int ns /. 1e6 in
  let value_str = function
    | Trace.Int i -> string_of_int i
    | Trace.Float f -> Printf.sprintf "%g" f
    | Trace.Bool b -> string_of_bool b
    | Trace.String s -> s
  in
  let print_solves ~all solves =
    List.iteri
      (fun i (s : Trace.solve) ->
        let rounds = Array.of_list s.Trace.s_rounds in
        let n = Array.length rounds in
        Printf.printf "\nsolve #%d  solver=%s  pairs=%d  iters=%d  rounds=%d\n"
          (i + 1) s.Trace.s_solver s.Trace.s_pairs s.Trace.s_iters n;
        if n > 0 then begin
          Printf.printf "%8s %12s %12s %12s %8s\n" "round" "congestion"
            "avg-cong" "potential" "paths";
          let keep r =
            all || r = 1 || r = n || r land (r - 1) = 0 (* powers of two *)
          in
          Array.iter
            (fun (r : Trace.round) ->
              if keep r.Trace.r_round then
                Printf.printf "%8d %12.4f %12.4f %12.4g %8d\n" r.Trace.r_round
                  r.Trace.r_cong r.Trace.r_avg r.Trace.r_potential
                  r.Trace.r_paths)
            rounds
        end)
      solves
  in
  let summary_cmd =
    let run path =
      let t = load path in
      Printf.printf "trace      %s\n" path;
      List.iter
        (fun (k, v) -> Printf.printf "meta       %-6s %s\n" k (value_str v))
        t.Trace.meta;
      Printf.printf "events     %d (%d dropped at capture)\n"
        (List.length t.Trace.events) t.Trace.dropped;
      if t.Trace.dropped > 0 then
        Printf.printf
          "WARNING    ring buffers saturated at capture: %d events were \
           dropped, so the aggregates below are incomplete (raise \
           Obs.set_ring_capacity or trace a smaller run)\n"
          t.Trace.dropped;
      let spans = Trace.span_totals t.Trace.events in
      if spans <> [] then begin
        Printf.printf "\n%-36s %8s %12s\n" "span" "calls" "total ms";
        List.iter
          (fun (name, calls, total_ns) ->
            Printf.printf "%-36s %8d %12.3f\n" name calls (ms total_ns))
          spans
      end;
      let counts = Trace.event_counts t.Trace.events in
      if counts <> [] then begin
        Printf.printf "\n%-36s %8s\n" "event" "count";
        List.iter
          (fun (name, count) -> Printf.printf "%-36s %8d\n" name count)
          counts
      end;
      let solves = Trace.mwu_solves t.Trace.events in
      if solves <> [] then begin
        Printf.printf "\nMWU convergence (log-spaced rounds; 'sso trace \
                       convergence' for all):\n";
        print_solves ~all:false solves
      end
    in
    let doc = "overview: meta, span totals, event counts, MWU convergence" in
    Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ trace_pos 0)
  in
  let spans_cmd =
    let run path =
      let t = load path in
      (* Aggregate per (name); indent by the minimum depth the span was
         observed at, so nesting survives aggregation. *)
      let depth = Hashtbl.create 16 in
      List.iter
        (fun (e : Trace.event) ->
          if e.Trace.kind = Trace.Span then
            let d =
              match Hashtbl.find_opt depth e.Trace.name with
              | Some d -> min d e.Trace.depth
              | None -> e.Trace.depth
            in
            Hashtbl.replace depth e.Trace.name d)
        t.Trace.events;
      Printf.printf "%-44s %8s %12s %12s\n" "span" "calls" "total ms"
        "mean ms";
      List.iter
        (fun (name, calls, total_ns) ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth name) in
          let label = String.make (2 * d) ' ' ^ name in
          Printf.printf "%-44s %8d %12.3f %12.4f\n" label calls (ms total_ns)
            (ms total_ns /. float_of_int (max 1 calls)))
        (Trace.span_totals t.Trace.events)
    in
    let doc = "per-span aggregation, indented by nesting depth" in
    Cmd.v (Cmd.info "spans" ~doc) Term.(const run $ trace_pos 0)
  in
  let convergence_cmd =
    let run path =
      let t = load path in
      match Trace.mwu_solves t.Trace.events with
      | [] ->
          Printf.printf
            "no MWU solves in this trace (was the traced run using the LP or \
             GK solver?)\n"
      | solves -> print_solves ~all:true solves
    in
    let doc = "per-round MWU telemetry for every solve in the trace" in
    Cmd.v (Cmd.info "convergence" ~doc) Term.(const run $ trace_pos 0)
  in
  let diff_cmd =
    let run path_a path_b =
      let a = load path_a and b = load path_b in
      let totals t =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (name, _, total_ns) -> Hashtbl.replace tbl name total_ns)
          (Trace.span_totals t.Trace.events);
        tbl
      in
      let ta = totals a and tb = totals b in
      let names = Hashtbl.create 16 in
      Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) ta;
      Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) tb;
      let rows =
        Hashtbl.fold
          (fun name () acc ->
            let va = Option.value ~default:0 (Hashtbl.find_opt ta name) in
            let vb = Option.value ~default:0 (Hashtbl.find_opt tb name) in
            (name, va, vb, vb - va) :: acc)
          names []
      in
      let rows =
        List.sort
          (fun (_, _, _, d1) (_, _, _, d2) -> compare (abs d2) (abs d1))
          rows
      in
      Printf.printf "%-36s %12s %12s %12s %8s\n" "span" "A ms" "B ms"
        "delta ms" "ratio";
      List.iter
        (fun (name, va, vb, d) ->
          Printf.printf "%-36s %12.3f %12.3f %+12.3f %8s\n" name (ms va)
            (ms vb) (ms d)
            (if va = 0 then "-"
             else Printf.sprintf "%.2f" (float_of_int vb /. float_of_int va)))
        rows;
      let counts t =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (name, c) -> Hashtbl.replace tbl name c)
          (Trace.event_counts t.Trace.events);
        tbl
      in
      let ca = counts a and cb = counts b in
      let enames = Hashtbl.create 16 in
      Hashtbl.iter (fun k _ -> Hashtbl.replace enames k ()) ca;
      Hashtbl.iter (fun k _ -> Hashtbl.replace enames k ()) cb;
      let erows =
        List.sort compare
          (Hashtbl.fold
             (fun name () acc ->
               let va = Option.value ~default:0 (Hashtbl.find_opt ca name) in
               let vb = Option.value ~default:0 (Hashtbl.find_opt cb name) in
               if va <> vb then (name, va, vb) :: acc else acc)
             enames [])
      in
      if erows <> [] then begin
        Printf.printf "\n%-36s %10s %10s\n" "event count changes" "A" "B";
        List.iter
          (fun (name, va, vb) ->
            Printf.printf "%-36s %10d %10d\n" name va vb)
          erows
      end
    in
    let doc = "compare two traces: span time and event count deltas" in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(const run $ trace_pos 0 $ trace_pos 1)
  in
  let flame_cmd =
    let weight_arg =
      let doc =
        "Stack weight: $(b,ns) (self time, the flamegraph default) or \
         $(b,calls) (call counts — jobs-invariant, byte-identical for any \
         $(b,--jobs) of the traced run)."
      in
      Arg.(value & opt string "ns" & info [ "weight" ] ~docv:"WEIGHT" ~doc)
    in
    let run path weight =
      (match weight with
      | "ns" | "calls" -> ()
      | other ->
          Printf.eprintf "sso trace: --weight must be ns or calls, got %S\n"
            other;
          exit 124);
      let t = load path in
      (* One folded line per distinct span path — feed to flamegraph.pl or
         speedscope.  Self time only: a parent's line excludes its
         children, so the weights sum to total traced time. *)
      List.iter
        (fun (stack, calls, self_ns) ->
          Printf.printf "%s %d\n" stack
            (if weight = "calls" then calls else self_ns))
        (Trace.folded_stacks t.Trace.events)
    in
    let doc = "folded flamegraph stacks (span path, self weight) from a trace" in
    Cmd.v (Cmd.info "flame" ~doc) Term.(const run $ trace_pos 0 $ weight_arg)
  in
  let top_cmd =
    let run path =
      let t = load path in
      let rows = Trace.self_totals t.Trace.events in
      let traced_self =
        List.fold_left (fun acc (_, _, _, self) -> acc + self) 0 rows
      in
      Printf.printf "%-36s %8s %12s %12s %7s\n" "span" "calls" "self ms"
        "total ms" "self%";
      List.iter
        (fun (name, calls, total_ns, self_ns) ->
          Printf.printf "%-36s %8d %12.3f %12.3f %6.1f%%\n" name calls
            (ms self_ns) (ms total_ns)
            (100.0 *. float_of_int self_ns
            /. float_of_int (max 1 traced_self)))
        rows
    in
    let doc = "rank spans by self time (duration minus child spans)" in
    Cmd.v (Cmd.info "top" ~doc) Term.(const run $ trace_pos 0)
  in
  let doc = "analyze JSONL execution traces recorded with --trace" in
  Cmd.group (Cmd.info "trace" ~doc)
    [ summary_cmd; spans_cmd; convergence_cmd; diff_cmd; flame_cmd; top_cmd ]

(* ---- theory ---- *)

let theory_cmd =
  let module Theory = Sso_core.Theory in
  let n_arg =
    let doc = "Number of vertices." in
    Arg.(value & opt int 1024 & info [ "n" ] ~docv:"N" ~doc)
  in
  let m_arg =
    let doc = "Number of edges (defaults to 4n)." in
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M" ~doc)
  in
  let run n m =
    let m = match m with Some m -> m | None -> 4 * n in
    Printf.printf "paper bounds for n = %d, m = %d\n\n" n m;
    Printf.printf "Theorem 2.3 sparsity  (log n/log log n)   %d paths/pair\n"
      (Theory.theorem_2_3_sparsity ~n);
    Printf.printf "Theorem 2.3 competitiveness shape         %.1f\n"
      (Theory.theorem_2_3_competitiveness ~n);
    Printf.printf "\n%5s | %16s %16s %10s\n" "alpha" "Thm 2.5 upper"
      "Cor 8.3 lower" "gadget k";
    List.iter
      (fun alpha ->
        Printf.printf "%5d | %16.2f %16.2f %10d\n" alpha
          (Theory.theorem_2_5_competitiveness ~n ~alpha)
          (Theory.lower_bound_cor_8_3 ~n ~alpha)
          (Theory.lower_bound_gadget_k ~n ~alpha))
      [ 1; 2; 3; 4; 6; 8 ];
    Printf.printf "\nLemma 5.6 failure prob (h=1, |supp|=1)    %.3g\n"
      (Theory.weak_route_failure_probability ~m ~supp:1 ~h:1);
    Printf.printf "Cor 5.7 union-bound failure (h=1)         %.3g\n"
      (Theory.union_bound_failure ~m ~h:1);
    Printf.printf "Lemma 6.3 rounding slack (+3 ln m)        %.2f\n"
      (Theory.rounding_bound ~m ~frac_congestion:0.0)
  in
  let doc = "print the paper's closed-form bounds for given parameters" in
  Cmd.v (Cmd.info "theory" ~doc) Term.(const run $ n_arg $ m_arg)

let () =
  let doc = "sparse semi-oblivious routing toolkit" in
  let info = Cmd.info "sso" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; info_cmd; route_cmd; attack_cmd; simulate_cmd; faults_cmd;
            serve_cmd; theory_cmd; cache_cmd; trace_cmd;
          ]))
