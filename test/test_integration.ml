(* End-to-end integration tests: the full five-stage pipeline of the paper
   on a variety of topologies, with cross-library invariants checked at
   every step.  These are the tests that catch wiring mistakes no unit
   test sees: sampling from a routing built on one graph, solving with one
   engine and validating with another, rounding, simulating, attacking. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Maxflow = Sso_graph.Maxflow
module Demand = Sso_demand.Demand
module Workload = Sso_demand.Workload
module Routing = Sso_flow.Routing
module Min_congestion = Sso_flow.Min_congestion
module Rounding = Sso_flow.Rounding
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Ksp = Sso_oblivious.Ksp
module Racke = Sso_oblivious.Racke
module Hop_constrained = Sso_oblivious.Hop_constrained
module Trees = Sso_oblivious.Trees
module Path_system = Sso_core.Path_system
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Integral = Sso_core.Integral
module Completion = Sso_core.Completion
module Robustness = Sso_core.Robustness
module Simulator = Sso_sim.Simulator

(* Full pipeline on one (graph, base, demand) combination: sample, solve
   with MWU, check against LP, round, locally improve, simulate.  Every
   step's invariants are asserted. *)
let pipeline ~name g base demand alpha seed =
  let rng = Rng.create seed in
  (* Stage 2: sample. *)
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha in
  let pairs = Demand.support demand in
  Alcotest.(check bool) (name ^ ": sparse") true
    (Path_system.is_alpha_sparse system ~alpha pairs);
  (* Stage 4 fractional: two engines agree. *)
  let routing, mwu = Semi_oblivious.route ~solver:(Semi_oblivious.Mwu 400) g system demand in
  Alcotest.(check bool) (name ^ ": covers") true (Routing.covers routing demand);
  let _, lp = Min_congestion.lp_on_paths g (Path_system.to_candidates system pairs) demand in
  Alcotest.(check bool)
    (Printf.sprintf "%s: engines agree (lp %.3f mwu %.3f)" name lp mwu)
    true
    (mwu >= lp -. 1e-6 && mwu <= (lp *. 1.25) +. 0.05);
  (* Stage 5: restricted can't beat unrestricted. *)
  let opt = Semi_oblivious.opt ~solver:(Semi_oblivious.Mwu 300) g demand in
  let lower = Min_congestion.lower_bound_sparse_cut g demand in
  Alcotest.(check bool) (name ^ ": certified bound below opt estimate") true
    (lower <= opt +. 1e-6);
  Alcotest.(check bool) (name ^ ": restricted above certified bound") true
    (lp >= lower -. 1e-6);
  (* Integral: rounding bound (Cor 6.4). *)
  if Demand.is_integral demand then begin
    let assignment, integral = Integral.congestion_upper (Rng.split rng) g system demand in
    let bound = (2.0 *. lp) +. (3.0 *. Float.log (float_of_int (Graph.m g))) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: Cor 6.4 (%.2f <= %.2f)" name integral bound)
      true (integral <= bound +. 1e-6);
    (* Simulate: all packets delivered, makespan within schedule bounds. *)
    let stats = Simulator.completed_exn (Simulator.run g assignment) in
    let expected =
      Array.fold_left (fun acc (_, paths) -> acc + Array.length paths) 0 assignment
    in
    Alcotest.(check int) (name ^ ": all delivered") expected stats.Simulator.delivered;
    Alcotest.(check bool) (name ^ ": makespan in bounds") true
      (stats.Simulator.makespan >= Simulator.lower_bound g assignment
      && stats.Simulator.makespan <= Simulator.upper_bound_cd g assignment)
  end

let test_pipeline_hypercube () =
  let g = Gen.hypercube 4 in
  pipeline ~name:"hypercube" g (Valiant.routing g) (Demand.bit_reversal 4) 4 1

let test_pipeline_grid_racke () =
  let g = Gen.grid 4 4 in
  let rng = Rng.create 2 in
  let d = Demand.random_permutation (Rng.split rng) 16 in
  pipeline ~name:"grid" g (Racke.routing (Rng.split rng) g) d 4 2

let test_pipeline_expander () =
  let rng = Rng.create 3 in
  let g = Gen.random_regular (Rng.split rng) 20 4 in
  let d = Demand.random_pairs (Rng.split rng) ~n:20 ~pairs:8 in
  pipeline ~name:"expander" g (Ksp.routing ~k:5 g) d 3 3

let test_pipeline_torus_trees () =
  let rng = Rng.create 4 in
  let g = Gen.torus 4 4 in
  let d = Demand.ring_shift ~n:16 ~shift:5 in
  pipeline ~name:"torus" g (Trees.uniform (Rng.split rng) ~count:6 g) d 3 4

let test_pipeline_wan_gravity () =
  let rng = Rng.create 5 in
  let g, _ = Gen.abilene () in
  (* Gravity demands are fractional: integral phase is skipped inside. *)
  let d = Demand.gravity (Rng.split rng) ~n:11 ~total:30.0 in
  pipeline ~name:"wan" g (Racke.routing (Rng.split rng) g) d 4 5

let test_pipeline_fat_tree () =
  let rng = Rng.create 6 in
  let g = Gen.fat_tree 4 in
  let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:10 in
  pipeline ~name:"fat-tree" g (Ksp.routing ~k:4 g) d 4 6

let test_pipeline_butterfly () =
  let rng = Rng.create 7 in
  let g = Gen.butterfly 3 in
  let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:10 in
  pipeline ~name:"butterfly" g (Ksp.routing ~k:3 g) d 3 7

let test_pipeline_de_bruijn () =
  let rng = Rng.create 8 in
  let g = Gen.de_bruijn 4 in
  let d = Demand.random_permutation (Rng.split rng) 16 in
  pipeline ~name:"de-bruijn" g (Ksp.routing ~k:4 g) d 3 8

(* Completion-time pipeline: the hop-aware router's objective value is
   never worse than the congestion-only router's. *)
let test_completion_never_worse () =
  let rng = Rng.create 9 in
  let g = Gen.multi_path [ 2; 5; 5 ] in
  let system = Completion.ladder_system (Rng.split rng) g ~alpha:3 in
  List.iter
    (fun packets ->
      let d = Demand.single_pair 0 1 (float_of_int packets) in
      let r, cong_only = Semi_oblivious.route ~solver:(Semi_oblivious.Mwu 200) g system d in
      let blind = cong_only +. float_of_int (Routing.dilation r d) in
      let _, cong, dil = Completion.route ~solver:(Semi_oblivious.Mwu 200) g system d in
      let aware = cong +. float_of_int dil in
      Alcotest.(check bool)
        (Printf.sprintf "packets=%d: aware %.2f <= blind %.2f" packets aware blind)
        true
        (aware <= blind +. 0.15))
    [ 1; 3; 9 ]

(* A day of traffic through one installed system: every epoch feasible,
   ratios bounded. *)
let test_workday_over_fixed_system () =
  let rng = Rng.create 10 in
  let g, _ = Gen.abilene () in
  let base = Racke.routing (Rng.split rng) g in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let day = Workload.diurnal (Rng.split rng) ~n:11 ~epochs:6 ~peak_total:40.0 in
  List.iter
    (fun d ->
      let cong = Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 200) g system d in
      let opt = Semi_oblivious.opt ~solver:(Semi_oblivious.Mwu 200) g d in
      Alcotest.(check bool)
        (Printf.sprintf "epoch ratio %.2f bounded" (cong /. opt))
        true
        (cong /. opt <= 2.0))
    day

(* Failure, then reroute, then simulate: the surviving system still
   delivers everything. *)
let test_failure_then_simulate () =
  let rng = Rng.create 11 in
  let g = Gen.torus 4 4 in
  let base = Racke.routing (Rng.split rng) g in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:6 in
  let d = Demand.random_pairs (Rng.split rng) ~n:16 ~pairs:6 in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 150) g system d in
  let survivable = List.filter (fun r -> r.Robustness.survivable) reports in
  Alcotest.(check bool) "most failures survivable" true
    (List.length survivable >= Graph.m g / 2);
  match survivable with
  | [] -> Alcotest.fail "expected a survivable failure"
  | r :: _ ->
      let survivors = Path_system.without_edge r.Robustness.failed_edge system in
      let assignment, _ =
        Integral.congestion_upper (Rng.split rng) g survivors d
      in
      let stats = Simulator.completed_exn (Simulator.run g assignment) in
      Alcotest.(check int) "all delivered after failure"
        (int_of_float (Demand.siz d))
        stats.Simulator.delivered;
      (* And no delivered packet crosses the dead edge. *)
      Array.iter
        (fun (_, paths) ->
          Array.iter
            (fun p ->
              Alcotest.(check bool) "avoids failed edge" false
                (Path.mem_edge p r.Robustness.failed_edge))
            paths)
        assignment

(* Hop-constrained sampling composes with the integral machinery. *)
let test_hop_ladder_integral_simulation () =
  let rng = Rng.create 12 in
  let g = Gen.grid 4 4 in
  let system = Completion.ladder_system (Rng.split rng) g ~alpha:2 in
  let d = Demand.random_pairs (Rng.split rng) ~n:16 ~pairs:5 in
  let routing, cong, dil = Completion.route ~solver:(Semi_oblivious.Mwu 150) g system d in
  Alcotest.(check bool) "feasible" true (cong > 0.0 && dil > 0);
  Alcotest.(check bool) "covers" true (Routing.covers routing d)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "hypercube + valiant" `Slow test_pipeline_hypercube;
          Alcotest.test_case "grid + racke" `Slow test_pipeline_grid_racke;
          Alcotest.test_case "expander + ksp" `Slow test_pipeline_expander;
          Alcotest.test_case "torus + wilson trees" `Slow test_pipeline_torus_trees;
          Alcotest.test_case "wan + gravity" `Slow test_pipeline_wan_gravity;
          Alcotest.test_case "fat tree" `Slow test_pipeline_fat_tree;
          Alcotest.test_case "butterfly" `Slow test_pipeline_butterfly;
          Alcotest.test_case "de bruijn" `Slow test_pipeline_de_bruijn;
        ] );
      ( "cross-feature",
        [
          Alcotest.test_case "completion never worse" `Slow test_completion_never_worse;
          Alcotest.test_case "workday over fixed system" `Slow test_workday_over_fixed_system;
          Alcotest.test_case "failure then simulate" `Slow test_failure_then_simulate;
          Alcotest.test_case "hop ladder integral" `Slow test_hop_ladder_integral_simulation;
        ] );
    ]
