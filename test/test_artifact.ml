(* Tests for Sso_artifact: codec primitives and round-trips, the
   content-addressed store (atomic writes, checksums, corruption as a
   miss), and the memoizing wrappers' bit-identical warm starts. *)

module Rng = Sso_prng.Rng
module Pool = Sso_engine.Pool
module Metrics = Sso_engine.Metrics
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Shortest = Sso_graph.Shortest
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Oblivious = Sso_oblivious.Oblivious
module Ksp = Sso_oblivious.Ksp
module Frt = Sso_oblivious.Frt
module Racke = Sso_oblivious.Racke
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system
module Semi_oblivious = Sso_core.Semi_oblivious
module Arena = Sso_graph.Arena
module Codec = Sso_artifact.Codec
module Store = Sso_artifact.Store
module Memo = Sso_artifact.Memo

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let tmp_counter = ref 0

let with_store f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sso-artifact-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let st = Store.open_ ~dir () in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Store.clear st) with _ -> ());
      try Unix.rmdir dir with _ -> ())
    (fun () -> f st)

let cval name = Metrics.counter_value (Metrics.counter ("artifact." ^ name))

let raises_corrupt f =
  match f () with
  | _ -> false
  | exception Codec.Corrupt _ -> true

let bits = Int64.bits_of_float

let path_equal (a : Path.t) (b : Path.t) =
  a.Path.src = b.Path.src && a.Path.dst = b.Path.dst
  && a.Path.edges = b.Path.edges

let dist_equal da db =
  List.length da = List.length db
  && List.for_all2
       (fun (wa, pa) (wb, pb) -> bits wa = bits wb && path_equal pa pb)
       da db

(* ---- codec primitives ---- *)

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let w = Codec.writer () in
      Codec.write_varint w v;
      let r = Codec.reader (Codec.contents w) in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Codec.read_varint r);
      Codec.expect_end r)
    [ 0; 1; 127; 128; 255; 300; 16384; 1 lsl 40; max_int ]

let test_varint_rejects_negative () =
  let w = Codec.writer () in
  Alcotest.(check bool) "negative raises" true
    (try
       Codec.write_varint w (-1);
       false
     with Invalid_argument _ -> true)

let test_varint_truncated_and_overflow () =
  Alcotest.(check bool) "truncated" true
    (raises_corrupt (fun () -> Codec.read_varint (Codec.reader "\x80")));
  Alcotest.(check bool) "overflow" true
    (raises_corrupt (fun () ->
         Codec.read_varint (Codec.reader (String.make 10 '\x80'))))

let test_fixed_width_roundtrip () =
  let w = Codec.writer () in
  Codec.write_i64 w 0x0123456789ABCDEFL;
  Codec.write_f64 w (-0.0);
  Codec.write_f64 w Float.nan;
  Codec.write_f64 w 1.0000000000000002;
  Codec.write_string w "artifact\x00binary";
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check int64) "i64" 0x0123456789ABCDEFL (Codec.read_i64 r);
  Alcotest.(check int64) "-0.0 bits" (bits (-0.0)) (bits (Codec.read_f64 r));
  Alcotest.(check int64) "nan bits" (bits Float.nan) (bits (Codec.read_f64 r));
  Alcotest.(check int64) "ulp bits" (bits 1.0000000000000002)
    (bits (Codec.read_f64 r));
  Alcotest.(check string) "string" "artifact\x00binary" (Codec.read_string r);
  Codec.expect_end r

let test_expect_end_trailing () =
  let r = Codec.reader "xy" in
  ignore (Codec.read_u8 r);
  Alcotest.(check bool) "trailing byte" true
    (raises_corrupt (fun () -> Codec.expect_end r))

let test_fnv_vectors () =
  (* Published FNV-1a 64-bit test vectors. *)
  Alcotest.(check int64) "empty" 0xCBF29CE484222325L (Codec.fnv1a64 "");
  Alcotest.(check int64) "a" 0xAF63DC4C8601EC8CL (Codec.fnv1a64 "a");
  Alcotest.(check string) "hex" "cbf29ce484222325"
    (Codec.hex_of_key (Codec.fnv1a64 ""))

(* ---- object codecs ---- *)

let graphs_equal g g' =
  Graph.n g = Graph.n g'
  && Graph.m g = Graph.m g'
  && List.for_all
       (fun e ->
         Graph.endpoints g e = Graph.endpoints g' e
         && bits (Graph.cap g e) = bits (Graph.cap g' e))
       (List.init (Graph.m g) Fun.id)

let prop_graph_roundtrip =
  QCheck.Test.make ~name:"graph codec round-trips (ids, endpoints, caps)"
    ~count:50
    QCheck.(pair small_int (int_range 4 25))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi (Rng.create seed) n 0.3 in
      let encoded = Codec.encode_graph g in
      let g' = Codec.decode_graph encoded in
      graphs_equal g g' && Codec.encode_graph g' = encoded)

let prop_demand_roundtrip =
  QCheck.Test.make ~name:"demand codec round-trips (support, amounts)"
    ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let d = Demand.random_pairs rng ~n:20 ~pairs:8 in
      let d' = Codec.decode_demand (Codec.encode_demand d) in
      Demand.support d = Demand.support d'
      && List.for_all
           (fun (s, t) -> bits (Demand.get d s t) = bits (Demand.get d' s t))
           (Demand.support d))

let prop_path_roundtrip =
  QCheck.Test.make ~name:"path codec round-trips exact edge sequences"
    ~count:50
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi (Rng.create seed) n 0.35 in
      match Shortest.bfs_path g 0 (n - 1) with
      | None -> QCheck.assume_fail ()
      | Some p ->
          path_equal p (Codec.decode_path g (Codec.encode_path p)))

let prop_path_system_roundtrip =
  QCheck.Test.make ~name:"path-system codec round-trips candidate sets"
    ~count:25 QCheck.small_int
    (fun seed ->
      let g = Gen.grid 4 4 in
      let base = Ksp.routing ~k:4 g in
      let system = Sampler.alpha_sample (Rng.create seed) base ~alpha:3 in
      let pairs = [ (0, 15); (3, 12); (5, 10) ] in
      Path_system.materialize system pairs;
      let entries =
        List.map (fun (s, t) -> ((s, t), Path_system.paths system s t)) pairs
      in
      let entries' =
        Codec.decode_path_system g (Codec.encode_path_system g entries)
      in
      List.for_all2
        (fun (pair, ps) (pair', ps') ->
          pair = pair'
          && List.length ps = List.length ps'
          && List.for_all2 path_equal ps ps')
        entries entries')

let prop_distributions_roundtrip =
  QCheck.Test.make
    ~name:"distribution codec round-trips weights bit-exactly" ~count:25
    QCheck.small_int
    (fun seed ->
      let g = Gen.erdos_renyi (Rng.create seed) 12 0.4 in
      let base = Ksp.routing ~k:3 g in
      let pairs = [ (0, 11); (1, 10) ] in
      let entries =
        List.map
          (fun (s, t) -> ((s, t), Oblivious.distribution base s t))
          pairs
      in
      let entries' =
        Codec.decode_distributions g (Codec.encode_distributions entries)
      in
      List.for_all2
        (fun (pair, dist) (pair', dist') -> pair = pair' && dist_equal dist dist')
        entries entries')

let test_routing_roundtrip () =
  let g = Gen.grid 4 4 in
  let base = Ksp.routing ~k:4 g in
  let pairs = [ (0, 15); (2, 13) ] in
  let routing = Oblivious.to_routing base pairs in
  let routing' = Codec.decode_routing g (Codec.encode_routing routing) in
  List.iter
    (fun (s, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "distribution %d->%d bit-identical" s t)
        true
        (dist_equal (Routing.distribution routing s t)
           (Routing.distribution routing' s t)))
    pairs

let test_forest_roundtrip () =
  let g = Gen.grid 4 4 in
  let forest = Racke.forest (Rng.create 3) ~trees:4 g in
  let parts = List.map Frt.to_parts forest in
  let parts' = Codec.decode_forest (Codec.encode_forest parts) in
  Alcotest.(check bool) "parts survive the round trip" true (parts = parts');
  let rebuilt = List.map (Frt.of_parts g) parts' in
  let pairs = [ (0, 15); (3, 12); (7, 8); (1, 14) ] in
  List.iter2
    (fun a b ->
      List.iter
        (fun (s, t) ->
          Alcotest.(check bool)
            (Printf.sprintf "route %d->%d identical" s t)
            true
            (path_equal (Frt.route a s t) (Frt.route b s t)))
        pairs)
    forest rebuilt

let test_codec_rejects_damage () =
  let g = Gen.grid 3 3 in
  let encoded = Codec.encode_graph g in
  let flip i s =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    Bytes.to_string b
  in
  Alcotest.(check bool) "empty input" true
    (raises_corrupt (fun () -> Codec.decode_graph ""));
  Alcotest.(check bool) "wrong tag" true
    (raises_corrupt (fun () -> Codec.decode_graph (flip 0 encoded)));
  Alcotest.(check bool) "wrong version" true
    (raises_corrupt (fun () -> Codec.decode_graph (flip 1 encoded)));
  Alcotest.(check bool) "truncated" true
    (raises_corrupt (fun () ->
         Codec.decode_graph (String.sub encoded 0 (String.length encoded - 3))));
  Alcotest.(check bool) "trailing bytes" true
    (raises_corrupt (fun () -> Codec.decode_graph (encoded ^ "x")));
  Alcotest.(check bool) "demand tag refused by graph codec" true
    (raises_corrupt (fun () ->
         Codec.decode_graph (Codec.encode_demand (Demand.all_to_all 3))))

(* ---- v2 path systems and standalone arenas ---- *)

let sample_system_entries seed =
  let g = Gen.grid 4 4 in
  let base = Ksp.routing ~k:4 g in
  let system = Sampler.alpha_sample (Rng.create seed) base ~alpha:3 in
  let pairs = [ (0, 15); (3, 12); (5, 10) ] in
  Path_system.materialize system pairs;
  (g, List.map (fun (s, t) -> ((s, t), Path_system.paths system s t)) pairs)

let entries_equal ea eb =
  List.length ea = List.length eb
  && List.for_all2
       (fun (pair, ps) (pair', ps') ->
         pair = pair'
         && List.length ps = List.length ps'
         && List.for_all2 path_equal ps ps')
       ea eb

let test_path_system_v1_readable () =
  (* The writer now emits v2 (CSR-slot bodies); payloads laid down by the
     v1 format — edge-id varints per hop — must keep decoding. *)
  let g, entries = sample_system_entries 3 in
  let canonical =
    List.sort (fun ((a : int * int), _) (b, _) -> compare a b) entries
  in
  let w = Codec.writer () in
  Codec.write_u8 w 0x50 (* tag 'P' *);
  Codec.write_u8 w 1 (* version 1 *);
  Codec.write_varint w (List.length canonical);
  List.iter
    (fun ((s, t), paths) ->
      Codec.write_varint w s;
      Codec.write_varint w t;
      Codec.write_varint w (List.length paths);
      List.iter
        (fun (p : Path.t) ->
          Codec.write_varint w (Array.length p.Path.edges);
          Array.iter (Codec.write_varint w) p.Path.edges)
        paths)
    canonical;
  let entries' = Codec.decode_path_system g (Codec.contents w) in
  Alcotest.(check bool) "v1 payload decodes" true (entries_equal canonical entries')

let test_path_system_corrupt_contract () =
  (* Damaging any single byte of a v2 payload either still decodes — the
     flip can land on another representable collection — or raises
     [Corrupt]; no other exception may escape, and structural damage must
     be caught. *)
  let g, entries = sample_system_entries 4 in
  let encoded = Codec.encode_path_system g entries in
  let flipped_ok = ref true in
  for i = 0 to String.length encoded - 1 do
    let b = Bytes.of_string encoded in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5b));
    match Codec.decode_path_system g (Bytes.to_string b) with
    | _ -> ()
    | exception Codec.Corrupt _ -> ()
    | exception _ -> flipped_ok := false
  done;
  Alcotest.(check bool) "only Corrupt escapes byte flips" true !flipped_ok;
  Alcotest.(check bool) "truncated" true
    (raises_corrupt (fun () ->
         Codec.decode_path_system g
           (String.sub encoded 0 (String.length encoded - 2))));
  Alcotest.(check bool) "trailing bytes" true
    (raises_corrupt (fun () -> Codec.decode_path_system g (encoded ^ "x")));
  (* Versions above the writer's are from the future: refused. *)
  let future = Bytes.of_string encoded in
  Bytes.set future 1 (Char.chr 99);
  Alcotest.(check bool) "future version" true
    (raises_corrupt (fun () ->
         Codec.decode_path_system g (Bytes.to_string future)))

let test_v2_roundtrip_matches_v1_semantics () =
  let g, entries = sample_system_entries 5 in
  let canonical =
    List.sort (fun ((a : int * int), _) (b, _) -> compare a b) entries
  in
  let entries' = Codec.decode_path_system g (Codec.encode_path_system g entries) in
  Alcotest.(check bool) "round-trip" true (entries_equal canonical entries')

let test_arena_codec_roundtrip () =
  let g, entries = sample_system_entries 6 in
  let a = Arena.create g in
  ignore (Arena.append_path a (Path.trivial 7));
  List.iter
    (fun (_, ps) -> List.iter (fun p -> ignore (Arena.append_path a p)) ps)
    entries;
  let encoded = Codec.encode_arena a in
  let b = Codec.decode_arena g encoded in
  Alcotest.(check int) "length" (Arena.length a) (Arena.length b);
  for i = 0 to Arena.length a - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "slice %d" i)
      true
      (path_equal (Arena.to_path a i) (Arena.to_path b i))
  done;
  let flipped_ok = ref true in
  for i = 0 to String.length encoded - 1 do
    let d = Bytes.of_string encoded in
    Bytes.set d i (Char.chr (Char.code (Bytes.get d i) lxor 0x2d));
    match Codec.decode_arena g (Bytes.to_string d) with
    | _ -> ()
    | exception Codec.Corrupt _ -> ()
    | exception _ -> flipped_ok := false
  done;
  Alcotest.(check bool) "only Corrupt escapes byte flips" true !flipped_ok;
  Alcotest.(check bool) "truncated" true
    (raises_corrupt (fun () ->
         Codec.decode_arena g (String.sub encoded 0 (String.length encoded - 1))));
  Alcotest.(check bool) "graph codec tag refused" true
    (raises_corrupt (fun () -> Codec.decode_arena g (Codec.encode_graph g)))

let test_pairs_digest_canonical () =
  let a = Codec.pairs_digest [ (1, 2); (0, 3); (1, 2) ] in
  let b = Codec.pairs_digest [ (0, 3); (1, 2) ] in
  let c = Codec.pairs_digest [ (0, 3) ] in
  Alcotest.(check int64) "order and duplicates do not matter" a b;
  Alcotest.(check bool) "different sets differ" true (a <> c)

(* ---- store ---- *)

let test_store_put_find () =
  with_store @@ fun st ->
  let recipe = Store.recipe ~kind:"test" [ ("x", "1"); ("y", "abc") ] in
  let h0 = cval "hit" and m0 = cval "miss" and w0 = cval "bytes_written" in
  Alcotest.(check (option string)) "miss before put" None (Store.find st recipe);
  Store.put st recipe "payload-bytes";
  Alcotest.(check (option string)) "hit after put" (Some "payload-bytes")
    (Store.find st recipe);
  Alcotest.(check int) "one hit" (h0 + 1) (cval "hit");
  Alcotest.(check int) "one miss" (m0 + 1) (cval "miss");
  Alcotest.(check int) "bytes written" (w0 + String.length "payload-bytes")
    (cval "bytes_written");
  let is_tmp name =
    let pat = ".tmp." in
    let n = String.length name and k = String.length pat in
    let rec go i = i + k <= n && (String.sub name i k = pat || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no temp files left" true
    (Array.for_all (fun name -> not (is_tmp name)) (Sys.readdir (Store.dir st)));
  let listing = Store.scan st in
  Alcotest.(check int) "one entry" 1 (List.length listing.Store.entries);
  Alcotest.(check (list string)) "no corruption" [] listing.Store.corrupt;
  let e = List.hd listing.Store.entries in
  Alcotest.(check string) "kind recorded" "test" e.Store.entry_kind;
  Alcotest.(check string) "described" "test(x=1, y=abc)"
    e.Store.entry_description

let test_store_recipe_keys () =
  let k a = Store.key (Store.recipe ~kind:"k" a) in
  Alcotest.(check bool) "param value changes the key" true
    (k [ ("x", "1") ] <> k [ ("x", "2") ]);
  Alcotest.(check bool) "param name changes the key" true
    (k [ ("x", "1") ] <> k [ ("y", "1") ]);
  Alcotest.(check bool) "splitting differs from joining" true
    (k [ ("x", "ab"); ("y", "c") ] <> k [ ("x", "a"); ("y", "bc") ]);
  Alcotest.(check int64) "same recipe, same key" (k [ ("x", "1") ])
    (k [ ("x", "1") ])

let entry_path st recipe =
  Filename.concat (Store.dir st)
    (Codec.hex_of_key (Store.key recipe) ^ ".art")

let test_store_truncated_payload_is_miss () =
  with_store @@ fun st ->
  let recipe = Store.recipe ~kind:"trunc" [ ("n", "1") ] in
  Store.put st recipe (String.make 200 'z');
  let path = entry_path st recipe in
  (* Deliberately truncate the payload mid-file: the checksum (and usually
     the length header) no longer match. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data - 40)));
  let c0 = cval "corrupt" in
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Store.find st recipe);
  Alcotest.(check int) "corruption counted" (c0 + 1) (cval "corrupt");
  Alcotest.(check bool) "stale file removed" true (not (Sys.file_exists path));
  Alcotest.(check (option string)) "still a miss, not an error" None
    (Store.find st recipe)

let test_store_flipped_byte_is_miss () =
  with_store @@ fun st ->
  let recipe = Store.recipe ~kind:"flip" [] in
  Store.put st recipe "sensitive-payload";
  let path = entry_path st recipe in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string data in
  let i = String.length data - 12 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  Alcotest.(check (option string)) "checksum mismatch is a miss" None
    (Store.find st recipe)

let test_store_scan_gc_clear () =
  with_store @@ fun st ->
  Store.put st (Store.recipe ~kind:"a" []) "one";
  Store.put st (Store.recipe ~kind:"b" []) "two";
  (* Plant garbage: an undecodable entry and a leftover temp file. *)
  Out_channel.with_open_bin
    (Filename.concat (Store.dir st) "deadbeefdeadbeef.art")
    (fun oc -> Out_channel.output_string oc "not an artifact");
  Out_channel.with_open_bin
    (Filename.concat (Store.dir st) "0000000000000000.art.tmp.1")
    (fun oc -> Out_channel.output_string oc "half-written");
  let listing = Store.scan st in
  Alcotest.(check int) "two live entries" 2 (List.length listing.Store.entries);
  Alcotest.(check (list string)) "garbage flagged" [ "deadbeefdeadbeef.art" ]
    listing.Store.corrupt;
  Alcotest.(check int) "gc removes corrupt + temp" 2 (Store.gc st);
  let listing = Store.scan st in
  Alcotest.(check int) "entries survive gc" 2 (List.length listing.Store.entries);
  Alcotest.(check (list string)) "clean after gc" [] listing.Store.corrupt;
  Alcotest.(check int) "clear removes everything" 2 (Store.clear st);
  Alcotest.(check int) "empty after clear" 0
    (List.length (Store.scan st).Store.entries)

let test_store_unreadable_dir () =
  let file = Filename.temp_file "sso-artifact" ".notadir" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with _ -> ())
    (fun () ->
      Alcotest.(check bool) "regular file is not a store" true
        (match Store.open_ ~dir:file () with
        | _ -> false
        | exception Store.Unreadable _ -> true))

let test_default_dir_env_override () =
  let saved = Sys.getenv_opt "SSO_CACHE_DIR" in
  Unix.putenv "SSO_CACHE_DIR" "/tmp/sso-cache-override";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SSO_CACHE_DIR" (Option.value saved ~default:""))
    (fun () ->
      Alcotest.(check string) "SSO_CACHE_DIR wins" "/tmp/sso-cache-override"
        (Store.default_dir ()))

(* ---- memoizing wrappers ---- *)

let test_memo_racke_warm_identical () =
  with_store @@ fun st ->
  let g = Gen.grid 4 4 in
  let pairs = [ (0, 15); (2, 13); (5, 10); (6, 9) ] in
  let cold = Memo.racke ~store:st (Rng.create 5) ~trees:4 g in
  let h0 = cval "hit" in
  let warm_rng = Rng.create 5 in
  let warm = Memo.racke ~store:st warm_rng ~trees:4 g in
  Alcotest.(check int) "forest hit" (h0 + 1) (cval "hit");
  Alcotest.(check int64) "rng untouched on hit"
    (Rng.fingerprint (Rng.create 5))
    (Rng.fingerprint warm_rng);
  List.iter
    (fun (s, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "distribution %d->%d bit-identical" s t)
        true
        (dist_equal (Oblivious.distribution cold s t)
           (Oblivious.distribution warm s t)))
    pairs

let test_memo_racke_key_sensitivity () =
  with_store @@ fun st ->
  let g = Gen.grid 4 4 in
  let m0 = cval "miss" in
  ignore (Memo.racke ~store:st (Rng.create 5) ~trees:4 g);
  ignore (Memo.racke ~store:st (Rng.create 6) ~trees:4 g);
  ignore (Memo.racke ~store:st (Rng.create 5) ~trees:5 g);
  Alcotest.(check int) "seed and tree count each miss" (m0 + 3) (cval "miss")

let test_memo_hop_constrained_warm () =
  with_store @@ fun st ->
  let g = Gen.grid 4 4 in
  let pairs = [ (0, 15); (3, 12) ] in
  let cold = Memo.hop_constrained ~store:st ~max_hops:6 ~pairs g in
  let h0 = cval "hit" in
  let warm = Memo.hop_constrained ~store:st ~max_hops:6 ~pairs g in
  Alcotest.(check int) "distributions hit" (h0 + 1) (cval "hit");
  List.iter
    (fun (s, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "distribution %d->%d bit-identical" s t)
        true
        (dist_equal (Oblivious.distribution cold s t)
           (Oblivious.distribution warm s t)))
    pairs

let test_memo_alpha_sample_warm () =
  with_store @@ fun st ->
  let g = Gen.grid 4 4 in
  let base = Ksp.routing ~k:4 g in
  let pairs = [ (0, 15); (1, 14) ] in
  let cold =
    Memo.alpha_sample ~store:st ~base_key:"ksp4" (Rng.create 7) base ~alpha:3
      ~pairs
  in
  let h0 = cval "hit" in
  let warm =
    Memo.alpha_sample ~store:st ~base_key:"ksp4" (Rng.create 7) base ~alpha:3
      ~pairs
  in
  Alcotest.(check int) "sample hit" (h0 + 1) (cval "hit");
  let check_pair (s, t) =
    let ps = Path_system.paths cold s t and ps' = Path_system.paths warm s t in
    Alcotest.(check int) (Printf.sprintf "count %d->%d" s t)
      (List.length ps) (List.length ps');
    List.iter2
      (fun a b ->
        Alcotest.(check bool) (Printf.sprintf "path %d->%d" s t) true
          (path_equal a b))
      ps ps'
  in
  List.iter check_pair pairs;
  (* A pair outside the cached set falls through to the always-constructed
     fallback sampler, whose split_at-keyed draws match the cold run. *)
  check_pair (2, 13)

let test_memo_corrupt_payload_rebuilds () =
  with_store @@ fun st ->
  let g = Gen.grid 4 4 in
  let cold = Memo.racke ~store:st (Rng.create 5) ~trees:4 g in
  (* Damage the cached forest; the wrapper must rebuild, never crash or
     deserialize garbage. *)
  let recipe = Memo.racke_recipe ~trees:4 ~rng:(Rng.create 5) g in
  let path = entry_path st recipe in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data / 2)));
  let warm = Memo.racke ~store:st (Rng.create 5) ~trees:4 g in
  Alcotest.(check bool) "rebuilt result identical" true
    (dist_equal
       (Oblivious.distribution cold 0 15)
       (Oblivious.distribution warm 0 15));
  Alcotest.(check bool) "cache repopulated after rebuild" true
    (Store.find st recipe <> None)

(* ---- end-to-end determinism: cold vs warm, jobs 1 vs 4 ---- *)

let test_e2e_cold_warm_jobs () =
  with_store @@ fun st ->
  let g, _ = Gen.abilene () in
  let d = Demand.gravity (Rng.create 2) ~n:(Graph.n g) ~total:30.0 in
  let run jobs =
    with_pool jobs @@ fun pool ->
    let rng = Rng.create 5 in
    let racke_rng = Rng.split rng in
    let base_key =
      Codec.hex_of_key (Store.key (Memo.racke_recipe ~rng:racke_rng g))
    in
    let racke = Memo.racke ~store:st ~pool racke_rng g in
    let system =
      Memo.alpha_sample ~store:st ~base_key (Rng.split rng) racke ~alpha:4
        ~pairs:(Demand.support d)
    in
    Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 60) g system d
  in
  let cold = run 1 in
  let h0 = cval "hit" in
  let warm1 = run 1 in
  let warm4 = run 4 in
  Alcotest.(check bool) "warm runs hit the cache" true (cval "hit" >= h0 + 2);
  Alcotest.(check int64) "cold = warm at jobs 1" (bits cold) (bits warm1);
  Alcotest.(check int64) "cold = warm at jobs 4" (bits cold) (bits warm4)

let () =
  Alcotest.run "artifact"
    [
      ( "codec-primitives",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "varint negative" `Quick test_varint_rejects_negative;
          Alcotest.test_case "varint damage" `Quick
            test_varint_truncated_and_overflow;
          Alcotest.test_case "i64/f64/string" `Quick test_fixed_width_roundtrip;
          Alcotest.test_case "expect_end" `Quick test_expect_end_trailing;
          Alcotest.test_case "fnv1a64 vectors" `Quick test_fnv_vectors;
        ] );
      ( "codec-objects",
        [
          QCheck_alcotest.to_alcotest prop_graph_roundtrip;
          QCheck_alcotest.to_alcotest prop_demand_roundtrip;
          QCheck_alcotest.to_alcotest prop_path_roundtrip;
          QCheck_alcotest.to_alcotest prop_path_system_roundtrip;
          QCheck_alcotest.to_alcotest prop_distributions_roundtrip;
          Alcotest.test_case "routing roundtrip" `Quick test_routing_roundtrip;
          Alcotest.test_case "forest roundtrip" `Quick test_forest_roundtrip;
          Alcotest.test_case "damage detection" `Quick test_codec_rejects_damage;
          Alcotest.test_case "v1 path systems readable" `Quick
            test_path_system_v1_readable;
          Alcotest.test_case "v2 corrupt-byte contract" `Quick
            test_path_system_corrupt_contract;
          Alcotest.test_case "v2 round-trip" `Quick
            test_v2_roundtrip_matches_v1_semantics;
          Alcotest.test_case "arena round-trip" `Quick test_arena_codec_roundtrip;
          Alcotest.test_case "pairs digest" `Quick test_pairs_digest_canonical;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/find" `Quick test_store_put_find;
          Alcotest.test_case "recipe keys" `Quick test_store_recipe_keys;
          Alcotest.test_case "truncated payload" `Quick
            test_store_truncated_payload_is_miss;
          Alcotest.test_case "flipped byte" `Quick test_store_flipped_byte_is_miss;
          Alcotest.test_case "scan/gc/clear" `Quick test_store_scan_gc_clear;
          Alcotest.test_case "unreadable dir" `Quick test_store_unreadable_dir;
          Alcotest.test_case "SSO_CACHE_DIR" `Quick test_default_dir_env_override;
        ] );
      ( "memo",
        [
          Alcotest.test_case "racke warm identical" `Quick
            test_memo_racke_warm_identical;
          Alcotest.test_case "racke key sensitivity" `Quick
            test_memo_racke_key_sensitivity;
          Alcotest.test_case "hop-constrained warm" `Quick
            test_memo_hop_constrained_warm;
          Alcotest.test_case "alpha-sample warm" `Quick
            test_memo_alpha_sample_warm;
          Alcotest.test_case "corrupt payload rebuilds" `Quick
            test_memo_corrupt_payload_rebuilds;
          Alcotest.test_case "e2e cold/warm jobs 1 and 4" `Slow
            test_e2e_cold_warm_jobs;
        ] );
    ]
