(* Tests for Sso_prng.Rng: determinism, uniformity sanity, alias tables. *)

module Rng = Sso_prng.Rng

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b);
  ignore (Rng.int64 a);
  let va = Rng.int64 a in
  ignore (Rng.int64 b);
  let vb = Rng.int64 b in
  Alcotest.(check int64) "copy stays in lockstep" va vb

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr matches
  done;
  Alcotest.(check bool) "split streams diverge" true (!matches < 5)

let test_split_at_reproducible () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let c1 = Rng.split_at a 5 and c2 = Rng.split_at b 5 in
  for _ = 1 to 20 do
    Alcotest.(check int64) "same child stream" (Rng.int64 c1) (Rng.int64 c2)
  done

let test_split_at_does_not_advance () =
  let a = Rng.create 7 and b = Rng.create 7 in
  ignore (Rng.split_at a 3);
  ignore (Rng.split_at a 9);
  for _ = 1 to 20 do
    Alcotest.(check int64) "parent not advanced" (Rng.int64 b) (Rng.int64 a)
  done

let test_split_at_decorrelated () =
  let a = Rng.create 7 in
  let c0 = Rng.split_at a 0 and c1 = Rng.split_at a 1 in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 c0 = Rng.int64 c1 then incr matches
  done;
  Alcotest.(check bool) "adjacent-index children diverge" true (!matches < 5)

let test_split_at_children_uniform () =
  (* The first draw of each indexed child should look uniform across
     indices: consecutive indices must not produce correlated streams. *)
  let a = Rng.create 99 in
  let n = 10_000 in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    sum := !sum +. Rng.float (Rng.split_at a i)
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean of first draws near 0.5" true
    (Float.abs (mean -. 0.5) < 0.02)

let test_split_at_negative () =
  let a = Rng.create 7 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_at: index must be non-negative") (fun () ->
      ignore (Rng.split_at a (-1)))

let test_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniform () =
  let rng = Rng.create 11 in
  let bound = 10 in
  let counts = Array.make bound 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. float_of_int bound in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool) "within 5% of uniform" true (dev < 0.05))
    counts

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let trials = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to trials do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let rng = Rng.create 17 in
  let trues = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Rng.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int trials in
  Alcotest.(check bool) "balanced" true (Float.abs (frac -. 0.5) < 0.01)

let test_permutation () =
  let rng = Rng.create 23 in
  let p = Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun v -> seen.(v) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_permutation_varies () =
  let rng = Rng.create 29 in
  let p = Rng.permutation rng 50 and q = Rng.permutation rng 50 in
  Alcotest.(check bool) "two draws differ" true (p <> q)

let test_shuffle_preserves () =
  let rng = Rng.create 31 in
  let a = Array.init 20 (fun i -> i * i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sa = List.sort compare (Array.to_list a) in
  let sb = List.sort compare (Array.to_list b) in
  Alcotest.(check (list int)) "same multiset" sa sb

let test_choose () =
  let rng = Rng.create 37 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 100 do
    let v = Rng.choose rng a in
    Alcotest.(check bool) "chosen from array" true (Array.mem v a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_discrete () =
  let rng = Rng.create 41 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let i = Rng.discrete rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight outcome never drawn" 0 counts.(1);
  let frac0 = float_of_int counts.(0) /. float_of_int trials in
  Alcotest.(check bool) "proportional" true (Float.abs (frac0 -. 0.25) < 0.02)

let test_alias_matches_weights () =
  let rng = Rng.create 43 in
  let w = [| 0.1; 0.2; 0.3; 0.4 |] in
  let table = Rng.Alias.make w in
  Alcotest.(check int) "size" 4 (Rng.Alias.size table);
  let counts = Array.make 4 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let i = Rng.Alias.sample rng table in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d near weight" i)
        true
        (Float.abs (frac -. w.(i)) < 0.01))
    counts

let test_alias_single () =
  let rng = Rng.create 47 in
  let table = Rng.Alias.make [| 2.5 |] in
  for _ = 1 to 10 do
    Alcotest.(check int) "only outcome" 0 (Rng.Alias.sample rng table)
  done

let test_alias_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Rng.Alias.make: empty weights")
    (fun () -> ignore (Rng.Alias.make [||]));
  Alcotest.check_raises "zero sum"
    (Invalid_argument "Rng.Alias.make: weights must have positive sum") (fun () ->
      ignore (Rng.Alias.make [| 0.0; 0.0 |]))

(* Property-based checks. *)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int always lands in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_permutation_valid =
  QCheck.Test.make ~name:"Rng.permutation is always a bijection" ~count:200
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Rng.permutation rng n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.for_all Fun.id seen)

let prop_discrete_respects_support =
  QCheck.Test.make ~name:"Rng.discrete never picks zero-weight outcomes" ~count:300
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 10) (float_range 0.0 5.0)))
    (fun (seed, weights) ->
      let w = Array.of_list weights in
      QCheck.assume (Array.fold_left ( +. ) 0.0 w > 0.0);
      let rng = Rng.create seed in
      let i = Rng.discrete rng w in
      w.(i) > 0.0)

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "split_at reproducible" `Quick test_split_at_reproducible;
          Alcotest.test_case "split_at non-advancing" `Quick test_split_at_does_not_advance;
          Alcotest.test_case "split_at decorrelated" `Quick test_split_at_decorrelated;
          Alcotest.test_case "split_at children uniform" `Slow test_split_at_children_uniform;
          Alcotest.test_case "split_at negative" `Quick test_split_at_negative;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int uniform" `Slow test_int_uniform;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "bool balance" `Slow test_bool_balance;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "permutation varies" `Quick test_permutation_varies;
          Alcotest.test_case "shuffle preserves" `Quick test_shuffle_preserves;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "discrete" `Slow test_discrete;
        ] );
      ( "alias",
        [
          Alcotest.test_case "matches weights" `Slow test_alias_matches_weights;
          Alcotest.test_case "single outcome" `Quick test_alias_single;
          Alcotest.test_case "invalid input" `Quick test_alias_invalid;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_in_range; prop_permutation_valid; prop_discrete_respects_support ] );
    ]
