(* Tests for the fault-injection subsystem: scenario construction and
   codec, SRLG derivation, offline sweeps (agreement with the classic
   single-failure analysis, jobs-invariance, warm-started recovery), and
   mid-flight failover in the simulator. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Demand = Sso_demand.Demand
module Rounding = Sso_flow.Rounding
module Path_system = Sso_core.Path_system
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Robustness = Sso_core.Robustness
module Pool = Sso_engine.Pool
module Codec = Sso_artifact.Codec
module Simulator = Sso_sim.Simulator
module Scenario = Sso_fault.Scenario
module Timeline = Sso_fault.Timeline
module Sweep = Sso_fault.Sweep

let solver = Semi_oblivious.Mwu 100

let assignment_of_paths entries : Rounding.assignment =
  Array.of_list (List.map (fun (pair, paths) -> (pair, Array.of_list paths)) entries)

(* ---------- Scenario construction ---------- *)

let test_scenario_validation () =
  let g = Gen.path_graph 4 in
  let check_invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  check_invalid "edge out of range" (fun () -> Scenario.single g 99);
  check_invalid "negative edge" (fun () -> Scenario.of_edges g [ -1 ]);
  check_invalid "duplicate edges" (fun () -> Scenario.of_edges g [ 1; 1 ]);
  check_invalid "factor 1 not a failure" (fun () ->
      Scenario.make g [ { Scenario.fail_edge = 0; fail_factor = 1.0 } ]);
  check_invalid "degrade factor 0" (fun () -> Scenario.degrade g ~factor:0.0 [ 1 ]);
  (* Failures come out sorted regardless of input order. *)
  let s = Scenario.of_edges g [ 2; 0 ] in
  Alcotest.(check (list int)) "sorted" [ 0; 2 ] (Scenario.edges s)

let test_scenario_predicates () =
  let g = Gen.path_graph 4 in
  let s =
    Scenario.make g
      [
        { Scenario.fail_edge = 0; fail_factor = 0.0 };
        { Scenario.fail_edge = 2; fail_factor = 0.5 };
      ]
  in
  let removed = Scenario.removed s in
  Alcotest.(check bool) "edge 0 removed" true (removed 0);
  Alcotest.(check bool) "edge 2 only degraded" false (removed 2);
  Alcotest.(check bool) "edge 1 untouched" false (removed 1);
  Alcotest.(check bool) "has degradation" true (Scenario.is_degradation s);
  let g' = Scenario.apply g s in
  Alcotest.(check int) "same edge count" (Graph.m g) (Graph.m g');
  Alcotest.(check (float 1e-12)) "edge 2 scaled" 0.5 (Graph.cap g' 2);
  (* Removal is expressed via [removed], not via capacity. *)
  Alcotest.(check (float 1e-12)) "edge 0 cap kept" (Graph.cap g 0) (Graph.cap g' 0);
  let pure = Scenario.of_edges g [ 1 ] in
  Alcotest.(check bool) "pure removal returns same graph" true
    (Scenario.apply g pure == g)

let test_torus_rows_structure () =
  let rows = 4 and cols = 4 in
  let g = Gen.torus rows cols in
  let groups = Scenario.torus_rows g ~rows ~cols in
  Alcotest.(check int) "one group per row" rows (List.length groups);
  List.iteri
    (fun r s ->
      Alcotest.(check int)
        (Printf.sprintf "row %d has %d edges" r cols)
        cols
        (List.length (Scenario.edges s));
      List.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          Alcotest.(check int) "u in row" r (u / cols);
          Alcotest.(check int) "v in row" r (v / cols))
        (Scenario.edges s))
    groups

let test_fat_tree_pods_structure () =
  let k = 4 in
  let g = Gen.fat_tree k in
  let pods = Scenario.fat_tree_pods g ~k in
  Alcotest.(check int) "one group per pod" k (List.length pods);
  let cores = k * k / 4 in
  List.iteri
    (fun p s ->
      let lo = cores + (p * k) and hi = cores + ((p + 1) * k) in
      let in_pod v = v >= lo && v < hi in
      Alcotest.(check bool)
        (Printf.sprintf "pod %d nonempty" p)
        true
        (Scenario.edges s <> []);
      List.iter
        (fun e ->
          let u, v = Graph.endpoints g e in
          Alcotest.(check bool) "touches the pod" true (in_pod u || in_pod v))
        (Scenario.edges s))
    pods

(* ---------- Codec ---------- *)

let prop_scenario_codec_roundtrip =
  QCheck.Test.make ~name:"scenario codec round-trip" ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.torus 4 4 in
      let k = 1 + (seed mod 5) in
      let s = Scenario.random_k (Rng.split rng) g ~k in
      let s = if seed mod 2 = 0 then s else Scenario.degrade g ~factor:0.25 (Scenario.edges s) in
      Scenario.decode g (Scenario.encode s) = s)

let test_scenario_codec_rejects_corrupt () =
  let g = Gen.torus 4 4 in
  let s = Scenario.of_edges g [ 0; 3 ] in
  let data = Scenario.encode s in
  let corrupt name payload =
    Alcotest.(check bool) name true
      (try
         ignore (Scenario.decode g payload);
         false
       with Codec.Corrupt _ -> true)
  in
  corrupt "garbage" "not a scenario";
  corrupt "truncated" (String.sub data 0 (String.length data - 1));
  corrupt "bad tag" ("X" ^ String.sub data 1 (String.length data - 1));
  corrupt "trailing junk" (data ^ "x")

(* ---------- Sweeps ---------- *)

(* Two disjoint 2-hop routes between 0 and 1. *)
let redundant_fixture () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  (g, ps, Demand.single_pair 0 1 1.0)

let test_sweep_singles_agrees_with_robustness () =
  let g, ps, d = redundant_fixture () in
  let classic = Robustness.single_failures ~solver g ps d in
  let sweep = Sweep.run ~solver g ps d (Sweep.singles g) in
  List.iter2
    (fun (r : Robustness.report) (w : Sweep.report) ->
      Alcotest.(check bool) "same survivable" r.Robustness.survivable w.Sweep.survivable;
      Alcotest.(check (float 1e-9)) "same achieved" r.Robustness.achieved w.Sweep.achieved;
      Alcotest.(check (float 1e-9)) "same post_opt" r.Robustness.post_opt w.Sweep.post_opt)
    classic sweep

let test_sweep_multi_failure_strands () =
  (* Three disjoint routes but only two installed as candidates.  One
     failure per installed route strands the pair even though the third
     route keeps the network connected; failing all three disconnects
     it. *)
  let g = Gen.multi_path [ 3; 3; 3 ] in
  let a = Path.of_vertices g [ 0; 2; 3; 1 ] in
  let b = Path.of_vertices g [ 0; 4; 5; 1 ] in
  let c = Path.of_vertices g [ 0; 6; 7; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  let d = Demand.single_pair 0 1 1.0 in
  let one = Scenario.of_edges g [ a.Path.edges.(0) ] in
  let two = Scenario.of_edges g [ a.Path.edges.(0); b.Path.edges.(1) ] in
  let all3 = Scenario.of_edges g [ a.Path.edges.(0); b.Path.edges.(0); c.Path.edges.(2) ] in
  match Sweep.run ~solver g ps d [ one; two; all3 ] with
  | [ r1; r2; r3 ] ->
      Alcotest.(check bool) "one failure survivable" true r1.Sweep.survivable;
      Alcotest.(check bool) "ratio finite" true (Float.is_finite r1.Sweep.ratio);
      Alcotest.(check bool) "both candidates dead: still connected" true r2.Sweep.connected;
      Alcotest.(check bool) "both candidates dead: stranded" false r2.Sweep.survivable;
      Alcotest.(check bool) "all routes dead: disconnected" false r3.Sweep.connected
  | _ -> Alcotest.fail "expected three reports"

let test_sweep_degradation_capacity_aware () =
  (* Halving one route's capacity is survivable but costs congestion. *)
  let g, ps, d = redundant_fixture () in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let s = Scenario.degrade g ~factor:0.5 [ a.Path.edges.(0) ] in
  match Sweep.run ~solver g ps d [ s ] with
  | [ r ] ->
      Alcotest.(check bool) "survivable" true r.Sweep.survivable;
      Alcotest.(check bool) "no candidate lost" true (Float.is_finite r.Sweep.achieved)
  | _ -> Alcotest.fail "expected one report"

let torus_sweep_fixture seed =
  let rng = Rng.create seed in
  let rows = 4 and cols = 4 in
  let g = Gen.torus rows cols in
  let base = Sso_oblivious.Ksp.routing ~k:4 g in
  let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:4 in
  let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:5 in
  let scenarios =
    Scenario.torus_rows g ~rows ~cols
    @ List.init 3 (fun i -> Scenario.random_k (Rng.split_at (Rng.split rng) i) g ~k:2)
  in
  (g, system, d, scenarios)

let test_sweep_jobs_invariance () =
  let g, system, d, scenarios = torus_sweep_fixture 5 in
  let at_jobs jobs =
    let pool = Pool.create ~jobs () in
    Sweep.run ~pool ~solver ~recovery:Sweep.default_recovery g system d scenarios
  in
  let r1 = at_jobs 1 and r4 = at_jobs 4 in
  (* compare, not (=): unmeasured warm_congestion is nan. *)
  Alcotest.(check bool) "jobs 1 = jobs 4" true (compare r1 r4 = 0)

let test_worst_k_jobs_invariance_and_monotone () =
  let g, system, d, _ = torus_sweep_fixture 6 in
  let at_jobs jobs =
    let pool = Pool.create ~jobs () in
    Sweep.worst_k ~pool ~solver ~candidates:4 g system d ~k:2
  in
  let w1 = at_jobs 1 and w4 = at_jobs 4 in
  Alcotest.(check bool) "jobs 1 = jobs 4" true (compare w1 w4 = 0);
  (* The greedy pair is at least as damaging as the worst single edge. *)
  let singles = Sweep.run ~solver g system d (Sweep.singles g) in
  let worst_single =
    List.fold_left
      (fun acc r -> if r.Sweep.connected then Float.max acc r.Sweep.ratio else acc)
      0.0 singles
  in
  Alcotest.(check bool)
    (Printf.sprintf "worst-2 %.3f >= worst single %.3f" w1.Sweep.ratio worst_single)
    true
    ((not w1.Sweep.connected) || w1.Sweep.ratio >= worst_single -. 1e-9)

let test_sweep_recovery_measured () =
  let g, ps, d = redundant_fixture () in
  let reports =
    Sweep.run ~solver ~recovery:Sweep.default_recovery g ps d (Sweep.singles g)
  in
  List.iter
    (fun r ->
      if r.Sweep.survivable then begin
        Alcotest.(check bool) "rung from the ladder" true
          (List.mem r.Sweep.recovery_rounds Sweep.default_recovery.Sweep.ladder);
        Alcotest.(check bool) "warm within tolerance" true
          (r.Sweep.warm_congestion
          <= (Sweep.default_recovery.Sweep.tolerance *. r.Sweep.achieved) +. 1e-9)
      end
      else Alcotest.(check int) "unmeasured" (-1) r.Sweep.recovery_rounds)
    reports;
  let s = Sweep.summary reports in
  Alcotest.(check bool) "mean recovery measured" true
    (Float.is_finite s.Sweep.mean_recovery_rounds)

let test_resolve_warm_start_matches_cold_quality () =
  (* Warm-started resolve reaches (at least) cold-solve quality with few
     rounds on a small instance. *)
  let g, ps, d = redundant_fixture () in
  let pre, _ = Semi_oblivious.route ~solver g ps d in
  let _, cold = Semi_oblivious.route ~solver:(Semi_oblivious.Mwu 40) g ps d in
  let _, warm =
    Semi_oblivious.resolve ~solver:(Semi_oblivious.Mwu 40) ~warm_start:(pre, 60) g ps d
  in
  Alcotest.(check bool)
    (Printf.sprintf "warm %.4f <= 1.1 * cold %.4f" warm cold)
    true
    (warm <= (1.1 *. cold) +. 1e-9)

(* ---------- Timeline / mid-flight failover ---------- *)

let dumbbell_fixture () =
  (* Direct 1-hop route and a disjoint 3-hop detour between 0 and 1. *)
  let g = Gen.multi_path [ 1; 3 ] in
  let direct = Path.of_vertices g [ 0; 1 ] in
  let long = Path.of_vertices g [ 0; 2; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ direct; long ]) ] in
  (g, direct, long, ps)

let test_timeline_entry_validation () =
  let g, direct, _, _ = dumbbell_fixture () in
  let s = Scenario.of_edges g [ direct.Path.edges.(0) ] in
  let invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  invalid "fail_at 0" (fun () -> Timeline.entry ~at:0 s);
  invalid "repair before failure" (fun () -> Timeline.entry ~repair_at:2 ~at:2 s)

let test_candidate_failover_prefers_suffix () =
  let g, direct, long, ps = dumbbell_fixture () in
  let dead = direct.Path.edges.(0) in
  let alive e = e <> dead in
  match Timeline.candidate_failover g ps ~pair:(0, 1) ~at_vertex:0 ~alive with
  | None -> Alcotest.fail "expected a failover route"
  | Some p -> Alcotest.(check bool) "takes the detour" true (Path.equal p long)

let test_candidate_failover_bridges () =
  (* The packet sits at vertex 2 on the detour when its next hop dies.
     No surviving candidate passes through 2, so the policy must BFS a
     bridge back to the direct route and follow it home: 2 -> 0 -> 1. *)
  let g, _, long, ps = dumbbell_fixture () in
  let dead = long.Path.edges.(1) in
  let alive e = e <> dead in
  match Timeline.candidate_failover g ps ~pair:(0, 1) ~at_vertex:2 ~alive with
  | None -> Alcotest.fail "expected a bridged failover route"
  | Some p ->
      Alcotest.(check bool) "bridges back through the source" true
        (Path.equal p (Path.of_vertices g [ 2; 0; 1 ]))

let test_candidate_failover_none () =
  let g, direct, long, ps = dumbbell_fixture () in
  (* Stranded: the next hop AND the way back both die, so no bridge to
     the surviving direct route exists from vertex 2. *)
  let alive e = e <> long.Path.edges.(1) && e <> long.Path.edges.(0) in
  (match Timeline.candidate_failover g ps ~pair:(0, 1) ~at_vertex:2 ~alive with
  | None -> ()
  | Some _ -> Alcotest.fail "no bridge exists, expected None");
  (* No candidate survives at all: nothing to fail over to, even from
     the source itself. *)
  let alive e = e <> direct.Path.edges.(0) && e <> long.Path.edges.(1) in
  match Timeline.candidate_failover g ps ~pair:(0, 1) ~at_vertex:0 ~alive with
  | None -> ()
  | Some _ -> Alcotest.fail "all candidates dead, expected None"

let test_midflight_failover_dumbbell () =
  (* Two packets routed on the direct edge; it dies before they cross.
     Both fail over to the detour: nothing is dropped, traffic shifts to
     the long path. *)
  let g, direct, _, ps = dumbbell_fixture () in
  let a = assignment_of_paths [ ((0, 1), [ direct; direct ]) ] in
  let s = Scenario.of_edges g [ direct.Path.edges.(0) ] in
  let outcome = Timeline.simulate g ps a [ Timeline.entry ~at:1 s ] in
  let fs = Simulator.completed_exn outcome in
  Alcotest.(check int) "nothing dropped" 0 fs.Simulator.dropped;
  Alcotest.(check int) "both rerouted" 2 fs.Simulator.rerouted;
  Alcotest.(check int) "both delivered" 2 fs.Simulator.base.Simulator.delivered;
  (* Detour of 3 hops, two packets serialized on its first edge: last
     arrival at step 4, failure at step 1. *)
  Alcotest.(check int) "makespan" 4 fs.Simulator.base.Simulator.makespan;
  Alcotest.(check int) "recovery makespan" 3 fs.Simulator.recovery_makespan

let test_midflight_drop_without_candidates () =
  (* Single-candidate system: when the only route dies, packets drop. *)
  let g, direct, _, _ = dumbbell_fixture () in
  let ps = Path_system.of_pairs g [ ((0, 1), [ direct ]) ] in
  let a = assignment_of_paths [ ((0, 1), [ direct; direct ]) ] in
  let s = Scenario.of_edges g [ direct.Path.edges.(0) ] in
  let fs = Simulator.value (Timeline.simulate g ps a [ Timeline.entry ~at:1 s ]) in
  Alcotest.(check int) "both dropped" 2 fs.Simulator.dropped;
  Alcotest.(check int) "none rerouted" 0 fs.Simulator.rerouted;
  Alcotest.(check int) "delivered only the dead" 0 fs.Simulator.base.Simulator.delivered

let test_midflight_degradation_and_repair () =
  (* A capacity-2 edge degraded to width 1 mid-burst, then repaired: the
     run slows down but no packet is dropped or rerouted. *)
  let b = Graph.Builder.create 2 in
  ignore (Graph.Builder.add_edge ~cap:2.0 b 0 1);
  let g = Graph.Builder.build b in
  let p = Path.of_vertices g [ 0; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ p ]) ] in
  let a = assignment_of_paths [ ((0, 1), List.init 6 (fun _ -> p)) ] in
  let baseline = Simulator.value (Timeline.simulate g ps a []) in
  Alcotest.(check int) "full width: 3 steps" 3 baseline.Simulator.base.Simulator.makespan;
  let s = Scenario.degrade g ~factor:0.5 [ 0 ] in
  let fs =
    Simulator.value
      (Timeline.simulate g ps a [ Timeline.entry ~repair_at:4 ~at:2 s ])
  in
  Alcotest.(check int) "nothing dropped" 0 fs.Simulator.dropped;
  Alcotest.(check int) "nothing rerouted" 0 fs.Simulator.rerouted;
  Alcotest.(check int) "all delivered" 6 fs.Simulator.base.Simulator.delivered;
  (* Steps: 2 cross, 1 crosses (degraded), 1 crosses (degraded), repair
     at 4 -> 2 cross: 4 steps total. *)
  Alcotest.(check int) "slowed to 4 steps" 4 fs.Simulator.base.Simulator.makespan

let test_timeline_jobs_oblivious () =
  (* The simulation is sequential, but its inputs flow through the pool
     elsewhere; simulate twice and require identical stats. *)
  let g, direct, _, ps = dumbbell_fixture () in
  let a = assignment_of_paths [ ((0, 1), [ direct; direct ]) ] in
  let s = Scenario.of_edges g [ direct.Path.edges.(0) ] in
  let run () = Simulator.value (Timeline.simulate g ps a [ Timeline.entry ~at:1 s ]) in
  Alcotest.(check bool) "deterministic" true (compare (run ()) (run ()) = 0)

let () =
  Alcotest.run "fault"
    [
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "predicates and apply" `Quick test_scenario_predicates;
          Alcotest.test_case "torus rows" `Quick test_torus_rows_structure;
          Alcotest.test_case "fat-tree pods" `Quick test_fat_tree_pods_structure;
          Alcotest.test_case "codec rejects corrupt" `Quick
            test_scenario_codec_rejects_corrupt;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "agrees with robustness" `Quick
            test_sweep_singles_agrees_with_robustness;
          Alcotest.test_case "multi-failure strands" `Quick test_sweep_multi_failure_strands;
          Alcotest.test_case "degradation aware" `Quick test_sweep_degradation_capacity_aware;
          Alcotest.test_case "jobs invariance" `Slow test_sweep_jobs_invariance;
          Alcotest.test_case "worst-k deterministic" `Slow
            test_worst_k_jobs_invariance_and_monotone;
          Alcotest.test_case "recovery measured" `Quick test_sweep_recovery_measured;
          Alcotest.test_case "warm resolve quality" `Quick
            test_resolve_warm_start_matches_cold_quality;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "entry validation" `Quick test_timeline_entry_validation;
          Alcotest.test_case "failover prefers suffix" `Quick
            test_candidate_failover_prefers_suffix;
          Alcotest.test_case "failover bridges" `Quick
            test_candidate_failover_bridges;
          Alcotest.test_case "failover gives up" `Quick
            test_candidate_failover_none;
          Alcotest.test_case "mid-flight failover" `Quick test_midflight_failover_dumbbell;
          Alcotest.test_case "drops without candidates" `Quick
            test_midflight_drop_without_candidates;
          Alcotest.test_case "degradation and repair" `Quick
            test_midflight_degradation_and_repair;
          Alcotest.test_case "deterministic" `Quick test_timeline_jobs_oblivious;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_scenario_codec_roundtrip ] );
    ]
