(* Tests for the routing service: the update-stream codec, batch
   application, incremental re-optimization under churn, and the
   jobs-invariance of replayed streams. *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Path = Sso_graph.Path
module Demand = Sso_demand.Demand
module Update = Sso_demand.Update
module Workload = Sso_demand.Workload
module Routing = Sso_flow.Routing
module Ksp = Sso_oblivious.Ksp
module Sampler = Sso_core.Sampler
module Path_system = Sso_core.Path_system
module Serve = Sso_serve.Serve
module Checkpoint = Sso_serve.Checkpoint
module Scenario = Sso_fault.Scenario
module Timeline = Sso_fault.Timeline
module Simulator = Sso_sim.Simulator
module Pool = Sso_engine.Pool
module Codec = Sso_artifact.Codec

let ev tick src dst kind = { Update.tick; src; dst; kind }

let with_temp_file f =
  let path = Filename.temp_file "sso_serve_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---- update-stream codec ---- *)

let test_update_roundtrip () =
  let events =
    [
      ev 0 0 1 (Update.Arrive 1.0);
      ev 0 2 3 (Update.Arrive 2.5);
      ev 1 0 1 (Update.Set_rate 0.75);
      ev 3 2 3 Update.Depart;
    ]
  in
  with_temp_file (fun path ->
      Update.save path events;
      let events' = Update.load path in
      Alcotest.(check bool) "roundtrip" true
        (List.equal Update.equal events events'))

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"generated streams round-trip through the codec"
    ~count:25 QCheck.small_int (fun seed ->
      let events =
        Workload.generate ~rate_churn:0.5 (Rng.create seed) ~n:10 ~ticks:6
          ~pairs:5 ~churn:0.4
      in
      with_temp_file (fun path ->
          Update.save path events;
          List.equal Update.equal events (Update.load path)))

let expect_corrupt name content =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Alcotest.(check bool) name true
        (try
           ignore (Update.load path);
           false
         with Update.Corrupt _ -> true))

let test_load_contract () =
  Alcotest.(check bool) "missing file is unreadable" true
    (try
       ignore (Update.load "/nonexistent/sso-stream.jsonl");
       false
     with Update.Unreadable _ -> true);
  expect_corrupt "garbage" "not an update stream\n";
  expect_corrupt "empty" "";
  expect_corrupt "wrong schema"
    "{\"schema\":\"sso-trace\",\"version\":1,\"events\":0}\n";
  expect_corrupt "wrong version"
    "{\"schema\":\"sso-serve-stream\",\"version\":99,\"events\":0}\n";
  expect_corrupt "truncated"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":2}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":1}\n";
  expect_corrupt "tick regression"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":2}\n\
     {\"tick\":2,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":1}\n\
     {\"tick\":1,\"src\":1,\"dst\":2,\"op\":\"arrive\",\"rate\":1}\n";
  expect_corrupt "unknown op"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":1}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"burst\",\"rate\":1}\n";
  expect_corrupt "non-positive rate"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":1}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":0}\n"

let test_save_rejects_invalid_streams () =
  let expect_invalid name events =
    Alcotest.(check bool) name true
      (try
         with_temp_file (fun path -> Update.save path events);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "diagonal pair" [ ev 0 3 3 (Update.Arrive 1.0) ];
  expect_invalid "negative rate" [ ev 0 0 1 (Update.Arrive (-1.0)) ];
  expect_invalid "tick regression"
    [ ev 2 0 1 (Update.Arrive 1.0); ev 1 1 2 (Update.Arrive 1.0) ]

(* ---- batch application ---- *)

let test_apply () =
  let d =
    Update.apply Demand.empty
      [
        ev 0 0 1 (Update.Arrive 1.0);
        ev 0 0 1 (Update.Arrive 2.0);
        ev 0 2 3 (Update.Arrive 1.0);
      ]
  in
  Alcotest.(check (float 1e-9)) "arrivals sum" 3.0 (Demand.get d 0 1);
  let d = Update.apply d [ ev 1 0 1 (Update.Set_rate 0.25) ] in
  Alcotest.(check (float 1e-9)) "set replaces" 0.25 (Demand.get d 0 1);
  let d = Update.apply d [ ev 2 0 1 Update.Depart ] in
  Alcotest.(check (float 1e-9)) "depart removes" 0.0 (Demand.get d 0 1);
  Alcotest.(check int) "one pair left" 1 (Demand.support_size d);
  let corrupts name events =
    Alcotest.(check bool) name true
      (try
         ignore (Update.apply d events);
         false
       with Update.Corrupt _ -> true)
  in
  corrupts "inactive depart" [ ev 3 0 1 Update.Depart ];
  corrupts "inactive set" [ ev 3 0 1 (Update.Set_rate 1.0) ]

let test_by_tick () =
  let events =
    [
      ev 0 0 1 (Update.Arrive 1.0);
      ev 0 1 2 (Update.Arrive 1.0);
      ev 2 0 1 Update.Depart;
      ev 5 3 4 (Update.Arrive 1.0);
    ]
  in
  let groups = Update.by_tick events in
  Alcotest.(check (list int)) "tick keys" [ 0; 2; 5 ]
    (List.map fst groups);
  Alcotest.(check (list int)) "batch sizes" [ 2; 1; 1 ]
    (List.map (fun (_, b) -> List.length b) groups)

(* ---- service stepping ---- *)

let make_service ?config () =
  let g = Gen.grid 4 4 in
  let obl = Ksp.routing ~k:4 g in
  let ps = Sampler.alpha_sample (Rng.create 5) obl ~alpha:3 in
  Serve.create ?config g ps

let test_step_admits_and_retires () =
  let srv = make_service () in
  Alcotest.(check bool) "no routing yet" true (Serve.routing srv = None);
  let r0 =
    Serve.step srv ~tick:0
      [ ev 0 0 1 (Update.Arrive 1.0); ev 0 2 3 (Update.Arrive 1.0) ]
  in
  Alcotest.(check bool) "first solve is cold" true (r0.Serve.mode = Serve.Cold);
  Alcotest.(check int) "two admitted" 2 r0.Serve.admitted;
  Alcotest.(check int) "two active" 2 r0.Serve.active_pairs;
  Alcotest.(check int) "cold staleness" 0 r0.Serve.staleness;
  let r1 =
    Serve.step srv ~tick:1
      [ ev 1 2 3 Update.Depart; ev 1 4 5 (Update.Arrive 1.0) ]
  in
  Alcotest.(check bool) "churn tick is warm" true (r1.Serve.mode = Serve.Warm);
  Alcotest.(check int) "one admitted" 1 r1.Serve.admitted;
  Alcotest.(check int) "one retired" 1 r1.Serve.retired;
  Alcotest.(check int) "warm staleness" 1 r1.Serve.staleness;
  (* A returning pair was already materialized: admission is free. *)
  let r2 = Serve.step srv ~tick:2 [ ev 2 2 3 (Update.Arrive 1.0) ] in
  Alcotest.(check int) "re-admission is free" 0 r2.Serve.admitted;
  Alcotest.(check int) "three active" 3 r2.Serve.active_pairs;
  Alcotest.(check bool) "congestion positive" true (r2.Serve.congestion > 0.0)

let test_step_rejects_bad_batches () =
  let srv = make_service () in
  ignore (Serve.step srv ~tick:3 [ ev 3 0 1 (Update.Arrive 1.0) ]);
  let corrupts name tick events =
    Alcotest.(check bool) name true
      (try
         ignore (Serve.step srv ~tick events);
         false
       with Update.Corrupt _ -> true)
  in
  corrupts "non-increasing tick" 3 [ ev 3 1 2 (Update.Arrive 1.0) ];
  corrupts "mislabelled event" 5 [ ev 4 1 2 (Update.Arrive 1.0) ];
  corrupts "endpoint out of range" 6 [ ev 6 1 99 (Update.Arrive 1.0) ]

let test_step_to_empty_demand () =
  let srv = make_service () in
  ignore (Serve.step srv ~tick:0 [ ev 0 0 1 (Update.Arrive 1.0) ]);
  let r = Serve.step srv ~tick:1 [ ev 1 0 1 Update.Depart ] in
  Alcotest.(check int) "no active pairs" 0 r.Serve.active_pairs;
  Alcotest.(check (float 1e-9)) "no congestion" 0.0 r.Serve.congestion

let test_refresh_and_staleness () =
  let events =
    Workload.generate (Rng.create 41) ~n:16 ~ticks:7 ~pairs:6 ~churn:1.0
  in
  let srv =
    make_service ~config:{ Serve.default_config with refresh_every = 3 } ()
  in
  let reports = Serve.replay srv events in
  Alcotest.(check (list string)) "cold every third solve"
    [ "cold"; "warm"; "warm"; "cold"; "warm"; "warm"; "cold" ]
    (List.map
       (fun r ->
         match r.Serve.mode with
         | Serve.Cold -> "cold"
         | Serve.Warm -> "warm"
         | Serve.Degraded -> "degraded")
       reports);
  Alcotest.(check (list int)) "staleness resets on refresh"
    [ 0; 1; 2; 0; 1; 2; 0 ]
    (List.map (fun r -> r.Serve.staleness) reports);
  let srv = make_service () in
  let reports = Serve.replay srv events in
  Alcotest.(check (list int)) "never refreshes by default"
    [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.map (fun r -> r.Serve.staleness) reports)

(* ---- warm-vs-cold equivalence (at 1 and 4 workers) ---- *)

let churn_events = Workload.generate (Rng.create 31) ~n:16 ~ticks:8 ~pairs:10 ~churn:0.3

let check_warm_tracks_cold jobs =
  let before = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
  Pool.set_default_jobs jobs;
  let warm_srv =
    make_service ~config:{ Serve.default_config with warm_iters = 60; warm_weight = 20 } ()
  in
  let warm = Serve.replay warm_srv churn_events in
  let cold_srv =
    make_service ~config:{ Serve.default_config with refresh_every = 1 } ()
  in
  let cold = Serve.replay cold_srv churn_events in
  List.iter2
    (fun (w : Serve.report) (c : Serve.report) ->
      Alcotest.(check bool)
        (Printf.sprintf
           "tick %d: warm %.4f within tolerance of cold %.4f (jobs %d)"
           w.Serve.tick w.Serve.congestion c.Serve.congestion jobs)
        true
        (w.Serve.congestion <= 1.10 *. c.Serve.congestion +. 1e-9))
    warm cold

let test_warm_tracks_cold_j1 () = check_warm_tracks_cold 1
let test_warm_tracks_cold_j4 () = check_warm_tracks_cold 4

(* ---- jobs-invariance of a replayed stream ---- *)

let replay_fingerprint jobs =
  let before = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
  Pool.set_default_jobs jobs;
  let srv = make_service () in
  let reports = Serve.replay srv churn_events in
  let digest =
    match Serve.routing srv with
    | Some r -> Codec.hex_of_key (Codec.fnv1a64 (Codec.encode_routing r))
    | None -> Alcotest.fail "expected a routing after replay"
  in
  (reports, digest)

let report_equal (a : Serve.report) (b : Serve.report) =
  (* Everything but the wall-clock [solve_ns]/[tick_ns] fields. *)
  a.Serve.tick = b.Serve.tick
  && a.Serve.events = b.Serve.events
  && a.Serve.arrivals = b.Serve.arrivals
  && a.Serve.departures = b.Serve.departures
  && a.Serve.rate_changes = b.Serve.rate_changes
  && a.Serve.active_pairs = b.Serve.active_pairs
  && a.Serve.admitted = b.Serve.admitted
  && a.Serve.retired = b.Serve.retired
  && a.Serve.deferred = b.Serve.deferred
  && a.Serve.failed_edges = b.Serve.failed_edges
  && a.Serve.rerouted = b.Serve.rerouted
  && a.Serve.unroutable = b.Serve.unroutable
  && Float.equal a.Serve.congestion b.Serve.congestion
  && a.Serve.mode = b.Serve.mode
  && a.Serve.staleness = b.Serve.staleness

let test_replay_jobs_invariant () =
  let r1, d1 = replay_fingerprint 1 in
  let r4, d4 = replay_fingerprint 4 in
  Alcotest.(check string) "routing digest" d1 d4;
  Alcotest.(check int) "report count" (List.length r1) (List.length r4);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "tick %d report" a.Serve.tick)
        true (report_equal a b))
    r1 r4

(* ---- simulation ---- *)

let test_simulate () =
  let srv = make_service () in
  let outcome, reports =
    Serve.simulate (Rng.create 3) ~period:4 srv churn_events
  in
  Alcotest.(check int) "one report per tick" 8 (List.length reports);
  (match outcome with
  | Simulator.Completed _ -> ()
  | Simulator.Out_of_budget _ -> Alcotest.fail "simulation ran out of budget");
  let stats = Simulator.value outcome in
  Alcotest.(check bool) "packets injected" true (stats.Simulator.packets > 0);
  Alcotest.(check int) "all delivered" stats.Simulator.packets
    stats.Simulator.delivered

(* ---- SLO ---- *)

let blank_report ~solve_ns ~tick_ns =
  { Serve.tick = 0; events = 0; arrivals = 0; departures = 0;
    rate_changes = 0; active_pairs = 0; admitted = 0; retired = 0;
    deferred = 0; failed_edges = 0; rerouted = 0; unroutable = 0;
    congestion = 0.0; mode = Serve.Cold; staleness = 0; solve_ns; tick_ns }

let test_check_slo () =
  let report solve_ns = blank_report ~solve_ns ~tick_ns:solve_ns in
  (* 1..10 ms of solve time; nearest-rank p99 of 10 samples is the max. *)
  let reports = List.init 10 (fun i -> report ((i + 1) * 1_000_000)) in
  let burned = Serve.check_slo ~budget_ms:5.0 reports in
  Alcotest.(check (float 1e-9)) "p99 is the max sample" 10.0
    burned.Serve.p99_ms;
  Alcotest.(check bool) "burned" true burned.Serve.burned;
  Alcotest.(check int) "ticks over budget" 5 burned.Serve.burns;
  let ok = Serve.check_slo ~budget_ms:15.0 reports in
  Alcotest.(check bool) "within budget" false ok.Serve.burned;
  Alcotest.(check int) "no burns" 0 ok.Serve.burns;
  let empty = Serve.check_slo ~budget_ms:1.0 [] in
  Alcotest.(check bool) "empty replay never burns" false empty.Serve.burned;
  Alcotest.(check (float 0.0)) "empty replay p99" 0.0 empty.Serve.p99_ms;
  match Serve.check_slo ~budget_ms:0.0 reports with
  | (_ : Serve.slo) -> Alcotest.fail "zero budget accepted"
  | exception Invalid_argument _ -> ()

let test_check_overload () =
  let report tick_ns = blank_report ~solve_ns:0 ~tick_ns in
  let reports = List.init 10 (fun i -> report ((i + 1) * 1_000_000)) in
  let o = Serve.check_overload ~budget_ms:5.0 reports in
  Alcotest.(check bool) "overloaded" true o.Serve.overloaded;
  Alcotest.(check int) "slow ticks" 5 o.Serve.slow_ticks;
  Alcotest.(check (float 1e-9)) "max tick" 10.0 o.Serve.max_tick_ms;
  let ok = Serve.check_overload ~budget_ms:15.0 reports in
  Alcotest.(check bool) "within budget" false ok.Serve.overloaded;
  let empty = Serve.check_overload ~budget_ms:1.0 [] in
  Alcotest.(check bool) "empty replay" false empty.Serve.overloaded;
  match Serve.check_overload ~budget_ms:0.0 reports with
  | (_ : Serve.overload) -> Alcotest.fail "zero budget accepted"
  | exception Invalid_argument _ -> ()

(* ---- faults in the loop ---- *)

let test_step_faults () =
  let srv = make_service () in
  let r0 =
    Serve.step srv ~tick:0
      [ ev 0 0 1 (Update.Arrive 1.0); ev 0 5 10 (Update.Arrive 1.0) ]
  in
  Alcotest.(check int) "nothing failed yet" 0 r0.Serve.failed_edges;
  (* Kill an edge the current routing actually uses: the report must
     count the displaced commodity. *)
  let used_edge =
    match Serve.routing srv with
    | Some r -> (
        match Routing.distribution r 0 1 with
        | (_, p) :: _ -> p.Path.edges.(0)
        | [] -> Alcotest.fail "expected a distribution for 0->1")
    | None -> Alcotest.fail "expected a routing"
  in
  let r1 = Serve.step srv ~tick:1 ~faults:[ Serve.Fail used_edge ] [] in
  Alcotest.(check int) "one edge down" 1 r1.Serve.failed_edges;
  Alcotest.(check bool) "displaced pairs counted" true (r1.Serve.rerouted >= 1);
  Alcotest.(check (list int)) "failed_edges accessor" [ used_edge ]
    (Serve.failed_edges srv);
  Alcotest.(check bool) "still serves both pairs" true
    (r1.Serve.active_pairs = 2 && r1.Serve.unroutable = 0);
  (* The degraded-graph routing must not touch the dead edge. *)
  (match Serve.routing srv with
  | Some r ->
      List.iter
        (fun (s, d) ->
          List.iter
            (fun (_, p) ->
              Alcotest.(check bool) "no weight on the dead edge" false
                (Array.exists (fun e -> e = used_edge) p.Path.edges))
            (Routing.distribution r s d))
        (Routing.pairs r)
  | None -> Alcotest.fail "expected a routing");
  let r2 = Serve.step srv ~tick:2 ~faults:[ Serve.Repair used_edge ] [] in
  Alcotest.(check int) "repaired" 0 r2.Serve.failed_edges;
  (* Contradictory fault events are stream corruption. *)
  let corrupts name faults =
    Alcotest.(check bool) name true
      (try
         ignore (Serve.step srv ~tick:9 ~faults []);
         false
       with Update.Corrupt _ -> true)
  in
  corrupts "repair of healthy edge" [ Serve.Repair used_edge ];
  corrupts "edge out of range" [ Serve.Fail 100000 ];
  ignore (Serve.step srv ~tick:20 ~faults:[ Serve.Fail used_edge ] []);
  corrupts "double failure" [ Serve.Fail used_edge ]

let test_unroutable_pair_sheds_and_recovers () =
  let srv = make_service () in
  ignore
    (Serve.step srv ~tick:0
       [ ev 0 0 1 (Update.Arrive 1.0); ev 0 12 15 (Update.Arrive 1.0) ]);
  (* Fail every candidate of 0->1: the pair must be shed as unroutable,
     not crash the solve — and come back with the repair. *)
  let doomed =
    List.sort_uniq compare
      (List.concat_map
         (fun p -> Array.to_list p.Path.edges)
         (Path_system.paths (Serve.system srv) 0 1))
  in
  let r1 =
    Serve.step srv ~tick:1 ~faults:(List.map (fun e -> Serve.Fail e) doomed) []
  in
  Alcotest.(check int) "one pair unroutable" 1 r1.Serve.unroutable;
  Alcotest.(check int) "both still active" 2 r1.Serve.active_pairs;
  (match Serve.routing srv with
  | Some r -> Alcotest.(check bool) "dropped from the routing" true
      (Routing.distribution r 0 1 = [])
  | None -> Alcotest.fail "expected a routing");
  let r2 =
    Serve.step srv ~tick:2
      ~faults:(List.map (fun e -> Serve.Repair e) doomed)
      []
  in
  Alcotest.(check int) "routable again" 0 r2.Serve.unroutable;
  match Serve.routing srv with
  | Some r ->
      Alcotest.(check bool) "back in the routing" true
        (Routing.distribution r 0 1 <> [])
  | None -> Alcotest.fail "expected a routing"

let test_faults_of_timeline () =
  let g = Gen.grid 4 4 in
  let s12 = Scenario.of_edges g [ 1; 2 ] in
  let s3 = Scenario.of_edges g [ 3 ] in
  let faults =
    Serve.faults_of_timeline
      [ Timeline.entry ~at:2 ~repair_at:5 s12; Timeline.entry ~at:2 s3 ]
  in
  Alcotest.(check bool) "fail and repair ticks" true
    (faults
    = [ (2, [ Serve.Fail 1; Serve.Fail 2; Serve.Fail 3 ]);
        (5, [ Serve.Repair 1; Serve.Repair 2 ]) ]);
  (* Same-tick repair-then-refail is expressible: repairs come first. *)
  let refail =
    Serve.faults_of_timeline
      [ Timeline.entry ~at:1 ~repair_at:3 s3; Timeline.entry ~at:3 s3 ]
  in
  Alcotest.(check bool) "repairs precede failures" true
    (refail = [ (1, [ Serve.Fail 3 ]); (3, [ Serve.Repair 3; Serve.Fail 3 ]) ]);
  let degradation = Scenario.degrade g ~factor:0.5 [ 1 ] in
  match Serve.faults_of_timeline [ Timeline.entry ~at:1 degradation ] with
  | (_ : (int * Serve.fault list) list) ->
      Alcotest.fail "degradation accepted"
  | exception Invalid_argument _ -> ()

let test_fault_replay_jobs_invariant () =
  let faults = [ (2, [ Serve.Fail 4; Serve.Fail 9 ]); (6, [ Serve.Repair 4 ]) ] in
  let fingerprint jobs =
    let before = Pool.default_jobs () in
    Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
    Pool.set_default_jobs jobs;
    let srv = make_service () in
    let reports = Serve.replay ~faults srv churn_events in
    match Serve.routing srv with
    | Some r ->
        (reports, Codec.hex_of_key (Codec.fnv1a64 (Codec.encode_routing r)))
    | None -> Alcotest.fail "expected a routing"
  in
  let r1, d1 = fingerprint 1 in
  let r4, d4 = fingerprint 4 in
  Alcotest.(check string) "faulted digest" d1 d4;
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "tick %d faulted report" a.Serve.tick)
        true (report_equal a b))
    r1 r4

(* ---- overload shedding and degraded mode ---- *)

let test_overload_sheds_and_degrades () =
  let config =
    { Serve.default_config with event_budget = 2; max_staleness = 1 }
  in
  let srv = make_service ~config () in
  let arrive tick s d = ev tick s d (Update.Arrive 1.0) in
  (* 4 arrivals against a budget of 2: half applied, half deferred.  No
     routing exists yet, so the tick cannot degrade — it solves cold on
     what it admitted. *)
  let r0 =
    Serve.step srv ~tick:0
      [ arrive 0 0 1; arrive 0 1 2; arrive 0 2 3; arrive 0 3 4 ]
  in
  Alcotest.(check int) "applied up to budget" 2 r0.Serve.events;
  Alcotest.(check int) "rest deferred" 2 r0.Serve.deferred;
  Alcotest.(check bool) "cold, not degraded" true (r0.Serve.mode = Serve.Cold);
  Alcotest.(check int) "two pairs live" 2 r0.Serve.active_pairs;
  (* Still over budget and a routing exists: serve it stale. *)
  let r1 = Serve.step srv ~tick:1 [ arrive 1 4 5; arrive 1 5 6; arrive 1 6 7 ] in
  Alcotest.(check bool) "degraded" true (r1.Serve.mode = Serve.Degraded);
  Alcotest.(check int) "backlog applied first" 2 r1.Serve.events;
  Alcotest.(check int) "still shedding" 3 r1.Serve.deferred;
  Alcotest.(check int) "staleness counts degraded ticks" 1 r1.Serve.staleness;
  (* The degraded routing still covers everything that is active. *)
  (match Serve.routing srv with
  | Some r -> Alcotest.(check bool) "covers the active demand" true
      (Routing.covers r (Serve.demand srv))
  | None -> Alcotest.fail "expected a routing");
  (* max_staleness = 1: the next over-budget tick must re-solve. *)
  let r2 = Serve.step srv ~tick:2 [] in
  Alcotest.(check bool) "forced re-solve" true (r2.Serve.mode = Serve.Warm);
  Alcotest.(check int) "one left over" 1 r2.Serve.deferred;
  let r3 = Serve.step srv ~tick:3 [] in
  Alcotest.(check int) "drained" 0 r3.Serve.deferred;
  Alcotest.(check int) "all pairs eventually admitted" 7
    r3.Serve.active_pairs;
  Alcotest.(check bool) "queue empty" true (Serve.pending srv = [])

let test_budgeted_replay_converges () =
  (* A budgeted replay drains its backlog on trailing ticks, so it ends
     on exactly the demand an unbudgeted replay reaches. *)
  let budgeted =
    make_service ~config:{ Serve.default_config with event_budget = 3 } ()
  in
  let reports = Serve.replay budgeted churn_events in
  let plain = make_service () in
  let plain_reports = Serve.replay plain churn_events in
  Alcotest.(check bool) "same final demand" true
    (Demand.equal (Serve.demand budgeted) (Serve.demand plain));
  Alcotest.(check bool) "backlog drained" true (Serve.pending budgeted = []);
  Alcotest.(check bool) "drain ticks appended" true
    (List.length reports >= List.length plain_reports);
  let applied rs = List.fold_left (fun a r -> a + r.Serve.events) 0 rs in
  Alcotest.(check int) "every event applied exactly once" (applied plain_reports)
    (applied reports)

(* ---- checkpoint / restore ---- *)

let make_parts () =
  let g = Gen.grid 4 4 in
  let obl = Ksp.routing ~k:4 g in
  (g, Sampler.alpha_sample (Rng.create 5) obl ~alpha:3)

let split_events cut events =
  ( List.filter (fun (e : Update.t) -> e.Update.tick <= cut) events,
    List.filter (fun (e : Update.t) -> e.Update.tick > cut) events )

let digest_of srv =
  match Serve.routing srv with
  | Some r -> Codec.hex_of_key (Codec.fnv1a64 (Codec.encode_routing r))
  | None -> Alcotest.fail "expected a routing"

let check_kill_and_resume ~faults ~cut jobs =
  let before = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
  Pool.set_default_jobs jobs;
  let full = make_service () in
  ignore (Serve.replay ~faults full churn_events);
  let reference = digest_of full in
  (* Run the prefix, checkpoint through the binary codec, restore into a
     freshly sampled system, finish the suffix. *)
  let prefix, suffix = split_events cut churn_events in
  let pre_faults = List.filter (fun (t, _) -> t <= cut) faults in
  let post_faults = List.filter (fun (t, _) -> t > cut) faults in
  let interrupted = make_service () in
  ignore (Serve.replay ~faults:pre_faults interrupted prefix);
  let stream_digest = Checkpoint.events_digest churn_events in
  let g, system = make_parts () in
  let blob =
    Checkpoint.encode ~stream_digest ~graph:g ~config:Serve.default_config
      (Serve.snapshot interrupted)
  in
  let digest', repr, state = Checkpoint.decode ~graph:g blob in
  Alcotest.(check bool) "stream digest round-trips" true
    (Int64.equal digest' stream_digest);
  Alcotest.(check string) "config round-trips"
    (Checkpoint.config_repr Serve.default_config)
    repr;
  let resumed = Serve.restore g system state in
  ignore (Serve.replay ~faults:post_faults resumed suffix);
  Alcotest.(check string)
    (Printf.sprintf "resume at tick %d == uninterrupted (jobs %d)" cut jobs)
    reference (digest_of resumed)

let test_kill_and_resume_j1 () =
  List.iter (fun cut -> check_kill_and_resume ~faults:[] ~cut 1) [ 2; 5 ]

let test_kill_and_resume_j4 () =
  List.iter (fun cut -> check_kill_and_resume ~faults:[] ~cut 4) [ 2; 5 ]

let test_kill_and_resume_with_faults () =
  (* The fault window straddles the cut: the failed set must survive the
     checkpoint for the repair to be legal after restore. *)
  let faults =
    [ (1, [ Serve.Fail 4; Serve.Fail 9 ]); (6, [ Serve.Repair 4 ]) ]
  in
  List.iter (fun jobs -> check_kill_and_resume ~faults ~cut:3 jobs) [ 1; 4 ]

let test_checkpoint_contract () =
  let srv = make_service () in
  ignore
    (Serve.step srv ~tick:0
       [ ev 0 0 1 (Update.Arrive 1.0); ev 0 2 3 (Update.Arrive 1.5) ]);
  let g, _ = make_parts () in
  let blob =
    Checkpoint.encode ~stream_digest:7L ~graph:g ~config:Serve.default_config
      (Serve.snapshot srv)
  in
  let corrupt name blob =
    Alcotest.(check bool) name true
      (try
         ignore (Checkpoint.decode ~graph:g blob);
         false
       with Codec.Corrupt _ -> true)
  in
  (* Any single flipped bit anywhere must be caught by the checksum. *)
  List.iter
    (fun i ->
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      corrupt (Printf.sprintf "bit flip at byte %d" i) (Bytes.to_string b))
    [ 0; 1; 2; String.length blob / 2; String.length blob - 1 ];
  corrupt "truncated" (String.sub blob 0 (String.length blob - 3));
  corrupt "empty" "";
  (* A checkpoint against a differently seeded sampler must be refused
     by restore, not silently resumed. *)
  let _, _, state = Checkpoint.decode ~graph:g blob in
  let other =
    Sampler.alpha_sample (Rng.create 6) (Ksp.routing ~k:4 g) ~alpha:3
  in
  match Serve.restore g other state with
  | (_ : Serve.t) -> Alcotest.fail "mismatched sampler accepted"
  | exception Codec.Corrupt _ -> ()

let test_checkpoint_files () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sso_ckpt_test.%d" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
  @@ fun () ->
  Alcotest.(check bool) "no dir, no latest" true (Checkpoint.latest ~dir = None);
  let srv = make_service () in
  let g, _ = make_parts () in
  ignore (Serve.step srv ~tick:0 [ ev 0 0 1 (Update.Arrive 1.0) ]);
  let p0 =
    Checkpoint.write ~dir ~stream_digest:1L ~graph:g
      ~config:Serve.default_config (Serve.snapshot srv)
  in
  ignore (Serve.step srv ~tick:7 [ ev 7 2 3 (Update.Arrive 1.0) ]);
  let p7 =
    Checkpoint.write ~dir ~stream_digest:1L ~graph:g
      ~config:Serve.default_config (Serve.snapshot srv)
  in
  Alcotest.(check bool) "both files exist" true
    (Sys.file_exists p0 && Sys.file_exists p7);
  (match Checkpoint.latest ~dir with
  | Some (tick, path) ->
      Alcotest.(check int) "latest tick" 7 tick;
      Alcotest.(check string) "latest path" p7 path
  | None -> Alcotest.fail "expected a latest checkpoint");
  let _, _, state = Checkpoint.load ~graph:g p7 in
  Alcotest.(check int) "tick restored" 7 state.Serve.s_tick;
  Alcotest.(check bool) "no stale temporaries" true
    (Array.for_all
       (fun f -> not (String.length f >= 4 && String.sub f 0 4 = "ckpt")
                 || Filename.check_suffix f ".bin")
       (Sys.readdir dir));
  match Checkpoint.load ~graph:g (Filename.concat dir "missing.bin") with
  | (_ : int64 * string * Serve.state) -> Alcotest.fail "missing file loaded"
  | exception Checkpoint.Unreadable _ -> ()

(* ---- metrics snapshot hygiene ---- *)

let test_write_metrics_cleanup () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sso_metrics_test.%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () ->
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then Unix.rmdir p else Sys.remove p)
        (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let target = Filename.concat dir "metrics.prom" in
  Serve.write_metrics ~path:target;
  Alcotest.(check bool) "snapshot written" true (Sys.file_exists target);
  Alcotest.(check int) "no temporaries on success" 1
    (Array.length (Sys.readdir dir));
  (* Make the rename fail (target is a directory): the temporary must
     not be left behind. *)
  Sys.remove target;
  Unix.mkdir target 0o700;
  (match Serve.write_metrics ~path:target with
  | () -> Alcotest.fail "rename onto a directory succeeded"
  | exception Sys_error _ -> ());
  Alcotest.(check int) "no stale .tmp after failure" 1
    (Array.length (Sys.readdir dir))

(* ---- parser fuzzing: byte mutations never escape the contract ---- *)

let mutate content kind pos extra =
  let len = String.length content in
  if len = 0 then content
  else
    match kind mod 3 with
    | 0 -> String.sub content 0 (pos mod (len + 1))
    | 1 ->
        let b = Bytes.of_string content in
        let i = pos mod len in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (extra mod 8))));
        Bytes.to_string b
    | _ ->
        let i = pos mod len in
        let j = extra mod len in
        let chunk = String.sub content i (min 8 (len - i)) in
        String.sub content 0 j ^ chunk
        ^ String.sub content j (len - j)

let fuzz_stream_content =
  lazy
    (let events =
       Workload.generate ~rate_churn:0.3 (Rng.create 97) ~n:12 ~ticks:5
         ~pairs:6 ~churn:0.4
     in
     with_temp_file (fun path ->
         Update.save path events;
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic))))

let prop_stream_mutations_never_escape =
  QCheck.Test.make
    ~name:"mutated streams parse, or fail as Unreadable/Corrupt"
    ~count:600
    QCheck.(triple small_nat small_nat small_nat)
    (fun (kind, pos, extra) ->
      let mutated = mutate (Lazy.force fuzz_stream_content) kind pos extra in
      with_temp_file (fun path ->
          let oc = open_out_bin path in
          output_string oc mutated;
          close_out oc;
          match Update.load path with
          | (_ : Update.t list) -> true
          | exception Update.Unreadable _ -> true
          | exception Update.Corrupt _ -> true
          | exception _ -> false))

let fuzz_checkpoint_blob =
  lazy
    (let srv = make_service () in
     ignore
       (Serve.replay srv
          (Workload.generate (Rng.create 53) ~n:16 ~ticks:3 ~pairs:5
             ~churn:0.3));
     let g, _ = make_parts () in
     ( g,
       Checkpoint.encode ~stream_digest:42L ~graph:g
         ~config:Serve.default_config (Serve.snapshot srv) ))

let prop_checkpoint_mutations_never_escape =
  QCheck.Test.make
    ~name:"mutated checkpoints decode, or fail as Corrupt"
    ~count:500
    QCheck.(triple small_nat small_nat small_nat)
    (fun (kind, pos, extra) ->
      let g, blob = Lazy.force fuzz_checkpoint_blob in
      match Checkpoint.decode ~graph:g (mutate blob kind pos extra) with
      | (_ : int64 * string * Serve.state) -> true
      | exception Codec.Corrupt _ -> true
      | exception _ -> false)

let test_create_rejects_bad_config () =
  let reject name config =
    Alcotest.(check bool) name true
      (try
         ignore (make_service ~config ());
         false
       with Invalid_argument _ -> true)
  in
  reject "warm_iters" { Serve.default_config with warm_iters = 0 };
  reject "warm_weight" { Serve.default_config with warm_weight = 0 };
  reject "refresh_every" { Serve.default_config with refresh_every = -1 };
  reject "event_budget" { Serve.default_config with event_budget = -1 };
  reject "max_staleness" { Serve.default_config with max_staleness = -1 }

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_update_roundtrip;
          Alcotest.test_case "load contract" `Quick test_load_contract;
          Alcotest.test_case "save rejects" `Quick
            test_save_rejects_invalid_streams;
        ] );
      ( "apply",
        [
          Alcotest.test_case "semantics" `Quick test_apply;
          Alcotest.test_case "by_tick" `Quick test_by_tick;
        ] );
      ( "service",
        [
          Alcotest.test_case "admit and retire" `Quick
            test_step_admits_and_retires;
          Alcotest.test_case "bad batches" `Quick test_step_rejects_bad_batches;
          Alcotest.test_case "empty demand" `Quick test_step_to_empty_demand;
          Alcotest.test_case "refresh and staleness" `Quick
            test_refresh_and_staleness;
          Alcotest.test_case "bad config" `Quick test_create_rejects_bad_config;
          Alcotest.test_case "check_slo" `Quick test_check_slo;
          Alcotest.test_case "check_overload" `Quick test_check_overload;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail and repair" `Quick test_step_faults;
          Alcotest.test_case "unroutable pair" `Quick
            test_unroutable_pair_sheds_and_recovers;
          Alcotest.test_case "timeline bridge" `Quick test_faults_of_timeline;
          Alcotest.test_case "jobs-invariant faulted replay" `Quick
            test_fault_replay_jobs_invariant;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "budget sheds, staleness caps" `Quick
            test_overload_sheds_and_degrades;
          Alcotest.test_case "budgeted replay converges" `Quick
            test_budgeted_replay_converges;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill and resume (jobs 1)" `Quick
            test_kill_and_resume_j1;
          Alcotest.test_case "kill and resume (jobs 4)" `Quick
            test_kill_and_resume_j4;
          Alcotest.test_case "kill and resume across faults" `Quick
            test_kill_and_resume_with_faults;
          Alcotest.test_case "corruption contract" `Quick
            test_checkpoint_contract;
          Alcotest.test_case "files and latest" `Quick test_checkpoint_files;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "atomic snapshot hygiene" `Quick
            test_write_metrics_cleanup;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "warm tracks cold (jobs 1)" `Quick
            test_warm_tracks_cold_j1;
          Alcotest.test_case "warm tracks cold (jobs 4)" `Quick
            test_warm_tracks_cold_j4;
          Alcotest.test_case "jobs-invariant replay" `Quick
            test_replay_jobs_invariant;
        ] );
      ( "simulation",
        [ Alcotest.test_case "timed load" `Quick test_simulate ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stream_roundtrip;
            prop_stream_mutations_never_escape;
            prop_checkpoint_mutations_never_escape;
          ] );
    ]
