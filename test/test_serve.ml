(* Tests for the routing service: the update-stream codec, batch
   application, incremental re-optimization under churn, and the
   jobs-invariance of replayed streams. *)

module Rng = Sso_prng.Rng
module Gen = Sso_graph.Gen
module Demand = Sso_demand.Demand
module Update = Sso_demand.Update
module Workload = Sso_demand.Workload
module Routing = Sso_flow.Routing
module Ksp = Sso_oblivious.Ksp
module Sampler = Sso_core.Sampler
module Serve = Sso_serve.Serve
module Simulator = Sso_sim.Simulator
module Pool = Sso_engine.Pool
module Codec = Sso_artifact.Codec

let ev tick src dst kind = { Update.tick; src; dst; kind }

let with_temp_file f =
  let path = Filename.temp_file "sso_serve_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---- update-stream codec ---- *)

let test_update_roundtrip () =
  let events =
    [
      ev 0 0 1 (Update.Arrive 1.0);
      ev 0 2 3 (Update.Arrive 2.5);
      ev 1 0 1 (Update.Set_rate 0.75);
      ev 3 2 3 Update.Depart;
    ]
  in
  with_temp_file (fun path ->
      Update.save path events;
      let events' = Update.load path in
      Alcotest.(check bool) "roundtrip" true
        (List.equal Update.equal events events'))

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"generated streams round-trip through the codec"
    ~count:25 QCheck.small_int (fun seed ->
      let events =
        Workload.generate ~rate_churn:0.5 (Rng.create seed) ~n:10 ~ticks:6
          ~pairs:5 ~churn:0.4
      in
      with_temp_file (fun path ->
          Update.save path events;
          List.equal Update.equal events (Update.load path)))

let expect_corrupt name content =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Alcotest.(check bool) name true
        (try
           ignore (Update.load path);
           false
         with Update.Corrupt _ -> true))

let test_load_contract () =
  Alcotest.(check bool) "missing file is unreadable" true
    (try
       ignore (Update.load "/nonexistent/sso-stream.jsonl");
       false
     with Update.Unreadable _ -> true);
  expect_corrupt "garbage" "not an update stream\n";
  expect_corrupt "empty" "";
  expect_corrupt "wrong schema"
    "{\"schema\":\"sso-trace\",\"version\":1,\"events\":0}\n";
  expect_corrupt "wrong version"
    "{\"schema\":\"sso-serve-stream\",\"version\":99,\"events\":0}\n";
  expect_corrupt "truncated"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":2}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":1}\n";
  expect_corrupt "tick regression"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":2}\n\
     {\"tick\":2,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":1}\n\
     {\"tick\":1,\"src\":1,\"dst\":2,\"op\":\"arrive\",\"rate\":1}\n";
  expect_corrupt "unknown op"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":1}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"burst\",\"rate\":1}\n";
  expect_corrupt "non-positive rate"
    "{\"schema\":\"sso-serve-stream\",\"version\":1,\"events\":1}\n\
     {\"tick\":0,\"src\":0,\"dst\":1,\"op\":\"arrive\",\"rate\":0}\n"

let test_save_rejects_invalid_streams () =
  let expect_invalid name events =
    Alcotest.(check bool) name true
      (try
         with_temp_file (fun path -> Update.save path events);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "diagonal pair" [ ev 0 3 3 (Update.Arrive 1.0) ];
  expect_invalid "negative rate" [ ev 0 0 1 (Update.Arrive (-1.0)) ];
  expect_invalid "tick regression"
    [ ev 2 0 1 (Update.Arrive 1.0); ev 1 1 2 (Update.Arrive 1.0) ]

(* ---- batch application ---- *)

let test_apply () =
  let d =
    Update.apply Demand.empty
      [
        ev 0 0 1 (Update.Arrive 1.0);
        ev 0 0 1 (Update.Arrive 2.0);
        ev 0 2 3 (Update.Arrive 1.0);
      ]
  in
  Alcotest.(check (float 1e-9)) "arrivals sum" 3.0 (Demand.get d 0 1);
  let d = Update.apply d [ ev 1 0 1 (Update.Set_rate 0.25) ] in
  Alcotest.(check (float 1e-9)) "set replaces" 0.25 (Demand.get d 0 1);
  let d = Update.apply d [ ev 2 0 1 Update.Depart ] in
  Alcotest.(check (float 1e-9)) "depart removes" 0.0 (Demand.get d 0 1);
  Alcotest.(check int) "one pair left" 1 (Demand.support_size d);
  let corrupts name events =
    Alcotest.(check bool) name true
      (try
         ignore (Update.apply d events);
         false
       with Update.Corrupt _ -> true)
  in
  corrupts "inactive depart" [ ev 3 0 1 Update.Depart ];
  corrupts "inactive set" [ ev 3 0 1 (Update.Set_rate 1.0) ]

let test_by_tick () =
  let events =
    [
      ev 0 0 1 (Update.Arrive 1.0);
      ev 0 1 2 (Update.Arrive 1.0);
      ev 2 0 1 Update.Depart;
      ev 5 3 4 (Update.Arrive 1.0);
    ]
  in
  let groups = Update.by_tick events in
  Alcotest.(check (list int)) "tick keys" [ 0; 2; 5 ]
    (List.map fst groups);
  Alcotest.(check (list int)) "batch sizes" [ 2; 1; 1 ]
    (List.map (fun (_, b) -> List.length b) groups)

(* ---- service stepping ---- *)

let make_service ?config () =
  let g = Gen.grid 4 4 in
  let obl = Ksp.routing ~k:4 g in
  let ps = Sampler.alpha_sample (Rng.create 5) obl ~alpha:3 in
  Serve.create ?config g ps

let test_step_admits_and_retires () =
  let srv = make_service () in
  Alcotest.(check bool) "no routing yet" true (Serve.routing srv = None);
  let r0 =
    Serve.step srv ~tick:0
      [ ev 0 0 1 (Update.Arrive 1.0); ev 0 2 3 (Update.Arrive 1.0) ]
  in
  Alcotest.(check bool) "first solve is cold" true (r0.Serve.mode = Serve.Cold);
  Alcotest.(check int) "two admitted" 2 r0.Serve.admitted;
  Alcotest.(check int) "two active" 2 r0.Serve.active_pairs;
  Alcotest.(check int) "cold staleness" 0 r0.Serve.staleness;
  let r1 =
    Serve.step srv ~tick:1
      [ ev 1 2 3 Update.Depart; ev 1 4 5 (Update.Arrive 1.0) ]
  in
  Alcotest.(check bool) "churn tick is warm" true (r1.Serve.mode = Serve.Warm);
  Alcotest.(check int) "one admitted" 1 r1.Serve.admitted;
  Alcotest.(check int) "one retired" 1 r1.Serve.retired;
  Alcotest.(check int) "warm staleness" 1 r1.Serve.staleness;
  (* A returning pair was already materialized: admission is free. *)
  let r2 = Serve.step srv ~tick:2 [ ev 2 2 3 (Update.Arrive 1.0) ] in
  Alcotest.(check int) "re-admission is free" 0 r2.Serve.admitted;
  Alcotest.(check int) "three active" 3 r2.Serve.active_pairs;
  Alcotest.(check bool) "congestion positive" true (r2.Serve.congestion > 0.0)

let test_step_rejects_bad_batches () =
  let srv = make_service () in
  ignore (Serve.step srv ~tick:3 [ ev 3 0 1 (Update.Arrive 1.0) ]);
  let corrupts name tick events =
    Alcotest.(check bool) name true
      (try
         ignore (Serve.step srv ~tick events);
         false
       with Update.Corrupt _ -> true)
  in
  corrupts "non-increasing tick" 3 [ ev 3 1 2 (Update.Arrive 1.0) ];
  corrupts "mislabelled event" 5 [ ev 4 1 2 (Update.Arrive 1.0) ];
  corrupts "endpoint out of range" 6 [ ev 6 1 99 (Update.Arrive 1.0) ]

let test_step_to_empty_demand () =
  let srv = make_service () in
  ignore (Serve.step srv ~tick:0 [ ev 0 0 1 (Update.Arrive 1.0) ]);
  let r = Serve.step srv ~tick:1 [ ev 1 0 1 Update.Depart ] in
  Alcotest.(check int) "no active pairs" 0 r.Serve.active_pairs;
  Alcotest.(check (float 1e-9)) "no congestion" 0.0 r.Serve.congestion

let test_refresh_and_staleness () =
  let events =
    Workload.generate (Rng.create 41) ~n:16 ~ticks:7 ~pairs:6 ~churn:1.0
  in
  let srv =
    make_service ~config:{ Serve.default_config with refresh_every = 3 } ()
  in
  let reports = Serve.replay srv events in
  Alcotest.(check (list string)) "cold every third solve"
    [ "cold"; "warm"; "warm"; "cold"; "warm"; "warm"; "cold" ]
    (List.map
       (fun r ->
         match r.Serve.mode with Serve.Cold -> "cold" | Serve.Warm -> "warm")
       reports);
  Alcotest.(check (list int)) "staleness resets on refresh"
    [ 0; 1; 2; 0; 1; 2; 0 ]
    (List.map (fun r -> r.Serve.staleness) reports);
  let srv = make_service () in
  let reports = Serve.replay srv events in
  Alcotest.(check (list int)) "never refreshes by default"
    [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.map (fun r -> r.Serve.staleness) reports)

(* ---- warm-vs-cold equivalence (at 1 and 4 workers) ---- *)

let churn_events = Workload.generate (Rng.create 31) ~n:16 ~ticks:8 ~pairs:10 ~churn:0.3

let check_warm_tracks_cold jobs =
  let before = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
  Pool.set_default_jobs jobs;
  let warm_srv =
    make_service ~config:{ Serve.default_config with warm_iters = 60; warm_weight = 20 } ()
  in
  let warm = Serve.replay warm_srv churn_events in
  let cold_srv =
    make_service ~config:{ Serve.default_config with refresh_every = 1 } ()
  in
  let cold = Serve.replay cold_srv churn_events in
  List.iter2
    (fun (w : Serve.report) (c : Serve.report) ->
      Alcotest.(check bool)
        (Printf.sprintf
           "tick %d: warm %.4f within tolerance of cold %.4f (jobs %d)"
           w.Serve.tick w.Serve.congestion c.Serve.congestion jobs)
        true
        (w.Serve.congestion <= 1.10 *. c.Serve.congestion +. 1e-9))
    warm cold

let test_warm_tracks_cold_j1 () = check_warm_tracks_cold 1
let test_warm_tracks_cold_j4 () = check_warm_tracks_cold 4

(* ---- jobs-invariance of a replayed stream ---- *)

let replay_fingerprint jobs =
  let before = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
  Pool.set_default_jobs jobs;
  let srv = make_service () in
  let reports = Serve.replay srv churn_events in
  let digest =
    match Serve.routing srv with
    | Some r -> Codec.hex_of_key (Codec.fnv1a64 (Codec.encode_routing r))
    | None -> Alcotest.fail "expected a routing after replay"
  in
  (reports, digest)

let report_equal (a : Serve.report) (b : Serve.report) =
  (* Everything but the wall-clock [solve_ns] field. *)
  a.Serve.tick = b.Serve.tick
  && a.Serve.events = b.Serve.events
  && a.Serve.arrivals = b.Serve.arrivals
  && a.Serve.departures = b.Serve.departures
  && a.Serve.rate_changes = b.Serve.rate_changes
  && a.Serve.active_pairs = b.Serve.active_pairs
  && a.Serve.admitted = b.Serve.admitted
  && a.Serve.retired = b.Serve.retired
  && Float.equal a.Serve.congestion b.Serve.congestion
  && a.Serve.mode = b.Serve.mode
  && a.Serve.staleness = b.Serve.staleness

let test_replay_jobs_invariant () =
  let r1, d1 = replay_fingerprint 1 in
  let r4, d4 = replay_fingerprint 4 in
  Alcotest.(check string) "routing digest" d1 d4;
  Alcotest.(check int) "report count" (List.length r1) (List.length r4);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "tick %d report" a.Serve.tick)
        true (report_equal a b))
    r1 r4

(* ---- simulation ---- *)

let test_simulate () =
  let srv = make_service () in
  let outcome, reports =
    Serve.simulate (Rng.create 3) ~period:4 srv churn_events
  in
  Alcotest.(check int) "one report per tick" 8 (List.length reports);
  (match outcome with
  | Simulator.Completed _ -> ()
  | Simulator.Out_of_budget _ -> Alcotest.fail "simulation ran out of budget");
  let stats = Simulator.value outcome in
  Alcotest.(check bool) "packets injected" true (stats.Simulator.packets > 0);
  Alcotest.(check int) "all delivered" stats.Simulator.packets
    stats.Simulator.delivered

(* ---- SLO ---- *)

let test_check_slo () =
  let report solve_ns =
    { Serve.tick = 0; events = 0; arrivals = 0; departures = 0;
      rate_changes = 0; active_pairs = 0; admitted = 0; retired = 0;
      congestion = 0.0; mode = Serve.Cold; staleness = 0; solve_ns }
  in
  (* 1..10 ms of solve time; nearest-rank p99 of 10 samples is the max. *)
  let reports = List.init 10 (fun i -> report ((i + 1) * 1_000_000)) in
  let burned = Serve.check_slo ~budget_ms:5.0 reports in
  Alcotest.(check (float 1e-9)) "p99 is the max sample" 10.0
    burned.Serve.p99_ms;
  Alcotest.(check bool) "burned" true burned.Serve.burned;
  Alcotest.(check int) "ticks over budget" 5 burned.Serve.burns;
  let ok = Serve.check_slo ~budget_ms:15.0 reports in
  Alcotest.(check bool) "within budget" false ok.Serve.burned;
  Alcotest.(check int) "no burns" 0 ok.Serve.burns;
  let empty = Serve.check_slo ~budget_ms:1.0 [] in
  Alcotest.(check bool) "empty replay never burns" false empty.Serve.burned;
  Alcotest.(check (float 0.0)) "empty replay p99" 0.0 empty.Serve.p99_ms;
  match Serve.check_slo ~budget_ms:0.0 reports with
  | (_ : Serve.slo) -> Alcotest.fail "zero budget accepted"
  | exception Invalid_argument _ -> ()

let test_create_rejects_bad_config () =
  let reject name config =
    Alcotest.(check bool) name true
      (try
         ignore (make_service ~config ());
         false
       with Invalid_argument _ -> true)
  in
  reject "warm_iters" { Serve.default_config with warm_iters = 0 };
  reject "warm_weight" { Serve.default_config with warm_weight = 0 };
  reject "refresh_every" { Serve.default_config with refresh_every = -1 }

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_update_roundtrip;
          Alcotest.test_case "load contract" `Quick test_load_contract;
          Alcotest.test_case "save rejects" `Quick
            test_save_rejects_invalid_streams;
        ] );
      ( "apply",
        [
          Alcotest.test_case "semantics" `Quick test_apply;
          Alcotest.test_case "by_tick" `Quick test_by_tick;
        ] );
      ( "service",
        [
          Alcotest.test_case "admit and retire" `Quick
            test_step_admits_and_retires;
          Alcotest.test_case "bad batches" `Quick test_step_rejects_bad_batches;
          Alcotest.test_case "empty demand" `Quick test_step_to_empty_demand;
          Alcotest.test_case "refresh and staleness" `Quick
            test_refresh_and_staleness;
          Alcotest.test_case "bad config" `Quick test_create_rejects_bad_config;
          Alcotest.test_case "check_slo" `Quick test_check_slo;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "warm tracks cold (jobs 1)" `Quick
            test_warm_tracks_cold_j1;
          Alcotest.test_case "warm tracks cold (jobs 4)" `Quick
            test_warm_tracks_cold_j4;
          Alcotest.test_case "jobs-invariant replay" `Quick
            test_replay_jobs_invariant;
        ] );
      ( "simulation",
        [ Alcotest.test_case "timed load" `Quick test_simulate ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_stream_roundtrip ] );
    ]
