(* Tests for Sso_engine: pool determinism across job counts, exception
   propagation, nested calls, and the metrics registry. *)

module Pool = Sso_engine.Pool
module Metrics = Sso_engine.Metrics
module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Gen = Sso_graph.Gen
module Demand = Sso_demand.Demand
module Ksp = Sso_oblivious.Ksp
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Lower_bound = Sso_core.Lower_bound
module Robustness = Sso_core.Robustness

let with_pool jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---- basic pool semantics ---- *)

let test_map_matches_serial () =
  with_pool 4 @@ fun p ->
  let input = Array.init 100 (fun i -> i - 50) in
  let f x = (x * x) - (3 * x) in
  Alcotest.(check (array int))
    "jobs:4 equals Array.map" (Array.map f input)
    (Pool.parallel_map ~pool:p f input)

let test_init_matches_serial () =
  with_pool 4 @@ fun p ->
  let f i = Printf.sprintf "task-%d" (i * 7) in
  Alcotest.(check (array string))
    "jobs:4 equals Array.init" (Array.init 33 f)
    (Pool.parallel_init ~pool:p 33 f)

let test_jobs1_serial () =
  with_pool 1 @@ fun p ->
  Alcotest.(check int) "jobs" 1 (Pool.jobs p);
  Alcotest.(check (array int)) "still correct" [| 0; 2; 4 |]
    (Pool.parallel_init ~pool:p 3 (fun i -> 2 * i))

let test_empty_inputs () =
  with_pool 4 @@ fun p ->
  Alcotest.(check (array int)) "empty map" [||]
    (Pool.parallel_map ~pool:p (fun x -> x) [||]);
  Alcotest.(check (array int)) "zero init" [||]
    (Pool.parallel_init ~pool:p 0 (fun _ -> assert false));
  Alcotest.(check (list int)) "empty list" []
    (Pool.parallel_list_map ~pool:p (fun x -> x) [])

let test_list_map_order () =
  with_pool 4 @@ fun p ->
  let l = List.init 50 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x + 1) l)
    (Pool.parallel_list_map ~pool:p (fun x -> x + 1) l)

let test_exception_lowest_index () =
  with_pool 4 @@ fun p ->
  Alcotest.check_raises "lowest failing index wins" (Failure "task 3")
    (fun () ->
      ignore
        (Pool.parallel_init ~pool:p 64 (fun i ->
             if i mod 7 = 3 then failwith (Printf.sprintf "task %d" i) else i)))

let test_shutdown_fallback () =
  let p = Pool.create ~jobs:4 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* shut-down pools degrade to serial execution *)
  Alcotest.(check (array int)) "serial fallback" [| 0; 1; 4; 9 |]
    (Pool.parallel_init ~pool:p 4 (fun i -> i * i))

let test_nested_calls_serialize () =
  with_pool 4 @@ fun p ->
  let results =
    Pool.parallel_init ~pool:p 8 (fun i ->
        let inside = Pool.inside_task () in
        let inner = Pool.parallel_init ~pool:p 10 (fun j -> (i * 10) + j) in
        (inside, Array.fold_left ( + ) 0 inner))
  in
  Array.iteri
    (fun i (inside, sum) ->
      Alcotest.(check bool) "ran inside a task" true inside;
      Alcotest.(check int) "nested sum" ((i * 100) + 45) sum)
    results;
  Alcotest.(check bool) "flag cleared outside" false (Pool.inside_task ())

let test_default_jobs_plumbing () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  Alcotest.(check int) "set_default_jobs" 3 (Pool.default_jobs ());
  Alcotest.(check int) "default pool adopts it" 3 (Pool.jobs (Pool.default ()));
  Pool.set_default_jobs before;
  Alcotest.check_raises "invalid jobs"
    (Invalid_argument "Engine.Pool.set_default_jobs: jobs must be >= 1")
    (fun () -> Pool.set_default_jobs 0)

(* ---- job-count invariance on randomized workloads ---- *)

let prop_job_count_invariant =
  QCheck.Test.make ~name:"parallel_map is job-count invariant" ~count:30
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let input = Array.of_list xs in
      let f x =
        let rng = Rng.create (x + seed) in
        let acc = ref 0L in
        for _ = 1 to 50 do
          acc := Int64.add !acc (Rng.int64 rng)
        done;
        !acc
      in
      let serial = with_pool 1 (fun p -> Pool.parallel_map ~pool:p f input) in
      let parallel = with_pool 4 (fun p -> Pool.parallel_map ~pool:p f input) in
      serial = parallel)

(* ---- end-to-end determinism: the E3 adversary table ---- *)

let e3_table pool =
  let k = 3 in
  let c = Gen.c_graph 6 k in
  let rows =
    Pool.parallel_map ~pool
      (fun alpha ->
        let rng = Rng.create (300 + alpha) in
        let base = Ksp.routing ~k:(2 * k) c.Gen.c_graph in
        let system = Sampler.alpha_sample rng base ~alpha in
        let attack = Lower_bound.attack c system in
        let measured =
          Semi_oblivious.congestion ~solver:Semi_oblivious.Lp c.Gen.c_graph
            system attack.Lower_bound.demand
        in
        Printf.sprintf "%5d | %8d %.17g %.17g\n" alpha
          (List.length attack.Lower_bound.bottleneck)
          attack.Lower_bound.predicted_congestion measured)
      [| 1; 2; 3 |]
  in
  String.concat "" (Array.to_list rows)

let test_e3_table_determinism () =
  let serial = with_pool 1 e3_table in
  let parallel = with_pool 4 e3_table in
  Alcotest.(check string) "byte-identical adversary table" serial parallel

(* ---- end-to-end determinism: the E14 failure sweep ---- *)

let test_robustness_sweep_determinism () =
  let g = Gen.grid 3 3 in
  let make_inputs () =
    let rng = Rng.create 43 in
    let d = Demand.random_pairs (Rng.split rng) ~n:(Graph.n g) ~pairs:4 in
    let base = Ksp.routing ~k:4 g in
    let system = Sampler.alpha_sample (Rng.split rng) base ~alpha:2 in
    (d, system)
  in
  let run jobs =
    let d, system = make_inputs () in
    with_pool jobs (fun p ->
        Robustness.single_failures ~pool:p ~solver:(Semi_oblivious.Mwu 40) g
          system d)
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check int) "one report per edge" (Graph.m g) (List.length serial);
  Alcotest.(check bool) "bit-identical failure reports" true (serial = parallel)

(* ---- metrics ---- *)

let test_counter_registry () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "accumulated" 42 (Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create returns the same counter" true
    (Metrics.counter "test.counter" == c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_counter_concurrent () =
  Metrics.reset ();
  let c = Metrics.counter "test.concurrent" in
  with_pool 4 (fun p ->
      ignore
        (Pool.parallel_init ~pool:p 8 (fun _ ->
             for _ = 1 to 1000 do
               Metrics.incr c
             done)));
  Alcotest.(check int) "no lost updates" 8000 (Metrics.counter_value c)

let test_spans () =
  Metrics.reset ();
  let sp = Metrics.span "test.span" in
  let v = Metrics.with_span sp (fun () -> 12) in
  Alcotest.(check int) "passes result through" 12 v;
  Alcotest.check_raises "records on exceptions too" Exit (fun () ->
      Metrics.with_span sp (fun () -> raise Exit));
  Alcotest.(check int) "two calls" 2 (Metrics.span_calls sp);
  Alcotest.(check bool) "non-negative time" true (Metrics.span_total_ns sp >= 0)

let test_table_and_json () =
  Metrics.reset ();
  Alcotest.(check string) "empty registry, empty table" "" (Metrics.table ());
  Metrics.incr ~by:7 (Metrics.counter "test.table");
  Metrics.time "test.tspan" (fun () -> ());
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let tbl = Metrics.table () in
  Alcotest.(check bool) "table lists the counter" true (contains tbl "test.table");
  Alcotest.(check bool) "table lists the span" true (contains tbl "test.tspan");
  let js = Metrics.json () in
  Alcotest.(check bool) "json has the counter" true
    (contains js "\"test.table\": 7");
  Alcotest.(check bool) "json has the span" true (contains js "\"test.tspan\"");
  Metrics.reset ()

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "init matches serial" `Quick test_init_matches_serial;
          Alcotest.test_case "jobs=1" `Quick test_jobs1_serial;
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "list order" `Quick test_list_map_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "shutdown fallback" `Quick test_shutdown_fallback;
          Alcotest.test_case "nested calls" `Quick test_nested_calls_serialize;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_plumbing;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_job_count_invariant;
          Alcotest.test_case "E3 adversary table" `Slow test_e3_table_determinism;
          Alcotest.test_case "E14 failure sweep" `Slow
            test_robustness_sweep_determinism;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counter_registry;
          Alcotest.test_case "concurrent counters" `Quick test_counter_concurrent;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "table and json" `Quick test_table_and_json;
        ] );
    ]
