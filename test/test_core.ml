(* Tests for the paper's core: path systems, α-samples, semi-oblivious
   evaluation, integral routing, the Lemma 5.6 process, completion time,
   the special-demand reduction, and the Section 8 lower-bound adversary. *)

module Rng = Sso_prng.Rng
module Graph = Sso_graph.Graph
module Path = Sso_graph.Path
module Gen = Sso_graph.Gen
module Maxflow = Sso_graph.Maxflow
module Demand = Sso_demand.Demand
module Routing = Sso_flow.Routing
module Oblivious = Sso_oblivious.Oblivious
module Valiant = Sso_oblivious.Valiant
module Deterministic = Sso_oblivious.Deterministic
module Ksp = Sso_oblivious.Ksp
module Racke = Sso_oblivious.Racke
module Path_system = Sso_core.Path_system
module Sampler = Sso_core.Sampler
module Semi_oblivious = Sso_core.Semi_oblivious
module Integral = Sso_core.Integral
module Process = Sso_core.Process
module Completion = Sso_core.Completion
module Lower_bound = Sso_core.Lower_bound
module Special = Sso_core.Special
module Pool = Sso_engine.Pool
module Obs = Sso_obs.Obs

let all_pairs n =
  List.concat_map
    (fun s -> List.filter_map (fun t -> if s = t then None else Some (s, t)) (List.init n Fun.id))
    (List.init n Fun.id)

(* Path systems *)

let test_path_system_of_pairs () =
  let g = Gen.cycle 4 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let q = Path.of_vertices g [ 0; 3; 2 ] in
  let ps = Path_system.of_pairs g [ ((0, 2), [ p; q ]) ] in
  Alcotest.(check int) "two candidates" 2 (List.length (Path_system.paths ps 0 2));
  Alcotest.(check int) "no candidates elsewhere" 0 (List.length (Path_system.paths ps 1 3));
  Alcotest.(check int) "sparsity" 2 (Path_system.sparsity_on ps [ (0, 2); (1, 3) ]);
  Alcotest.(check bool) "2-sparse" true (Path_system.is_alpha_sparse ps ~alpha:2 [ (0, 2) ]);
  Alcotest.(check bool) "not 1-sparse" false (Path_system.is_alpha_sparse ps ~alpha:1 [ (0, 2) ])

let test_path_system_validates () =
  let g = Gen.cycle 4 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  Alcotest.check_raises "endpoint mismatch"
    (Invalid_argument "Path_system: path endpoints do not match pair") (fun () ->
      ignore (Path_system.of_pairs g [ ((1, 2), [ p ]) ]));
  Alcotest.check_raises "duplicate path"
    (Invalid_argument "Path_system: duplicate path in candidate set") (fun () ->
      ignore (Path_system.of_pairs g [ ((0, 2), [ p; p ]) ]))

let test_path_system_generator_memoizes () =
  let g = Gen.cycle 4 in
  let calls = ref 0 in
  let ps =
    Path_system.of_generator g (fun s t ->
        incr calls;
        match Sso_graph.Shortest.bfs_path g s t with Some p -> [ p ] | None -> [])
  in
  ignore (Path_system.paths ps 0 2);
  ignore (Path_system.paths ps 0 2);
  Alcotest.(check int) "one call" 1 !calls;
  Alcotest.(check (list (pair int int))) "known pairs" [ (0, 2) ] (Path_system.known_pairs ps)

let test_path_system_union () =
  let g = Gen.cycle 4 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let q = Path.of_vertices g [ 0; 3; 2 ] in
  let a = Path_system.of_pairs g [ ((0, 2), [ p ]) ] in
  let b = Path_system.of_pairs g [ ((0, 2), [ q; p ]) ] in
  let u = Path_system.union a b in
  Alcotest.(check int) "union dedupes" 2 (List.length (Path_system.paths u 0 2))

let test_path_system_restrict_hops () =
  let g = Gen.multi_path [ 1; 3 ] in
  let direct = Path.of_vertices g [ 0; 1 ] in
  let detour = Path.of_vertices g [ 0; 2; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ direct; detour ]) ] in
  let short = Path_system.restrict_hops ~max_hops:1 ps in
  Alcotest.(check int) "only the direct edge" 1 (List.length (Path_system.paths short 0 1))

let test_slice_view_matches_paths () =
  (* The arena slice index and the boxed compatibility view describe the
     same candidate sets: counts, generation order, and edge content. *)
  let g = Gen.grid 4 4 in
  let obl = Ksp.routing ~k:4 g in
  let ps = Sampler.alpha_sample (Rng.create 9) obl ~alpha:3 in
  let pairs = [ (0, 15); (3, 12); (5, 10) ] in
  let arena = Path_system.arena ps in
  List.iter
    (fun (s, t) ->
      let boxed = Path_system.paths ps s t in
      Alcotest.(check int)
        (Printf.sprintf "count %d-%d" s t)
        (List.length boxed)
        (Path_system.slice_count ps s t);
      let first, count = Path_system.slice_range ps s t in
      Alcotest.(check int) "range width" (List.length boxed) count;
      let k = ref 0 in
      Path_system.iter_slices ps s t (fun i ->
          Alcotest.(check int) "handles are contiguous" (first + !k) i;
          let p = List.nth boxed !k in
          Alcotest.(check (array int))
            "slice edges" p.Path.edges
            (Sso_graph.Arena.edges arena i);
          incr k);
      Alcotest.(check int) "iter count" count !k)
    pairs;
  let expected_sparsity =
    List.fold_left
      (fun acc (s, t) -> max acc (List.length (Path_system.paths ps s t)))
      0 pairs
  in
  Alcotest.(check int) "sparsity_on = max count" expected_sparsity
    (Path_system.sparsity_on ps pairs);
  (* A trivial s = t candidate stores a zero-hop slice, not nothing. *)
  let tps = Path_system.of_pairs g [ ((2, 2), [ Path.trivial 2 ]) ] in
  Alcotest.(check int) "trivial pair count" 1 (Path_system.slice_count tps 2 2);
  let tarena = Path_system.arena tps in
  let i22, _ = Path_system.slice_range tps 2 2 in
  Alcotest.(check int) "trivial hops" 0 (Sso_graph.Arena.hops tarena i22);
  Alcotest.(check bool) "trivial round-trip" true
    (Path.equal (Path.trivial 2) (List.hd (Path_system.paths tps 2 2)))

let test_materialize_parallel_jobs_invariant () =
  (* Chunked parallel materialization must produce the same arena layout
     and the same candidate sets at any job count, and must agree with the
     serial path on content. *)
  let pairs = [ (0, 24); (1, 23); (2, 22); (3, 21); (4, 20); (5, 19);
                (6, 18); (7, 17); (8, 16); (9, 15); (10, 14); (11, 13) ] in
  let build jobs =
    let g = Gen.grid 5 5 in
    let obl = Ksp.routing ~k:4 g in
    let ps = Sampler.alpha_sample (Rng.create 7) obl ~alpha:3 in
    (match jobs with
    | None -> Path_system.materialize ps pairs
    | Some jobs ->
        let pool = Pool.create ~jobs () in
        Path_system.materialize_parallel ~pool ps pairs);
    let arena = Path_system.arena ps in
    ( List.map
        (fun (s, t) ->
          ((s, t), Path_system.slice_range ps s t, Path_system.paths ps s t))
        pairs,
      Sso_graph.Arena.length arena,
      Sso_graph.Arena.memory_bytes arena )
  in
  let j1 = build (Some 1) in
  let j4 = build (Some 4) in
  Alcotest.(check bool) "jobs 1 = jobs 4 (layout and content)" true (j1 = j4);
  let content (entries, _, _) = List.map (fun (p, _, ps) -> (p, ps)) entries in
  Alcotest.(check bool) "parallel content = serial content" true
    (content j1 = content (build None))

let test_of_oblivious_support () =
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Path_system.of_oblivious_support obl in
  Alcotest.(check int) "matches distribution" 3 (List.length (Path_system.paths ps 0 8))

(* Sampler *)

let test_alpha_sample_sparsity () =
  let g = Gen.hypercube 4 in
  let obl = Valiant.routing g in
  let rng = Rng.create 3 in
  let ps = Sampler.alpha_sample rng obl ~alpha:3 in
  let pairs = all_pairs (Graph.n g) in
  Alcotest.(check bool) "3-sparse" true (Path_system.is_alpha_sparse ps ~alpha:3 pairs)

let test_alpha_sample_from_support () =
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:4 g in
  let rng = Rng.create 5 in
  let ps = Sampler.alpha_sample rng obl ~alpha:2 in
  let support = List.map snd (Oblivious.distribution obl 0 8) in
  List.iter
    (fun p ->
      Alcotest.(check bool) "sampled from support" true (List.exists (Path.equal p) support))
    (Path_system.paths ps 0 8)

let test_alpha_sample_deterministic_base () =
  (* Sampling from a 1-support routing always yields that single path. *)
  let g = Gen.grid 3 3 in
  let obl = Deterministic.shortest_path g in
  let rng = Rng.create 7 in
  let ps = Sampler.alpha_sample rng obl ~alpha:5 in
  Alcotest.(check int) "single path" 1 (List.length (Path_system.paths ps 0 8))

let test_cnt_and_cut_sample () =
  let g = Gen.cycle 6 in
  Alcotest.(check int) "cnt = alpha + cut" (3 + 2) (Sampler.cnt g ~alpha:3 0 3);
  let obl = Ksp.routing ~k:8 g in
  let rng = Rng.create 9 in
  let ps = Sampler.alpha_cut_sample rng obl ~alpha:3 in
  (* Cycle pairs have cut 2 but only 2 simple paths exist, so the set has
     at most 2 distinct paths — and at most α+cut by definition. *)
  Alcotest.(check bool) "within bound" true (List.length (Path_system.paths ps 0 3) <= 5)

let test_sample_reproducible () =
  let g = Gen.hypercube 4 in
  let obl = Valiant.routing g in
  let ps1 = Sampler.alpha_sample (Rng.create 42) (Valiant.routing g) ~alpha:3 in
  let ps2 = Sampler.alpha_sample (Rng.create 42) obl ~alpha:3 in
  let paths1 = Path_system.paths ps1 0 15 and paths2 = Path_system.paths ps2 0 15 in
  Alcotest.(check bool) "same seed, same sample" true
    (List.for_all2 Path.equal paths1 paths2)

(* Semi-oblivious evaluation *)

let test_route_adapts_to_demand () =
  (* Candidates: both square routes.  Stage 4 splits; a fixed single path
     could not. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  let d = Demand.single_pair 0 1 2.0 in
  let _, cong = Semi_oblivious.route ~solver:Semi_oblivious.Lp g ps d in
  Alcotest.(check (float 1e-6)) "splits perfectly" 1.0 cong

let test_gk_solver_variant () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  let d = Demand.single_pair 0 1 2.0 in
  let cong = Semi_oblivious.congestion ~solver:(Semi_oblivious.Gk 0.05) g ps d in
  Alcotest.(check bool) (Printf.sprintf "gk near 1 (%.3f)" cong) true (cong <= 1.1);
  let opt = Semi_oblivious.opt ~solver:(Semi_oblivious.Gk 0.05) g d in
  Alcotest.(check bool) "gk opt sane" true (opt >= 1.0 -. 1e-6 && opt <= 1.1)

let test_congestion_solvers_agree () =
  let rng = Rng.create 11 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Sampler.alpha_sample rng obl ~alpha:3 in
  let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
  let lp = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g ps d in
  let mwu = Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 600) g ps d in
  Alcotest.(check bool)
    (Printf.sprintf "lp %.3f vs mwu %.3f" lp mwu)
    true
    (mwu >= lp -. 1e-6 && mwu <= (lp *. 1.2) +. 0.05)

let test_full_support_is_1_competitive_with_base () =
  (* Using the oblivious routing's entire support can only do better than
     the oblivious routing itself. *)
  let rng = Rng.create 13 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Path_system.of_oblivious_support obl in
  let d = Demand.random_pairs rng ~n:9 ~pairs:5 in
  let ratio = Semi_oblivious.competitive_with ~solver:Semi_oblivious.Lp obl ps d in
  Alcotest.(check bool) "at most 1" true (ratio <= 1.0 +. 1e-6)

let test_competitive_ratio_at_least_one_with_lp () =
  let rng = Rng.create 17 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:2 g in
  let ps = Sampler.alpha_sample rng obl ~alpha:2 in
  let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
  let ratio = Semi_oblivious.competitive_ratio ~solver:Semi_oblivious.Lp g ps d in
  Alcotest.(check bool) "restricted ≥ unrestricted" true (ratio >= 1.0 -. 1e-6)

let test_empty_demand_ratio () =
  let g = Gen.cycle 4 in
  let ps = Path_system.of_pairs g [] in
  Alcotest.(check (float 1e-9)) "empty demand" 1.0
    (Semi_oblivious.competitive_ratio g ps Demand.empty)

let test_worst_ratio () =
  let rng = Rng.create 19 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Path_system.of_oblivious_support obl in
  let demands = List.init 3 (fun _ -> Demand.random_pairs rng ~n:9 ~pairs:3) in
  let worst = Semi_oblivious.worst_ratio ~solver:Semi_oblivious.Lp g ps demands in
  let each =
    List.map (fun d -> Semi_oblivious.competitive_ratio ~solver:Semi_oblivious.Lp g ps d) demands
  in
  Alcotest.(check (float 1e-9)) "max of singles" (List.fold_left Float.max 0.0 each) worst

(* Theorem 2.3 at test scale: a Θ(log n)-sample of Valiant routes random
   permutations on the hypercube with small competitive ratio. *)
let test_log_sample_competitive_on_hypercube () =
  let dim = 5 in
  let g = Gen.hypercube dim in
  let obl = Valiant.routing g in
  let rng = Rng.create 23 in
  let ps = Sampler.alpha_sample rng obl ~alpha:dim in
  let worst = ref 0.0 in
  for _ = 1 to 3 do
    let d = Demand.random_permutation rng (Graph.n g) in
    let ratio = Semi_oblivious.competitive_ratio ~solver:(Semi_oblivious.Mwu 200) g ps d in
    worst := Float.max !worst ratio
  done;
  Alcotest.(check bool)
    (Printf.sprintf "polylog-ish ratio %.2f" !worst)
    true (!worst <= 8.0)

(* Theorem 2.5 shape at test scale: more sampled paths → no worse
   worst-case congestion on a fixed demand set. *)
let test_sparsity_monotonicity () =
  let g = Gen.hypercube 4 in
  let obl = Valiant.routing g in
  let demand = Demand.bit_reversal 4 in
  let cong_at alpha =
    let rng = Rng.create 100 in
    let ps = Sampler.alpha_sample rng obl ~alpha in
    Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 200) g ps demand
  in
  let c1 = cong_at 1 and c4 = cong_at 4 and c8 = cong_at 8 in
  Alcotest.(check bool)
    (Printf.sprintf "c1=%.2f c4=%.2f c8=%.2f" c1 c4 c8)
    true
    (c4 <= c1 +. 0.3 && c8 <= c4 +. 0.3)

(* Integral routing *)

let test_integral_upper_is_integral () =
  let rng = Rng.create 29 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Sampler.alpha_sample rng obl ~alpha:3 in
  let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
  let assignment, cong = Integral.congestion_upper ~solver:Semi_oblivious.Lp rng g ps d in
  Alcotest.(check bool) "congestion positive" true (cong >= 1.0 -. 1e-9);
  let routing = Sso_flow.Rounding.to_routing assignment in
  Alcotest.(check bool) "integral" true (Routing.is_integral_on routing d)

let test_integral_upper_vs_brute_force () =
  let rng = Rng.create 31 in
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:2 g in
  let ps = Sampler.alpha_sample rng obl ~alpha:2 in
  let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
  let exact = Integral.brute_force g ps d in
  let _, upper = Integral.congestion_upper ~solver:Semi_oblivious.Lp ~tries:20 rng g ps d in
  Alcotest.(check bool)
    (Printf.sprintf "upper %.2f ≥ exact %.2f" upper exact)
    true (upper >= exact -. 1e-9);
  (* Rounding + local search should be close to exact at this scale. *)
  Alcotest.(check bool) "close to exact" true (upper <= (2.0 *. exact) +. 3.0)

let test_brute_force_known () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  (* One packet: congestion 1 regardless. *)
  Alcotest.(check (float 1e-9)) "single packet" 1.0
    (Integral.brute_force g ps (Demand.single_pair 0 1 1.0))

let test_brute_force_forced_collision () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a ]) ] in
  Alcotest.check_raises "rejects non-01"
    (Invalid_argument "Integral.brute_force: demand must be a {0,1}-demand") (fun () ->
      ignore (Integral.brute_force g ps (Demand.single_pair 0 1 2.0)))

let test_integral_rounding_bound_cor64 () =
  (* Corollary 6.4: cong_Z(P,d) ≤ 2·cong_R(P,d) + 3 ln m. *)
  let rng = Rng.create 37 in
  let g = Gen.hypercube 4 in
  let obl = Valiant.routing g in
  let ps = Sampler.alpha_sample rng obl ~alpha:4 in
  let d = Demand.random_permutation rng (Graph.n g) in
  let frac = Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 300) g ps d in
  let _, integral = Integral.congestion_upper ~tries:20 rng g ps d in
  let bound = (2.0 *. frac) +. (3.0 *. Float.log (float_of_int (Graph.m g))) in
  Alcotest.(check bool)
    (Printf.sprintf "cor 6.4 (%.2f ≤ %.2f)" integral bound)
    true (integral <= bound +. 1e-6)

(* The Lemma 5.6 dynamic process *)

let test_weak_route_survives_on_good_sample () =
  (* Hypercube, α = dim sample of Valiant, permutation demand, generous
     allowance: at least half the demand must survive (whp). *)
  let dim = 5 in
  let g = Gen.hypercube dim in
  let obl = Valiant.routing g in
  let rng = Rng.create 41 in
  let ps = Sampler.alpha_sample rng obl ~alpha:(2 * dim) in
  let d = Demand.random_permutation rng (Graph.n g) in
  let outcome = Process.weak_route ~gamma:8.0 g ps d in
  Alcotest.(check bool)
    (Printf.sprintf "survived %.2f" outcome.Process.survived_fraction)
    true
    (outcome.Process.survived_fraction >= 0.5);
  match outcome.Process.kept_routing with
  | None -> Alcotest.fail "expected a routing"
  | Some r ->
      Alcotest.(check bool) "kept congestion within gamma" true
        (Routing.congestion g r outcome.Process.kept_demand <= 8.0 +. 1e-9)

let test_weak_route_deletes_under_tight_gamma () =
  (* With allowance below 1 and a single forced path, the process must
     delete everything. *)
  let g = Gen.path_graph 3 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let ps = Path_system.of_pairs g [ ((0, 2), [ p ]) ] in
  let d = Demand.single_pair 0 2 2.0 in
  let outcome = Process.weak_route ~gamma:1.0 g ps d in
  Alcotest.(check (float 1e-9)) "all deleted" 0.0 outcome.Process.survived_fraction;
  Alcotest.(check bool) "deletions recorded" true (outcome.Process.deletions <> [])

let test_weak_route_keeps_everything_when_loose () =
  let g = Gen.path_graph 3 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let ps = Path_system.of_pairs g [ ((0, 2), [ p ]) ] in
  let d = Demand.single_pair 0 2 2.0 in
  let outcome = Process.weak_route ~gamma:5.0 g ps d in
  Alcotest.(check (float 1e-9)) "everything survives" 1.0 outcome.Process.survived_fraction;
  Alcotest.(check (list (pair int (float 1e-9)))) "no deletions" [] outcome.Process.deletions

let test_route_by_halving_routes_everything () =
  let dim = 4 in
  let g = Gen.hypercube dim in
  let obl = Valiant.routing g in
  let rng = Rng.create 43 in
  let ps = Sampler.alpha_sample rng obl ~alpha:(2 * dim) in
  let d = Demand.random_permutation rng (Graph.n g) in
  let routing, cong = Process.route_by_halving ~gamma:6.0 g ps d in
  Alcotest.(check bool) "covers demand" true (Routing.covers routing d);
  (* Lemma 5.8 shape: O(gamma log m). *)
  let bound = 4.0 *. 6.0 *. Float.log (float_of_int (Graph.m g)) in
  Alcotest.(check bool)
    (Printf.sprintf "halving congestion %.2f ≤ %.2f" cong bound)
    true (cong <= bound)

(* Completion time *)

let test_completion_route_prefers_balanced_tradeoff () =
  (* multi_path [1;8;8;8]: min-congestion spreads over the 8-hop detours
     (dilation 8); min-completion for a small demand keeps短 paths. *)
  let g = Gen.multi_path [ 1; 8; 8; 8 ] in
  let direct = Path.of_vertices g [ 0; 1 ] in
  let detours =
    List.init 3 (fun i ->
        let base = 2 + (i * 7) in
        Path.of_vertices g ((0 :: List.init 7 (fun j -> base + j)) @ [ 1 ]))
  in
  let ps = Path_system.of_pairs g [ ((0, 1), direct :: detours) ] in
  let d = Demand.single_pair 0 1 2.0 in
  let _, cong, dil = Completion.route ~solver:Semi_oblivious.Lp g ps d in
  let value = cong +. float_of_int dil in
  (* Using only the direct edge: cong 2, dil 1 → 3.  Spreading over all
     four: cong 0.5, dil 8 → 8.5.  The router must find value ≤ 3. *)
  Alcotest.(check bool) (Printf.sprintf "value %.2f" value) true (value <= 3.0 +. 1e-6)

let test_completion_time_of_routing () =
  let g = Gen.path_graph 3 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let r = Routing.singleton_paths [ ((0, 2), p) ] in
  let d = Demand.single_pair 0 2 3.0 in
  Alcotest.(check (float 1e-9)) "cong + dil" 5.0 (Completion.completion_time g r d)

let test_ladder_hops_cover_diameter () =
  let g = Gen.grid 4 4 in
  let hops = Completion.ladder_hops g in
  Alcotest.(check bool) "starts at 1" true (List.hd hops = 1);
  Alcotest.(check bool) "covers diameter" true
    (List.exists (fun h -> h >= Sso_graph.Shortest.diameter g) hops)

let test_ladder_system_feasible () =
  let rng = Rng.create 47 in
  let g = Gen.grid 3 3 in
  let ps = Completion.ladder_system rng g ~alpha:2 in
  let d = Demand.of_list [ (0, 8, 1.0); (2, 6, 1.0) ] in
  let _, cong, dil = Completion.route ~solver:(Semi_oblivious.Mwu 150) g ps d in
  Alcotest.(check bool) "feasible" true (cong > 0.0 && dil > 0)

(* Special demands and bucketing *)

let test_special_of_support () =
  let g = Gen.cycle 6 in
  let d = Special.special_of_support g ~alpha:3 [ (0, 3); (1, 4) ] in
  Alcotest.(check bool) "is special" true (Demand.is_special g ~alpha:3 d);
  Alcotest.(check (float 1e-9)) "value alpha+cut" 5.0 (Demand.get d 0 3)

let test_buckets_partition () =
  let g = Gen.cycle 6 in
  let d = Demand.of_list [ (0, 3, 0.5); (1, 4, 7.0); (2, 5, 40.0) ] in
  let buckets = Special.buckets g ~alpha:2 d in
  let total = List.fold_left (fun acc (_, b) -> Demand.add acc b) Demand.empty buckets in
  Alcotest.(check bool) "buckets sum to demand" true (Demand.equal total d);
  (* Within a bucket, ratios are within a factor 2. *)
  List.iter
    (fun (_, b) ->
      let ratios =
        Demand.fold (fun s t v acc -> (v /. float_of_int (Sampler.cnt g ~alpha:2 s t)) :: acc) b []
      in
      match ratios with
      | [] -> ()
      | r0 :: rest ->
          let lo = List.fold_left Float.min r0 rest in
          let hi = List.fold_left Float.max r0 rest in
          Alcotest.(check bool) "dyadic width" true (hi < (2.0 *. lo) +. 1e-9))
    buckets

let test_random_special () =
  let rng = Rng.create 53 in
  let g = Gen.grid 3 3 in
  let d = Special.random_special rng g ~alpha:2 ~pairs:5 in
  Alcotest.(check int) "pairs" 5 (Demand.support_size d);
  Alcotest.(check bool) "special" true (Demand.is_special g ~alpha:2 d)

(* Lower bound adversary (Section 8) *)

let test_middles_hit () =
  let c = Gen.c_graph 4 3 in
  let g = c.Gen.c_graph in
  let s = c.Gen.c_leaves1.(0) and t = c.Gen.c_leaves2.(0) in
  let mid = c.Gen.c_middles.(1) in
  let p =
    Path.of_vertices g [ s; c.Gen.c_center1; mid; c.Gen.c_center2; t ]
  in
  Alcotest.(check (list int)) "hits the middle" [ mid ] (Lower_bound.middles_hit c p)

let test_attack_on_1_sparse () =
  (* A deterministic (1-sparse) system on C(n,k) must funnel many pairs
     through one middle: predicted congestion ≥ k with opt 1. *)
  let n = 9 and k = 3 in
  let c = Gen.c_graph n k in
  let obl = Deterministic.shortest_path c.Gen.c_graph in
  let ps = Sso_core.Path_system.of_oblivious_support obl in
  let attack = Lower_bound.attack c ps in
  Alcotest.(check bool) "permutation demand" true (Demand.is_permutation attack.Lower_bound.demand);
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.2f ≥ k" attack.Lower_bound.predicted_congestion)
    true
    (attack.Lower_bound.predicted_congestion >= float_of_int k -. 1e-9);
  let measured = Lower_bound.verify ~solver:Semi_oblivious.Lp c ps attack in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.2f ≥ predicted %.2f" measured
       attack.Lower_bound.predicted_congestion)
    true
    (measured >= attack.Lower_bound.predicted_congestion -. 1e-6)

let test_attack_weaker_on_sparse_samples () =
  (* α-samples with larger α leave the adversary a smaller certified bound:
     score k/α decreases.  Check predicted bound for α = k is ≤ k/1. *)
  let n = 16 and k = 4 in
  let c = Gen.c_graph n k in
  let g = c.Gen.c_graph in
  let obl = Ksp.routing ~k:8 g in
  let rng = Rng.create 59 in
  let ps1 = Sampler.alpha_sample (Rng.split rng) obl ~alpha:1 in
  let ps4 = Sampler.alpha_sample (Rng.split rng) obl ~alpha:4 in
  let a1 = Lower_bound.attack c ps1 in
  let a4 = Lower_bound.attack c ps4 in
  Alcotest.(check bool)
    (Printf.sprintf "sparser is more attackable (%.2f ≥ %.2f)"
       a1.Lower_bound.predicted_congestion a4.Lower_bound.predicted_congestion)
    true
    (a1.Lower_bound.predicted_congestion >= a4.Lower_bound.predicted_congestion -. 1e-9)

let test_attack_verified_measured_bound () =
  let n = 9 and k = 3 in
  let c = Gen.c_graph n k in
  let g = c.Gen.c_graph in
  let obl = Ksp.routing ~k:6 g in
  let rng = Rng.create 61 in
  let ps = Sampler.alpha_sample rng obl ~alpha:2 in
  let attack = Lower_bound.attack c ps in
  let measured = Lower_bound.verify ~solver:Semi_oblivious.Lp c ps attack in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f ≥ predicted %.3f" measured
       attack.Lower_bound.predicted_congestion)
    true
    (measured >= attack.Lower_bound.predicted_congestion -. 1e-6)

(* Extra coverage *)

let test_sampler_respects_base_distribution () =
  (* Sampling α=1 from a uniform 2-path routing must pick each path about
     half the time across independent samples. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let obl = Ksp.routing ~k:2 g in
  let trials = 2000 in
  let hits = ref 0 in
  for seed = 1 to trials do
    let ps = Sampler.alpha_sample (Rng.create seed) obl ~alpha:1 in
    match Path_system.paths ps 0 1 with
    | [ p ] -> if Path.equal p a then incr hits
    | _ -> Alcotest.fail "expected exactly one path"
  done;
  let frac = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "near half (%.3f)" frac)
    true
    (Float.abs (frac -. 0.5) < 0.05)

let test_sampler_dedupes_with_replacement () =
  (* With α much larger than the support, the sample set size caps at the
     support size. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let obl = Ksp.routing ~k:2 g in
  let ps = Sampler.alpha_sample (Rng.create 3) obl ~alpha:50 in
  Alcotest.(check int) "capped at support" 2 (List.length (Path_system.paths ps 0 1))

let test_completion_ladder_geometric () =
  let g = Gen.grid 5 5 in
  let hops = Completion.ladder_hops g in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "at most doubling" true (b <= 2 * a + 1);
        Alcotest.(check bool) "strictly increasing" true (b > a);
        check rest
    | _ -> ()
  in
  check hops;
  Alcotest.(check bool) "O(log diam) rungs" true (List.length hops <= 6)

let test_lower_bound_middles_hit_empty_for_inner_path () =
  let c = Gen.c_graph 4 3 in
  let g = c.Gen.c_graph in
  let p = Path.of_vertices g [ c.Gen.c_leaves1.(0); c.Gen.c_center1; c.Gen.c_leaves1.(1) ] in
  Alcotest.(check (list int)) "no middles on a same-star path" []
    (Lower_bound.middles_hit c p)

let test_semi_oblivious_opt_lp_exact () =
  let g = Gen.multi_path [ 2; 2 ] in
  let d = Demand.single_pair 0 1 2.0 in
  Alcotest.(check (float 1e-6)) "exact optimum" 1.0
    (Semi_oblivious.opt ~solver:Semi_oblivious.Lp g d)

let test_worst_ratio_empty () =
  let g = Gen.cycle 4 in
  let ps = Path_system.of_pairs g [] in
  Alcotest.(check (float 1e-9)) "no demands" 0.0 (Semi_oblivious.worst_ratio g ps [])

let test_process_deterministic () =
  (* The dynamic process has no internal randomness: same inputs, same
     outcome. *)
  let g = Gen.grid 3 3 in
  let obl = Ksp.routing ~k:3 g in
  let ps = Sampler.alpha_sample (Rng.create 7) obl ~alpha:3 in
  let d = Demand.random_pairs (Rng.create 8) ~n:9 ~pairs:4 in
  let o1 = Process.weak_route ~gamma:1.5 g ps d in
  let o2 = Process.weak_route ~gamma:1.5 g ps d in
  Alcotest.(check (float 1e-12)) "same survival" o1.Process.survived_fraction
    o2.Process.survived_fraction;
  Alcotest.(check int) "same deletions" (List.length o1.Process.deletions)
    (List.length o2.Process.deletions)

let test_certified_bucket_count_logarithmic () =
  (* Ratios spanning R octaves produce at most R+2 buckets. *)
  let g = Gen.cycle 8 in
  let d =
    Demand.of_list [ (0, 4, 1.0); (1, 5, 4.0); (2, 6, 16.0); (3, 7, 64.0) ]
  in
  let count = Sso_core.Certified.bucket_count ~alpha:2 g d in
  Alcotest.(check bool) (Printf.sprintf "buckets %d" count) true (count <= 8);
  Alcotest.(check bool) "at least distinct octaves" true (count >= 4)

(* Certified pipeline (Theorem 5.3 constructive) *)

module Certified = Sso_core.Certified

let test_certified_routes_permutation () =
  let dim = 5 in
  let g = Gen.hypercube dim in
  let obl = Valiant.routing g in
  let rng = Rng.create 97 in
  let ps = Sampler.alpha_cut_sample rng obl ~alpha:(2 * dim) in
  let d = Demand.random_permutation rng (Graph.n g) in
  let routing, cong = Certified.route ~gamma:60.0 ~alpha:(2 * dim) g ps d in
  Alcotest.(check bool) "covers" true (Routing.covers routing d);
  (* Solver-free pipeline should land within a moderate factor of the
     solver-based Stage 4. *)
  let solver_cong = Semi_oblivious.congestion ~solver:(Semi_oblivious.Mwu 200) g ps d in
  Alcotest.(check bool)
    (Printf.sprintf "certified %.2f within 30x of solver %.2f" cong solver_cong)
    true
    (cong <= 30.0 *. solver_cong +. 1.0)

let test_certified_arbitrary_demand () =
  (* Mixed magnitudes exercise the bucketing. *)
  let g = Gen.grid 4 4 in
  let obl = Ksp.routing ~k:4 g in
  let rng = Rng.create 101 in
  let ps = Sampler.alpha_cut_sample rng obl ~alpha:3 in
  let d = Demand.of_list [ (0, 15, 0.3); (3, 12, 4.0); (5, 10, 17.0) ] in
  Alcotest.(check bool) "several buckets" true (Certified.bucket_count ~alpha:3 g d >= 2);
  let routing, cong = Certified.route ~gamma:40.0 ~alpha:3 g ps d in
  Alcotest.(check bool) "covers" true (Routing.covers routing d);
  Alcotest.(check bool) "finite congestion" true (Float.is_finite cong && cong > 0.0)

let test_certified_empty () =
  let g = Gen.grid 3 3 in
  let ps = Path_system.of_pairs g [] in
  let _, cong = Certified.route ~gamma:10.0 ~alpha:2 g ps Demand.empty in
  Alcotest.(check (float 1e-9)) "empty" 0.0 cong

let test_certified_single_bucket_for_uniform () =
  let g = Gen.cycle 6 in
  (* All ratios equal → exactly one bucket. *)
  let d = Special.special_of_support g ~alpha:2 [ (0, 3); (1, 4) ] in
  Alcotest.(check int) "one bucket" 1 (Certified.bucket_count ~alpha:2 g d)

(* Theory: closed-form bound calculators *)

module Theory = Sso_core.Theory

let test_theory_sample_competitiveness_monotone () =
  (* More paths → better guarantee; more edges → worse. *)
  let c2 = Theory.sample_competitiveness ~m:100 ~alpha:2 ~h:1 in
  let c8 = Theory.sample_competitiveness ~m:100 ~alpha:8 ~h:1 in
  Alcotest.(check bool) "decreasing in alpha" true (c8 < c2);
  let c_small = Theory.sample_competitiveness ~m:10 ~alpha:4 ~h:1 in
  let c_big = Theory.sample_competitiveness ~m:1000 ~alpha:4 ~h:1 in
  Alcotest.(check bool) "increasing in m" true (c_big > c_small)

let test_theory_failure_probabilities () =
  let p1 = Theory.weak_route_failure_probability ~m:100 ~supp:1 ~h:1 in
  Alcotest.(check (float 1e-12)) "m^-(h+3)" 1e-8 p1;
  let p5 = Theory.weak_route_failure_probability ~m:100 ~supp:5 ~h:1 in
  Alcotest.(check bool) "exponential in support" true (p5 < p1 *. p1);
  Alcotest.(check (float 1e-12)) "union bound" 0.01 (Theory.union_bound_failure ~m:100 ~h:1)

let test_theory_bad_patterns () =
  (* Lemma 5.13: log10 count = (4D/alpha) log10 m. *)
  Alcotest.(check (float 1e-9)) "log10 formula" 16.0
    (Theory.log10_bad_pattern_count ~m:100 ~d_size:10.0 ~alpha:5);
  Alcotest.(check (float 1e-3)) "small case exact" 100.0
    (Theory.bad_pattern_count_bound ~m:10 ~d_size:2.0 ~alpha:4)

let test_theory_rounding_matches_lemma () =
  Alcotest.(check (float 1e-9)) "2c + 3 ln m"
    ((2.0 *. 1.5) +. (3.0 *. Float.log 64.0))
    (Theory.rounding_bound ~m:64 ~frac_congestion:1.5)

let test_theory_sparsity_shape () =
  (* log n / log log n is sublogarithmic but unbounded. *)
  let s16 = Theory.theorem_2_3_sparsity ~n:16 in
  let s65536 = Theory.theorem_2_3_sparsity ~n:65536 in
  Alcotest.(check int) "n=16" 2 s16;
  Alcotest.(check int) "n=65536" 4 s65536;
  Alcotest.(check bool) "grows" true (s65536 > s16);
  Alcotest.(check bool) "below log n" true (s65536 <= 16)

let test_theory_trade_off_consistency () =
  (* The Thm 2.5 upper shape must dominate the Cor 8.3 lower shape. *)
  List.iter
    (fun (n, alpha) ->
      let upper = Theory.theorem_2_5_competitiveness ~n ~alpha in
      let lower = Theory.lower_bound_cor_8_3 ~n ~alpha in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d a=%d: %.2f >= %.2f" n alpha upper lower)
        true (upper >= lower))
    [ (64, 1); (64, 2); (1024, 3); (4096, 4) ]

let test_theory_gadget_k () =
  Alcotest.(check int) "sqrt" 8 (Theory.lower_bound_gadget_k ~n:64 ~alpha:1);
  Alcotest.(check int) "fourth root" 2 (Theory.lower_bound_gadget_k ~n:64 ~alpha:2);
  Alcotest.(check int) "floors to 1" 1 (Theory.lower_bound_gadget_k ~n:4 ~alpha:4)

let test_theory_kkt91 () =
  (* Hypercube: sqrt(n)/log n — the E4 scale. *)
  Alcotest.(check (float 1e-9)) "d=8 cube" (16.0 /. 8.0)
    (Theory.kkt91_bound ~n:256 ~max_degree:8)

let test_theory_validates_input () =
  Alcotest.(check bool) "rejects zero" true
    (try
       ignore (Theory.sample_competitiveness ~m:0 ~alpha:1 ~h:1);
       false
     with Invalid_argument _ -> true)

let test_robustness_agrees_with_bridges () =
  (* Failures the network itself cannot survive are exactly the bridges
     separating some demanded pair. *)
  let gg = Gen.c_graph 4 2 in
  let g = gg.Gen.c_graph in
  let s = gg.Gen.c_leaves1.(0) and t = gg.Gen.c_leaves2.(0) in
  let d = Demand.single_pair s t 1.0 in
  let base = Ksp.routing ~k:4 g in
  let system = Sso_core.Path_system.of_oblivious_support base in
  let reports = Sso_core.Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g system d in
  let bridges = Sso_graph.Bridges.find g in
  List.iter
    (fun r ->
      let network_dead = not (Float.is_finite r.Sso_core.Robustness.post_opt) in
      let is_separating_bridge =
        List.mem r.Sso_core.Robustness.failed_edge bridges
        &&
        (* The bridge must separate s from t, i.e., lie on every (s,t)
           path: in C(n,k) those are exactly the two leaf edges. *)
        (let u, v = Graph.endpoints g r.Sso_core.Robustness.failed_edge in
         u = s || v = s || u = t || v = t)
      in
      Alcotest.(check bool)
        (Printf.sprintf "edge %d" r.Sso_core.Robustness.failed_edge)
        is_separating_bridge network_dead)
    reports

(* Oracle (demand-aware baseline) *)

module Oracle = Sso_core.Oracle

let test_oracle_top_paths () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let r = Routing.make [ ((0, 1), [ (0.9, a); (0.1, b) ]) ] in
  let top1 = Oracle.top_paths g r ~alpha:1 in
  Alcotest.(check bool) "keeps the heavy path" true
    (Path.equal a (List.hd (Path_system.paths top1 0 1)));
  let top2 = Oracle.top_paths g r ~alpha:2 in
  Alcotest.(check int) "keeps both" 2 (List.length (Path_system.paths top2 0 1))

let test_oracle_beats_or_matches_sample () =
  (* A clairvoyant α-path selection is never worse than an oblivious
     α-sample on the demand it was built for. *)
  let g = Gen.grid 4 4 in
  let rng = Rng.create 83 in
  let d = Demand.random_pairs (Rng.split rng) ~n:16 ~pairs:6 in
  let alpha = 2 in
  let oracle = Oracle.demand_aware_system ~solver:(Semi_oblivious.Mwu 400) g d ~alpha in
  let base = Ksp.routing ~k:4 g in
  let sample = Sampler.alpha_sample (Rng.split rng) base ~alpha in
  let oracle_cong = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g oracle d in
  let sample_cong = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g sample d in
  Alcotest.(check bool)
    (Printf.sprintf "oracle %.3f <= sample %.3f (+tol)" oracle_cong sample_cong)
    true
    (oracle_cong <= sample_cong +. 0.15)

let test_oracle_only_covers_demand () =
  let g = Gen.grid 3 3 in
  let d = Demand.single_pair 0 8 1.0 in
  let oracle = Oracle.demand_aware_system g d ~alpha:2 in
  Alcotest.(check bool) "demanded pair covered" true (Path_system.paths oracle 0 8 <> []);
  Alcotest.(check int) "others empty" 0 (List.length (Path_system.paths oracle 1 7))

(* Lemma 8.2: the composite family graph *)

let test_attack_in_family () =
  let gg = Gen.g_graph 16 in
  let g = gg.Gen.g_graph in
  let base = Ksp.routing ~k:8 g in
  let rng = Rng.create 89 in
  let alpha = 1 in
  let system = Sampler.alpha_sample rng base ~alpha in
  let attack = Lower_bound.attack_in_family gg ~alpha system in
  Alcotest.(check bool) "permutation" true (Demand.is_permutation attack.Lower_bound.demand);
  (* Copy for alpha=1 has k = 4 middles; a 1-sparse system is forced. *)
  Alcotest.(check bool)
    (Printf.sprintf "certified %.2f >= 2" attack.Lower_bound.predicted_congestion)
    true
    (attack.Lower_bound.predicted_congestion >= 2.0);
  let measured =
    Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g system attack.Lower_bound.demand
  in
  Alcotest.(check bool) "measured >= certified" true
    (measured >= attack.Lower_bound.predicted_congestion -. 1e-6)

let test_attack_in_family_unknown_alpha () =
  let gg = Gen.g_graph 16 in
  let base = Ksp.routing ~k:2 gg.Gen.g_graph in
  let system = Sampler.alpha_sample (Rng.create 1) base ~alpha:1 in
  (* The error must name the missing alpha and the available ones. *)
  Alcotest.(check bool) "raises with a descriptive message" true
    (try
       ignore (Lower_bound.attack_in_family gg ~alpha:99 system);
       false
     with Invalid_argument msg ->
       let contains needle =
         let nl = String.length needle and ml = String.length msg in
         let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
         go 0
       in
       contains "alpha = 99" && contains "available")

(* Robustness *)

module Robustness = Sso_core.Robustness

let test_without_edge_filters () =
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  let failed = a.Path.edges.(0) in
  let survivors = Path_system.without_edge failed ps in
  Alcotest.(check int) "one survivor" 1 (List.length (Path_system.paths survivors 0 1));
  Alcotest.(check bool) "the right one" true
    (Path.equal b (List.hd (Path_system.paths survivors 0 1)))

let test_filter_paths_by_hops () =
  let g = Gen.multi_path [ 1; 3 ] in
  let direct = Path.of_vertices g [ 0; 1 ] in
  let detour = Path.of_vertices g [ 0; 2; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ direct; detour ]) ] in
  let long_only = Path_system.filter_paths (fun p -> Path.hops p > 1) ps in
  Alcotest.(check int) "kept the detour" 1 (List.length (Path_system.paths long_only 0 1))

let test_robustness_redundant_candidates_survive () =
  (* Two disjoint candidate routes: every single failure is survivable and
     near-optimal afterwards. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let b = Path.of_vertices g [ 0; 3; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a; b ]) ] in
  let d = Demand.single_pair 0 1 1.0 in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g ps d in
  Alcotest.(check int) "all edges tested" (Graph.m g) (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) "survivable" true r.Robustness.survivable;
      Alcotest.(check bool) "near optimal" true (r.Robustness.ratio <= 1.2))
    reports;
  let s = Robustness.summary reports in
  Alcotest.(check int) "none unsurvivable" 0 s.Robustness.unsurvivable

let test_robustness_single_candidate_fails () =
  (* One candidate path only: failing its edges strands the pair even
     though the network still connects it. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a ]) ] in
  let d = Demand.single_pair 0 1 1.0 in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g ps d in
  let s = Robustness.summary reports in
  Alcotest.(check int) "two stranding failures" 2 s.Robustness.unsurvivable

let test_robustness_bridge_is_networks_fault () =
  (* Failing a bridge disconnects the network itself; such failures are
     excluded from the unsurvivable count. *)
  let g = Gen.path_graph 3 in
  let p = Path.of_vertices g [ 0; 1; 2 ] in
  let ps = Path_system.of_pairs g [ ((0, 2), [ p ]) ] in
  let d = Demand.single_pair 0 2 1.0 in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g ps d in
  List.iter
    (fun r ->
      Alcotest.(check bool) "network-level failure" false (Float.is_finite r.Robustness.post_opt))
    reports;
  let s = Robustness.summary reports in
  Alcotest.(check int) "not charged to the system" 0 s.Robustness.unsurvivable

let test_robustness_summary_degenerate_is_nan () =
  (* No reports at all: both aggregates are nan, not a vacuous 0. *)
  let empty = Robustness.summary [] in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan empty.Robustness.mean_ratio);
  Alcotest.(check bool) "empty worst nan" true (Float.is_nan empty.Robustness.worst_ratio);
  (* All-unsurvivable: the single-candidate fixture strands the pair on
     its two path edges; keep only those stranding reports. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let a = Path.of_vertices g [ 0; 2; 1 ] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ a ]) ] in
  let d = Demand.single_pair 0 1 1.0 in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g ps d in
  let stranded = List.filter (fun r -> not r.Robustness.survivable) reports in
  Alcotest.(check bool) "fixture strands something" true (stranded <> []);
  let s = Robustness.summary stranded in
  Alcotest.(check bool) "no survivors: mean nan" true (Float.is_nan s.Robustness.mean_ratio);
  Alcotest.(check bool) "no survivors: worst nan" true (Float.is_nan s.Robustness.worst_ratio)

(* Two parallel (0,1) edges plus a 2-hop detour; the system routes over
   one parallel edge and the detour. *)
let parallel_edge_fixture () =
  let b = Graph.Builder.create 3 in
  let e0 = Graph.Builder.add_edge ~cap:1.0 b 0 1 in
  let _e1 = Graph.Builder.add_edge ~cap:1.0 b 0 1 in
  let e2 = Graph.Builder.add_edge ~cap:1.0 b 0 2 in
  let e3 = Graph.Builder.add_edge ~cap:1.0 b 2 1 in
  let g = Graph.Builder.build b in
  let direct = Path.of_edges g ~src:0 ~dst:1 [| e0 |] in
  let detour = Path.of_edges g ~src:0 ~dst:1 [| e2; e3 |] in
  let ps = Path_system.of_pairs g [ ((0, 1), [ direct; detour ]) ] in
  (g, ps, Demand.single_pair 0 1 1.0)

let test_robustness_parallel_edges_share_solves () =
  let g, ps, d = parallel_edge_fixture () in
  let solves = Obs.counter "robustness.opt_solves" in
  let before = Obs.counter_value solves in
  let reports = Robustness.single_failures ~solver:(Semi_oblivious.Mwu 100) g ps d in
  (* 4 edges but 3 (u, v, cap) classes: the parallel pair shares one
     damaged-optimum solve. *)
  Alcotest.(check int) "one report per edge" 4 (List.length reports);
  Alcotest.(check int) "solves = classes" 3 (Obs.counter_value solves - before);
  let r0 = List.nth reports 0 and r1 = List.nth reports 1 in
  Alcotest.(check (float 0.0)) "shared post_opt" r0.Robustness.post_opt
    r1.Robustness.post_opt;
  (* Both survivable: losing either parallel edge leaves the other. *)
  Alcotest.(check bool) "e0 survivable" true r0.Robustness.survivable;
  Alcotest.(check bool) "e1 survivable" true r1.Robustness.survivable;
  (* And the report list is identical at any job count. *)
  let at_jobs jobs =
    let pool = Pool.create ~jobs () in
    Robustness.single_failures ~pool ~solver:(Semi_oblivious.Mwu 100) g ps d
  in
  Alcotest.(check bool) "jobs-invariant" true (at_jobs 1 = at_jobs 4)

(* Auxiliary graph (Corollary 6.2) *)

module Auxiliary = Sso_core.Auxiliary

let test_aux_terminal_cuts_are_one () =
  let g = Gen.grid 3 3 in
  let pairs = [ (0, 8); (2, 6) ] in
  let exp = Auxiliary.expand g ~pairs in
  let g2 = Auxiliary.graph exp in
  Alcotest.(check int) "vertices" (9 + 4) (Graph.n g2);
  Alcotest.(check int) "edges" (Graph.m g + 4) (Graph.m g2);
  List.iter
    (fun (s, t) ->
      let v1, v2 = Auxiliary.terminals exp s t in
      Alcotest.(check int) "unit cut" 1 (Maxflow.cut g2 v1 v2))
    pairs

let test_aux_lifted_congestion_identity () =
  (* cong_{G2}(R2, d2) = max(cong_G(R, d), max entry) — the identity the
     proof of Corollary 6.2 rests on. *)
  let g = Gen.grid 3 3 in
  let d = Demand.of_list [ (0, 8, 3.0); (2, 6, 1.0) ] in
  let exp = Auxiliary.expand g ~pairs:(Demand.support d) in
  let base = Ksp.routing ~k:3 g in
  let lifted = Auxiliary.lift_oblivious exp base in
  let d2 = Auxiliary.lift_demand exp d in
  let expected = Float.max (Oblivious.congestion base d) (Demand.max_entry d) in
  Alcotest.(check (float 1e-9)) "identity" expected (Oblivious.congestion lifted d2)

let test_aux_sample_projects_to_alpha () =
  let g = Gen.grid 3 3 in
  let pairs = [ (0, 8); (1, 7); (3, 5) ] in
  let exp = Auxiliary.expand g ~pairs in
  let base = Ksp.routing ~k:4 g in
  let rng = Rng.create 67 in
  let alpha = 3 in
  let projected = Auxiliary.alpha_sample_via_expansion rng exp base ~alpha in
  List.iter
    (fun (s, t) ->
      let paths = Path_system.paths projected s t in
      Alcotest.(check bool) "at most alpha" true (List.length paths <= alpha);
      Alcotest.(check bool) "non-empty" true (paths <> []);
      let support = List.map snd (Oblivious.distribution base s t) in
      List.iter
        (fun (p : Path.t) ->
          Alcotest.(check int) "src" s p.Path.src;
          Alcotest.(check int) "dst" t p.Path.dst;
          Alcotest.(check bool) "from base support" true
            (List.exists (Path.equal p) support))
        paths)
    pairs

let test_aux_deterministic_base_projects_identity () =
  (* With a single-path base routing, the projected sample must be exactly
     that path. *)
  let g = Gen.grid 3 3 in
  let exp = Auxiliary.expand g ~pairs:[ (0, 8) ] in
  let base = Deterministic.shortest_path g in
  let rng = Rng.create 71 in
  let projected = Auxiliary.alpha_sample_via_expansion rng exp base ~alpha:4 in
  let expected = List.map snd (Oblivious.distribution base 0 8) in
  let got = Path_system.paths projected 0 8 in
  Alcotest.(check int) "single path" 1 (List.length got);
  Alcotest.(check bool) "same path" true
    (Path.equal (List.hd got) (List.hd expected))

let test_aux_distribution_matches_direct_sample () =
  (* Corollary 6.2's key claim: the projected (α−1+cut)-sample through G₂
     has the same distribution as a direct α-sample.  Compare empirical
     frequencies of the resulting candidate sets over many seeds. *)
  let g = Gen.multi_path [ 2; 2 ] in
  let base = Ksp.routing ~k:2 g in
  let exp = Auxiliary.expand g ~pairs:[ (0, 1) ] in
  let alpha = 2 in
  let trials = 800 in
  let key ps =
    List.map
      (fun (p : Path.t) -> Array.to_list p.Path.edges)
      (List.sort Path.compare (Path_system.paths ps 0 1))
  in
  let tally sample_fn =
    let table = Hashtbl.create 4 in
    for seed = 1 to trials do
      let k = key (sample_fn (Rng.create seed)) in
      Hashtbl.replace table k (1 + try Hashtbl.find table k with Not_found -> 0)
    done;
    table
  in
  let direct = tally (fun rng -> Sampler.alpha_sample rng base ~alpha) in
  let via_aux = tally (fun rng -> Auxiliary.alpha_sample_via_expansion rng exp base ~alpha) in
  (* Same support of outcomes, and each outcome's frequency within 6%. *)
  Hashtbl.iter
    (fun k count ->
      let other = try Hashtbl.find via_aux k with Not_found -> 0 in
      let f1 = float_of_int count /. float_of_int trials in
      let f2 = float_of_int other /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "outcome frequency %.3f vs %.3f" f1 f2)
        true
        (Float.abs (f1 -. f2) < 0.06))
    direct

let test_aux_rejects_diagonal () =
  let g = Gen.grid 3 3 in
  Alcotest.check_raises "diagonal" (Invalid_argument "Auxiliary.expand: diagonal pair")
    (fun () -> ignore (Auxiliary.expand g ~pairs:[ (2, 2) ]))

(* Properties *)

let prop_alpha_sample_always_sparse =
  QCheck.Test.make ~name:"α-samples are α-sparse" ~count:30
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, alpha) ->
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:4 g in
      let rng = Rng.create seed in
      let ps = Sampler.alpha_sample rng obl ~alpha in
      Path_system.is_alpha_sparse ps ~alpha (all_pairs 9))

let prop_stage4_never_beats_unrestricted =
  QCheck.Test.make ~name:"cong_R(P,d) ≥ opt(d) under the exact solver" ~count:20
    QCheck.small_int
    (fun seed ->
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:2 g in
      let rng = Rng.create seed in
      let ps = Sampler.alpha_sample rng obl ~alpha:2 in
      let d = Demand.random_pairs rng ~n:9 ~pairs:3 in
      let restricted = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g ps d in
      let unrestricted = Sso_flow.Min_congestion.lp_unrestricted g d in
      restricted >= unrestricted -. 1e-6)

let prop_certified_never_beats_exact_stage4 =
  QCheck.Test.make ~name:"certified pipeline congestion ≥ exact Stage-4 optimum" ~count:10
    QCheck.small_int
    (fun seed ->
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:3 g in
      let rng = Rng.create (seed + 77) in
      let ps = Sampler.alpha_cut_sample rng obl ~alpha:3 in
      let d = Demand.random_pairs rng ~n:9 ~pairs:3 in
      let _, pipeline = Sso_core.Certified.route ~gamma:10.0 ~alpha:3 g ps d in
      let exact = Semi_oblivious.congestion ~solver:Semi_oblivious.Lp g ps d in
      pipeline >= exact -. 1e-6)

let prop_weak_route_kept_within_gamma =
  QCheck.Test.make ~name:"weak_route's kept routing respects gamma" ~count:20
    QCheck.(pair small_int (float_range 0.5 4.0))
    (fun (seed, gamma) ->
      let g = Gen.grid 3 3 in
      let obl = Ksp.routing ~k:3 g in
      let rng = Rng.create seed in
      let ps = Sampler.alpha_sample rng obl ~alpha:3 in
      let d = Demand.random_pairs rng ~n:9 ~pairs:4 in
      let outcome = Process.weak_route ~gamma g ps d in
      match outcome.Process.kept_routing with
      | None -> true
      | Some r ->
          Routing.congestion g r outcome.Process.kept_demand <= gamma +. 1e-6)

let () =
  Alcotest.run "core"
    [
      ( "path system",
        [
          Alcotest.test_case "of_pairs" `Quick test_path_system_of_pairs;
          Alcotest.test_case "validates" `Quick test_path_system_validates;
          Alcotest.test_case "generator memoizes" `Quick test_path_system_generator_memoizes;
          Alcotest.test_case "union" `Quick test_path_system_union;
          Alcotest.test_case "restrict hops" `Quick test_path_system_restrict_hops;
          Alcotest.test_case "oblivious support" `Quick test_of_oblivious_support;
          Alcotest.test_case "slice view matches paths" `Quick
            test_slice_view_matches_paths;
          Alcotest.test_case "materialize_parallel jobs-invariant" `Quick
            test_materialize_parallel_jobs_invariant;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "alpha sparsity" `Quick test_alpha_sample_sparsity;
          Alcotest.test_case "from support" `Quick test_alpha_sample_from_support;
          Alcotest.test_case "deterministic base" `Quick test_alpha_sample_deterministic_base;
          Alcotest.test_case "cnt and cut sample" `Quick test_cnt_and_cut_sample;
          Alcotest.test_case "reproducible" `Quick test_sample_reproducible;
        ] );
      ( "semi-oblivious",
        [
          Alcotest.test_case "adapts to demand" `Quick test_route_adapts_to_demand;
          Alcotest.test_case "gk solver variant" `Quick test_gk_solver_variant;
          Alcotest.test_case "solvers agree" `Slow test_congestion_solvers_agree;
          Alcotest.test_case "full support ≤ base" `Slow
            test_full_support_is_1_competitive_with_base;
          Alcotest.test_case "ratio ≥ 1 (exact)" `Quick
            test_competitive_ratio_at_least_one_with_lp;
          Alcotest.test_case "empty demand" `Quick test_empty_demand_ratio;
          Alcotest.test_case "worst ratio" `Slow test_worst_ratio;
          Alcotest.test_case "Thm 2.3 shape (hypercube)" `Slow
            test_log_sample_competitive_on_hypercube;
          Alcotest.test_case "Thm 2.5 shape (monotone in α)" `Slow
            test_sparsity_monotonicity;
        ] );
      ( "integral",
        [
          Alcotest.test_case "upper is integral" `Slow test_integral_upper_is_integral;
          Alcotest.test_case "upper vs brute force" `Slow test_integral_upper_vs_brute_force;
          Alcotest.test_case "brute force known" `Quick test_brute_force_known;
          Alcotest.test_case "brute force validates" `Quick test_brute_force_forced_collision;
          Alcotest.test_case "Cor 6.4 bound" `Slow test_integral_rounding_bound_cor64;
        ] );
      ( "process (Lemma 5.6/5.8)",
        [
          Alcotest.test_case "weak route survives" `Slow test_weak_route_survives_on_good_sample;
          Alcotest.test_case "tight gamma deletes" `Quick test_weak_route_deletes_under_tight_gamma;
          Alcotest.test_case "loose gamma keeps" `Quick test_weak_route_keeps_everything_when_loose;
          Alcotest.test_case "halving routes all" `Slow test_route_by_halving_routes_everything;
        ] );
      ( "completion (Section 7)",
        [
          Alcotest.test_case "balanced tradeoff" `Quick
            test_completion_route_prefers_balanced_tradeoff;
          Alcotest.test_case "objective value" `Quick test_completion_time_of_routing;
          Alcotest.test_case "ladder hops" `Quick test_ladder_hops_cover_diameter;
          Alcotest.test_case "ladder system" `Slow test_ladder_system_feasible;
        ] );
      ( "special (Lemma 5.9)",
        [
          Alcotest.test_case "of support" `Quick test_special_of_support;
          Alcotest.test_case "buckets partition" `Quick test_buckets_partition;
          Alcotest.test_case "random special" `Quick test_random_special;
        ] );
      ( "lower bound (Section 8)",
        [
          Alcotest.test_case "middles hit" `Quick test_middles_hit;
          Alcotest.test_case "attack 1-sparse" `Slow test_attack_on_1_sparse;
          Alcotest.test_case "attack vs sparsity" `Slow test_attack_weaker_on_sparse_samples;
          Alcotest.test_case "attack verified" `Slow test_attack_verified_measured_bound;
        ] );
      ( "extra",
        [
          Alcotest.test_case "sampler distribution" `Slow test_sampler_respects_base_distribution;
          Alcotest.test_case "sampler dedupes" `Quick test_sampler_dedupes_with_replacement;
          Alcotest.test_case "ladder geometric" `Quick test_completion_ladder_geometric;
          Alcotest.test_case "inner path no middles" `Quick
            test_lower_bound_middles_hit_empty_for_inner_path;
          Alcotest.test_case "opt lp exact" `Quick test_semi_oblivious_opt_lp_exact;
          Alcotest.test_case "worst ratio empty" `Quick test_worst_ratio_empty;
          Alcotest.test_case "process deterministic" `Quick test_process_deterministic;
          Alcotest.test_case "bucket count logarithmic" `Quick
            test_certified_bucket_count_logarithmic;
        ] );
      ( "certified (Thm 5.3 pipeline)",
        [
          Alcotest.test_case "routes permutation" `Slow test_certified_routes_permutation;
          Alcotest.test_case "arbitrary demand" `Quick test_certified_arbitrary_demand;
          Alcotest.test_case "empty" `Quick test_certified_empty;
          Alcotest.test_case "single bucket" `Quick test_certified_single_bucket_for_uniform;
        ] );
      ( "theory",
        [
          Alcotest.test_case "sample competitiveness" `Quick
            test_theory_sample_competitiveness_monotone;
          Alcotest.test_case "failure probabilities" `Quick test_theory_failure_probabilities;
          Alcotest.test_case "bad patterns" `Quick test_theory_bad_patterns;
          Alcotest.test_case "rounding" `Quick test_theory_rounding_matches_lemma;
          Alcotest.test_case "sparsity shape" `Quick test_theory_sparsity_shape;
          Alcotest.test_case "trade-off consistency" `Quick test_theory_trade_off_consistency;
          Alcotest.test_case "gadget k" `Quick test_theory_gadget_k;
          Alcotest.test_case "kkt91" `Quick test_theory_kkt91;
          Alcotest.test_case "validates input" `Quick test_theory_validates_input;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "top paths" `Quick test_oracle_top_paths;
          Alcotest.test_case "beats sample" `Slow test_oracle_beats_or_matches_sample;
          Alcotest.test_case "covers demand only" `Quick test_oracle_only_covers_demand;
        ] );
      ( "family graph (Lemma 8.2)",
        [
          Alcotest.test_case "attack in family" `Slow test_attack_in_family;
          Alcotest.test_case "unknown alpha" `Quick test_attack_in_family_unknown_alpha;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "without edge" `Quick test_without_edge_filters;
          Alcotest.test_case "filter by hops" `Quick test_filter_paths_by_hops;
          Alcotest.test_case "redundancy survives" `Quick
            test_robustness_redundant_candidates_survive;
          Alcotest.test_case "single candidate strands" `Quick
            test_robustness_single_candidate_fails;
          Alcotest.test_case "bridge excluded" `Quick test_robustness_bridge_is_networks_fault;
          Alcotest.test_case "agrees with bridge analysis" `Quick
            test_robustness_agrees_with_bridges;
          Alcotest.test_case "degenerate summary is nan" `Quick
            test_robustness_summary_degenerate_is_nan;
          Alcotest.test_case "parallel edges share solves" `Quick
            test_robustness_parallel_edges_share_solves;
        ] );
      ( "auxiliary (Cor 6.2)",
        [
          Alcotest.test_case "terminal cuts" `Quick test_aux_terminal_cuts_are_one;
          Alcotest.test_case "congestion identity" `Quick test_aux_lifted_congestion_identity;
          Alcotest.test_case "projects to alpha" `Quick test_aux_sample_projects_to_alpha;
          Alcotest.test_case "deterministic identity" `Quick
            test_aux_deterministic_base_projects_identity;
          Alcotest.test_case "rejects diagonal" `Quick test_aux_rejects_diagonal;
          Alcotest.test_case "distribution matches direct sample" `Slow
            test_aux_distribution_matches_direct_sample;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_alpha_sample_always_sparse;
            prop_stage4_never_beats_unrestricted;
            prop_certified_never_beats_exact_stage4;
            prop_weak_route_kept_within_gamma;
          ] );
    ]
